// An ordered batch of mutations, applied through one Store::Write call.
//
// Consecutive Puts are applied through the core's insert_batch bulk-ingest
// fast path (one structure-lock acquisition per run) with each record
// write-ahead logged to its routed unit's WAL shard in apply order —
// Write(batch) has exactly the durability of the same Puts issued one by
// one, just cheaper. Deletes break the run and apply in place, preserving
// the batch's total order.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "metadata/file_metadata.h"

namespace smartstore::db {

class WriteBatch {
 public:
  enum class OpType { kPut, kDelete };

  struct Op {
    OpType type = OpType::kPut;
    metadata::FileMetadata file;  ///< kPut payload
    std::string name;             ///< kDelete payload
  };

  WriteBatch() = default;

  void Put(metadata::FileMetadata file) {
    Op op;
    op.type = OpType::kPut;
    op.file = std::move(file);
    ops_.push_back(std::move(op));
  }

  void Delete(std::string name) {
    Op op;
    op.type = OpType::kDelete;
    op.name = std::move(name);
    ops_.push_back(std::move(op));
  }

  void Clear() { ops_.clear(); }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void reserve(std::size_t n) { ops_.reserve(n); }

  const std::vector<Op>& ops() const { return ops_; }
  std::vector<Op>&& release() && { return std::move(ops_); }

 private:
  std::vector<Op> ops_;
};

}  // namespace smartstore::db
