// smartstore::db::Store — the single-handle embedding API over the
// SmartStore metadata system.
//
// One Open() composes what PRs 2–4 built as loose parts: it constructs or
// recovers the core store (snapshot load + sequence-merged WAL-shard
// replay), takes an exclusive LOCK file against a second process opening
// the same data directory, attaches the per-unit WAL shard hooks to every
// mutation, and starts the background checkpointer at the configured
// cadence. Close() (or the destructor) tears it all down in the only safe
// order: drain the in-flight checkpoint, group-commit the WAL shards,
// release the lock. No caller ever re-derives the WAL-fencing protocol.
//
// The boundary is exception-free: every operation returns Status (or
// StatusOr), including the crash-injection harness's simulated power cuts
// (kFaultInjected — after which the store is poisoned exactly as a dead
// process's on-disk state would be: pending WAL batches are abandoned,
// never committed by destructors).
//
// Thread safety: Put / Delete / Write / Query / Flush / Checkpoint may be
// called from any number of threads concurrently (the core's striped
// mutation path orders them; one background checkpoint rides along).
// Close and Abandon are exclusive — they wait out every in-flight
// operation, and anything arriving after returns kFailedPrecondition.
// GetProperty and GetSpaceInfo run concurrently with mutators against a
// pinned MVCC snapshot (only "smartstore.invariants-ok" still quiesces).
//
// MVCC: every acknowledged mutation carries a store-wide commit sequence
// number (the WAL stamp on durable stores). GetSnapshot() pins the current
// seq; Query with ReadOptions scans at a pinned (or historical) seq and is
// bit-identical no matter what writers do in between. Tombstoned versions
// are garbage-collected up to the oldest live Snapshot, so time-travel
// below that watermark is best-effort (deleted records may be gone).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metadata/file_metadata.h"
#include "smartstore/options.h"
#include "smartstore/query.h"
#include "smartstore/status.h"
#include "smartstore/write_batch.h"

namespace smartstore::db {

/// What Open found on disk (all zero for a freshly created deployment).
struct RecoveryInfo {
  bool recovered = false;        ///< an existing snapshot was loaded
  std::size_t wal_records = 0;   ///< replayed (fenced prefix excluded)
  std::size_t wal_blocks = 0;
  std::size_t wal_fenced = 0;    ///< skipped: already in the snapshot
  std::size_t wal_shards = 0;    ///< shard logs scanned
  bool wal_tail_torn = false;    ///< a torn tail was dropped at a
                                 ///< group-commit boundary
  bool used_manifest = false;    ///< base came from the delta-chain
                                 ///< manifest, not a bare snapshot.bin
  std::size_t delta_cuts = 0;    ///< chain links applied under it
  std::size_t delta_records = 0; ///< delta records applied before the tail
};

/// Average per-storage-unit space breakdown (see GetSpaceInfo).
struct SpaceInfo {
  std::size_t metadata_bytes = 0;  ///< records + local indexes
  std::size_t index_bytes = 0;     ///< hosted index units
  std::size_t replica_bytes = 0;   ///< replicated group summaries
  std::size_t version_bytes = 0;   ///< attached versions
  std::size_t total_bytes = 0;
};

/// A pinned, immutable view of the store at one commit sequence number.
/// Copyable (shared pin); tombstone GC cannot reclaim any version this
/// view can see while any copy is alive. Safe to destroy after the Store.
class Snapshot {
 public:
  Snapshot() = default;

  /// The pinned commit sequence — feed it to ReadOptions::snapshot_seq
  /// (or ship it to other shards/processes for a cluster-wide cut).
  std::uint64_t sequence() const { return seq_; }

 private:
  friend class Store;
  Snapshot(std::uint64_t seq, std::shared_ptr<void> pin)
      : seq_(seq), pin_(std::move(pin)) {}

  std::uint64_t seq_ = 0;
  std::shared_ptr<void> pin_;
};

/// Per-read options for the snapshot Query overload.
struct ReadOptions {
  /// kReadLatest pins the current commit seq for the duration of the one
  /// query; any other value reads as-of that historical seq (exact for
  /// seqs at or above the GC watermark — use GetSnapshot to hold one).
  std::uint64_t snapshot_seq = kReadLatest;

  static constexpr std::uint64_t kReadLatest =
      static_cast<std::uint64_t>(-1);
};

/// Background-checkpoint accounting (see GetCheckpointInfo).
struct CheckpointInfo {
  std::uint64_t completed = 0;
  std::uint64_t total_mutations_during = 0;  ///< rode along across all ckpts
  std::uint64_t total_cow_copies = 0;
  double last_freeze_s = 0;    ///< serving threads excluded
  double last_write_s = 0;     ///< concurrent serialization
  double last_truncate_s = 0;  ///< per-shard WAL rebase
  std::size_t last_snapshot_bytes = 0;
  // Incremental mode (Options::incremental_checkpoints):
  bool last_was_delta = false;      ///< last checkpoint was a delta cut
  std::uint64_t delta_cuts = 0;     ///< cuts published since Open
  std::uint64_t delta_folds = 0;    ///< chain folds (compactions) since Open
  std::uint64_t delta_chain_len = 0;    ///< cuts chained on the current base
  std::uint64_t delta_chain_bytes = 0;  ///< segment bytes in that chain
  std::uint64_t last_delta_records = 0;  ///< records the last cut captured
  std::uint64_t last_delta_units = 0;    ///< units contributing an extent
  std::uint64_t last_delta_units_cold = 0;  ///< fenced units with nothing new
};

/// One record of the replication stream: a committed mutation together
/// with its store-wide commit sequence number. The primary's commit tap
/// emits these; a follower feeds them back through ApplyReplicated, which
/// re-applies each under the SAME seq so MVCC visibility and the durable
/// frontier line up across replicas.
struct ReplicatedOp {
  bool is_insert = true;
  /// Seq-hole marker: the primary consumed this seq on a replica-private
  /// structural record (unit split/merge). The follower applies no data
  /// but still logs and accounts the seq, keeping the stream contiguous
  /// and a promoted follower's stamp counter past every consumed seq.
  bool is_noop = false;
  std::uint64_t seq = 0;
  metadata::FileMetadata file;  ///< inserts
  std::string name;             ///< removes
};

class Store {
 public:
  /// Opens (building or recovering) the deployment at `path`. Errors:
  ///   kInvalidArgument  bad Options, empty path, or error_if_exists hit
  ///   kBusy             another handle holds the directory's LOCK file
  ///   kNotFound         no snapshot and create_if_missing is false
  ///   kCorruption       snapshot/WAL failed a checksum or format check
  ///   kIOError          the filesystem said no
  static StatusOr<std::unique_ptr<Store>> Open(const Options& options,
                                               const std::string& path);

  /// Closes (best-effort) if the caller did not.
  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  // ---- bulk load ---------------------------------------------------------

  /// Builds the deployment over a population in one shot: semantic
  /// placement (balanced k-means in LSI space), bottom-up tree
  /// construction, replica initialization. Only valid while the store is
  /// empty (a fresh Open with no Puts yet) — the paper's build() is a
  /// whole-deployment operation, not an incremental one. Bulkload is not
  /// write-ahead logged; on a durable store it checkpoints the deployment
  /// before returning (cheap next to the build), so the population is
  /// crash-safe from the moment Bulkload returns OK.
  Status Bulkload(const std::vector<metadata::FileMetadata>& files);

  // ---- mutations ---------------------------------------------------------

  Status Put(const metadata::FileMetadata& file);

  /// kNotFound when no file of that name exists.
  Status Delete(const std::string& name);

  /// Applies the batch in order (see write_batch.h for the insert_batch
  /// fast path and the Options::ingest_threads fan-out).
  Status Write(WriteBatch&& batch);

  // ---- queries -----------------------------------------------------------

  StatusOr<QueryResult> Query(const QueryRequest& request);

  // ---- snapshot reads / time travel --------------------------------------

  /// Pins the current commit sequence. All reads through the returned
  /// Snapshot's seq see exactly the mutations acknowledged before this
  /// call, regardless of concurrent writers.
  StatusOr<Snapshot> GetSnapshot();

  /// Exact exhaustive scan at `options.snapshot_seq` (or at a freshly
  /// pinned seq for kReadLatest). Unlike the routed overload above it
  /// simulates no network placement and returns canonical (sorted)
  /// results: two scans at the same seq are bit-identical no matter what
  /// writers do in between — this is the time-travel / audit read path.
  StatusOr<QueryResult> Query(const QueryRequest& request,
                              const ReadOptions& options);

  /// Commit sequence of the latest acknowledged mutation (0 = none yet).
  std::uint64_t LatestSequence() const;

  // ---- durability control ------------------------------------------------

  /// Group-commits every WAL shard: all acknowledged mutations become
  /// durable. No-op without a WAL.
  Status Flush();

  /// Checkpoints the deployment into the data directory. With a WAL this
  /// is the background protocol run to completion — serving threads keep
  /// running. Under Options::incremental_checkpoints that means a delta
  /// CUT (per-unit WAL slices appended to segment files, manifest
  /// published, shards rebased; cold units free); otherwise the full
  /// freeze → concurrent snapshot → per-shard rebase image. Without a
  /// WAL it quiesces mutators for a stop-the-world snapshot.
  Status Checkpoint();

  /// Folds the delta chain into a fresh base image, concurrent with
  /// serving (epoch freeze + copy-on-write), and prunes superseded delta
  /// files. Runs even when the chain is short — this is the explicit
  /// "compact now" knob; the background compactor applies
  /// Options::compaction_trigger / compaction_byte_budget automatically
  /// after each cut. Falls back to Checkpoint() semantics on stores
  /// without incremental checkpoints.
  Status Compact();

  // ---- replication -------------------------------------------------------

  /// Observer for mutations that became DURABLE here (WAL-committed).
  /// Called from arbitrary operation threads while a per-shard WAL mutex
  /// is held — the callee must be fast, must not call back into this
  /// Store, and may only take locks ranked above kWalShard (the
  /// replication buffer's kReplBuffer qualifies).
  using CommitTap = std::function<void(const ReplicatedOp&)>;

  /// Arms (nullptr: disarms) the durable-commit tap. Requires a WAL.
  /// Per-shard record order is preserved; cross-shard order is not (the
  /// consumer reorders by seq). Records already durable before arming are
  /// not replayed — pair with DumpSnapshot to bootstrap a follower.
  Status SetCommitTap(CommitTap tap);

  /// Applies a run of replicated records in seq order, WAL-logging each
  /// under the primary's seq, then group-commits — on return every
  /// non-skipped record is durable HERE. Records at or below the current
  /// frontier are skipped (duplicate batches and bootstrap overlap are
  /// idempotent). `*frontier_out` receives the new durable frontier.
  /// Requires a WAL; removes of absent names are OK (already-applied).
  Status ApplyReplicated(const std::vector<ReplicatedOp>& ops,
                         std::uint64_t* frontier_out);

  /// Pins the current commit seq and returns every record visible at it
  /// in canonical (id, name) order; `*seq_out` receives the pinned seq.
  /// This is the bootstrap payload for an empty follower — and the
  /// oracle-comparison read (two stores with the same history dump ==).
  StatusOr<std::vector<metadata::FileMetadata>> DumpSnapshot(
      std::uint64_t* seq_out);

  /// Installs a DumpSnapshot taken elsewhere at commit seq `seq` into
  /// this EMPTY store, then advances the local frontier to `seq` so the
  /// replication stream resumes cleanly at seq+1. kFailedPrecondition if
  /// the store has ever applied a mutation.
  Status LoadBootstrap(std::uint64_t seq,
                       const std::vector<metadata::FileMetadata>& files);

  // ---- introspection -----------------------------------------------------

  /// Named properties ("smartstore.total-files", "smartstore.wal.frontier",
  /// "smartstore.space.total-bytes", "smartstore.mvcc.commit-seq", ... —
  /// see the README's table). Returns false for unknown names. Structural
  /// and space reads run against a pinned snapshot, concurrent with
  /// mutators; only "smartstore.invariants-ok" still quiesces.
  bool GetProperty(const std::string& name, std::string* value);

  const RecoveryInfo& recovery_info() const;
  CheckpointInfo GetCheckpointInfo() const;
  /// One snapshot-pinned read of the per-unit space breakdown (concurrent
  /// with mutators; computes all five numbers in a single pass).
  SpaceInfo GetSpaceInfo();
  const Options& options() const;
  const std::string& path() const;

  // ---- lifecycle ---------------------------------------------------------

  /// Waits out in-flight operations and the background checkpointer,
  /// group-commits the WAL shards, releases the LOCK file. Idempotent.
  /// Every operation after Close returns kFailedPrecondition.
  Status Close();

  /// Crash simulation (test/bench harness): drops every durability handle
  /// WITHOUT committing pending WAL batches — the in-process stand-in for
  /// the process dying — and releases the LOCK file so the directory can
  /// be re-Opened to exercise recovery. The handle is poisoned afterwards.
  void Abandon();

 private:
  Store();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace smartstore::db
