// The unified query surface: one request type covering point / range /
// top-k, one result type carrying the matching ids plus per-operation
// accounting.
//
// QueryRequest is a tagged union (std::variant) over the metadata layer's
// query structs — the same types the trace generators emit — plus an
// optional per-request routing override. QueryResult mirrors the shape:
// `kind` tags which members are meaningful, and every result carries the
// QueryStats the virtual-time cluster accounted for the operation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "metadata/file_metadata.h"
#include "metadata/query.h"
#include "smartstore/options.h"

namespace smartstore::db {

enum class QueryKind : std::uint8_t { kPoint, kRange, kTopK };

/// Per-operation accounting (a stable public mirror of the core layer's
/// QueryStats — the facade converts, so embedders never include core
/// headers and the internal struct can evolve freely).
struct QueryStats {
  double latency_s = 0;        ///< completion - arrival (virtual time)
  std::uint64_t messages = 0;  ///< network messages this operation sent
  std::uint64_t hops = 0;      ///< inter-unit hops
  int routing_hops = 0;        ///< group-distance metric (0 = one group)
  std::size_t groups_visited = 0;
  std::size_t records_scanned = 0;
  double version_check_s = 0;  ///< extra latency from version checks
  bool failed = false;         ///< touched a crashed node
};

struct QueryRequest {
  std::variant<metadata::PointQuery, metadata::RangeQuery, metadata::TopKQuery>
      op;
  /// Overrides Options::routing for this request when set.
  std::optional<Routing> routing;

  QueryKind kind() const { return static_cast<QueryKind>(op.index()); }

  // ---- convenience constructors -----------------------------------------

  static QueryRequest Point(std::string filename) {
    QueryRequest r;
    r.op = metadata::PointQuery{std::move(filename)};
    return r;
  }
  static QueryRequest Point(metadata::PointQuery q) {
    QueryRequest r;
    r.op = std::move(q);
    return r;
  }
  static QueryRequest Range(metadata::RangeQuery q) {
    QueryRequest r;
    r.op = std::move(q);
    return r;
  }
  static QueryRequest TopK(metadata::TopKQuery q) {
    QueryRequest r;
    r.op = std::move(q);
    return r;
  }
};

struct QueryResult {
  QueryKind kind = QueryKind::kPoint;

  // ---- point -------------------------------------------------------------
  bool found = false;
  metadata::FileId id = 0;
  std::uint64_t unit = 0;   ///< storage unit hosting the file (when found)
  bool first_try = false;   ///< resolved at the first routed group

  // ---- range + top-k -----------------------------------------------------
  std::vector<metadata::FileId> ids;  ///< matches (top-k: nearest first)

  // ---- top-k -------------------------------------------------------------
  std::vector<std::pair<double, metadata::FileId>> hits;  ///< (dist², id)

  QueryStats stats;

  /// Result cardinality regardless of kind (point: 0 or 1).
  std::size_t count() const {
    if (kind == QueryKind::kPoint) return found ? 1 : 0;
    return ids.size();
  }
};

}  // namespace smartstore::db
