// Umbrella header for the embedded-store API: everything an embedding
// file system needs to open, mutate, query, and checkpoint a SmartStore
// deployment through one handle.
//
//   #include <smartstore/smartstore.h>
//   auto store = smartstore::db::Store::Open(options, "/var/lib/meta");
#pragma once

#include "smartstore/options.h"
#include "smartstore/query.h"
#include "smartstore/status.h"
#include "smartstore/store.h"
#include "smartstore/write_batch.h"
