// Open-time configuration of the embedded store.
//
// Options is the one place where the durability/concurrency machinery the
// lower layers export piecemeal (core striping, sharded WAL group commit,
// background checkpoint cadence) is composed into a coherent deployment.
// Everything has a safe default: Options{} opens a durable, write-ahead
// logged store that checkpoints only when asked.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smartstore::db {

/// Query routing mode (paper Sections 3.3 / 3.4). kOffline consults the
/// replicated group summaries and bounds the search scope (fast,
/// recall < 100% under replica staleness); kOnline multicasts through the
/// semantic R-tree (exact, message-heavy).
enum class Routing { kOnline, kOffline };

struct Options {
  // ---- deployment shape (used only when Open builds a fresh store; an
  // ---- existing snapshot carries its own configuration) ------------------
  std::size_t num_units = 20;   ///< storage units (metadata servers)
  std::size_t fanout = 8;       ///< semantic R-tree M
  std::uint64_t seed = 42;      ///< placement / routing rng seed

  /// Default routing for queries whose QueryRequest does not override it.
  Routing routing = Routing::kOffline;

  // ---- open semantics ----------------------------------------------------
  bool create_if_missing = true;  ///< build an empty deployment on a fresh dir
  bool error_if_exists = false;   ///< refuse to open an existing deployment

  /// Ephemeral mode: no data directory, no LOCK file, no WAL, no
  /// checkpoints (Checkpoint()/Flush() return kFailedPrecondition). The
  /// `path` argument to Open is ignored. For query-only experiments and
  /// tests that do not want disk state.
  bool in_memory = false;

  // ---- durability --------------------------------------------------------
  /// Write-ahead log every Put/Delete/Write into the sharded WAL
  /// (<path>/wal/<unit>.log, one log per storage unit — writers routed to
  /// different units commit and fsync independently). With this off,
  /// mutations after the last checkpoint are lost on a crash.
  bool enable_wal = true;

  /// WAL records per group-commit fsync, per shard. 0 = adaptive: each
  /// shard sizes its own batch from an EWMA of its fsync latency and
  /// record arrival rate (batch ≈ sync cost / arrival gap, clamped to
  /// [1, 64]), seeded from the store's version ratio (the paper's
  /// Section 4.4 aggregation factor) until both estimates warm up.
  /// Explicit values stay static — crash-injection sweeps that count
  /// durability boundaries need a deterministic batch size.
  std::size_t group_commit = 0;

  /// Background-checkpoint cadence: snapshot the deployment (epoch freeze
  /// + copy-on-write, concurrent with serving) every N acknowledged
  /// mutations. 0 = checkpoint only on explicit Checkpoint() calls.
  /// Requires enable_wal (the protocol fences against the WAL shards).
  std::size_t checkpoint_every = 0;

  /// Incremental checkpoints (requires enable_wal): the checkpoint
  /// cadence action becomes a delta CUT — slice each storage unit's WAL
  /// shard since the last cut into an append-only segment file under
  /// <path>/ckpt/, publish a manifest chaining the cut onto the base
  /// image, and rebase the shards. Cold units contribute nothing; a
  /// wholly cold store cuts for free. Recovery loads base + delta chain
  /// + WAL tail. With this off, every checkpoint writes a full image
  /// (the pre-incremental behavior).
  bool incremental_checkpoints = true;

  /// Fold the delta chain into a fresh base image (background, concurrent
  /// with serving) once it exceeds this many cuts. 0 = never by length.
  std::size_t compaction_trigger = 4;

  /// ...or once the chain's segment extents exceed this many bytes.
  /// 0 = never by bytes. Both 0 = compact only on explicit Compact().
  std::uint64_t compaction_byte_budget = 64ull << 20;

  /// Worker threads backing the background checkpointer's pool.
  std::size_t background_threads = 2;

  // ---- ingest ------------------------------------------------------------
  /// Writer threads Write() may fan a large all-Put batch across
  /// (work-stealing over insert_batch, the bulk-ingest fast path). 1 =
  /// apply every batch on the calling thread. Callers may always run
  /// their own threads instead — every mutation entry point is
  /// thread-safe.
  std::size_t ingest_threads = 1;

  // ---- test/bench harness support ---------------------------------------
  /// Arms persist::fault_arm(K): the K-th persistence write boundary this
  /// process crosses "crashes the process" — the store abandons its WAL
  /// handles (pending records are NOT committed by destructors, exactly as
  /// a power cut would leave them) and every later operation returns
  /// kFaultInjected. 0 = disabled.
  std::size_t crash_at = 0;
};

}  // namespace smartstore::db
