// Error vocabulary of the embedded-store API: every smartstore::db::Store
// operation reports failure through Status / StatusOr instead of throwing.
//
// The boundary contract: nothing below the facade is required to be
// exception-free (the persistence layer throws PersistError, the codecs
// throw BinaryIoError), but nothing above it ever sees an exception —
// Store catches and maps everything onto one of the codes here. The codes
// mirror the failure modes an embedding file system has to branch on:
//
//   kNotFound            the key/file/snapshot does not exist
//   kCorruption          on-disk state failed a checksum/format check
//   kInvalidArgument     the caller's request can never succeed as given
//   kBusy                another process (or handle) holds the data dir
//   kIOError             the OS said no (open/write/rename/fsync failed)
//   kFailedPrecondition  valid request, wrong state (e.g. Write after Close)
//   kFaultInjected       a persist::fault_arm crash point fired — the
//                        store froze its on-disk state exactly as a power
//                        cut would (test/bench harness support)
//   kUnknown             an unclassified internal failure
//
// The networked service tier (src/rpc, src/svc) adds the codes a client
// must branch on when the store is on the other side of a wire:
//
//   kUnavailable         the shard/endpoint cannot be reached right now —
//                        retrying (with backoff) may succeed
//   kTimeout             the request may or may not have been applied; a
//                        retry MUST reuse the same request id so the
//                        server-side dedup keeps the apply exactly-once
//   kWrongShard          the contacted shard does not own the key under
//                        the current partition map; the response carries
//                        the authoritative map — refresh and re-route
//
// This header is deliberately self-contained (standard library only) so
// lower layers — e.g. persist's exception-free recovery entry point — can
// speak the same vocabulary without depending on the facade.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace smartstore::db {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kBusy = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kFaultInjected = 7,
  kUnknown = 8,
  kUnavailable = 9,
  kTimeout = 10,
  kWrongShard = 11,
};

/// One past the largest valid code — the bound a wire decoder checks a
/// received byte against before casting.
inline constexpr std::uint8_t kNumStatusCodes = 12;

inline const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kFaultInjected: return "FaultInjected";
    case StatusCode::kUnknown: return "Unknown";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kWrongShard: return "WrongShard";
  }
  return "Unknown";
}

class Status {
 public:
  Status() = default;  ///< OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status FaultInjected(std::string msg) {
    return Status(StatusCode::kFaultInjected, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status WrongShard(std::string msg) {
    return Status(StatusCode::kWrongShard, std::move(msg));
  }

  /// Rebuilds a Status from its wire representation (code byte + message);
  /// out-of-range bytes collapse to kUnknown rather than trusting the peer.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    if (static_cast<std::uint8_t>(code) >= kNumStatusCodes) {
      return Status(StatusCode::kUnknown, std::move(msg));
    }
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsFaultInjected() const { return code_ == StatusCode::kFaultInjected; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsWrongShard() const { return code_ == StatusCode::kWrongShard; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value — the return type of fallible factories
/// (Store::Open) and queries. Dereferencing a non-OK StatusOr aborts with
/// the status printed (the embedded-API analogue of an uncaught exception);
/// callers are expected to branch on ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
    if (status_.ok()) status_ = Status::Unknown("OK status without a value");
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    check();
    return *value_;
  }
  const T& value() const& {
    check();
    return *value_;
  }
  T&& value() && {
    check();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() {
    check();
    return &*value_;
  }
  const T* operator->() const {
    check();
    return &*value_;
  }

 private:
  void check() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "StatusOr::value on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace smartstore::db
