// Quickstart: build a SmartStore over a synthetic trace and run the three
// query classes the paper supports (point, range, top-k) in both routing
// modes, printing results and per-query cost accounting.
//
// This is the 5-minute tour of the public API:
//   1. synthesize (or load) a file-metadata population,
//   2. configure and build a SmartStore,
//   3. issue queries, read back results + simulated latency/messages.
#include <algorithm>
#include <cstdio>

#include "core/smartstore.h"
#include "metadata/query.h"
#include "trace/query_gen.h"
#include "trace/synth.h"

using namespace smartstore;
using core::Routing;
using metadata::Attr;
using metadata::AttrSubset;

int main() {
  // 1. A small MSN-like population: ~2500 files in semantic clusters.
  const auto trace = trace::SyntheticTrace::generate(
      trace::msn_profile(), /*tif=*/1, /*seed=*/2024, /*downscale=*/5);
  std::printf("population: %zu files, %zu trace ops\n\n",
              trace.files().size(), trace.ops().size());

  // 2. A 20-server deployment with the paper's Bloom/k-means/LSI defaults.
  core::Config cfg;
  cfg.num_units = 20;
  cfg.fanout = 5;
  core::SmartStore store(cfg);
  store.build(trace.files());
  std::printf("built semantic R-tree: %zu storage units, %zu index units, "
              "height %d, %zu first-level groups\n\n",
              store.units().size(), store.tree().num_nodes(),
              store.tree().height(), store.tree().groups().size());

  // 3a. Point query: "does this file exist, and where?"
  const auto& some_file = trace.files()[123];
  const auto pr = store.point_query({some_file.name}, Routing::kOffline, 0.0);
  std::printf("point  query %-40s -> %s (unit %zu)  [%.3f ms, %llu msgs]\n",
              some_file.name.c_str(), pr.found ? "FOUND" : "missing", pr.unit,
              pr.stats.latency_s * 1e3,
              static_cast<unsigned long long>(pr.stats.messages));

  // 3b. Range query, the paper's flagship example: "which files were
  // modified in a window and moved a lot of read bytes?" Bounds are taken
  // from the population's own quantiles so the window is non-empty.
  double max_rd = 0;
  for (const auto& f : trace.files())
    max_rd = std::max(max_rd, f.attr(Attr::kReadBytes));
  metadata::RangeQuery rq;
  rq.dims = AttrSubset({Attr::kModificationTime, Attr::kReadBytes});
  rq.lo = {6 * 3600.0 * 0.4, max_rd * 0.10};
  rq.hi = {6 * 3600.0 * 0.9, max_rd};
  const auto rr = store.range_query(rq, Routing::kOffline, 0.0);
  std::printf("range  query mtime in [40%%,90%%] & rdbytes in top decile -> "
              "%zu files  [%.3f ms, %llu msgs, %zu groups]\n",
              rr.ids.size(), rr.stats.latency_s * 1e3,
              static_cast<unsigned long long>(rr.stats.messages),
              rr.stats.groups_visited);

  // 3c. Top-k query: "I half-remember a file: ~300MB, owner 42. Show the
  // 10 closest matches."
  metadata::TopKQuery tq;
  tq.dims = AttrSubset({Attr::kFileSize, Attr::kOwnerId});
  tq.point = {300e6, 42};
  tq.k = 10;
  const auto tr = store.topk_query(tq, Routing::kOffline, 0.0);
  std::printf("top-k  query (size~300MB, owner~42), k=10 -> %zu hits  "
              "[%.3f ms, %llu msgs]\n",
              tr.hits.size(), tr.stats.latency_s * 1e3,
              static_cast<unsigned long long>(tr.stats.messages));
  for (std::size_t i = 0; i < tr.hits.size() && i < 3; ++i)
    std::printf("       #%zu: file id %llu (dist^2 %.3f)\n", i + 1,
                static_cast<unsigned long long>(tr.hits[i].second),
                tr.hits[i].first);

  // 4. Routing modes: on-line multicast vs off-line pre-processing.
  std::uint64_t online_msgs = 0, offline_msgs = 0;
  trace::QueryGenerator gen(trace, trace::QueryDistribution::kZipf, 7);
  for (int i = 0; i < 50; ++i) {
    const auto q = gen.gen_topk(AttrSubset::all(), 8);
    offline_msgs += store.topk_query(q, Routing::kOffline, 0.0).stats.messages;
    online_msgs += store.topk_query(q, Routing::kOnline, 0.0).stats.messages;
  }
  std::printf("\nrouting cost over 50 top-k queries: on-line %llu msgs, "
              "off-line %llu msgs (pre-processing saves %.1f%%)\n",
              static_cast<unsigned long long>(online_msgs),
              static_cast<unsigned long long>(offline_msgs),
              100.0 * (1.0 - static_cast<double>(offline_msgs) /
                                 static_cast<double>(online_msgs)));

  // 5. Space accounting (what Figure 7 reports).
  const auto space = store.avg_unit_space();
  std::printf("\nper-unit space: metadata %zu B, hosted index %zu B, "
              "replicas %zu B, versions %zu B\n",
              space.metadata_bytes, space.index_bytes, space.replica_bytes,
              space.version_bytes);
  return 0;
}
