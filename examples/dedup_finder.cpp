// Dedup candidate finder — the data-deduplication application from the
// paper's introduction: "SmartStore can help identify the duplicate copies
// that often exhibit similar or approximate multi-dimensional attributes,
// such as file size and created time ... duplicate copies can be placed
// together with high probability to narrow the search space."
//
// The example plants duplicate sets in a synthetic population, then finds
// them two ways:
//   * brute force over the full population (what a dedup pass over a
//     directory tree must do), and
//   * SmartStore top-k probes around each candidate, bounded to the file's
//     semantic group.
// It reports the detection rate and the scan-volume savings.
#include <cstdio>
#include <set>

#include "core/smartstore.h"
#include "trace/synth.h"
#include "util/rng.h"

using namespace smartstore;
using core::Routing;
using metadata::AttrSubset;
using metadata::FileId;
using metadata::FileMetadata;

int main() {
  auto trace = trace::SyntheticTrace::generate(trace::hp_profile(), 1, 99, 5);
  auto files = trace.files();

  // Plant 40 duplicate pairs: a copy shares size/ctime/owner with tiny
  // attribute drift (backup copies made moments later).
  util::Rng rng(4242);
  std::vector<std::pair<FileId, FileId>> planted;
  FileId next_id = files.back().id + 1;
  for (int i = 0; i < 40; ++i) {
    const auto& orig = files[rng.uniform_u64(files.size())];
    FileMetadata copy = orig;
    copy.id = next_id++;
    copy.name = orig.name + ".bak";
    copy.set_attr(metadata::Attr::kCreationTime,
                  orig.attr(metadata::Attr::kCreationTime) + 1.0);
    copy.set_attr(metadata::Attr::kAccessTime,
                  orig.attr(metadata::Attr::kAccessTime) + 1.0);
    planted.emplace_back(orig.id, copy.id);
    files.push_back(copy);
  }
  std::printf("population: %zu files (40 planted duplicate pairs)\n",
              files.size());

  core::Config cfg;
  cfg.num_units = 24;
  cfg.fanout = 6;
  core::SmartStore store(cfg);
  store.build(files);

  // For each planted original, ask SmartStore for its nearest neighbors;
  // a duplicate is "detected" when the copy appears in the top-k.
  int detected = 0;
  std::uint64_t messages = 0;
  std::size_t groups_visited = 0;
  for (const auto& [orig_id, copy_id] : planted) {
    const FileMetadata* orig = nullptr;
    for (const auto& u : store.units())
      if ((orig = u.find_by_id(orig_id)) != nullptr) break;
    metadata::TopKQuery q;
    q.dims = AttrSubset::all();
    q.point = orig->full_vector();
    q.k = 8;
    const auto res = store.topk_query(q, Routing::kOffline, 0.0);
    messages += res.stats.messages;
    groups_visited += res.stats.groups_visited;
    for (const auto& [dist, id] : res.hits) {
      (void)dist;
      if (id == copy_id) {
        ++detected;
        break;
      }
    }
  }

  const double scan_fraction =
      static_cast<double>(groups_visited) /
      (static_cast<double>(planted.size()) *
       static_cast<double>(store.tree().groups().size()));
  std::printf("detected %d/40 planted duplicates via bounded top-8 probes\n",
              detected);
  std::printf("search scope: %.1f%% of groups touched per probe "
              "(brute force = 100%%), %llu total messages\n",
              100.0 * scan_fraction,
              static_cast<unsigned long long>(messages));
  std::printf("semantic grouping placed %d/40 duplicate pairs in the same "
              "group\n", [&] {
                int same = 0;
                for (const auto& [a, b] : planted) {
                  core::UnitId ua = core::kInvalidIndex, ub = core::kInvalidIndex;
                  for (const auto& u : store.units()) {
                    if (u.find_by_id(a)) ua = u.id();
                    if (u.find_by_id(b)) ub = u.id();
                  }
                  if (ua != core::kInvalidIndex && ub != core::kInvalidIndex &&
                      store.tree().group_of_unit(ua) ==
                          store.tree().group_of_unit(ub))
                    ++same;
                }
                return same;
              }());
  return 0;
}
