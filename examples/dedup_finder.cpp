// Dedup candidate finder — the data-deduplication application from the
// paper's introduction: "SmartStore can help identify the duplicate copies
// that often exhibit similar or approximate multi-dimensional attributes,
// such as file size and created time ... duplicate copies can be placed
// together with high probability to narrow the search space."
//
// The example plants duplicate sets in a synthetic population, then runs
// the whole candidate pass against ONE pinned MVCC snapshot: all 40 top-k
// probes see the same commit seq, so the candidate list is a consistent
// cut even while the backup job that produced the duplicates keeps
// inserting new copies mid-pass. It reports the detection rate, the
// stability of the pinned pass, and how often semantic grouping colocated
// a pair.
#include <cstdio>
#include <set>
#include <vector>

#include "core/smartstore.h"
#include "trace/synth.h"
#include "util/rng.h"

using namespace smartstore;
using metadata::AttrSubset;
using metadata::FileId;
using metadata::FileMetadata;

int main() {
  auto trace = trace::SyntheticTrace::generate(trace::hp_profile(), 1, 99, 5);
  auto files = trace.files();

  // Plant 40 duplicate pairs: a copy shares size/ctime/owner with tiny
  // attribute drift (backup copies made moments later).
  util::Rng rng(4242);
  std::vector<std::pair<FileId, FileId>> planted;
  FileId next_id = files.back().id + 1;
  for (int i = 0; i < 40; ++i) {
    const auto& orig = files[rng.uniform_u64(files.size())];
    FileMetadata copy = orig;
    copy.id = next_id++;
    copy.name = orig.name + ".bak";
    copy.set_attr(metadata::Attr::kCreationTime,
                  orig.attr(metadata::Attr::kCreationTime) + 1.0);
    copy.set_attr(metadata::Attr::kAccessTime,
                  orig.attr(metadata::Attr::kAccessTime) + 1.0);
    planted.emplace_back(orig.id, copy.id);
    files.push_back(copy);
  }
  std::printf("population: %zu files (40 planted duplicate pairs)\n",
              files.size());

  core::Config cfg;
  cfg.num_units = 24;
  cfg.fanout = 6;
  core::SmartStore store(cfg);
  store.build(files);

  // One pinned seq for the whole pass: every probe sees the same candidate
  // population, so "detected" means detected *at this instant* rather than
  // at 40 slightly different ones.
  std::uint64_t scan_seq = 0;
  const auto pin = store.pin_snapshot(&scan_seq);
  std::printf("candidate pass pinned at commit seq %llu\n",
              static_cast<unsigned long long>(scan_seq));

  // For each planted original, probe its nearest neighbors at the pinned
  // seq; a duplicate is "detected" when the copy appears in the top-k.
  const auto probe_pass = [&] {
    std::vector<FileId> detected_copies;
    for (const auto& [orig_id, copy_id] : planted) {
      const FileMetadata* orig = nullptr;
      for (const auto& u : store.units())
        if ((orig = u.find_by_id(orig_id)) != nullptr) break;
      metadata::TopKQuery q;
      q.dims = AttrSubset::all();
      q.point = orig->full_vector();
      q.k = 8;
      const auto res = store.snapshot_topk_query(q, scan_seq);
      for (const auto& [dist, id] : res.hits) {
        (void)dist;
        if (id == copy_id) {
          detected_copies.push_back(copy_id);
          break;
        }
      }
    }
    return detected_copies;
  };

  const auto first_pass = probe_pass();
  std::printf("detected %zu/40 planted duplicates via pinned top-8 probes\n",
              first_pass.size());

  // The backup job doesn't pause for the scan: a second generation of
  // copies lands while the pass is (notionally) still running...
  for (const auto& [orig_id, copy_id] : planted) {
    (void)copy_id;
    const FileMetadata* orig = nullptr;
    for (const auto& u : store.units())
      if ((orig = u.find_by_id(orig_id)) != nullptr) break;
    FileMetadata copy = *orig;
    copy.id = next_id++;
    copy.name = orig->name + ".bak2";
    store.insert_file(copy, 0.0);
  }

  // ...and the pinned pass still reproduces bit-identically, while a
  // latest-seq probe of the first original immediately sees the new copy.
  const auto second_pass = probe_pass();
  std::printf("re-run at pinned seq after 40 concurrent inserts: %s\n",
              second_pass == first_pass ? "identical" : "DIVERGED");
  std::printf("latest commit seq is now %llu (pinned pass unaffected)\n",
              static_cast<unsigned long long>(store.last_commit_seq()));

  std::printf("semantic grouping placed %d/40 duplicate pairs in the same "
              "group\n", [&] {
                int same = 0;
                for (const auto& [a, b] : planted) {
                  core::UnitId ua = core::kInvalidIndex, ub = core::kInvalidIndex;
                  for (const auto& u : store.units()) {
                    if (u.find_by_id(a)) ua = u.id();
                    if (u.find_by_id(b)) ub = u.id();
                  }
                  if (ua != core::kInvalidIndex && ub != core::kInvalidIndex &&
                      store.tree().group_of_unit(ua) ==
                          store.tree().group_of_unit(ub))
                    ++same;
                }
                return same;
              }());
  return 0;
}
