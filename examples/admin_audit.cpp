// Administrator audit — the introduction's motivating scenario: "after
// installing or updating software, a system administrator may hope to
// track and find the changed files, which exist in both system and user
// directories, to ward off malicious operations."
//
// A software update is simulated as a burst of newly modified files spread
// across owners; the administrator then pins an MVCC snapshot and issues
// one multi-dimensional range query (modification window x write volume)
// against that fixed commit seq instead of crawling the namespace. Ingest
// keeps running while the audit is open — the pinned scans are
// bit-identical anyway, so every table in the report describes the same
// instant.
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "core/ground_truth.h"
#include "core/smartstore.h"
#include "trace/synth.h"
#include "util/rng.h"

using namespace smartstore;
using metadata::Attr;
using metadata::AttrSubset;

int main() {
  auto trace = trace::SyntheticTrace::generate(trace::eecs_profile(), 1, 7, 5);
  auto files = trace.files();
  const double dur = trace.profile().gen.duration_sec;

  // The "update": 120 files across the system get modified in a narrow
  // window near the end of the trace with characteristic write bursts.
  util::Rng rng(99);
  std::set<metadata::FileId> changed;
  for (int i = 0; i < 120; ++i) {
    auto& f = files[rng.uniform_u64(files.size())];
    f.set_attr(Attr::kModificationTime, dur * 0.98 + rng.uniform(0, dur * 0.02));
    f.set_attr(Attr::kWriteBytes,
               f.attr(Attr::kWriteBytes) + rng.uniform(4e6, 12e6));
    f.set_attr(Attr::kWriteCount, f.attr(Attr::kWriteCount) + 3);
    changed.insert(f.id);
  }
  std::printf("simulated update touched %zu files out of %zu\n\n",
              changed.size(), files.size());

  core::Config cfg;
  cfg.num_units = 24;
  cfg.fanout = 6;
  core::SmartStore store(cfg);
  store.build(files);

  // Pin the audit snapshot: every scan below runs at this commit seq, so
  // the whole report is one consistent cut. The pin also holds the GC
  // watermark, keeping any tombstones this seq can still see alive.
  std::uint64_t audit_seq = 0;
  const auto pin = store.pin_snapshot(&audit_seq);
  std::printf("audit pinned at commit seq %llu (gc watermark %llu)\n",
              static_cast<unsigned long long>(audit_seq),
              static_cast<unsigned long long>(store.gc_watermark()));

  // The audit query: everything modified in the update window.
  metadata::RangeQuery audit;
  audit.dims = AttrSubset({Attr::kModificationTime});
  audit.lo = {dur * 0.98};
  audit.hi = {dur * 1.01};
  const auto res = store.snapshot_range_query(audit, audit_seq);

  std::set<metadata::FileId> reported(res.ids.begin(), res.ids.end());
  std::size_t true_pos = 0;
  for (auto id : changed)
    if (reported.count(id)) ++true_pos;
  std::printf("audit snapshot scan (mtime in update window):\n");
  std::printf("  reported %zu files, caught %zu/%zu changed ones\n",
              res.ids.size(), true_pos, changed.size());

  // Ingest does not stop for the audit: 64 fresh files land inside the
  // update window AFTER the pin...
  metadata::FileId next_id = 0;
  for (const auto& f : files) next_id = std::max(next_id, f.id);
  for (int i = 0; i < 64; ++i) {
    metadata::FileMetadata f = files[rng.uniform_u64(files.size())];
    f.id = ++next_id;
    f.name = "/updates/pkg" + std::to_string(i) + ".so";
    f.set_attr(Attr::kModificationTime, dur * 0.99);
    store.insert_file(f, 0.0);
  }

  // ...yet the pinned scan replays bit-identically, while the same query
  // at the latest seq sees the new arrivals.
  const auto replay = store.snapshot_range_query(audit, audit_seq);
  const auto latest = store.snapshot_range_query(audit, store.last_commit_seq());
  std::printf("  re-scan at pinned seq after 64 concurrent inserts: %s\n",
              replay.ids == res.ids ? "identical" : "DIVERGED");
  std::printf("  same scan at latest seq %llu: %zu files (sees the ingest)\n",
              static_cast<unsigned long long>(store.last_commit_seq()),
              latest.ids.size());

  // Narrowing, still at the pinned cut: add the write-volume dimension to
  // isolate heavy rewrites.
  metadata::RangeQuery narrow = audit;
  narrow.dims = AttrSubset({Attr::kModificationTime, Attr::kWriteBytes});
  narrow.lo = {dur * 0.98, 4e6};
  narrow.hi = {dur * 1.01, 1e12};
  const auto res2 = store.snapshot_range_query(narrow, audit_seq);
  std::printf("  narrowed by write volume >= 4MB: %zu files\n\n",
              res2.ids.size());

  // Forensics on one hit: find its closest behavioral siblings (files the
  // same process likely touched) with a top-k probe at the same seq.
  if (!res2.ids.empty()) {
    const metadata::FileMetadata* suspect = nullptr;
    for (const auto& u : store.units())
      if ((suspect = u.find_by_id(res2.ids.front())) != nullptr) break;
    metadata::TopKQuery probe;
    probe.dims = AttrSubset({Attr::kModificationTime, Attr::kWriteBytes,
                             Attr::kOwnerId});
    probe.point = {suspect->attr(Attr::kModificationTime),
                   suspect->attr(Attr::kWriteBytes),
                   suspect->attr(Attr::kOwnerId)};
    probe.k = 6;
    const auto nn = store.snapshot_topk_query(probe, audit_seq);
    std::printf("top-6 behavioral siblings of suspect file %llu:\n",
                static_cast<unsigned long long>(suspect->id));
    for (const auto& [dist, id] : nn.hits)
      std::printf("  file %-8llu dist^2=%.4f %s\n",
                  static_cast<unsigned long long>(id), dist,
                  changed.count(id) ? "(also changed by the update)" : "");
  }
  return 0;
}
