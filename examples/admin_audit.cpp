// Administrator audit — the introduction's motivating scenario: "after
// installing or updating software, a system administrator may hope to
// track and find the changed files, which exist in both system and user
// directories, to ward off malicious operations."
//
// A software update is simulated as a burst of newly modified files spread
// across owners; the administrator then issues one multi-dimensional range
// query (modification window x write volume) instead of crawling the
// namespace, and cross-checks a suspicious file with a top-k probe.
#include <algorithm>
#include <cstdio>
#include <set>

#include "core/ground_truth.h"
#include "core/smartstore.h"
#include "trace/synth.h"
#include "util/rng.h"

using namespace smartstore;
using core::Routing;
using metadata::Attr;
using metadata::AttrSubset;

int main() {
  auto trace = trace::SyntheticTrace::generate(trace::eecs_profile(), 1, 7, 5);
  auto files = trace.files();
  const double dur = trace.profile().gen.duration_sec;

  // The "update": 120 files across the system get modified in a narrow
  // window near the end of the trace with characteristic write bursts.
  util::Rng rng(99);
  std::set<metadata::FileId> changed;
  for (int i = 0; i < 120; ++i) {
    auto& f = files[rng.uniform_u64(files.size())];
    f.set_attr(Attr::kModificationTime, dur * 0.98 + rng.uniform(0, dur * 0.02));
    f.set_attr(Attr::kWriteBytes,
               f.attr(Attr::kWriteBytes) + rng.uniform(4e6, 12e6));
    f.set_attr(Attr::kWriteCount, f.attr(Attr::kWriteCount) + 3);
    changed.insert(f.id);
  }
  std::printf("simulated update touched %zu files out of %zu\n\n",
              changed.size(), files.size());

  core::Config cfg;
  cfg.num_units = 24;
  cfg.fanout = 6;
  core::SmartStore store(cfg);
  store.build(files);

  // The audit query: everything modified in the update window.
  metadata::RangeQuery audit;
  audit.dims = AttrSubset({Attr::kModificationTime});
  audit.lo = {dur * 0.98};
  audit.hi = {dur * 1.01};
  const auto res = store.range_query(audit, Routing::kOnline, 0.0);

  std::set<metadata::FileId> reported(res.ids.begin(), res.ids.end());
  std::size_t true_pos = 0;
  for (auto id : changed)
    if (reported.count(id)) ++true_pos;
  std::printf("audit range query (mtime in update window):\n");
  std::printf("  reported %zu files, caught %zu/%zu changed ones "
              "[%.2f ms simulated, %llu msgs, %zu groups]\n",
              res.ids.size(), true_pos, changed.size(),
              res.stats.latency_s * 1e3,
              static_cast<unsigned long long>(res.stats.messages),
              res.stats.groups_visited);

  // Narrowing: add the write-volume dimension to isolate heavy rewrites.
  metadata::RangeQuery narrow = audit;
  narrow.dims = AttrSubset({Attr::kModificationTime, Attr::kWriteBytes});
  narrow.lo = {dur * 0.98, 4e6};
  narrow.hi = {dur * 1.01, 1e12};
  const auto res2 = store.range_query(narrow, Routing::kOnline, 0.0);
  std::printf("  narrowed by write volume >= 4MB: %zu files\n\n",
              res2.ids.size());

  // Forensics on one hit: find its closest behavioral siblings (files the
  // same process likely touched) with a top-k probe.
  if (!res2.ids.empty()) {
    const metadata::FileMetadata* suspect = nullptr;
    for (const auto& u : store.units())
      if ((suspect = u.find_by_id(res2.ids.front())) != nullptr) break;
    metadata::TopKQuery probe;
    probe.dims = AttrSubset({Attr::kModificationTime, Attr::kWriteBytes,
                             Attr::kOwnerId});
    probe.point = {suspect->attr(Attr::kModificationTime),
                   suspect->attr(Attr::kWriteBytes),
                   suspect->attr(Attr::kOwnerId)};
    probe.k = 6;
    const auto nn = store.topk_query(probe, Routing::kOffline, 0.0);
    std::printf("top-6 behavioral siblings of suspect file %llu:\n",
                static_cast<unsigned long long>(suspect->id));
    for (const auto& [dist, id] : nn.hits)
      std::printf("  file %-8llu dist^2=%.4f %s\n",
                  static_cast<unsigned long long>(id), dist,
                  changed.count(id) ? "(also changed by the update)" : "");
  }
  return 0;
}
