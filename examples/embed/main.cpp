// Embedding SmartStore out-of-tree: open a deployment, insert metadata,
// query it, checkpoint, reopen. Built against an installed prefix via
// find_package(smartstore) — see CMakeLists.txt next to this file.
#include <smartstore/smartstore.h>

#include <cstdio>
#include <filesystem>

using namespace smartstore;

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_embed").string();
  std::filesystem::remove_all(dir);

  db::Options options;
  options.num_units = 8;
  options.checkpoint_every = 500;  // background checkpoint cadence

  auto opened = db::Store::Open(options, dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  auto store = std::move(opened).value();

  db::WriteBatch batch;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    metadata::FileMetadata f;
    f.id = id;
    f.name = "file_" + std::to_string(id) + ".dat";
    for (std::size_t a = 0; a < metadata::kNumAttrs; ++a)
      f.attrs[a] = static_cast<double>((id * 31 + a * 7) % 997);
    batch.Put(std::move(f));
  }
  if (db::Status s = store->Write(std::move(batch)); !s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }

  db::QueryRequest query = db::QueryRequest::Point("file_42.dat");
  query.routing = db::Routing::kOnline;  // exact routing for the demo
  auto result = store->Query(query);
  if (!result.ok() || !result->found) {
    std::fprintf(stderr, "query failed or file missing\n");
    return 1;
  }
  std::printf("found file_42.dat on unit %llu (%.3f ms simulated)\n",
              static_cast<unsigned long long>(result->unit),
              result->stats.latency_s * 1e3);

  if (db::Status s = store->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", s.ToString().c_str());
    return 1;
  }
  store->Close();

  // Reopen: snapshot load + WAL replay, no rebuild.
  auto reopened = db::Store::Open(options, dir);
  if (!reopened.ok()) {
    std::fprintf(stderr, "reopen: %s\n", reopened.status().ToString().c_str());
    return 1;
  }
  std::string files;
  (*reopened)->GetProperty("smartstore.total-files", &files);
  std::printf("reopened with %s files (recovered=%d)\n", files.c_str(),
              (*reopened)->recovery_info().recovered);
  std::filesystem::remove_all(dir);
  return files == "1000" ? 0 : 1;
}
