// Semantic-aware caching as a SERVICE-TIER CLIENT (Sections 1.1 and 5.3):
// the prefetcher no longer touches the store in-process — it talks to a
// sharded metadata cluster through svc::Router, exactly like a remote
// file-system client would.
//
// On a cache miss the client issues a routed top-k query for the missed
// file's most correlated neighbors (the query scatters to every shard and
// merges, since correlated files may live anywhere) and prefetches the
// returned ids. Replays a synthetic I/O trace against plain LRU and the
// routed semantic prefetcher at several capacities and prints the
// hit-rate series plus the routing cost the prefetches paid.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "cache/lru.h"
#include "metadata/query.h"
#include "rpc/wire.h"
#include "svc/cluster.h"
#include "svc/router.h"
#include "trace/synth.h"

using namespace smartstore;

namespace {

/// Dies on any service-tier error: an example has no recovery story.
void check(const db::Status& s, const char* what) {
  if (s.ok()) return;
  std::fprintf(stderr, "semantic_prefetch: %s failed: %s\n", what,
               s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  const auto trace = trace::SyntheticTrace::generate(
      trace::msn_profile(), /*tif=*/1, /*seed=*/31, /*downscale=*/5);

  // A 4-shard in-process cluster: real Router -> wire format -> transport
  // -> MetaService -> db::Store stack, one address space.
  svc::ClusterOptions copt;
  copt.num_shards = 4;
  copt.in_memory = true;
  copt.store_options.num_units = 5;
  copt.store_options.fanout = 5;
  copt.store_options.seed = 31;
  // Online routing: a prefetch that silently misses existing neighbors
  // would understate the semantic cache, so the shards answer exactly.
  copt.store_options.routing = db::Routing::kOnline;
  auto started = svc::Cluster::Start(copt);
  check(started.status(), "cluster start");
  std::unique_ptr<svc::Cluster> cluster = std::move(started).value();

  svc::RouterOptions ropt;
  ropt.client_id = 1;
  svc::Router router(cluster->ConnectAll(), cluster->map(), ropt);

  // Load the population through routed batch writes — the router splits
  // each batch by owning shard.
  std::vector<rpc::BatchOp> batch;
  for (const auto& f : trace.files()) {
    rpc::BatchOp op;
    op.is_put = true;
    op.file = f;
    batch.push_back(std::move(op));
    if (batch.size() == 256) {
      check(router.Write(batch), "batch write");
      batch.clear();
    }
  }
  if (!batch.empty()) check(router.Write(batch), "batch write");

  std::unordered_map<metadata::FileId, const metadata::FileMetadata*> by_id;
  for (const auto& f : trace.files()) by_id[f.id] = &f;

  const std::size_t n_ops = std::min<std::size_t>(trace.ops().size(), 8000);
  std::printf(
      "replaying %zu trace ops over %zu files on a %u-shard cluster\n\n",
      n_ops, trace.files().size(), cluster->num_shards());
  std::printf("%10s %12s %18s %12s\n", "capacity", "LRU hit%",
              "routed sem hit%", "prefetches");

  const auto dims = metadata::AttrSubset::all();
  std::size_t prefetch_queries = 0;
  for (const double frac : {0.01, 0.02, 0.05, 0.10}) {
    const std::size_t capacity = std::max<std::size_t>(
        8, static_cast<std::size_t>(frac *
                                    static_cast<double>(trace.files().size())));
    cache::LruCache lru(capacity);
    cache::LruCache sem(capacity);
    std::size_t prefetches = 0;
    for (std::size_t i = 0; i < n_ops; ++i) {
      const auto& op = trace.ops()[i];
      lru.access(op.file);
      if (!sem.access(op.file)) {
        // Miss: ask the CLUSTER for the k most correlated files and pull
        // them in before the application touches them.
        const metadata::FileMetadata& f = *by_id.at(op.file);
        metadata::TopKQuery q;
        q.dims = dims;
        q.point.assign(f.attrs.begin(), f.attrs.end());
        q.k = 8;
        auto r = router.TopK(q);
        check(r.status(), "routed top-k");
        ++prefetch_queries;
        for (const metadata::FileId id : r->ids) {
          if (id != op.file && sem.prefetch(id)) ++prefetches;
        }
      }
    }
    std::printf("%9.0f%% %11.1f%% %17.1f%% %12zu\n", frac * 100,
                100.0 * lru.stats().hit_rate(),
                100.0 * sem.stats().hit_rate(), prefetches);
  }

  const svc::RouterStats rs = router.stats();
  std::printf(
      "\nrouting  : %llu frames sent for %zu prefetch top-k scatters "
      "(%llu redirects, %llu retries)\n",
      static_cast<unsigned long long>(rs.sends), prefetch_queries,
      static_cast<unsigned long long>(rs.redirects),
      static_cast<unsigned long long>(rs.retries));
  std::printf(
      "semantic prefetching exploits burst locality inside application\n"
      "clusters; the top-k probes now cross the service tier, so their\n"
      "cost is real routed messages instead of simulated hops.\n");

  check(cluster->Stop(), "cluster stop");
  return 0;
}
