// Semantic-aware caching (Sections 1.1 and 5.3): on a miss, a top-k query
// fetches the missed file's most correlated neighbors into the cache.
// Replays a synthetic I/O trace against plain LRU and the semantic
// prefetching cache at several capacities and prints the hit-rate series.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "cache/lru.h"
#include "cache/semantic_cache.h"
#include "core/smartstore.h"
#include "trace/synth.h"

using namespace smartstore;

int main() {
  const auto trace = trace::SyntheticTrace::generate(
      trace::msn_profile(), /*tif=*/1, /*seed=*/31, /*downscale=*/5);
  core::Config cfg;
  cfg.num_units = 20;
  cfg.fanout = 5;
  core::SmartStore store(cfg);
  store.build(trace.files());

  std::unordered_map<metadata::FileId, const metadata::FileMetadata*> by_id;
  for (const auto& f : trace.files()) by_id[f.id] = &f;

  const std::size_t n_ops = std::min<std::size_t>(trace.ops().size(), 8000);
  std::printf("replaying %zu trace ops over %zu files\n\n", n_ops,
              trace.files().size());
  std::printf("%10s %12s %18s %12s\n", "capacity", "LRU hit%",
              "semantic hit%", "prefetches");

  for (const double frac : {0.01, 0.02, 0.05, 0.10}) {
    const std::size_t capacity = std::max<std::size_t>(
        8, static_cast<std::size_t>(frac *
                                    static_cast<double>(trace.files().size())));
    cache::LruCache lru(capacity);
    cache::SemanticPrefetchCache sem(store, capacity, /*k=*/8);
    for (std::size_t i = 0; i < n_ops; ++i) {
      const auto& op = trace.ops()[i];
      lru.access(op.file);
      sem.access(*by_id.at(op.file), op.time);
    }
    std::printf("%9.0f%% %11.1f%% %17.1f%% %12zu\n", frac * 100,
                100.0 * lru.stats().hit_rate(),
                100.0 * sem.stats().hit_rate(), sem.stats().prefetches);
  }

  std::printf("\nsemantic prefetching exploits burst locality inside "
              "application clusters;\nits top-k probes cost simulated time "
              "but raise hit rates at every capacity.\n");
  return 0;
}
