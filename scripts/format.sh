#!/usr/bin/env bash
# clang-format over first-party sources (.clang-format at the root).
#
# The gate is INCREMENTAL by policy: only files touched relative to a base
# ref must be clean, so adopting the formatter never forces a whole-tree
# reformat commit that buries real history. Pass --all to sweep everything.
#
# Usage: scripts/format.sh [--check] [--all]
#          --check  exit nonzero if anything would change (CI mode)
#          --all    whole tree instead of the diff vs FORMAT_BASE
# Env:   CLANG_FORMAT  binary (default: clang-format-18, else clang-format)
#        FORMAT_BASE   base ref for the diff (default: origin/main, else
#                      HEAD~1)
set -euo pipefail

cd "$(dirname "$0")/.."

FMT_BIN="${CLANG_FORMAT:-}"
if [[ -z "$FMT_BIN" ]]; then
  for cand in clang-format-18 clang-format; do
    if command -v "$cand" >/dev/null 2>&1; then FMT_BIN="$cand"; break; fi
  done
fi
if [[ -z "$FMT_BIN" ]]; then
  echo "format.sh: clang-format not found; install clang-format-18 or set" >&2
  echo "           CLANG_FORMAT=..." >&2
  exit 2
fi

check=0
all=0
for arg in "$@"; do
  case "$arg" in
    --check) check=1 ;;
    --all) all=1 ;;
    *) echo "format.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

is_source() { [[ "$1" == *.h || "$1" == *.cpp ]]; }

files=()
if [[ "$all" == 1 ]]; then
  while IFS= read -r f; do
    is_source "$f" && files+=("$f")
  done < <(git ls-files src include tests bench examples)
else
  base="${FORMAT_BASE:-}"
  if [[ -z "$base" ]]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
      base=origin/main
    else
      base=HEAD~1
    fi
  fi
  while IFS= read -r f; do
    is_source "$f" && [[ -f "$f" ]] && files+=("$f")
  done < <(git diff --name-only --diff-filter=d "$base" -- \
           src include tests bench examples)
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "format.sh: no source files in scope — clean"
  exit 0
fi

if [[ "$check" == 1 ]]; then
  "$FMT_BIN" --dry-run -Werror "${files[@]}"
  echo "format.sh: clean (${#files[@]} files)"
else
  "$FMT_BIN" -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
