#!/usr/bin/env bash
# Static lock-discipline + clang-tidy gate over src/ (the `lint` CI job).
#
# Builds the library surface with clang under -Wthread-safety
# -Werror=thread-safety (wired into smartstore_options for Clang) and runs
# clang-tidy on every TU via CMAKE_CXX_CLANG_TIDY; .clang-tidy promotes all
# findings to errors, so a clean exit means a clean tree.
#
# Usage: scripts/lint.sh
# Env:   CLANG_CXX   C++ compiler   (default: clang++-18, else clang++)
#        CLANG_TIDY  clang-tidy bin (default: clang-tidy-18, else clang-tidy)
set -euo pipefail

cd "$(dirname "$0")/.."

# The gate is meaningless under GCC (the TSA macros compile to nothing) and
# clang-tidy behavior shifts across majors, so pin one and check it.
PINNED_MAJOR=18

pick() {  # pick <preferred> <fallback>
  if command -v "$1" >/dev/null 2>&1; then echo "$1"
  elif command -v "$2" >/dev/null 2>&1; then echo "$2"
  else echo ""; fi
}

CXX_BIN="${CLANG_CXX:-$(pick clang++-${PINNED_MAJOR} clang++)}"
TIDY_BIN="${CLANG_TIDY:-$(pick clang-tidy-${PINNED_MAJOR} clang-tidy)}"

if [[ -z "$CXX_BIN" || -z "$TIDY_BIN" ]]; then
  echo "lint.sh: needs clang++ and clang-tidy (major ${PINNED_MAJOR});" >&2
  echo "         install clang-${PINNED_MAJOR} clang-tidy-${PINNED_MAJOR}," >&2
  echo "         or point CLANG_CXX / CLANG_TIDY at your binaries." >&2
  exit 2
fi

tidy_major="$($TIDY_BIN --version | sed -n 's/.*version \([0-9]*\).*/\1/p' | head -1)"
if [[ "$tidy_major" != "$PINNED_MAJOR" ]]; then
  echo "lint.sh: clang-tidy major $tidy_major found, ${PINNED_MAJOR} pinned" >&2
  echo "         (override deliberately with CLANG_TIDY=... if you must)." >&2
  exit 2
fi

cmake --preset lint \
  -DCMAKE_CXX_COMPILER="$CXX_BIN" \
  -DCMAKE_CXX_CLANG_TIDY="$TIDY_BIN"
cmake --build --preset lint -j "$(nproc)"
echo "lint.sh: clean (TSA + clang-tidy, clang major ${PINNED_MAJOR})"
