#!/usr/bin/env sh
# Runs the Google-Benchmark micro suite and emits a machine-readable
# BENCH_core.json, so the performance trajectory across PRs has data points.
#
#   scripts/bench_report.sh [build-dir] [output-json]
#
# bench_micro_core is only built when find_package(benchmark) succeeds; on a
# machine without the library this script says so and exits 0 (the report is
# optional, not a gate).
set -eu

BUILD_DIR=${1:-build}
OUT=${2:-BENCH_core.json}
BIN="$BUILD_DIR/bench/bench_micro_core"

if [ ! -d "$BUILD_DIR" ]; then
    echo "bench_report: build dir '$BUILD_DIR' not found — configure first:" >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

if [ ! -x "$BIN" ]; then
    echo "bench_report: $BIN not built (Google Benchmark not found at configure time); skipping"
    exit 0
fi

"$BIN" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_repetitions="${BENCH_REPETITIONS:-1}"

echo "bench_report: wrote $OUT"
