#!/usr/bin/env sh
# Emits the machine-readable performance reports, so the trajectory across
# PRs has data points:
#
#   BENCH_core.json     Google-Benchmark micro suite (bench_micro_core);
#                       optional — skipped when the library was absent at
#                       configure time.
#   BENCH_persist.json  multi-writer ingest throughput by thread count
#                       (with and without the sharded WAL) and recovery
#                       time from sharded logs (bench_concurrent, driven
#                       through the db::Store facade).
#   BENCH_db.json       the facade boundary's overhead vs raw core calls
#                       (put / batch / durable paths) and facade-level
#                       open / bulkload / checkpoint / reopen /
#                       crash-reopen timings (bench_db_api).
#   BENCH_cluster.json  routed throughput / tail latency / redirect rate
#                       of the service tier at 1/2/4/8 shards
#                       (bench_cluster, concurrent routed clients over
#                       the in-process transport).
#   BENCH_scale.json    incremental-checkpoint scale tier (bench_scale):
#                       delta vs full-image checkpoint bytes at 1% churn,
#                       recovery time, ingest-during-fold degradation.
#   BENCH_trajectory.json
#                       all of the above merged into one document keyed
#                       by suite, stamped with the git commit — the
#                       single artifact to diff across PRs.
#
#   scripts/bench_report.sh [build-dir] [core-json] [persist-json] [db-json]
#                           [cluster-json] [scale-json] [trajectory-json]
#
# Honoured environment: BENCH_REPETITIONS (micro suite), BENCH_SMOKE=1
# (tiny bench_concurrent/bench_scale sizes for CI smoke runs),
# BENCH_INSERTS, BENCH_GROUP_COMMIT, BENCH_SCALE_FILES (scale-tier size;
# the nightly CI job sets 1000000).
set -eu

BUILD_DIR=${1:-build}
CORE_OUT=${2:-BENCH_core.json}
PERSIST_OUT=${3:-BENCH_persist.json}
DB_OUT=${4:-BENCH_db.json}
CLUSTER_OUT=${5:-BENCH_cluster.json}
SCALE_OUT=${6:-BENCH_scale.json}
TRAJECTORY_OUT=${7:-BENCH_trajectory.json}

if [ ! -d "$BUILD_DIR" ]; then
    echo "bench_report: build dir '$BUILD_DIR' not found — configure first:" >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

MICRO="$BUILD_DIR/bench/bench_micro_core"
if [ -x "$MICRO" ]; then
    "$MICRO" \
        --benchmark_out="$CORE_OUT" \
        --benchmark_out_format=json \
        --benchmark_repetitions="${BENCH_REPETITIONS:-1}"
    echo "bench_report: wrote $CORE_OUT"
else
    echo "bench_report: $MICRO not built (Google Benchmark not found at configure time); skipping"
fi

CONCURRENT="$BUILD_DIR/bench/bench_concurrent"
if [ -x "$CONCURRENT" ]; then
    "$CONCURRENT" --json "$PERSIST_OUT"
    echo "bench_report: wrote $PERSIST_OUT"
else
    echo "bench_report: $CONCURRENT not built; skipping $PERSIST_OUT" >&2
    exit 1
fi

DB_API="$BUILD_DIR/bench/bench_db_api"
if [ -x "$DB_API" ]; then
    "$DB_API" --json "$DB_OUT"
    echo "bench_report: wrote $DB_OUT"
else
    echo "bench_report: $DB_API not built; skipping $DB_OUT" >&2
    exit 1
fi

CLUSTER="$BUILD_DIR/bench/bench_cluster"
if [ -x "$CLUSTER" ]; then
    "$CLUSTER" --json "$CLUSTER_OUT"
    echo "bench_report: wrote $CLUSTER_OUT"
else
    echo "bench_report: $CLUSTER not built; skipping $CLUSTER_OUT" >&2
    exit 1
fi

SCALE="$BUILD_DIR/bench/bench_scale"
if [ -x "$SCALE" ]; then
    "$SCALE" --json "$SCALE_OUT"
    echo "bench_report: wrote $SCALE_OUT"
else
    echo "bench_report: $SCALE not built; skipping $SCALE_OUT" >&2
    exit 1
fi

# Merge everything that was produced into one trajectory document. Each
# per-suite file is a complete JSON value, so plain concatenation under a
# key map yields valid JSON with no parser dependency.
{
    printf '{\n'
    printf '  "generated_by": "scripts/bench_report.sh",\n'
    printf '  "git_commit": "%s",\n' \
        "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    printf '  "smoke": %s,\n' "${BENCH_SMOKE:-0}"
    printf '  "suites": {\n'
    first=1
    for entry in "core:$CORE_OUT" "persist:$PERSIST_OUT" "db:$DB_OUT" \
                 "cluster:$CLUSTER_OUT" "scale:$SCALE_OUT"; do
        key=${entry%%:*}
        file=${entry#*:}
        [ -f "$file" ] || continue
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '    "%s": ' "$key"
        cat "$file"
    done
    printf '\n  }\n}\n'
} > "$TRAJECTORY_OUT"
echo "bench_report: wrote $TRAJECTORY_OUT"
