#!/usr/bin/env bash
# Tier-1 verify, exactly as ROADMAP.md specifies:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# Usage: scripts/verify.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
