// Ablation A1: what does semantic organization buy?
//
// Compares three placements over the same population and query workload:
//   * semantic  — balanced k-means in LSI space + LSI-grouped tree (paper),
//   * random    — files scattered randomly across units (control),
// and reports complex-query recall, 0-hop rate and per-query messages.
// Section 3.1.1 argues LSI over K-means for the grouping tool; the
// semantic placement here *is* the K-means step, the LSI tree the grouping
// step — removing both (random) shows the full contribution.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

namespace {

void run(const char* label, core::PlacementPolicy placement,
         const trace::SyntheticTrace& tr) {
  auto cfg = default_config(60);
  cfg.placement = placement;
  core::SmartStore store(cfg);
  store.build(tr.files());

  const auto dims = complex_query_dims();
  trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 83);
  double topk_recall = 0, range_recall = 0, msgs = 0;
  int zero_hops = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto tq = gen.gen_topk(dims, 8);
    std::vector<metadata::FileId> truth;
    for (const auto& [d, id] :
         core::brute_force_topk(tr.files(), store.standardizer(), tq))
      truth.push_back(id);
    const auto tres = store.topk_query(tq, Routing::kOffline, 0.0);
    topk_recall += core::recall(truth, tres.ids());
    msgs += static_cast<double>(tres.stats.messages);
    if (tres.stats.routing_hops == 0) ++zero_hops;

    const auto rq = gen.gen_range(dims, 0.05);
    range_recall += core::recall(
        core::brute_force_range(tr.files(), rq),
        store.range_query(rq, Routing::kOffline, 0.0).ids);
  }
  std::printf("%-10s %12s %12s %10s %12.1f %10zu\n", label,
              pct(topk_recall / n).c_str(), pct(range_recall / n).c_str(),
              pct(static_cast<double>(zero_hops) / n).c_str(), msgs / n,
              store.tree().groups().size());
}

}  // namespace

int main() {
  std::printf("=== Ablation: semantic vs random organization ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 53, 8);
  std::printf("%-10s %12s %12s %10s %12s %10s\n", "placement", "top8 rec%",
              "range rec%", "0-hop%", "msgs/query", "groups");
  run("semantic", core::PlacementPolicy::kSemantic, tr);
  run("random", core::PlacementPolicy::kRandom, tr);
  std::printf("\nRandom placement destroys the correlation the semantic "
              "R-tree exploits:\nqueries spread across groups, recall under "
              "a bounded search scope drops,\nand message counts rise.\n");
  return 0;
}
