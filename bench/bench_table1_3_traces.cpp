// Tables 1-3: scaled-up HP / MSN / EECS trace statistics.
//
// The paper intensifies each trace by replaying TIF sub-trace copies
// concurrently (Section 5.1); every headline count scales linearly with
// TIF. This harness reprints the tables at original and intensified scale
// and validates the synthetic stand-in traces: a generated TIF=k trace
// must carry k times the files/ops of the TIF=1 trace with the same
// read/write mix.
#include "bench_common.h"

using namespace smartstore;

namespace {

void print_table(const trace::TraceProfile& p) {
  std::printf("Table (%s): original vs TIF=%d\n", p.name.c_str(), p.paper_tif);
  std::printf("  %-28s %12s %14s\n", "statistic", "Original",
              ("TIF=" + std::to_string(p.paper_tif)).c_str());
  for (const auto& h : p.headline) {
    std::printf("  %-28s %12.4g %14.4g\n", h.label.c_str(), h.original,
                h.original * p.paper_tif);
  }
}

void validate_generator(const trace::TraceProfile& p) {
  const unsigned kSmallTif = 4;
  const unsigned kDown = 50;
  const auto base = trace::SyntheticTrace::generate(p, 1, 7, kDown);
  const auto scaled = trace::SyntheticTrace::generate(p, kSmallTif, 7, kDown);
  const auto bs = base.stats();
  const auto ss = scaled.stats();
  std::printf(
      "  generator check (TIF=%u vs 1, downscale %u): files x%.2f, "
      "ops x%.2f, read%% %.1f -> %.1f\n\n",
      kSmallTif, kDown,
      static_cast<double>(ss.files) / static_cast<double>(bs.files),
      static_cast<double>(ss.reads + ss.writes) /
          static_cast<double>(bs.reads + bs.writes),
      100.0 * static_cast<double>(bs.reads) /
          static_cast<double>(bs.reads + bs.writes),
      100.0 * static_cast<double>(ss.reads) /
          static_cast<double>(ss.reads + ss.writes));
}

}  // namespace

int main() {
  std::printf("=== Tables 1-3: trace scale-up (Section 5.1) ===\n\n");
  for (const auto kind :
       {trace::TraceKind::kHP, trace::TraceKind::kMSN, trace::TraceKind::kEECS}) {
    const auto p = trace::profile_for(kind);
    print_table(p);
    validate_generator(p);
  }
  std::printf("Scaled = original x TIF: sub-trace cloning with unique\n"
              "sub-trace IDs multiplies every count linearly while keeping\n"
              "the per-sub-trace operation histogram (Section 5.1).\n");
  return 0;
}
