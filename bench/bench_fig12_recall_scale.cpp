// Figure 12: recall as a function of system scale (number of storage
// units), for Gauss- and Zipf-distributed query workloads of mixed
// range + top-k queries (the paper runs 1000 + 1000; we run 150 + 150 per
// point for laptop runtimes).
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

namespace {

double run_mix(core::SmartStore& store,
               const std::vector<metadata::FileMetadata>& files,
               trace::QueryGenerator& gen, const metadata::AttrSubset& dims) {
  double recall_sum = 0;
  const int n = 150;
  for (int i = 0; i < n; ++i) {
    const auto rq = gen.gen_range(dims, 0.05);
    recall_sum += core::recall(
        core::brute_force_range(files, rq),
        store.range_query(rq, Routing::kOffline, 0.0).ids);
    const auto tq = gen.gen_topk(dims, 8);
    std::vector<metadata::FileId> truth;
    for (const auto& [d, id] :
         core::brute_force_topk(files, store.standardizer(), tq))
      truth.push_back(id);
    recall_sum += core::recall(
        truth, store.topk_query(tq, Routing::kOffline, 0.0).ids());
  }
  return recall_sum / (2.0 * n);
}

}  // namespace

int main() {
  std::printf("=== Figure 12: recall vs system scale ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 31, 8);
  const auto dims = complex_query_dims();

  std::printf("%10s %14s %14s\n", "units", "Gauss recall%", "Zipf recall%");
  for (const std::size_t units : {20u, 40u, 60u, 80u, 100u}) {
    core::SmartStore store(default_config(units));
    store.build(tr.files());
    trace::QueryGenerator gg(tr, trace::QueryDistribution::kGauss, 61);
    trace::QueryGenerator gz(tr, trace::QueryDistribution::kZipf, 62);
    std::printf("%10zu %14s %14s\n", units,
                pct(run_mix(store, tr.files(), gg, dims)).c_str(),
                pct(run_mix(store, tr.files(), gz, dims)).c_str());
  }

  std::printf("\nPaper: recall stays high as the number of storage units "
              "grows\n(scalability of the semantic grouping).\n");
  return 0;
}
