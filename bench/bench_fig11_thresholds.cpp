// Figure 11: optimal admission thresholds.
//
// (a) the optimal level-1 threshold as a function of the number of storage
//     units (the system scale), and
// (b) the per-level thresholds for a 60-unit deployment.
// Thresholds are selected by minimizing the semantic-correlation objective
// via the variance-ratio criterion over the LSI similarity quantiles
// (Sections 1.1 and 5.5).
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;

int main() {
  std::printf("=== Figure 11: optimal thresholds ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 29, 8);

  std::printf("(a) optimal epsilon_1 vs system scale\n");
  std::printf("%10s %12s %14s\n", "units", "epsilon_1", "groups");
  for (const std::size_t units : {20u, 40u, 60u, 80u, 100u}) {
    core::SmartStore store(default_config(units));
    store.build(tr.files());
    std::printf("%10zu %12.4f %14zu\n", units,
                store.tree().level_epsilons().front(),
                store.tree().groups().size());
  }

  std::printf("\n(b) per-level thresholds, 60 units\n");
  core::SmartStore store(default_config(60));
  store.build(tr.files());
  std::printf("%10s %12s\n", "level", "epsilon_i");
  const auto& eps = store.tree().level_epsilons();
  for (std::size_t lvl = 0; lvl < eps.size(); ++lvl)
    std::printf("%10zu %12.4f\n", lvl + 1, eps[lvl]);

  std::printf("\n(Levels whose node count already fits the fanout form the "
              "root directly;\n their threshold is reported as 0.)\n");
  return 0;
}
