// Table 4: query latency of DBMS vs non-semantic R-tree vs SmartStore on
// the MSN and EECS traces at TIF = 120 and 160.
//
// Reproduction methodology (see DESIGN.md): each system is built over the
// same synthetic population and serves the same intensified workload on the
// virtual-time cluster. The intensified metadata-op stream (rate scales
// with TIF) runs as background load, interleaved chronologically with the
// query batch: the DBMS serializes D+1 index updates per op on one server,
// the centralized R-tree one multi-dimensional update on one server, while
// SmartStore spreads single-group updates over 60 units. We report the
// mean completion latency per query class.
//
// Absolute seconds depend on the calibrated cost constants; the paper's
// *shape* is the target: DBMS >> R-tree >> SmartStore (the paper reports
// roughly three orders of magnitude DBMS -> SmartStore), all growing
// superlinearly in TIF as the centralized servers saturate.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

namespace {

// Per-op service of the background metadata stream on each system's
// update path: the DBMS maintains one B+-tree per attribute plus the name
// index; the centralized R-tree one multi-dimensional insert (MBR updates,
// amortized splits); SmartStore routes to one group and touches one unit.
constexpr double kDbmsOpService = 8.0e-4;
constexpr double kRtreeOpService = 4.0e-4;
constexpr double kSmartOpService = 1.5e-4;
constexpr double kWindow = 10.0;  // seconds of simulated time
constexpr double kBgRatePerTif = 25.0;  // background ops per second per TIF

void run_class(const char* label, int tif, baseline::DbmsStore& dbms,
               baseline::CentralRTreeStore& rtree, core::SmartStore& smart,
               trace::QueryGenerator& gen, const metadata::AttrSubset& dims,
               std::size_t n_queries, int what) {
  // Background stream arrivals, interleaved chronologically with queries
  // (the virtual-time cluster requires non-decreasing arrival order).
  const std::size_t bg_ops =
      static_cast<std::size_t>(kBgRatePerTif * tif * kWindow);
  std::size_t bg_next = 0;
  auto bg_arrival = [&](std::size_t i) {
    return kWindow * static_cast<double>(i) / static_cast<double>(bg_ops);
  };

  LatencySummary ld, lr, ls;
  for (std::size_t i = 0; i < n_queries; ++i) {
    const double at =
        kWindow * static_cast<double>(i) / static_cast<double>(n_queries);
    while (bg_next < bg_ops && bg_arrival(bg_next) <= at) {
      const double t = bg_arrival(bg_next);
      sim::Session d = dbms.cluster().start_session(0, t);
      d.visit(kDbmsOpService);
      sim::Session r = rtree.cluster().start_session(0, t);
      r.visit(kRtreeOpService);
      sim::Session s = smart.cluster().start_session(
          bg_next % smart.cluster().size(), t);
      s.visit(kSmartOpService);
      ++bg_next;
    }
    switch (what) {
      case 0: {
        const auto q = gen.gen_point(0.9);
        ld.add(dbms.point_query(q, at).stats);
        lr.add(rtree.point_query(q, at).stats);
        ls.add(smart.point_query(q, Routing::kOffline, at).stats);
        break;
      }
      case 1: {
        const auto q = gen.gen_range(dims, 0.05);
        ld.add(dbms.range_query(q, at).stats);
        lr.add(rtree.range_query(q, at).stats);
        ls.add(smart.range_query(q, Routing::kOffline, at).stats);
        break;
      }
      default: {
        const auto q = gen.gen_topk(dims, 6);
        ld.add(dbms.topk_query(q, at).stats);
        lr.add(rtree.topk_query(q, at).stats);
        ls.add(smart.topk_query(q, Routing::kOffline, at).stats);
        break;
      }
    }
  }
  ld.finish();
  lr.finish();
  ls.finish();
  std::printf("%-11s %4d %12.3f %12.3f %12.5f %10.0fx\n", label, tif,
              ld.mean_s, lr.mean_s, ls.mean_s, ld.mean_s / ls.mean_s);
}

void run_trace(trace::TraceKind kind) {
  const auto profile = trace::profile_for(kind);
  std::printf("\n--- %s trace ---\n", profile.name.c_str());
  std::printf("%-11s %4s %12s %12s %12s %10s\n", "query", "TIF", "DBMS(s)",
              "R-tree(s)", "SmartStore", "DBMS/Smart");

  for (const int tif : {120, 160}) {
    // Population scales with TIF (sub-trace cloning), compressed for
    // laptop runtimes: tif/40 sub-traces at downscale 10.
    const unsigned gen_tif = static_cast<unsigned>(tif / 40);
    const auto tr = trace::SyntheticTrace::generate(profile, gen_tif, 11, 10);

    const auto dims = complex_query_dims();
    const std::size_t q = static_cast<std::size_t>(tif);

    // Fresh stores per query class so each class queues only behind the
    // background stream, not behind the other classes.
    for (int what = 0; what < 3; ++what) {
      core::SmartStore smart(default_config(60));
      smart.build(tr.files());
      baseline::DbmsStore dbms(60);
      dbms.build(tr.files());
      baseline::CentralRTreeStore rtree(60);
      rtree.build(tr.files());
      trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf,
                                21 + what);
      static const char* kLabels[3] = {"Point", "Range", "Top-k"};
      run_class(kLabels[what], tif, dbms, rtree, smart, gen, dims, q, what);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Table 4: point/range/top-k latency, "
              "DBMS vs R-tree vs SmartStore ===\n");
  std::printf("(simulated cluster; absolute values are model-scaled, the "
              "ordering and growth\n with TIF are the reproduced shape)\n");
  run_trace(trace::TraceKind::kMSN);
  run_trace(trace::TraceKind::kEECS);
  return 0;
}
