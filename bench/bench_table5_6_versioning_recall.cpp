// Tables 5 and 6: recall of range and top-8 queries with and without
// versioning, on MSN (Table 5) and EECS (Table 6), under Uniform / Gauss /
// Zipf query distributions, as the query count grows.
//
// Methodology: queries interleave with an insert stream; without
// versioning the replicated group summaries age between lazy refreshes and
// mis-route queries, so recall decays with the number of (insert-bearing)
// queries; with versioning the sealed deltas keep routing fresh.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

namespace {

struct Cell {
  double range_plain, range_ver, topk_plain, topk_ver;
};

Cell run_block(const trace::SyntheticTrace& tr, trace::QueryDistribution dist,
               std::size_t n_queries, bool versioning) {
  auto cfg = default_config(60);
  cfg.versioning_enabled = versioning;
  // With versioning: the paper's 5% lazy threshold (Section 3.4). Without:
  // replica refresh is slow relative to churn (the regime Tables 5/6
  // exhibit — staleness accumulates over the run and recall declines).
  cfg.lazy_update_threshold = versioning ? 0.05 : 0.50;
  core::SmartStore store(cfg);
  store.build(tr.files());

  // One insert per two queries; queries biased toward the active regions
  // (the inserted files extend cluster frontiers).
  auto all_files = tr.files();
  const auto inserts =
      tr.make_insert_stream(n_queries / 2 + 8, 0xBEEF + n_queries);
  const auto dims = complex_query_dims();
  trace::QueryGenerator gen(tr, dist, 0xCAFE + n_queries);
  util::Rng pick(0xD00D);

  double range_recall = 0, topk_recall = 0;
  std::size_t range_n = 0, topk_n = 0, next_insert = 0;
  for (std::size_t i = 0; i < n_queries; ++i) {
    if (i % 2 == 1 && next_insert < inserts.size()) {
      store.insert_file(inserts[next_insert], static_cast<double>(i));
      all_files.push_back(inserts[next_insert]);
      ++next_insert;
    }
    // Half the queries probe near recently inserted files (the workload
    // that exposes staleness), half are general.
    const bool probe_recent = next_insert > 0 && pick.bernoulli(0.5);
    if (i % 2 == 0) {
      auto q = gen.gen_range(dims, 0.05);
      if (probe_recent) {
        const auto& nf = inserts[pick.uniform_u64(next_insert)];
        for (std::size_t d = 0; d < dims.size(); ++d) {
          const double c = nf.attr(dims[d]);
          const double half = 0.5 * (q.hi[d] - q.lo[d]);
          q.lo[d] = c - half;
          q.hi[d] = c + half;
        }
      }
      range_recall += core::recall(
          core::brute_force_range(all_files, q),
          store.range_query(q, Routing::kOffline, 0.0).ids);
      ++range_n;
    } else {
      auto q = gen.gen_topk(dims, 8);
      if (probe_recent) {
        const auto& nf = inserts[pick.uniform_u64(next_insert)];
        for (std::size_t d = 0; d < dims.size(); ++d)
          q.point[d] = nf.attr(dims[d]);
      }
      std::vector<metadata::FileId> truth;
      for (const auto& [dd, id] :
           core::brute_force_topk(all_files, store.standardizer(), q))
        truth.push_back(id);
      topk_recall += core::recall(
          truth, store.topk_query(q, Routing::kOffline, 0.0).ids());
      ++topk_n;
    }
  }
  Cell c{};
  c.range_plain = range_recall / std::max<std::size_t>(1, range_n);
  c.topk_plain = topk_recall / std::max<std::size_t>(1, topk_n);
  return c;
}

void run_table(trace::TraceKind kind, const char* title) {
  const auto profile = trace::profile_for(kind);
  const auto tr = trace::SyntheticTrace::generate(profile, 2, 47, 8);
  std::printf("%s (%s trace)\n", title, profile.name.c_str());
  std::printf("%-9s %-12s", "dist", "series");
  // The paper sweeps 1000..5000 queries; we sweep 200..1000 (same shape,
  // laptop runtime).
  const std::size_t counts[] = {200, 400, 600, 800, 1000};
  for (const auto n : counts) std::printf(" %7zu", n);
  std::printf("\n");

  for (const auto dist :
       {trace::QueryDistribution::kUniform, trace::QueryDistribution::kGauss,
        trace::QueryDistribution::kZipf}) {
    double rp[5], rv[5], tp[5], tv[5];
    for (int i = 0; i < 5; ++i) {
      const Cell plain = run_block(tr, dist, counts[i], false);
      const Cell ver = run_block(tr, dist, counts[i], true);
      rp[i] = plain.range_plain;
      rv[i] = ver.range_plain;
      tp[i] = plain.topk_plain;
      tv[i] = ver.topk_plain;
    }
    const char* dn = trace::distribution_name(dist);
    std::printf("%-9s %-12s", dn, "Range");
    for (int i = 0; i < 5; ++i) std::printf(" %7s", pct(rp[i]).c_str());
    std::printf("\n%-9s %-12s", "", "  Versioning");
    for (int i = 0; i < 5; ++i) std::printf(" %7s", pct(rv[i]).c_str());
    std::printf("\n%-9s %-12s", "", "K=8");
    for (int i = 0; i < 5; ++i) std::printf(" %7s", pct(tp[i]).c_str());
    std::printf("\n%-9s %-12s", "", "  Versioning");
    for (int i = 0; i < 5; ++i) std::printf(" %7s", pct(tv[i]).c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Tables 5-6: recall with and without versioning ===\n\n");
  run_table(trace::TraceKind::kMSN, "Table 5");
  run_table(trace::TraceKind::kEECS, "Table 6");
  std::printf("Paper shape: versioning lifts recall toward ~100%% (esp. "
              "Zipf/Gauss);\nwithout it recall decays as inserts "
              "accumulate between lazy refreshes.\n");
  return 0;
}
