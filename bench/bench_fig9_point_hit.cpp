// Figure 9: average hit rate for point queries.
//
// A point query is a "hit" when the Bloom-filter path resolves it
// correctly at the first routed group: existing files found immediately,
// absent files rejected without probing. Misses come from Bloom false
// positives (hash collisions) and replica staleness under a concurrent
// insert stream (Section 5.4.1). The paper reports > 88.2%.
#include "bench_common.h"

#include <set>

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Figure 9: point-query hit rate ===\n\n");
  std::printf("%-7s %10s %12s %12s\n", "trace", "queries", "hit rate%",
              "found%");

  for (const auto kind :
       {trace::TraceKind::kHP, trace::TraceKind::kMSN,
        trace::TraceKind::kEECS}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 19, 8);
    core::SmartStore store(default_config(60));
    store.build(tr.files());

    std::set<std::string> names;
    for (const auto& f : tr.files()) names.insert(f.name);

    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 37);
    const auto inserts = tr.make_insert_stream(400, 41);
    std::size_t next_insert = 0;

    std::size_t hits = 0, found = 0, exists_total = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      // Interleave inserts to exercise replica staleness.
      if (i % 5 == 4 && next_insert < inserts.size()) {
        const auto& nf = inserts[next_insert++];
        store.insert_file(nf, static_cast<double>(i));
        names.insert(nf.name);
      }
      const auto q = gen.gen_point(0.9);
      const bool exists = names.count(q.filename) > 0;
      const auto res = store.point_query(q, Routing::kOffline, 0.0);
      const bool correct = res.found == exists;
      if (correct && res.first_try) ++hits;
      if (exists) {
        ++exists_total;
        if (res.found) ++found;
      }
    }

    std::printf("%-7s %10d %12s %12s\n", profile.name.c_str(), n,
                pct(static_cast<double>(hits) / n).c_str(),
                pct(static_cast<double>(found) /
                    std::max<std::size_t>(1, exists_total))
                    .c_str());
  }

  std::printf("\nPaper: over 88.2%% of point queries served accurately by "
              "the Bloom filters.\n");
  return 0;
}
