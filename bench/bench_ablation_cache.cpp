// Ablation A5: semantic-aware caching (Sections 1.1, 5.3).
//
// Replays the trace op stream against plain LRU and the semantic
// prefetching cache (top-k prefetch on miss; optionally on hit) across
// cache capacities, reporting hit rates and prefetch costs.
#include "bench_common.h"

#include <unordered_map>

#include "cache/lru.h"
#include "cache/semantic_cache.h"

using namespace smartstore;
using namespace smartstore::bench;

int main() {
  std::printf("=== Ablation: semantic prefetching cache ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 1, 71, 4);
  core::SmartStore store(default_config(30));
  store.build(tr.files());

  std::unordered_map<metadata::FileId, const metadata::FileMetadata*> by_id;
  for (const auto& f : tr.files()) by_id[f.id] = &f;
  const std::size_t n_ops = std::min<std::size_t>(tr.ops().size(), 10000);

  std::printf("replaying %zu ops over %zu files\n\n", n_ops,
              tr.files().size());
  std::printf("%10s %10s %14s %18s %14s\n", "capacity", "LRU%",
              "semantic%", "semantic(hit+)%", "prefetch msgs");

  for (const double frac : {0.005, 0.01, 0.02, 0.05, 0.10}) {
    const std::size_t capacity = std::max<std::size_t>(
        8, static_cast<std::size_t>(frac *
                                    static_cast<double>(tr.files().size())));
    cache::LruCache lru(capacity);
    cache::SemanticPrefetchCache sem(store, capacity, 8, false);
    cache::SemanticPrefetchCache sem_hit(store, capacity, 8, true);
    for (std::size_t i = 0; i < n_ops; ++i) {
      const auto& op = tr.ops()[i];
      const auto& f = *by_id.at(op.file);
      lru.access(op.file);
      sem.access(f, op.time);
      sem_hit.access(f, op.time);
    }
    std::printf("%9.1f%% %10s %14s %18s %14llu\n", 100 * frac,
                pct(lru.stats().hit_rate()).c_str(),
                pct(sem.stats().hit_rate()).c_str(),
                pct(sem_hit.stats().hit_rate()).c_str(),
                static_cast<unsigned long long>(sem.prefetch_messages_total()));
  }

  std::printf("\nTop-k prefetching converts semantic burst locality into "
              "cache hits at every\ncapacity; prefetch-on-hit buys little "
              "extra and doubles the probe traffic.\n");
  return 0;
}
