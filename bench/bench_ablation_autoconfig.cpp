// Ablation A4: automatic configuration (Section 2.4).
//
// Queries that probe a d-of-D attribute subset route poorly through a tree
// grouped on all D dimensions. The auto-configurator builds extra semantic
// R-trees over candidate subsets and keeps those whose index-unit count
// differs from the full tree by more than the threshold (10%). This bench
// compares subset-query recall with and without the variants.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;
using metadata::Attr;
using metadata::AttrSubset;

int main() {
  std::printf("=== Ablation: automatic configuration (Section 2.4) ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 67, 8);

  const std::vector<AttrSubset> query_subsets{
      AttrSubset({Attr::kFileSize}),
      AttrSubset({Attr::kFileSize, Attr::kCreationTime}),
      AttrSubset({Attr::kReadBytes, Attr::kWriteBytes}),
      AttrSubset({Attr::kAccessFrequency, Attr::kOwnerId}),
  };

  core::SmartStore store(default_config(60));
  store.build(tr.files());

  auto measure = [&](const AttrSubset& dims, std::uint64_t seed) {
    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, seed);
    double rec = 0;
    const int n = 120;
    for (int i = 0; i < n; ++i) {
      const auto tq = gen.gen_topk(dims, 8);
      std::vector<metadata::FileId> truth;
      for (const auto& [d, id] :
           core::brute_force_topk(tr.files(), store.standardizer(), tq))
        truth.push_back(id);
      rec += core::recall(truth,
                          store.topk_query(tq, Routing::kOffline, 0.0).ids());
    }
    return rec / n;
  };

  std::printf("%-22s %18s %18s\n", "query subset", "single tree rec%",
              "auto-config rec%");
  std::vector<double> before;
  for (std::size_t i = 0; i < query_subsets.size(); ++i)
    before.push_back(measure(query_subsets[i], 101 + i));

  const std::size_t kept = store.autoconfigure(query_subsets);
  for (std::size_t i = 0; i < query_subsets.size(); ++i) {
    const double after = measure(query_subsets[i], 101 + i);
    std::printf("%-22s %18s %18s\n", query_subsets[i].to_string().c_str(),
                pct(before[i]).c_str(), pct(after).c_str());
  }
  std::printf("\nvariants kept: %zu of %zu candidates "
              "(index-unit-count difference > %.0f%%)\n",
              kept, query_subsets.size(),
              100.0 * store.config().autoconfig_threshold);
  std::printf("Variants group the tree by the queried attributes, so "
              "subset queries route\nto groups that are tight in exactly "
              "those dimensions.\n");
  return 0;
}
