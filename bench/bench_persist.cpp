// Persistence-layer throughput, measured through the smartstore::db::Store
// facade: checkpoint (snapshot save) / Open (snapshot load) and WAL
// append/replay rates, plus restart-under-load.
//
// The number that motivates the subsystem is the reopen column — a restart
// that recovers the snapshot instead of re-running SVD + balanced k-means
// + bottom-up tree construction. Checkpoint/reopen are reported as
// wall-clock time, on-disk size, and files per second; the WAL as facade
// Puts per second at the store's group-commit batching, plus the replay
// rate (a reopen after a simulated crash) that bounds recovery time.
#include "bench_common.h"
#include "bench_db_common.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "smartstore/smartstore.h"
#include "util/bytes.h"
#include "util/timer.h"

using namespace smartstore;
using namespace smartstore::bench;

namespace {

db::Options bench_options(std::size_t units, bool wal) {
  db::Options o;
  o.num_units = units;
  o.seed = 7;
  o.enable_wal = wal;
  return o;
}

// Restart under load (the metric a production metadata service cares
// about): writer threads stream TIF-intensified inserts through the facade
// while background checkpoints run at the Options::checkpoint_every
// cadence; the process "crashes" mid-stream (Store::Abandon after a
// Flush), and we measure recovery time, time-to-first-query and the recall
// of acknowledged inserts after reopening.
void restart_under_load() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_restart")
          .string();

  std::printf(
      "\n=== Restart under load: crash mid-stream, recover, serve ===\n\n");
  std::printf("%-4s %8s | %7s %9s | %9s %11s %8s\n", "TIF", "inserts",
              "ckpts", "wal-tail", "recover", "first-query", "recall");

  for (const unsigned tif : {1u, 4u}) {
    std::filesystem::remove_all(dir);
    const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), tif,
                                                    13, /*downscale=*/10);
    const std::size_t churn = 1500 * tif;
    const auto stream = tr.make_insert_stream(churn, 99);

    db::Options options = bench_options(30, /*wal=*/true);
    options.checkpoint_every = churn / 4;  // ~4 background ckpts per run
    auto opened = db::Store::Open(options, dir);
    check(opened.status(), "open");
    std::unique_ptr<db::Store> store = std::move(opened).value();
    check(store->Bulkload(tr.files()), "bulkload");
    check(store->Checkpoint(), "baseline checkpoint");

    std::thread writer([&] {
      for (const auto& f : stream) check(store->Put(f), "put");
    });
    writer.join();

    // Crash: make the acknowledged tail durable, then drop the process
    // state. Everything after this line sees only the on-disk pair.
    // (Frontier first: GetCheckpointInfo drains the in-flight checkpoint,
    // which would rebase the tail this column reports.)
    check(store->Flush(), "flush");
    const std::uint64_t wal_tail =
        int_property(*store, "smartstore.wal.committed-records");
    const db::CheckpointInfo ck = store->GetCheckpointInfo();
    store->Abandon();
    store.reset();

    util::WallTimer t;
    db::Options reopen = bench_options(30, /*wal=*/true);
    auto recovered = db::Store::Open(reopen, dir);
    check(recovered.status(), "recover");
    const double recover_s = t.seconds();
    auto first = (*recovered)->Query(db::QueryRequest::Point(
        metadata::PointQuery{stream.front().name}));
    check(first.status(), "first query");
    const double ttfq_s = t.seconds();

    std::size_t found = 0;
    for (const auto& f : stream) {
      db::QueryRequest q = db::QueryRequest::Point(
          metadata::PointQuery{f.name});
      q.routing = db::Routing::kOnline;  // exact: measures durability, not
      auto res = (*recovered)->Query(q); // replica staleness
      check(res.status(), "recall query");
      if (res->found) ++found;
    }

    std::printf("%-4u %8zu | %7llu %9llu | %8.3fs %10.3fs %7.1f%%\n", tif,
                stream.size(), static_cast<unsigned long long>(ck.completed),
                static_cast<unsigned long long>(wal_tail), recover_s, ttfq_s,
                100.0 * static_cast<double>(found) /
                    static_cast<double>(stream.size()));
    (*recovered)->Close();
  }
  std::printf(
      "\nwal-tail = committed records the crash left for replay; recall = "
      "acked inserts found after reopening.\n");
  std::filesystem::remove_all(dir);
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_persist")
          .string();

  std::printf("=== Persistence: snapshot + WAL throughput (db facade) ===\n\n");
  std::printf("%-7s %8s | %9s %10s %10s | %9s %12s | %9s %9s\n", "trace",
              "files", "build", "ckpt", "size", "reopen", "load-files/s",
              "wal-put/s", "replay/s");

  for (const auto kind : {trace::TraceKind::kHP, trace::TraceKind::kMSN}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 13, 5);
    std::filesystem::remove_all(dir);

    // Build + checkpoint through the facade.
    auto opened = db::Store::Open(bench_options(60, /*wal=*/true), dir);
    check(opened.status(), "open");
    std::unique_ptr<db::Store> store = std::move(opened).value();
    util::WallTimer t;
    check(store->Bulkload(tr.files()), "bulkload");
    const double build_s = t.seconds();

    t.reset();
    check(store->Checkpoint(), "checkpoint");
    const double save_s = t.seconds();
    const std::size_t snap_bytes =
        static_cast<std::size_t>(int_property(*store,
                                              "smartstore.snapshot.bytes"));
    check(store->Close(), "close");

    // Reopen: snapshot load, no SVD/k-means/tree build.
    t.reset();
    auto reopened = db::Store::Open(bench_options(60, /*wal=*/true), dir);
    check(reopened.status(), "reopen");
    const double load_s = t.seconds();
    store = std::move(reopened).value();
    const double nfiles = static_cast<double>(tr.files().size());

    // WAL: Put a churn stream at the store's group-commit batching, crash
    // (Flush + Abandon: acked tail durable, process state dropped), then
    // time the reopen that replays it.
    const std::size_t churn = 2000;
    const auto stream = tr.make_insert_stream(churn, 99);
    t.reset();
    for (const auto& f : stream) check(store->Put(f), "put");
    check(store->Flush(), "flush");
    const double append_s = t.seconds();
    store->Abandon();
    store.reset();

    t.reset();
    auto replayed = db::Store::Open(bench_options(60, /*wal=*/true), dir);
    check(replayed.status(), "replay reopen");
    const double replay_s = t.seconds();
    const std::size_t replayed_records =
        (*replayed)->recovery_info().wal_records;
    if (replayed_records != churn) {
      std::fprintf(stderr, "replay mismatch: expected %zu records, got %zu\n",
                    churn, replayed_records);
      return 1;
    }
    (*replayed)->Close();

    std::printf(
        "%-7s %8zu | %8.2fs %9.3fs %10s | %8.3fs %12.0f | %9.0f %9.0f\n",
        profile.name.c_str(), tr.files().size(), build_s, save_s,
        util::format_bytes(snap_bytes).c_str(), load_s, nfiles / load_s,
        static_cast<double>(churn) / append_s,
        static_cast<double>(churn) / replay_s);
  }

  std::printf(
      "\nrestart speedup = build / reopen; WAL rates include group-commit "
      "fsync. replay/s = reopen after crash, snapshot load + shard-merge "
      "replay.\n");
  std::filesystem::remove_all(dir);

  restart_under_load();
  return 0;
}
