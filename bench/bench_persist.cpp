// Persistence-layer throughput: snapshot save/load and WAL append/replay.
//
// The number that motivates the subsystem is the last column — a restart
// that loads the snapshot instead of re-running SVD + balanced k-means +
// bottom-up tree construction. Save/load are reported as wall-clock time,
// on-disk size, and files per second; the WAL as records per second at the
// paper's version_ratio group-commit batching, plus the replay rate that
// bounds recovery time after a crash.
#include "bench_common.h"

#include <atomic>
#include <filesystem>
#include <set>
#include <thread>

#include "persist/bg_checkpoint.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/bytes.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace smartstore;
using namespace smartstore::bench;

namespace {

// Restart under load (the metric a production metadata service cares
// about): a writer thread streams TIF-intensified inserts through the
// background checkpointer while checkpoints run concurrently; the process
// "crashes" mid-stream, and we measure recovery time, time-to-first-query
// and the recall of acknowledged inserts after recover().
void restart_under_load() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_restart")
          .string();

  std::printf(
      "\n=== Restart under load: crash mid-stream, recover, serve ===\n\n");
  std::printf("%-4s %8s | %7s %9s %9s | %9s %11s %8s\n", "TIF", "inserts",
              "ckpts", "wal-tail", "ckpt-max", "recover", "first-query",
              "recall");

  for (const unsigned tif : {1u, 4u}) {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto tr = trace::SyntheticTrace::generate(trace::msn_profile(), tif,
                                                    13, /*downscale=*/10);
    core::SmartStore store(default_config(30));
    store.build(tr.files());

    persist::WalWriter wal(persist::wal_path(dir),
                           store.config().version_ratio);
    persist::checkpoint(store, dir, &wal);

    // TIF scales the arrival stream the same way the paper's Table 1
    // intensifies traces.
    const std::size_t churn = 1500 * tif;
    const auto stream = tr.make_insert_stream(churn, 99);

    util::ThreadPool pool(2);
    persist::BackgroundCheckpointer bg(store, dir, wal, pool);
    std::atomic<bool> done{false};
    std::thread writer([&] {
      for (const auto& f : stream) bg.insert(f);
      done.store(true, std::memory_order_release);
    });
    std::size_t ckpts = 0;
    double ckpt_max_s = 0;
    while (!done.load(std::memory_order_acquire)) {
      if (bg.trigger()) {
        bg.wait();
        ++ckpts;
        const auto& st = bg.last_stats();
        ckpt_max_s = std::max(
            ckpt_max_s, st.freeze_s + st.write_s + st.truncate_s);
      } else {
        std::this_thread::yield();
      }
    }
    writer.join();
    bg.wait();

    // Crash: make the acknowledged tail durable and drop the process
    // state. Everything after this line sees only the on-disk pair.
    wal.commit();
    const std::size_t acked = stream.size();
    const std::size_t wal_tail =
        persist::scan_wal(persist::wal_path(dir)).records.size();

    util::WallTimer t;
    persist::RecoveryResult rec = persist::recover(dir);
    const double recover_s = t.seconds();
    const auto first = rec.store->point_query({stream.front().name},
                                              core::Routing::kOnline, 0.0);
    const double ttfq_s = t.seconds();
    (void)first;

    std::size_t found = 0;
    for (const auto& f : stream) {
      const auto res =
          rec.store->point_query({f.name}, core::Routing::kOnline, 0.0);
      if (res.found) ++found;
    }

    std::printf("%-4u %8zu | %7zu %9zu %8.0fms | %8.3fs %10.3fs %7.1f%%\n",
                tif, acked, ckpts, wal_tail, ckpt_max_s * 1e3, recover_s,
                ttfq_s, 100.0 * static_cast<double>(found) /
                            static_cast<double>(acked));
  }
  std::printf(
      "\nckpt-max = slowest background checkpoint (freeze+write+truncate); "
      "recall = acked inserts found after recover().\n");
  std::filesystem::remove_all(dir);
}

}  // namespace

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_persist")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::printf("=== Persistence: snapshot + WAL throughput ===\n\n");
  std::printf("%-7s %8s | %9s %10s %10s | %9s %11s | %9s %9s\n", "trace",
              "files", "build", "save", "size", "load", "load-files/s",
              "wal-rec/s", "replay/s");

  for (const auto kind : {trace::TraceKind::kHP, trace::TraceKind::kMSN}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 13, 5);

    core::SmartStore store(default_config(60));
    util::WallTimer t;
    store.build(tr.files());
    const double build_s = t.seconds();

    const std::string snap = persist::snapshot_path(dir);
    t.reset();
    persist::save_snapshot(store, snap);
    const double save_s = t.seconds();
    const std::size_t snap_bytes = std::filesystem::file_size(snap);

    t.reset();
    auto loaded = persist::load_snapshot(snap);
    const double load_s = t.seconds();
    const double nfiles = static_cast<double>(tr.files().size());

    // WAL: append a churn stream at the store's group-commit batching,
    // then replay it onto the freshly loaded snapshot.
    const std::size_t churn = 2000;
    const auto stream = tr.make_insert_stream(churn, 99);
    const std::string wal = persist::wal_path(dir);
    std::filesystem::remove(wal);
    t.reset();
    {
      persist::WalWriter w(wal, store.config().version_ratio);
      for (const auto& f : stream) w.log_insert(f);
    }
    const double append_s = t.seconds();

    t.reset();
    const persist::WalScan scan = persist::scan_wal(wal);
    persist::replay(*loaded, scan);
    const double replay_s = t.seconds();

    std::printf(
        "%-7s %8zu | %8.2fs %9.3fs %10s | %8.3fs %12.0f | %9.0f %9.0f\n",
        profile.name.c_str(), tr.files().size(), build_s, save_s,
        util::format_bytes(snap_bytes).c_str(), load_s, nfiles / load_s,
        static_cast<double>(churn) / append_s,
        static_cast<double>(churn) / replay_s);
  }

  std::printf(
      "\nrestart speedup = build / load; WAL rates include group-commit "
      "fsync.\n");
  std::filesystem::remove_all(dir);

  restart_under_load();
  return 0;
}
