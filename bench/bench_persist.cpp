// Persistence-layer throughput: snapshot save/load and WAL append/replay.
//
// The number that motivates the subsystem is the last column — a restart
// that loads the snapshot instead of re-running SVD + balanced k-means +
// bottom-up tree construction. Save/load are reported as wall-clock time,
// on-disk size, and files per second; the WAL as records per second at the
// paper's version_ratio group-commit batching, plus the replay rate that
// bounds recovery time after a crash.
#include "bench_common.h"

#include <filesystem>

#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/bytes.h"
#include "util/timer.h"

using namespace smartstore;
using namespace smartstore::bench;

int main() {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_persist")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::printf("=== Persistence: snapshot + WAL throughput ===\n\n");
  std::printf("%-7s %8s | %9s %10s %10s | %9s %11s | %9s %9s\n", "trace",
              "files", "build", "save", "size", "load", "load-files/s",
              "wal-rec/s", "replay/s");

  for (const auto kind : {trace::TraceKind::kHP, trace::TraceKind::kMSN}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 13, 5);

    core::SmartStore store(default_config(60));
    util::WallTimer t;
    store.build(tr.files());
    const double build_s = t.seconds();

    const std::string snap = persist::snapshot_path(dir);
    t.reset();
    persist::save_snapshot(store, snap);
    const double save_s = t.seconds();
    const std::size_t snap_bytes = std::filesystem::file_size(snap);

    t.reset();
    auto loaded = persist::load_snapshot(snap);
    const double load_s = t.seconds();
    const double nfiles = static_cast<double>(tr.files().size());

    // WAL: append a churn stream at the store's group-commit batching,
    // then replay it onto the freshly loaded snapshot.
    const std::size_t churn = 2000;
    const auto stream = tr.make_insert_stream(churn, 99);
    const std::string wal = persist::wal_path(dir);
    std::filesystem::remove(wal);
    t.reset();
    {
      persist::WalWriter w(wal, store.config().version_ratio);
      for (const auto& f : stream) w.log_insert(f);
    }
    const double append_s = t.seconds();

    t.reset();
    const persist::WalScan scan = persist::scan_wal(wal);
    persist::replay(*loaded, scan);
    const double replay_s = t.seconds();

    std::printf(
        "%-7s %8zu | %8.2fs %9.3fs %10s | %8.3fs %12.0f | %9.0f %9.0f\n",
        profile.name.c_str(), tr.files().size(), build_s, save_s,
        util::format_bytes(snap_bytes).c_str(), load_s, nfiles / load_s,
        static_cast<double>(churn) / append_s,
        static_cast<double>(churn) / replay_s);
  }

  std::printf(
      "\nrestart speedup = build / load; WAL rates include group-commit "
      "fsync.\n");
  std::filesystem::remove_all(dir);
  return 0;
}
