// Figure 13: on-line multicast vs off-line pre-processing, as a function
// of system scale (Zipf workload): (a) query latency, (b) number of
// internal network messages per query.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Figure 13: on-line vs off-line queries (Zipf) ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 37, 8);
  const auto dims = complex_query_dims();

  std::printf("%8s %14s %14s %12s %12s\n", "units", "online(ms)",
              "offline(ms)", "online msg", "offline msg");
  for (const std::size_t units : {20u, 40u, 60u, 80u, 100u}) {
    core::SmartStore store(default_config(units));
    store.build(tr.files());
    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 71);

    LatencySummary on, off;
    const int n = 150;
    for (int i = 0; i < n; ++i) {
      // Arrivals spaced 1s apart: uncontended per-query latency (queueing
      // effects are Table 4's subject, not this figure's).
      const double at = static_cast<double>(i);
      if (i % 2 == 0) {
        const auto q = gen.gen_range(dims, 0.05);
        off.add(store.range_query(q, Routing::kOffline, at).stats);
        on.add(store.range_query(q, Routing::kOnline, at).stats);
      } else {
        const auto q = gen.gen_topk(dims, 8);
        off.add(store.topk_query(q, Routing::kOffline, at).stats);
        on.add(store.topk_query(q, Routing::kOnline, at).stats);
      }
    }
    on.finish();
    off.finish();
    std::printf("%8zu %14.3f %14.3f %12.1f %12.1f\n", units, on.mean_s * 1e3,
                off.mean_s * 1e3, on.total_messages / n,
                off.total_messages / n);
  }

  std::printf("\nPaper: the off-line approach (replicated first-level index "
              "vectors +\nLSI pre-processing) significantly reduces both "
              "latency and message count,\nand the gap widens with scale.\n");
  return 0;
}
