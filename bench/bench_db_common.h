// Shared helpers for the benches that drive the db::Store facade
// (bench_persist, bench_concurrent, bench_db_api) — one place for the
// die-on-error Status check and the numeric-property reader, so the three
// harnesses cannot drift as the facade's error surface evolves.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "smartstore/store.h"

namespace smartstore::bench {

/// Aborts on an unexpected facade error — a bench has no recovery story.
inline void check(const db::Status& s, const char* what) {
  if (s.ok()) return;
  std::fprintf(stderr, "bench: %s failed: %s\n", what, s.ToString().c_str());
  std::exit(1);
}

/// GetProperty as a number; 0 when the property is unknown.
inline std::uint64_t int_property(db::Store& store, const std::string& name) {
  std::string v;
  if (!store.GetProperty(name, &v)) return 0;
  return std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace smartstore::bench
