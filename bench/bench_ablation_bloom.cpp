// Ablation A2: Bloom filter sizing (Section 5.1 fixes 1024 bits, k = 7).
//
// Sweeps the per-filter bit budget with auto-sizing disabled and measures
// point-query accuracy, wasted group probes (false-positive cost) and the
// space the filters consume. Shows why the reproduction auto-sizes filters
// to the group population by default.
#include "bench_common.h"

#include <set>

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Ablation: Bloom filter geometry ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 59, 10);
  std::printf("population: %zu files over 60 units\n\n", tr.files().size());
  std::printf("%10s %4s %12s %14s %16s\n", "bits", "k", "accuracy%",
              "probes/query", "filter B/unit");

  std::set<std::string> names;
  for (const auto& f : tr.files()) names.insert(f.name);

  for (const std::size_t bits : {512u, 1024u, 4096u, 16384u, 65536u}) {
    auto cfg = default_config(60);
    cfg.bloom_auto_size = false;
    cfg.bloom_bits = bits;
    core::SmartStore store(cfg);
    store.build(tr.files());

    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 91);
    int correct = 0;
    double probes = 0;
    const int n = 800;
    for (int i = 0; i < n; ++i) {
      const auto q = gen.gen_point(0.85);
      const bool exists = names.count(q.filename) > 0;
      const auto res = store.point_query(q, Routing::kOffline, 0.0);
      if (res.found == exists) ++correct;
      probes += static_cast<double>(res.stats.groups_visited);
    }
    std::printf("%10zu %4u %12s %14.2f %16zu\n", bits, cfg.bloom_hashes,
                pct(static_cast<double>(correct) / n).c_str(), probes / n,
                bits / 8);
  }

  std::printf("\nThe paper's 1024-bit filters fit 2009-era memory budgets; "
              "at today's\npopulations they saturate — accuracy collapses "
              "and every query probes the\nmaximum group budget. ~12 bits "
              "per stored name restores the Figure 9 regime.\n");
  return 0;
}
