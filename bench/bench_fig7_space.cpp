// Figure 7: space overhead per node of SmartStore, R-tree and DBMS.
//
// The baselines are centralized: their whole index sits on one server.
// SmartStore's semantic R-tree is decentralized: hosted index units,
// replicated first-level summaries and attached versions are spread over
// all storage units, so its per-node overhead is a small fraction.
#include "bench_common.h"

#include "util/bytes.h"

using namespace smartstore;
using namespace smartstore::bench;

int main() {
  std::printf("=== Figure 7: space overhead per node ===\n\n");
  std::printf("%-7s %10s %14s %14s %14s %12s\n", "trace", "files",
              "DBMS/node", "R-tree/node", "Smart/node", "DBMS/Smart");

  for (const auto kind :
       {trace::TraceKind::kHP, trace::TraceKind::kMSN,
        trace::TraceKind::kEECS}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 13, 5);

    baseline::DbmsStore dbms(60);
    dbms.build(tr.files());
    baseline::CentralRTreeStore rtree(60);
    rtree.build(tr.files());
    core::SmartStore smart(default_config(60));
    smart.build(tr.files());

    // Index overhead only (metadata records themselves are common to all
    // three systems). Baselines: everything on the central node.
    const double dbms_node = static_cast<double>(dbms.index_bytes());
    const double rtree_node = static_cast<double>(rtree.index_bytes());
    const auto sp = smart.avg_unit_space();
    const double smart_node = static_cast<double>(
        sp.index_bytes + sp.replica_bytes + sp.version_bytes);

    std::printf("%-7s %10zu %14s %14s %14s %11.1fx\n", profile.name.c_str(),
                tr.files().size(),
                util::format_bytes(static_cast<std::size_t>(dbms_node)).c_str(),
                util::format_bytes(static_cast<std::size_t>(rtree_node)).c_str(),
                util::format_bytes(static_cast<std::size_t>(smart_node)).c_str(),
                dbms_node / smart_node);
  }

  std::printf("\nSmartStore decentralizes the semantic R-tree across all "
              "units and keeps only\nsmall replicated summaries per node; "
              "DBMS pays one B+-tree per attribute on a\nsingle server "
              "(paper: ~20x SmartStore).\n");
  return 0;
}
