// Figure 8: routing distance (hops) histogram.
//
// Replays a metadata-operation mix — point lookups (the dominant class in
// file-system traces), insertions, range and top-k queries — and buckets
// each operation by the number of hops between the semantic groups that
// served it. 0 hops = served entirely within one group; the paper reports
// 87.3%-90.6% of operations at 0 hops.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Figure 8: routing-distance hops ===\n\n");
  std::printf("%-7s %8s %8s %8s %8s %14s\n", "trace", "0-hop%", "1-hop%",
              "2-hop%", ">=3hop%", "ops replayed");

  for (const auto kind :
       {trace::TraceKind::kHP, trace::TraceKind::kMSN,
        trace::TraceKind::kEECS}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 17, 8);
    core::SmartStore store(default_config(60));
    store.build(tr.files());

    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 29);
    const auto inserts = tr.make_insert_stream(300, 31);
    const auto dims = complex_query_dims();

    // Operation mix modeled on metadata-trace compositions: 70% point
    // lookups, 15% inserts, 9% range, 6% top-k (Section 1: metadata
    // transactions dominate; filename lookups dominate metadata ops).
    std::size_t hops_hist[4] = {0, 0, 0, 0};
    std::size_t total = 0, next_insert = 0;
    util::Rng mix(57);
    for (int i = 0; i < 2000; ++i) {
      const double r = mix.uniform();
      int hops = 0;
      if (r < 0.70) {
        const auto res =
            store.point_query(gen.gen_point(0.95), Routing::kOffline, 0.0);
        hops = res.stats.groups_visited <= 1 ? 0 : 1;
      } else if (r < 0.85 && next_insert < inserts.size()) {
        hops = store.insert_file(inserts[next_insert++], 0.0).routing_hops;
      } else if (r < 0.94) {
        hops = store.range_query(gen.gen_range(dims, 0.04), Routing::kOffline,
                                 0.0)
                   .stats.routing_hops;
      } else {
        hops = store.topk_query(gen.gen_topk(dims, 8), Routing::kOffline, 0.0)
                   .stats.routing_hops;
      }
      ++hops_hist[std::min(hops, 3)];
      ++total;
    }

    std::printf("%-7s %8s %8s %8s %8s %14zu\n", profile.name.c_str(),
                pct(static_cast<double>(hops_hist[0]) / total).c_str(),
                pct(static_cast<double>(hops_hist[1]) / total).c_str(),
                pct(static_cast<double>(hops_hist[2]) / total).c_str(),
                pct(static_cast<double>(hops_hist[3]) / total).c_str(),
                total);
  }

  std::printf("\nPaper: 87.3%%-90.6%% of operations served by one group "
              "(0-hop).\n");
  return 0;
}
