// Figure 10: recall of complex queries on the HP trace under Uniform,
// Gauss and Zipf query distributions — (a) top-8 NN queries, (b) range
// queries.
//
// Expected shape (paper): top-k recall > range recall; Zipf and Gauss
// beat Uniform because skewed queries align with the semantic groups.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Figure 10: recall of complex queries (HP trace) ===\n\n");

  const auto tr = trace::SyntheticTrace::generate(trace::hp_profile(), 2, 23, 8);
  core::SmartStore store(default_config(60));
  store.build(tr.files());
  const auto dims = complex_query_dims();

  std::printf("%-9s %16s %16s\n", "dist", "Top-8 recall%", "Range recall%");
  for (const auto dist :
       {trace::QueryDistribution::kUniform, trace::QueryDistribution::kGauss,
        trace::QueryDistribution::kZipf}) {
    trace::QueryGenerator gen(tr, dist, 47);
    double topk_recall = 0, range_recall = 0;
    int topk_n = 0, range_n = 0;
    const int n = 300;
    for (int i = 0; i < n; ++i) {
      const auto tq = gen.gen_topk(dims, 8);
      std::vector<metadata::FileId> truth;
      for (const auto& [d, id] :
           core::brute_force_topk(tr.files(), store.standardizer(), tq))
        truth.push_back(id);
      topk_recall += core::recall(
          truth, store.topk_query(tq, Routing::kOffline, 0.0).ids());
      ++topk_n;

      const auto rq = gen.gen_range(dims, 0.05);
      const auto rtruth = core::brute_force_range(tr.files(), rq);
      if (rtruth.empty()) continue;  // only queries with actual results
      range_recall += core::recall(
          rtruth, store.range_query(rq, Routing::kOffline, 0.0).ids);
      ++range_n;
    }
    std::printf("%-9s %16s %16s\n", trace::distribution_name(dist),
                pct(topk_recall / std::max(1, topk_n)).c_str(),
                pct(range_recall / std::max(1, range_n)).c_str());
  }

  std::printf("\nPaper shape: top-k > range; Zipf/Gauss > Uniform "
              "(Figure 10(a),(b)).\n");
  return 0;
}
