// Ablation A3: LSI rank p.
//
// The rank-p truncation controls how much attribute structure the semantic
// subspace keeps. Sweeps p and reports grouping quality (variance-ratio
// criterion), complex-query recall and the 0-hop rate.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Ablation: LSI rank p ===\n\n");
  const auto tr =
      trace::SyntheticTrace::generate(trace::msn_profile(), 2, 61, 8);
  const auto dims = complex_query_dims();

  std::printf("%8s %10s %12s %10s %10s\n", "rank p", "groups", "top8 rec%",
              "0-hop%", "eps_1");
  for (const std::size_t rank : {1u, 2u, 3u, 5u, 8u, 10u}) {
    auto cfg = default_config(60);
    cfg.lsi_rank = rank;
    core::SmartStore store(cfg);
    store.build(tr.files());

    trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 97);
    double topk_recall = 0;
    int zero_hops = 0;
    const int n = 150;
    for (int i = 0; i < n; ++i) {
      const auto tq = gen.gen_topk(dims, 8);
      std::vector<metadata::FileId> truth;
      for (const auto& [d, id] :
           core::brute_force_topk(tr.files(), store.standardizer(), tq))
        truth.push_back(id);
      const auto res = store.topk_query(tq, Routing::kOffline, 0.0);
      topk_recall += core::recall(truth, res.ids());
      if (res.stats.routing_hops == 0) ++zero_hops;
    }
    std::printf("%8zu %10zu %12s %10s %10.4f\n", rank,
                store.tree().groups().size(), pct(topk_recall / n).c_str(),
                pct(static_cast<double>(zero_hops) / n).c_str(),
                store.tree().level_epsilons().front());
  }

  std::printf("\nVery low ranks collapse distinct clusters (poor routing); "
              "ranks past the\nintrinsic attribute dimensionality add noise "
              "directions without benefit.\n");
  return 0;
}
