// Micro-benchmarks (google-benchmark) for the core operations: MD5
// hashing, Bloom filter ops, B+-tree ops, SVD/LSI fitting and projection,
// R-tree insert/search, SmartStore query paths.
#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.h"
#include "bloom/md5.h"
#include "btree/bplus_tree.h"
#include "core/smartstore.h"
#include "la/svd.h"
#include "lsi/lsi.h"
#include "rtree/rtree.h"
#include "trace/query_gen.h"
#include "trace/synth.h"
#include "util/rng.h"

using namespace smartstore;

namespace {

// ---- hashing / filters ------------------------------------------------------

void BM_Md5Digest(benchmark::State& state) {
  const std::string name = "/sub3/u042/app017/f001234.dat";
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom::md5(name));
  }
}
BENCHMARK(BM_Md5Digest);

void BM_BloomInsert(benchmark::State& state) {
  bloom::BloomFilter bf(static_cast<std::size_t>(state.range(0)), 7);
  std::uint64_t i = 0;
  for (auto _ : state) {
    bf.insert("/file/" + std::to_string(i++));
  }
}
BENCHMARK(BM_BloomInsert)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_BloomQuery(benchmark::State& state) {
  bloom::BloomFilter bf(8192, 7);
  for (int i = 0; i < 500; ++i) bf.insert("/file/" + std::to_string(i));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.may_contain("/file/" + std::to_string(i++ % 1000)));
  }
}
BENCHMARK(BM_BloomQuery);

// ---- B+-tree ---------------------------------------------------------------

void BM_BtreeInsert(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    btree::BPlusTree<double, std::uint64_t> t;
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i)
      t.insert(rng.uniform(0, 1e9), static_cast<std::uint64_t>(i));
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BtreeInsert)->Arg(1000)->Arg(10000);

void BM_BtreeRangeScan(benchmark::State& state) {
  btree::BPlusTree<double, std::uint64_t> t;
  util::Rng rng(2);
  for (int i = 0; i < 20000; ++i)
    t.insert(rng.uniform(0, 1000), static_cast<std::uint64_t>(i));
  for (auto _ : state) {
    std::size_t n = 0;
    t.range_scan(400, 420, [&](double, std::uint64_t) { ++n; });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_BtreeRangeScan);

// ---- linear algebra / LSI ---------------------------------------------------

void BM_SvdThin(benchmark::State& state) {
  util::Rng rng(3);
  la::Matrix a(10, static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = rng.gauss();
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd_thin(a));
  }
}
BENCHMARK(BM_SvdThin)->Arg(60)->Arg(600)->Arg(6000);

void BM_LsiFit(benchmark::State& state) {
  util::Rng rng(4);
  std::vector<la::Vector> docs(static_cast<std::size_t>(state.range(0)),
                               la::Vector(10));
  for (auto& d : docs)
    for (auto& x : d) x = rng.gauss();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsi::LsiModel::fit(docs, 5));
  }
}
BENCHMARK(BM_LsiFit)->Arg(60)->Arg(600);

void BM_LsiProject(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<la::Vector> docs(200, la::Vector(10));
  for (auto& d : docs)
    for (auto& x : d) x = rng.gauss();
  const lsi::LsiModel m = lsi::LsiModel::fit(docs, 5);
  la::Vector q(10, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.project(q));
  }
}
BENCHMARK(BM_LsiProject);

// ---- R-tree ----------------------------------------------------------------

void BM_RtreeInsert(benchmark::State& state) {
  util::Rng rng(6);
  for (auto _ : state) {
    state.PauseTiming();
    rtree::RTree t(10, 16);
    state.ResumeTiming();
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      la::Vector p(10);
      for (auto& x : p) x = rng.gauss();
      t.insert(p, static_cast<std::uint64_t>(i));
    }
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RtreeInsert)->Arg(1000)->Arg(5000);

void BM_RtreeKnn(benchmark::State& state) {
  util::Rng rng(7);
  rtree::RTree t(10, 16);
  for (int i = 0; i < 10000; ++i) {
    la::Vector p(10);
    for (auto& x : p) x = rng.gauss();
    t.insert(p, static_cast<std::uint64_t>(i));
  }
  la::Vector q(10, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.knn(q, 8));
  }
}
BENCHMARK(BM_RtreeKnn);

// ---- SmartStore query paths --------------------------------------------------

struct StoreFixture {
  StoreFixture() {
    tr = trace::SyntheticTrace::generate(trace::msn_profile(), 1, 5, 10);
    core::Config cfg;
    cfg.num_units = 20;
    cfg.fanout = 5;
    store = std::make_unique<core::SmartStore>(cfg);
    store->build(tr.files());
    gen = std::make_unique<trace::QueryGenerator>(
        tr, trace::QueryDistribution::kZipf, 8);
  }
  trace::SyntheticTrace tr;
  std::unique_ptr<core::SmartStore> store;
  std::unique_ptr<trace::QueryGenerator> gen;
};

StoreFixture& fixture() {
  static StoreFixture f;
  return f;
}

void BM_SmartStorePointQuery(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.store->point_query(
        f.gen->gen_point(0.9), core::Routing::kOffline, 0.0));
  }
}
BENCHMARK(BM_SmartStorePointQuery);

void BM_SmartStoreRangeQuery(benchmark::State& state) {
  auto& f = fixture();
  const auto dims = metadata::AttrSubset(
      {metadata::Attr::kModificationTime, metadata::Attr::kReadBytes});
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.store->range_query(
        f.gen->gen_range(dims, 0.05), core::Routing::kOffline, 0.0));
  }
}
BENCHMARK(BM_SmartStoreRangeQuery);

void BM_SmartStoreTopKQuery(benchmark::State& state) {
  auto& f = fixture();
  const auto dims = metadata::AttrSubset::all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.store->topk_query(
        f.gen->gen_topk(dims, 8), core::Routing::kOffline, 0.0));
  }
}
BENCHMARK(BM_SmartStoreTopKQuery);

}  // namespace

BENCHMARK_MAIN();
