// Routed throughput of the metadata-service tier: an in-process cluster
// (svc::Cluster — real Router -> wire format -> transport -> MetaService
// -> db::Store stack) at 1/2/4/8 shards, driven by concurrent simulated
// clients.
//
// Each client thread owns a Router with a DISTINCT client_id and a
// DELIBERATELY STALE initial map (a single-shard round-robin), so the
// first keyed op against a multi-shard cluster eats a kWrongShard
// redirect, installs the authoritative map from the response payload, and
// every later op routes directly — redirect rate measures the
// self-correction cost, not steady-state overhead.
//
// The op mix is the serving pattern the tier is for: puts (upserts through
// the dedup path) interleaved with point lookups of already-acked names.
// Reported per shard count: routed ops/sec, p50/p99 op latency, and the
// redirect/retry counters summed across clients. Scaling with shard count
// comes from spreading the store-side work (semantic grouping, index
// probes, stripe locks) across independent shard stores.
//
// Environment knobs:
//   BENCH_SMOKE=1    tiny sizes (CI smoke: exercises every path)
//   BENCH_CLIENTS=N  client threads (default 4)
//   BENCH_OPS=N      ops per client (default 4000, smoke 300)
// Arguments:
//   --json PATH      machine-readable results
//                    (scripts/bench_report.sh -> BENCH_cluster.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_db_common.h"
#include "metadata/schema.h"
#include "svc/cluster.h"
#include "svc/partition.h"
#include "svc/router.h"
#include "util/timer.h"

namespace {

using namespace smartstore;
using bench::check;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

/// Trace-shaped names: the app directory is the partition key, so the
/// workload exercises semantic co-location, not uniform key hashing.
metadata::FileMetadata make_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name.resize(64);
  f.name.resize(static_cast<std::size_t>(std::snprintf(
      f.name.data(), f.name.size(), "/bench/u%03u/app%03u/f%08u.dat",
      static_cast<unsigned>(id % 7), static_cast<unsigned>(id % 29),
      static_cast<unsigned>(id))));
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) {
    f.attrs[a] = static_cast<double>((id * 31 + a * 7) % 1000);
  }
  return f;
}

struct RunResult {
  std::uint32_t shards = 0;
  std::size_t clients = 0;
  std::size_t ops = 0;  ///< total routed ops across all clients
  double seconds = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t sends = 0;
  std::uint64_t retries = 0;
  std::uint64_t redirects = 0;
  double per_sec() const { return static_cast<double>(ops) / seconds; }
  double redirect_rate() const {
    return sends > 0 ? static_cast<double>(redirects) /
                           static_cast<double>(sends)
                     : 0;
  }
};

RunResult run_cluster(std::uint32_t shards, std::size_t clients,
                      std::size_t ops_per_client) {
  svc::ClusterOptions copt;
  copt.num_shards = shards;
  copt.in_memory = true;
  copt.store_options.num_units = 4;
  copt.store_options.fanout = 4;
  copt.store_options.seed = 7;
  // Online routing: acked names must be findable (the put/point mix
  // asserts it), so offline's false negatives are off the table.
  copt.store_options.routing = db::Routing::kOnline;
  copt.map_version = 2;  // newer than the clients' stale v1 seed map

  auto started = svc::Cluster::Start(copt);
  check(started.status(), "cluster start");
  std::unique_ptr<svc::Cluster> cluster = std::move(started).value();

  std::vector<std::vector<double>> latencies(clients);
  std::vector<svc::RouterStats> stats(clients);
  std::vector<std::thread> workers;
  workers.reserve(clients);

  util::WallTimer t;
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      svc::RouterOptions ropt;
      ropt.client_id = c + 1;
      ropt.max_attempts = 8;
      // Stale seed map: one shard, version 1. The first keyed op against
      // a bigger cluster redirects and installs the real map.
      svc::Router router(cluster->ConnectAll(),
                         svc::PartitionMap::RoundRobin(1, 1), ropt);
      std::vector<double>& lat = latencies[c];
      lat.reserve(ops_per_client);
      const std::uint64_t base = (c + 1) * 10'000'000ull;
      std::uint64_t acked = 0;
      for (std::size_t i = 0; i < ops_per_client; ++i) {
        util::WallTimer op;
        if (acked == 0 || i % 2 == 0) {
          check(router.Put(make_file(base + acked)), "put");
          ++acked;
        } else {
          const std::uint64_t id = base + (i * 2654435761ull) % acked;
          auto r = router.Point(make_file(id).name);
          check(r.status(), "point");
          if (r->count() == 0) {
            std::fprintf(stderr, "bench: acked name not found\n");
            std::exit(1);
          }
        }
        lat.push_back(op.seconds() * 1e6);
      }
      stats[c] = router.stats();
    });
  }
  for (auto& w : workers) w.join();

  RunResult r;
  r.shards = shards;
  r.clients = clients;
  r.ops = clients * ops_per_client;
  r.seconds = t.seconds();
  std::vector<double> all;
  all.reserve(r.ops);
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    r.p50_us = all[all.size() / 2];
    r.p99_us = all[all.size() * 99 / 100];
  }
  for (const svc::RouterStats& s : stats) {
    r.sends += s.sends;
    r.retries += s.retries;
    r.redirects += s.redirects;
  }
  check(cluster->Stop(), "cluster stop");
  return r;
}

struct FailoverResult {
  std::size_t ops = 0;          ///< acked puts across the whole run
  double unavailability_ms = 0; ///< crash -> first post-crash ack
  double p99_promotion_us = 0;  ///< put p99 in the 500ms after the crash
  double p99_steady_us = 0;     ///< put p99 before the crash
  std::uint64_t retries = 0;
  std::uint64_t epoch = 0;  ///< final map epoch (2 == one promotion)
};

/// One sequential writer against a replicated durable 1-shard cluster;
/// the primary is power-cut mid-run and the automatic failover manager
/// must restore availability. Measures the client-visible unavailability
/// window (the gap between the crash and the first ack from the promoted
/// follower) and the put tail latency during promotion.
FailoverResult run_failover(std::size_t ops) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_failover")
          .string();
  std::filesystem::remove_all(dir);

  svc::ClusterOptions copt;
  copt.num_shards = 1;
  copt.replication_factor = 2;
  copt.in_memory = false;
  copt.dir = dir;
  copt.store_options.num_units = 4;
  copt.store_options.fanout = 4;
  copt.store_options.seed = 7;
  copt.store_options.routing = db::Routing::kOnline;
  copt.auto_failover = true;
  copt.heartbeat_interval_ms = 10;
  copt.heartbeat_misses = 2;

  auto started = svc::Cluster::Start(copt);
  check(started.status(), "failover cluster start");
  std::unique_ptr<svc::Cluster> cluster = std::move(started).value();

  svc::RouterOptions ropt;
  ropt.client_id = 1;
  ropt.max_attempts = 2000;  // must span detect + promote + map refresh
  ropt.backoff_init_us = 50;
  ropt.backoff_max_us = 5'000;
  svc::Router router(cluster->ConnectAll(), cluster->map(), ropt);

  using clock = std::chrono::steady_clock;
  const std::size_t crash_at = ops / 4;
  std::vector<double> lat_us;
  std::vector<clock::time_point> done_at;
  lat_us.reserve(ops);
  done_at.reserve(ops);
  clock::time_point crashed{};

  for (std::size_t i = 0; i < ops; ++i) {
    if (i == crash_at) {
      check(cluster->Crash(cluster->map().primary_node_of(0)),
            "failover crash");
      crashed = clock::now();
    }
    util::WallTimer op;
    check(router.Put(make_file(i)), "failover put");
    lat_us.push_back(op.seconds() * 1e6);
    done_at.push_back(clock::now());
  }

  FailoverResult r;
  r.ops = ops;
  r.retries = router.stats().retries;
  r.epoch = cluster->map().epoch;
  // The first ack completed after the crash ends the unavailability
  // window (puts are sequential, so it is the op that spanned it).
  for (std::size_t i = crash_at; i < ops; ++i) {
    if (done_at[i] > crashed) {
      r.unavailability_ms =
          std::chrono::duration<double, std::milli>(done_at[i] - crashed)
              .count();
      break;
    }
  }
  std::vector<double> steady(lat_us.begin(),
                             lat_us.begin() + static_cast<long>(crash_at));
  std::vector<double> promo;
  const auto promo_end = crashed + std::chrono::milliseconds(500);
  for (std::size_t i = crash_at; i < ops; ++i) {
    if (done_at[i] <= promo_end) promo.push_back(lat_us[i]);
  }
  std::sort(steady.begin(), steady.end());
  std::sort(promo.begin(), promo.end());
  if (!steady.empty()) r.p99_steady_us = steady[steady.size() * 99 / 100];
  if (!promo.empty()) r.p99_promotion_us = promo[promo.size() * 99 / 100];

  check(cluster->Stop(), "failover cluster stop");
  std::filesystem::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const bool smoke = env_size("BENCH_SMOKE", 0) != 0;
  const std::size_t clients = env_size("BENCH_CLIENTS", 4);
  const std::size_t ops = env_size("BENCH_OPS", smoke ? 300 : 4000);

  std::printf(
      "bench_cluster: %zu clients x %zu ops (puts + point lookups), "
      "in-process transport, hardware threads %u\n\n",
      clients, ops, std::thread::hardware_concurrency());
  std::printf("%-8s %10s %12s %10s %10s %10s %10s\n", "shards", "ops/s",
              "seconds", "p50 us", "p99 us", "redirects", "retries");

  std::vector<RunResult> results;
  double base_per_sec = 0;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_cluster(shards, clients, ops);
    if (shards == 1) base_per_sec = r.per_sec();
    std::printf("%-8u %10.0f %12.3f %10.1f %10.1f %10llu %10llu\n", r.shards,
                r.per_sec(), r.seconds, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.redirects),
                static_cast<unsigned long long>(r.retries));
    results.push_back(r);
  }

  const RunResult& last = results.back();
  std::printf(
      "\nsummary  : %u-shard routed throughput %.2fx of 1-shard; redirect "
      "rate %.4f (stale-map self-correction is one redirect per client)\n",
      last.shards, last.per_sec() / base_per_sec, last.redirect_rate());

  // Replicated failover: a durable rf=2 shard loses its primary mid-run
  // and the manager promotes the follower — the client just retries.
  const FailoverResult fo = run_failover(smoke ? 200 : 2000);
  std::printf(
      "\nfailover : primary killed under load; unavailability window "
      "%.1f ms, put p99 %.1f us steady -> %.1f us during promotion, "
      "%llu retries, final epoch %llu\n",
      fo.unavailability_ms, fo.p99_steady_us, fo.p99_promotion_us,
      static_cast<unsigned long long>(fo.retries),
      static_cast<unsigned long long>(fo.epoch));

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"clients\": %zu,\n  \"ops_per_client\": %zu,\n",
                 clients, ops);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::fprintf(f,
                   "    {\"shards\": %u, \"ops\": %zu, \"seconds\": %.6f, "
                   "\"ops_per_sec\": %.1f, \"p50_us\": %.1f, \"p99_us\": "
                   "%.1f, \"sends\": %llu, \"retries\": %llu, \"redirects\": "
                   "%llu, \"redirect_rate\": %.6f}%s\n",
                   r.shards, r.ops, r.seconds, r.per_sec(), r.p50_us,
                   r.p99_us, static_cast<unsigned long long>(r.sends),
                   static_cast<unsigned long long>(r.retries),
                   static_cast<unsigned long long>(r.redirects),
                   r.redirect_rate(),
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"failover\": {\"ops\": %zu, \"unavailability_ms\": "
                 "%.3f, \"p99_steady_us\": %.1f, \"p99_promotion_us\": "
                 "%.1f, \"retries\": %llu, \"final_epoch\": %llu}\n",
                 fo.ops, fo.unavailability_ms, fo.p99_steady_us,
                 fo.p99_promotion_us,
                 static_cast<unsigned long long>(fo.retries),
                 static_cast<unsigned long long>(fo.epoch));
    std::fprintf(f, "}\n");
    std::fclose(f);
  }
  return 0;
}
