// Scale tiers for the incremental-checkpoint engine: at 1M/5M/10M-file
// store sizes (parameterized — CI's nightly job runs the 1M tier), how
// much does a checkpoint cost once it is a WAL-delta cut instead of a
// full image?
//
// Per tier, against one on-disk deployment:
//   * full-image bytes + seconds (the fold/compaction a la the legacy
//     checkpoint) — the denominator of the headline claim;
//   * delta-cut bytes + seconds after 1% churn — the numerator; the
//     engine's acceptance bar is delta < 5% of the full image at 1% churn
//     (reported as PASS/FAIL, and as delta_ratio_pct in the JSON);
//   * reopen seconds from base + delta chain, and crash-reopen seconds
//     with a WAL tail on top (recovery-time scaling);
//   * ingest puts/s quiet vs puts/s while a fold runs concurrently
//     (the epoch-freeze/COW "checkpoint does not stop the world" claim,
//     reported as degradation_pct).
//
// Usage: bench_scale [--files N] [--json PATH]
// Environment: BENCH_SCALE_FILES (same as --files), BENCH_SMOKE=1 (tiny
// tier so CI smoke runs exercise every path).
#include "bench_common.h"
#include "bench_db_common.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "smartstore/smartstore.h"
#include "util/bytes.h"
#include "util/timer.h"

using namespace smartstore;
using namespace smartstore::bench;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v && *v ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                 : fallback;
}

metadata::FileMetadata synth_file(std::uint64_t id) {
  metadata::FileMetadata f;
  f.id = id;
  f.name = "scale_" + std::to_string(id) + ".dat";
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a)
    f.attrs[a] = static_cast<double>((id * 2654435761ull + a * 40503) % 100000) /
                 100.0;
  return f;
}

/// Sum of the checkpoint base images on disk — the full-image cost. (The
/// fold prunes superseded bases, so after a compaction exactly one
/// base-<id>.bin remains.)
std::uint64_t base_image_bytes(const std::filesystem::path& dir) {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& e :
       std::filesystem::directory_iterator(dir / "ckpt", ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("base-", 0) == 0) total += e.file_size(ec);
  }
  return total;
}

double timed_puts(db::Store& store, std::uint64_t first_id,
                  std::size_t count) {
  util::WallTimer t;
  for (std::size_t i = 0; i < count; ++i)
    check(store.Put(synth_file(first_id + i)), "put");
  check(store.Flush(), "flush");
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strcmp(argv[i], "--files") == 0 && i + 1 < argc)
      files = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
  }
  const bool smoke = env_size("BENCH_SMOKE", 0) != 0;
  if (files == 0)
    files = env_size("BENCH_SCALE_FILES", smoke ? 5000 : 100000);
  const std::size_t churn = std::max<std::size_t>(1, files / 100);  // 1%

  const std::string dir =
      (std::filesystem::current_path() / "bench_scale_state").string();
  std::filesystem::remove_all(dir);

  db::Options options;
  options.num_units = smoke ? 16 : 64;
  options.seed = 7;
  options.enable_wal = true;
  options.incremental_checkpoints = true;
  options.compaction_trigger = 0;  // manual folds only: the bench is the
  options.compaction_byte_budget = 0;  // policy here, not the compactor

  std::printf("bench_scale: %zu files, %zu churn (1%%), %zu units\n\n",
              files, churn, options.num_units);

  // ---- build the tier -------------------------------------------------------
  std::vector<metadata::FileMetadata> base;
  base.reserve(files);
  for (std::uint64_t i = 0; i < files; ++i) base.push_back(synth_file(i));

  auto opened = db::Store::Open(options, dir);
  check(opened.status(), "open");
  std::unique_ptr<db::Store> store = std::move(opened).value();
  util::WallTimer t;
  check(store->Bulkload(base), "bulkload");
  const double build_s = t.seconds();
  base.clear();
  base.shrink_to_fit();

  // ---- full image (fold) ----------------------------------------------------
  t.reset();
  check(store->Compact(), "fold");
  const double full_s = t.seconds();
  const std::uint64_t full_bytes = base_image_bytes(dir);

  // ---- delta cut after 1% churn ---------------------------------------------
  const double churn_quiet_s = timed_puts(*store, files, churn);
  t.reset();
  check(store->Checkpoint(), "delta cut");
  const double delta_s = t.seconds();
  const db::CheckpointInfo info = store->GetCheckpointInfo();
  const std::uint64_t delta_bytes = info.delta_chain_bytes;
  const double ratio_pct = full_bytes > 0
                               ? 100.0 * static_cast<double>(delta_bytes) /
                                     static_cast<double>(full_bytes)
                               : 0.0;

  std::printf("%-26s %12s %10s\n", "checkpoint", "bytes", "seconds");
  std::printf("%-26s %12s %9.3fs\n", "full image (fold)",
              util::format_bytes(full_bytes).c_str(), full_s);
  std::printf("%-26s %12s %9.3fs\n", "delta cut (1% churn)",
              util::format_bytes(delta_bytes).c_str(), delta_s);
  std::printf("%-26s %11.2f%%  -> %s (bar: < 5%%)\n\n", "delta / full",
              ratio_pct, ratio_pct < 5.0 ? "PASS" : "FAIL");

  // ---- recovery time --------------------------------------------------------
  check(store->Close(), "close");
  t.reset();
  opened = db::Store::Open(options, dir);
  check(opened.status(), "reopen");
  const double reopen_s = t.seconds();
  store = std::move(opened).value();
  const std::uint64_t total_now =
      int_property(*store, "smartstore.total-files");
  if (total_now != files + churn) {
    std::fprintf(stderr, "reopen lost files: expected %zu, got %llu\n",
                 files + churn, static_cast<unsigned long long>(total_now));
    return 1;
  }

  // Crash-reopen: a fresh 1% WAL tail on top of base + chain.
  timed_puts(*store, files + churn, churn);
  store->Abandon();
  store.reset();
  t.reset();
  opened = db::Store::Open(options, dir);
  check(opened.status(), "crash reopen");
  const double crash_reopen_s = t.seconds();
  store = std::move(opened).value();

  std::printf("%-26s %9.3fs (%.0f files/s)\n", "reopen (base+deltas)",
              reopen_s, static_cast<double>(files + churn) / reopen_s);
  std::printf("%-26s %9.3fs (%zu-record WAL tail)\n\n", "crash reopen",
              crash_reopen_s, churn);

  // ---- ingest degradation during compaction ---------------------------------
  // Quiet rate was measured above; now ingest the same volume while a
  // fold runs concurrently (epoch-freeze/COW: traffic must keep flowing).
  std::uint64_t next_id = files + 2 * churn;
  std::atomic<bool> fold_failed{false};
  std::thread folder([&] {
    const db::Status s = store->Compact();
    if (!s.ok()) fold_failed.store(true);
  });
  const double churn_busy_s = timed_puts(*store, next_id, churn);
  folder.join();
  if (fold_failed.load()) {
    std::fprintf(stderr, "concurrent fold failed\n");
    return 1;
  }
  const double quiet_rate = static_cast<double>(churn) / churn_quiet_s;
  const double busy_rate = static_cast<double>(churn) / churn_busy_s;
  const double degradation_pct =
      quiet_rate > 0 ? 100.0 * (1.0 - busy_rate / quiet_rate) : 0.0;
  std::printf("%-26s %12.0f puts/s\n", "ingest quiet", quiet_rate);
  std::printf("%-26s %12.0f puts/s (%.1f%% degradation)\n",
              "ingest during fold", busy_rate, degradation_pct);

  check(store->Close(), "final close");
  std::filesystem::remove_all(dir);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"files\": %zu,\n"
                 "  \"churn\": %zu,\n"
                 "  \"build_seconds\": %.6f,\n"
                 "  \"full_ckpt_bytes\": %llu,\n"
                 "  \"full_ckpt_seconds\": %.6f,\n"
                 "  \"delta_ckpt_bytes\": %llu,\n"
                 "  \"delta_ckpt_seconds\": %.6f,\n"
                 "  \"delta_ratio_pct\": %.4f,\n"
                 "  \"delta_ratio_pass\": %s,\n"
                 "  \"reopen_seconds\": %.6f,\n"
                 "  \"crash_reopen_seconds\": %.6f,\n"
                 "  \"ingest_quiet_per_sec\": %.1f,\n"
                 "  \"ingest_during_fold_per_sec\": %.1f,\n"
                 "  \"degradation_pct\": %.2f\n"
                 "}\n",
                 files, churn, build_s,
                 static_cast<unsigned long long>(full_bytes), full_s,
                 static_cast<unsigned long long>(delta_bytes), delta_s,
                 ratio_pct, ratio_pct < 5.0 ? "true" : "false", reopen_s,
                 crash_reopen_s, quiet_rate, busy_rate, degradation_pct);
    std::fclose(f);
    std::printf("json     : wrote %s\n", json_path.c_str());
  }
  return 0;
}
