// Figure 14: versioning overhead as a function of the version ratio
// (file modifications aggregated per version): (a) extra space per index
// unit, (b) extra query latency from checking attached versions.
//
// Version ratio 1 is comprehensive versioning (every change seals a
// version, largest space); larger ratios aggregate more changes per
// version. The paper bounds the extra latency at <= 10% of query latency.
#include "bench_common.h"

using namespace smartstore;
using namespace smartstore::bench;
using core::Routing;

int main() {
  std::printf("=== Figure 14: versioning overhead ===\n\n");
  std::printf("%-7s %8s %18s %14s %12s\n", "trace", "ratio",
              "space/idx-unit(B)", "extra lat.%", "versions");

  for (const auto kind : {trace::TraceKind::kMSN, trace::TraceKind::kEECS}) {
    const auto profile = trace::profile_for(kind);
    const auto tr = trace::SyntheticTrace::generate(profile, 2, 41, 8);
    const auto dims = complex_query_dims();

    for (const std::size_t ratio : {1u, 2u, 4u, 8u, 16u, 32u}) {
      auto cfg = default_config(60);
      cfg.version_ratio = ratio;
      // Disable the lazy full refresh so version chains accumulate over
      // the measurement window (reconfiguration would clear them).
      cfg.lazy_update_threshold = 10.0;
      core::SmartStore store(cfg);
      store.build(tr.files());

      // Update stream: inserts accumulate into versions.
      const auto inserts = tr.make_insert_stream(600, 43);
      for (std::size_t i = 0; i < inserts.size(); ++i)
        store.insert_file(inserts[i], static_cast<double>(i) * 0.01);

      // Extra latency: fraction of complex-query latency spent checking
      // attached versions.
      trace::QueryGenerator gen(tr, trace::QueryDistribution::kZipf, 73);
      double total_lat = 0, version_lat = 0;
      for (int i = 0; i < 150; ++i) {
        const auto q = gen.gen_topk(dims, 8);
        // Arrivals after the insert window, 1s apart: uncontended latency.
        const auto st =
            store.topk_query(q, Routing::kOffline, 100.0 + i).stats;
        total_lat += st.latency_s;
        version_lat += st.version_check_s;
      }

      std::size_t total_versions = 0;
      for (std::size_t g : store.tree().groups()) (void)g, ++total_versions;

      std::printf("%-7s %8zu %18.0f %14s %12.1f\n", profile.name.c_str(),
                  ratio, store.avg_version_bytes_per_group(),
                  pct(version_lat / total_lat).c_str(),
                  store.avg_version_bytes_per_group() > 0
                      ? static_cast<double>(600 / ratio) /
                            static_cast<double>(store.tree().groups().size())
                      : 0.0);
    }
    std::printf("\n");
  }

  std::printf("Paper shape: space falls as the version ratio grows "
              "(fewer, bigger versions);\nextra latency stays under ~10%% "
              "of the query latency.\n");
  return 0;
}
