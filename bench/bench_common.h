// Shared plumbing for the experiment harnesses: store construction,
// background-load injection, query batches, recall computation and
// fixed-width table printing.
//
// Every bench binary is deterministic (fixed seeds), runs with no
// arguments and prints the corresponding paper table/figure series.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/central_rtree.h"
#include "baseline/dbms.h"
#include "core/ground_truth.h"
#include "core/smartstore.h"
#include "trace/query_gen.h"
#include "trace/synth.h"
#include "util/rng.h"

namespace smartstore::bench {

/// The attribute subset the paper's synthetic complex queries use
/// (Section 5.1's example: last-revision time, read volume, write volume).
inline metadata::AttrSubset complex_query_dims() {
  return metadata::AttrSubset({metadata::Attr::kModificationTime,
                               metadata::Attr::kReadBytes,
                               metadata::Attr::kWriteBytes});
}

/// Default SmartStore configuration used across benches (60 units like the
/// paper's testbed unless a bench sweeps the scale).
inline core::Config default_config(std::size_t units = 60) {
  core::Config cfg;
  cfg.num_units = units;
  cfg.fanout = 8;
  cfg.seed = 42;
  cfg.max_groups_per_query = 4;  // "a single or a minimal number of groups"
  return cfg;
}

/// Occupies `node` of a cluster with background work arriving over
/// [t0, t0 + window): `ops` service episodes of `service_s` each, uniform
/// arrivals. Models the intensified metadata-op stream hitting a server.
inline void inject_load(sim::Cluster& cluster, sim::NodeId node, double t0,
                        double window, std::size_t ops, double service_s) {
  for (std::size_t i = 0; i < ops; ++i) {
    const double arrival =
        t0 + window * static_cast<double>(i) / static_cast<double>(ops);
    sim::Session s = cluster.start_session(node, arrival);
    s.visit(service_s);
  }
}

/// Spreads background work uniformly over all nodes (the decentralized
/// counterpart of inject_load).
inline void inject_spread_load(sim::Cluster& cluster, double t0, double window,
                               std::size_t ops, double service_s) {
  for (std::size_t i = 0; i < ops; ++i) {
    const double arrival =
        t0 + window * static_cast<double>(i) / static_cast<double>(ops);
    sim::Session s = cluster.start_session(i % cluster.size(), arrival);
    s.visit(service_s);
  }
}

struct LatencySummary {
  double mean_s = 0;
  double max_s = 0;
  double total_messages = 0;

  void add(const core::QueryStats& st) {
    mean_s += st.latency_s;
    max_s = std::max(max_s, st.latency_s);
    total_messages += static_cast<double>(st.messages);
    ++n_;
  }
  void finish() {
    if (n_ > 0) mean_s /= static_cast<double>(n_);
  }

 private:
  std::size_t n_ = 0;
};

/// Percentage formatting helper.
inline std::string pct(double x) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f", 100.0 * x);
  return buf;
}

inline void rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace smartstore::bench
