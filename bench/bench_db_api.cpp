// Facade-overhead bench: what does the smartstore::db::Store boundary cost
// over raw core::SmartStore calls, and how fast are facade-level
// open/recover/ingest? Emits BENCH_db.json (scripts/bench_report.sh) so
// the API layer's overhead is tracked from the PR that introduced it.
//
// Three comparisons, same population and insert stream:
//   put     facade Put() (in-memory store: no WAL, so the measured delta
//           is the boundary itself — status plumbing, lifecycle lock,
//           counters) vs raw insert_file on a bare core store;
//   batch   facade Write(WriteBatch of 64) vs raw insert_batch(64);
//   durable facade Put() with the sharded WAL attached vs raw insert_file
//           with hand-wired WAL hooks (the composition Open() replaces).
// Plus the lifecycle numbers embedders plan capacity around: fresh
// Open+Bulkload, Checkpoint, reopen (snapshot load), reopen after a crash
// (snapshot load + shard-merged replay).
//
// Environment knobs: BENCH_SMOKE=1 (tiny sizes), BENCH_INSERTS=N.
// Arguments: --json PATH.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_db_common.h"
#include "core/smartstore.h"
#include "persist/wal_shard.h"
#include "smartstore/smartstore.h"
#include "trace/synth.h"
#include "util/timer.h"

namespace {

using namespace smartstore;
using bench::check;

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

struct Rates {
  double facade_per_sec = 0;
  double raw_per_sec = 0;
  double overhead_pct() const {
    if (facade_per_sec <= 0) return 0;
    return (raw_per_sec / facade_per_sec - 1.0) * 100.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const bool smoke = env_size("BENCH_SMOKE", 0) != 0;
  const std::size_t units = smoke ? 8 : 16;
  const std::size_t inserts = env_size("BENCH_INSERTS", smoke ? 600 : 12000);

  const auto tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/smoke ? 50 : 10);
  const auto stream = tr.make_insert_stream(inserts, 77);

  std::printf(
      "bench_db_api: %zu base files, %zu inserts/run, %zu units\n\n",
      tr.files().size(), stream.size(), units);

  core::Config cfg;
  cfg.num_units = units;
  cfg.seed = 7;

  db::Options mem_options;
  mem_options.num_units = units;
  mem_options.seed = 7;
  mem_options.in_memory = true;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "smartstore_bench_db")
          .string();

  // ---- put: facade boundary cost alone (no WAL on either side) -------------
  Rates put;
  {
    auto opened = db::Store::Open(mem_options, "");
    check(opened.status(), "open in-memory");
    check((*opened)->Bulkload(tr.files()), "bulkload");
    util::WallTimer t;
    for (const auto& f : stream) check((*opened)->Put(f), "put");
    put.facade_per_sec = static_cast<double>(stream.size()) / t.seconds();
  }
  {
    core::SmartStore raw(cfg);
    raw.build(tr.files());
    util::WallTimer t;
    for (const auto& f : stream) raw.insert_file(f, 0.0);
    put.raw_per_sec = static_cast<double>(stream.size()) / t.seconds();
  }

  // ---- batch: Write(64-Put batches) vs insert_batch(64) --------------------
  Rates batch;
  const std::size_t kBatch = 64;
  {
    auto opened = db::Store::Open(mem_options, "");
    check(opened.status(), "open in-memory");
    check((*opened)->Bulkload(tr.files()), "bulkload");
    util::WallTimer t;
    for (std::size_t b = 0; b < stream.size(); b += kBatch) {
      const std::size_t e = std::min(b + kBatch, stream.size());
      db::WriteBatch wb;
      wb.reserve(e - b);
      for (std::size_t i = b; i < e; ++i) wb.Put(stream[i]);
      check((*opened)->Write(std::move(wb)), "write");
    }
    batch.facade_per_sec = static_cast<double>(stream.size()) / t.seconds();
  }
  {
    core::SmartStore raw(cfg);
    raw.build(tr.files());
    util::WallTimer t;
    for (std::size_t b = 0; b < stream.size(); b += kBatch) {
      const std::size_t e = std::min(b + kBatch, stream.size());
      const std::vector<metadata::FileMetadata> chunk(
          stream.begin() + static_cast<std::ptrdiff_t>(b),
          stream.begin() + static_cast<std::ptrdiff_t>(e));
      raw.insert_batch(chunk, 0.0);
    }
    batch.raw_per_sec = static_cast<double>(stream.size()) / t.seconds();
  }

  // ---- durable: Put with WAL shards vs hand-wired core + ShardedWal --------
  Rates durable;
  double open_fresh_s = 0, bulkload_s = 0, checkpoint_s = 0;
  {
    std::filesystem::remove_all(dir);
    db::Options o;
    o.num_units = units;
    o.seed = 7;
    util::WallTimer t;
    auto opened = db::Store::Open(o, dir);
    open_fresh_s = t.seconds();
    check(opened.status(), "open durable");
    t.reset();
    check((*opened)->Bulkload(tr.files()), "bulkload");
    bulkload_s = t.seconds();
    t.reset();
    for (const auto& f : stream) check((*opened)->Put(f), "put");
    check((*opened)->Flush(), "flush");
    durable.facade_per_sec = static_cast<double>(stream.size()) / t.seconds();
    t.reset();
    check((*opened)->Checkpoint(), "checkpoint");
    checkpoint_s = t.seconds();
    check((*opened)->Close(), "close");
  }
  {
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    core::SmartStore raw(cfg);
    raw.build(tr.files());
    persist::ShardedWal wal(dir, units, raw.config().version_ratio);
    util::WallTimer t;
    for (const auto& f : stream) {
      raw.insert_file(
          f, 0.0,
          [&](core::UnitId target) { return wal.append_insert(target, f); },
          [&](core::UnitId target) { wal.maybe_commit(target); });
    }
    wal.commit_all();
    durable.raw_per_sec = static_cast<double>(stream.size()) / t.seconds();
  }

  // ---- lifecycle: reopen (snapshot only) and crash-reopen (replay) ---------
  double reopen_s = 0, crash_reopen_s = 0;
  std::size_t replayed = 0;
  {
    std::filesystem::remove_all(dir);
    db::Options o;
    o.num_units = units;
    o.seed = 7;
    auto opened = db::Store::Open(o, dir);
    check(opened.status(), "open durable");
    check((*opened)->Bulkload(tr.files()), "bulkload");
    check((*opened)->Checkpoint(), "checkpoint");
    check((*opened)->Close(), "close");

    util::WallTimer t;
    auto reopened = db::Store::Open(o, dir);
    check(reopened.status(), "reopen");
    reopen_s = t.seconds();
    for (const auto& f : stream) check((*reopened)->Put(f), "put");
    check((*reopened)->Flush(), "flush");
    (*reopened)->Abandon();  // crash: snapshot + full shard tail on disk

    t.reset();
    auto recovered = db::Store::Open(o, dir);
    check(recovered.status(), "crash reopen");
    crash_reopen_s = t.seconds();
    replayed = (*recovered)->recovery_info().wal_records;
    (*recovered)->Close();
  }
  std::filesystem::remove_all(dir);

  // ---- snapshot scan under writers -----------------------------------------
  // A pinned-snapshot range scan racing a writer thread streaming Puts:
  // the MVCC read path's throughput, plus the stability check the whole
  // design is for (every scan at the pinned seq returns the same rows).
  double snap_scans_per_sec = 0, snap_writer_puts_per_sec = 0;
  std::size_t snap_rows = 0;
  bool snap_stable = true;
  {
    auto opened = db::Store::Open(mem_options, "");
    check(opened.status(), "open in-memory");
    check((*opened)->Bulkload(tr.files()), "bulkload");
    db::Store& store = **opened;

    auto snap = store.GetSnapshot();
    check(snap.status(), "get snapshot");
    db::ReadOptions ro;
    ro.snapshot_seq = snap->sequence();

    metadata::RangeQuery rq;
    rq.dims = metadata::AttrSubset(
        {metadata::Attr::kFileSize, metadata::Attr::kCreationTime});
    rq.lo = la::Vector{-1e30, -1e30};
    rq.hi = la::Vector{1e30, 1e30};
    const auto req = db::QueryRequest::Range(rq);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> writes{0};
    std::thread writer([&] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        check(store.Put(stream[i % stream.size()]), "writer put");
        writes.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });

    auto first = store.Query(req, ro);
    check(first.status(), "snapshot scan");
    snap_rows = first->ids.size();
    const std::size_t kScans = smoke ? 20 : 100;
    util::WallTimer t;
    for (std::size_t s = 0; s < kScans; ++s) {
      auto r = store.Query(req, ro);
      check(r.status(), "snapshot scan");
      if (r->ids != first->ids) snap_stable = false;
    }
    const double scan_s = t.seconds();
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    snap_scans_per_sec = static_cast<double>(kScans) / scan_s;
    snap_writer_puts_per_sec =
        static_cast<double>(writes.load()) / scan_s;
    check(snap_stable
              ? db::Status::OK()
              : db::Status::Corruption("snapshot scan drifted under writes"),
          "snapshot stability");
  }

  std::printf("%-8s %14s %14s %10s\n", "path", "facade/s", "raw/s",
              "overhead");
  std::printf("%-8s %14.0f %14.0f %9.1f%%\n", "put", put.facade_per_sec,
              put.raw_per_sec, put.overhead_pct());
  std::printf("%-8s %14.0f %14.0f %9.1f%%\n", "batch", batch.facade_per_sec,
              batch.raw_per_sec, batch.overhead_pct());
  std::printf("%-8s %14.0f %14.0f %9.1f%%\n", "durable",
              durable.facade_per_sec, durable.raw_per_sec,
              durable.overhead_pct());
  std::printf(
      "\nlifecycle: open(fresh) %.3fs, bulkload %.3fs, checkpoint %.3fs, "
      "reopen %.3fs, crash-reopen %.3fs (%zu records replayed)\n",
      open_fresh_s, bulkload_s, checkpoint_s, reopen_s, crash_reopen_s,
      replayed);
  std::printf(
      "snapshot : %.0f pinned scans/s (%zu rows each, stable=%s) against "
      "%.0f concurrent puts/s\n",
      snap_scans_per_sec, snap_rows, snap_stable ? "yes" : "NO",
      snap_writer_puts_per_sec);
  std::printf(
      "overhead = how much faster the raw core path is; near zero means "
      "the facade boundary is free at this batch size.\n");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"inserts\": %zu,\n  \"units\": %zu,\n",
                 stream.size(), units);
    std::fprintf(f,
                 "  \"put\": {\"facade_per_sec\": %.1f, \"raw_per_sec\": "
                 "%.1f, \"overhead_pct\": %.2f},\n",
                 put.facade_per_sec, put.raw_per_sec, put.overhead_pct());
    std::fprintf(f,
                 "  \"batch\": {\"facade_per_sec\": %.1f, \"raw_per_sec\": "
                 "%.1f, \"overhead_pct\": %.2f},\n",
                 batch.facade_per_sec, batch.raw_per_sec,
                 batch.overhead_pct());
    std::fprintf(f,
                 "  \"durable\": {\"facade_per_sec\": %.1f, "
                 "\"raw_per_sec\": %.1f, \"overhead_pct\": %.2f},\n",
                 durable.facade_per_sec, durable.raw_per_sec,
                 durable.overhead_pct());
    std::fprintf(f,
                 "  \"lifecycle\": {\"open_fresh_s\": %.6f, \"bulkload_s\": "
                 "%.6f, \"checkpoint_s\": %.6f, \"reopen_s\": %.6f, "
                 "\"crash_reopen_s\": %.6f, \"replayed_records\": %zu},\n",
                 open_fresh_s, bulkload_s, checkpoint_s, reopen_s,
                 crash_reopen_s, replayed);
    std::fprintf(f,
                 "  \"snapshot_scan\": {\"scans_per_sec\": %.1f, "
                 "\"rows\": %zu, \"stable\": %s, "
                 "\"concurrent_puts_per_sec\": %.1f}\n}\n",
                 snap_scans_per_sec, snap_rows, snap_stable ? "true" : "false",
                 snap_writer_puts_per_sec);
    std::fclose(f);
    std::printf("json     : wrote %s\n", json_path.c_str());
  }
  return 0;
}
