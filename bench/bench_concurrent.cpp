// Multi-writer ingest throughput and sharded-WAL recovery, driven through
// the smartstore::db::Store facade.
//
// Measures what the striped mutation path + per-unit WAL shards buy:
//
//   1. inserts/sec at 1/2/4/8 writer threads, without WAL (ephemeral
//      in-memory store: routing under the shared structure lock, apply
//      under the target unit's stripe) and with the sharded WAL (each
//      shard group-committing and fsyncing independently — writers routed
//      to different units overlap their durability waits, which is the
//      win even when cores are scarce);
//   2. recovery time from the sharded logs: one Open = snapshot load + N
//      records merged across shards by sequence number and replayed.
//
// Every thread drives the same Store handle with small WriteBatches — the
// facade's documented multi-writer contract, so these numbers ARE the
// embedding API's numbers, not a core-layer best case.
//
// Wall-clock numbers depend on hardware: CPU-bound scaling needs cores
// (std::thread::hardware_concurrency is printed with the results), the
// WAL-bound configuration also needs independent fsyncs to overlap on the
// backing device. Reference: on a 4+-core box with a real disk, 4 writers
// with WAL clear 3x the single-writer rate.
//
// Environment knobs:
//   BENCH_SMOKE=1          tiny sizes (CI smoke: exercises every path)
//   BENCH_GROUP_COMMIT=N   records per fsync per shard (default 4)
//   BENCH_INSERTS=N        override the per-run insert count
// Arguments:
//   --json PATH            additionally emit machine-readable results
//                          (scripts/bench_report.sh -> BENCH_persist.json)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_db_common.h"
#include "smartstore/smartstore.h"
#include "trace/synth.h"
#include "util/timer.h"

namespace {

using namespace smartstore;
using bench::check;
using bench::int_property;

struct IngestResult {
  std::size_t threads = 0;
  bool wal = false;
  double seconds = 0;
  std::size_t inserts = 0;
  double per_sec() const { return static_cast<double>(inserts) / seconds; }
};

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

db::Options make_options(std::size_t units, bool wal_on,
                         std::size_t group_commit) {
  db::Options o;
  o.num_units = units;
  o.seed = 7;
  o.in_memory = !wal_on;
  o.enable_wal = wal_on;
  o.group_commit = group_commit;
  return o;
}

/// One timed ingest run: `threads` writers claim contiguous batches of
/// `stream` and push them through Store::Write. Returns wall-clock seconds.
double run_ingest(db::Store& store,
                  const std::vector<metadata::FileMetadata>& stream,
                  std::size_t threads) {
  const std::size_t batch = 32;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t b = next.fetch_add(batch, std::memory_order_relaxed);
      if (b >= stream.size()) break;
      const std::size_t e = std::min(b + batch, stream.size());
      db::WriteBatch wb;
      wb.reserve(e - b);
      for (std::size_t i = b; i < e; ++i) wb.Put(stream[i]);
      check(store.Write(std::move(wb)), "write");
    }
  };

  util::WallTimer t;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers.emplace_back(worker);
  for (auto& w : workers) w.join();
  // Ephemeral (in-memory) stores have nothing to flush and say so.
  const db::Status fs = store.Flush();
  if (!fs.ok() && !fs.IsFailedPrecondition()) check(fs, "flush");
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
  }

  const bool smoke = env_size("BENCH_SMOKE", 0) != 0;
  const std::size_t units = smoke ? 8 : 16;
  const std::size_t inserts =
      env_size("BENCH_INSERTS", smoke ? 800 : 20000);
  const std::size_t group_commit = env_size("BENCH_GROUP_COMMIT", 4);

  const auto tr = trace::SyntheticTrace::generate(
      trace::msn_profile(), 1, 42, /*downscale=*/smoke ? 50 : 10);
  const auto stream = tr.make_insert_stream(inserts, 77);

  std::printf(
      "bench_concurrent: %zu base files, %zu inserts/run, %zu units, "
      "group commit %zu, hardware threads %u\n\n",
      tr.files().size(), stream.size(), units, group_commit,
      std::thread::hardware_concurrency());

  const std::filesystem::path state =
      std::filesystem::current_path() / "bench_concurrent_state";

  // ---- ingest scaling -------------------------------------------------------
  std::vector<IngestResult> results;
  std::printf("%-8s %-6s %12s %12s %10s\n", "threads", "wal", "seconds",
              "inserts/s", "speedup");
  for (const bool wal_on : {false, true}) {
    double base_per_sec = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      // Fresh deployment per run: identical starting state, no carry-over.
      if (wal_on) std::filesystem::remove_all(state);
      auto opened = db::Store::Open(make_options(units, wal_on, group_commit),
                                    state.string());
      check(opened.status(), "open");
      std::unique_ptr<db::Store> store = std::move(opened).value();
      check(store->Bulkload(tr.files()), "bulkload");

      IngestResult r;
      r.threads = threads;
      r.wal = wal_on;
      r.inserts = stream.size();
      r.seconds = run_ingest(*store, stream, threads);
      if (threads == 1) base_per_sec = r.per_sec();
      std::printf("%-8zu %-6s %12.3f %12.0f %9.2fx\n", r.threads,
                  wal_on ? "on" : "off", r.seconds, r.per_sec(),
                  r.per_sec() / base_per_sec);
      results.push_back(r);
      check(store->Close(), "close");
    }
  }

  // ---- recovery from sharded logs -------------------------------------------
  // Checkpoint the base deployment, ingest the whole stream (4 writers,
  // WAL on), crash, then recover: one Open = snapshot load +
  // sequence-merged shard replay.
  std::filesystem::remove_all(state);
  double recover_seconds = 0;
  std::size_t recovered_records = 0;
  {
    auto opened = db::Store::Open(make_options(units, true, group_commit),
                                  state.string());
    check(opened.status(), "open");
    std::unique_ptr<db::Store> store = std::move(opened).value();
    check(store->Bulkload(tr.files()), "bulkload");
    check(store->Checkpoint(), "checkpoint");
    run_ingest(*store, stream, 4);
    const std::uint64_t expected =
        int_property(*store, "smartstore.total-files");
    store->Abandon();  // crash: acked tail flushed by run_ingest, process
    store.reset();     // state dropped

    util::WallTimer t;
    auto recovered = db::Store::Open(make_options(units, true, group_commit),
                                     state.string());
    check(recovered.status(), "recover");
    recover_seconds = t.seconds();
    recovered_records = (*recovered)->recovery_info().wal_records;
    const std::uint64_t got =
        int_property(**recovered, "smartstore.total-files");
    if (got != expected) {
      std::fprintf(stderr,
                   "recovery mismatch: expected %llu files, got %llu\n",
                   static_cast<unsigned long long>(expected),
                   static_cast<unsigned long long>(got));
      return 1;
    }
    std::printf(
        "\nrecovery : %zu WAL records from %zu shards in %.3f s "
        "(%.0f records/s), %llu files restored\n",
        recovered_records, (*recovered)->recovery_info().wal_shards,
        recover_seconds,
        static_cast<double>(recovered_records) / recover_seconds,
        static_cast<unsigned long long>(got));
    (*recovered)->Close();
  }
  std::filesystem::remove_all(state);

  // results layout: [0..3] wal-off x {1,2,4,8} threads, [4..7] wal-on.
  const double speedup4 =
      results[4].per_sec() > 0 ? results[6].per_sec() / results[4].per_sec()
                               : 0;  // wal-on: 4 threads vs 1
  std::printf(
      "\nsummary  : wal-on 4-writer speedup %.2fx vs 1 writer "
      "(CPU-bound scaling needs cores; fsync overlap carries the rest)\n",
      speedup4);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"hardware_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"group_commit\": %zu,\n  \"ingest\": [\n",
                 group_commit);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const IngestResult& r = results[i];
      std::fprintf(f,
                   "    {\"threads\": %zu, \"wal\": %s, \"inserts\": %zu, "
                   "\"seconds\": %.6f, \"inserts_per_sec\": %.1f}%s\n",
                   r.threads, r.wal ? "true" : "false", r.inserts, r.seconds,
                   r.per_sec(), i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"recovery\": {\"records\": %zu, \"seconds\": "
                 "%.6f}\n}\n",
                 recovered_records, recover_seconds);
    std::fclose(f);
    std::printf("json     : wrote %s\n", json_path.c_str());
  }
  return 0;
}
