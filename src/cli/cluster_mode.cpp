#include "cli/cluster_mode.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "metadata/schema.h"
#include "rpc/socket.h"
#include "rpc/wire.h"
#include "smartstore/smartstore.h"
#include "svc/meta_service.h"
#include "svc/partition.h"
#include "svc/router.h"

namespace smartstore::cli {

namespace {

/// Workload names share app directories (the partition key) so the
/// cluster's semantic co-location is actually exercised: files of one app
/// land on one shard, different apps spread across shards.
std::string workload_name(std::uint64_t seed, std::uint64_t i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/cli/u%03u/app%03u/f%06u.dat",
                static_cast<unsigned>((seed + i) % 5),
                static_cast<unsigned>((seed + i) % 11),
                static_cast<unsigned>(i));
  return buf;
}

metadata::FileMetadata workload_file(std::uint64_t seed, std::uint64_t i) {
  metadata::FileMetadata f;
  f.id = seed * 1'000'000 + i;
  f.name = workload_name(seed, i);
  for (std::size_t a = 0; a < metadata::kNumAttrs; ++a) {
    f.attrs[a] = static_cast<double>((f.id * 31 + a * 7) % 1000);
  }
  return f;
}

/// Writes `port` to `path` atomically (tmp + rename) so a poller never
/// observes a half-written file.
bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int RunServe(const ServeOptions& opt) {
  db::Options options;
  options.num_units = opt.units;
  options.fanout = opt.fanout;
  options.seed = opt.seed + opt.shard_id;
  // Online routing: a remote client cannot compensate for offline
  // routing's point-query false negatives, so a serving shard always
  // answers exactly.
  options.routing = db::Routing::kOnline;
  options.in_memory = opt.dir.empty();
  options.create_if_missing = true;
  if (!options.in_memory) {
    // Acked implies durable: every mutation rides the WAL before the
    // response frame leaves the shard.
    options.enable_wal = true;
    options.group_commit = opt.group_commit > 0 ? opt.group_commit : 1;
  }

  auto opened = db::Store::Open(options, opt.dir);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: shard store open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<db::Store> store = std::move(opened).value();
  if (store->recovery_info().recovered) {
    std::printf("restored : shard state recovered from %s\n",
                opt.dir.c_str());
  }

  svc::MetaServiceOptions service_options;
  service_options.shard_id = opt.shard_id;
  svc::MetaService service(
      store.get(),
      svc::PartitionMap::RoundRobin(opt.num_shards, /*version=*/1),
      service_options);

  rpc::SocketServer server;
  const db::Status started =
      server.Start("127.0.0.1", opt.port, service.handler());
  if (!started.ok()) {
    std::fprintf(stderr, "error: serve failed: %s\n",
                 started.ToString().c_str());
    (void)store->Close();
    return 1;
  }
  if (!opt.port_file.empty() &&
      !write_port_file(opt.port_file, server.port())) {
    std::fprintf(stderr, "error: cannot write port file %s\n",
                 opt.port_file.c_str());
    server.Stop();
    (void)store->Close();
    return 1;
  }
  std::printf("serving  : shard %u/%u on 127.0.0.1:%u (%s)\n", opt.shard_id,
              opt.num_shards, static_cast<unsigned>(server.port()),
              options.in_memory ? "in-memory" : opt.dir.c_str());
  std::fflush(stdout);

  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::seconds(opt.serve_seconds);
  while (opt.serve_seconds == 0 || clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.Stop();
  const db::Status closed = store->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "error: shard close failed: %s\n",
                 closed.ToString().c_str());
    return 1;
  }
  std::printf("stopped  : shard %u/%u\n", opt.shard_id, opt.num_shards);
  return 0;
}

int RunConnect(const ConnectOptions& opt) {
  // Parse "host:port[,host:port...]"; endpoint index = shard id.
  std::vector<std::shared_ptr<rpc::Channel>> channels;
  std::size_t begin = 0;
  while (begin <= opt.endpoints.size()) {
    std::size_t end = opt.endpoints.find(',', begin);
    if (end == std::string::npos) end = opt.endpoints.size();
    const std::string ep = opt.endpoints.substr(begin, end - begin);
    const std::size_t colon = ep.rfind(':');
    const unsigned long port =
        colon == std::string::npos
            ? 0
            : std::strtoul(ep.c_str() + colon + 1, nullptr, 10);
    if (colon == 0 || colon == std::string::npos || port == 0 ||
        port > 65535) {
      std::fprintf(stderr, "error: bad endpoint '%s' (want host:port)\n",
                   ep.c_str());
      return 2;
    }
    channels.push_back(std::make_shared<rpc::SocketChannel>(
        ep.substr(0, colon), static_cast<std::uint16_t>(port)));
    begin = end + 1;
  }

  svc::RouterOptions router_options;
  // A random client id keeps concurrent CLI clients' request ids from
  // colliding in the shards' dedup tables.
  router_options.client_id = std::random_device{}();
  router_options.max_attempts = 16;
  svc::Router router(
      channels,
      svc::PartitionMap::RoundRobin(
          static_cast<std::uint32_t>(channels.size()), /*version=*/1),
      router_options);

  const db::Status fetched = router.FetchMap();
  if (!fetched.ok()) {
    std::fprintf(stderr, "error: no shard answered GetMap: %s\n",
                 fetched.ToString().c_str());
    return 1;
  }
  const svc::PartitionMap map = router.map();
  if (map.num_shards != channels.size()) {
    std::fprintf(stderr,
                 "error: cluster has %u shards but %zu endpoints were "
                 "given — every shard needs its channel\n",
                 map.num_shards, channels.size());
    return 1;
  }
  std::printf("cluster  : %u shards, partition map v%llu\n", map.num_shards,
              static_cast<unsigned long long>(map.version));

  std::size_t acked = 0;
  std::vector<std::string> names;
  names.reserve(opt.puts);
  for (std::uint64_t i = 0; i < opt.puts; ++i) {
    const metadata::FileMetadata f = workload_file(opt.seed, i);
    const db::Status s = router.Put(f);
    if (!s.ok()) {
      std::fprintf(stderr, "error: put %s failed: %s\n", f.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    ++acked;
    names.push_back(f.name);
  }

  std::size_t found = 0;
  for (const std::string& name : names) {
    auto r = router.Point(name);
    if (!r.ok()) {
      std::fprintf(stderr, "error: point %s failed: %s\n", name.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    if (r->count() > 0) ++found;
  }

  const db::Status flushed = router.Flush();
  if (!flushed.ok()) {
    std::fprintf(stderr, "error: flush failed: %s\n",
                 flushed.ToString().c_str());
    return 1;
  }

  const svc::RouterStats rs = router.stats();
  std::printf(
      "workload : %zu puts acked, %zu/%zu points found "
      "(%llu sends, %llu retries, %llu redirects)\n",
      acked, found, names.size(),
      static_cast<unsigned long long>(rs.sends),
      static_cast<unsigned long long>(rs.retries),
      static_cast<unsigned long long>(rs.redirects));
  for (std::uint32_t shard = 0; shard < map.num_shards; ++shard) {
    auto stats = router.Stats(shard);
    if (!stats.ok()) {
      std::fprintf(stderr, "error: stats from shard %u failed: %s\n", shard,
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "shard %-3u: %llu files hosted, %llu puts applied, %llu dup hits, "
        "%llu wrong-shard rejects\n",
        shard, static_cast<unsigned long long>(stats->total_files),
        static_cast<unsigned long long>(stats->applied_puts),
        static_cast<unsigned long long>(stats->dup_hits),
        static_cast<unsigned long long>(stats->wrong_shard));
  }

  if (found != names.size()) {
    std::fprintf(stderr, "error: %zu acked puts were not found back\n",
                 names.size() - found);
    return 1;
  }
  return 0;
}

}  // namespace smartstore::cli
