#!/usr/bin/env bash
# End-to-end smoke of the CLI's cluster modes: two --serve processes (one
# durable shard each, ephemeral ports published through --port-file) and
# one --connect client that must ack every put and find every one back.
#
#   cluster_smoke.sh <path-to-smartstore_cli> <scratch-dir>
set -euo pipefail

CLI="$1"
DIR="$2"

rm -rf "$DIR"
mkdir -p "$DIR"

pids=()
cleanup() {
  kill "${pids[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

N=2
for k in $(seq 0 $((N - 1))); do
  # --serve-seconds is a watchdog: the trap kills the servers long before.
  "$CLI" --serve "$DIR/shard-$k" --shard "$k/$N" --port 0 \
         --port-file "$DIR/port-$k" --serve-seconds 120 --units 4 &
  pids+=($!)
done

endpoints=""
for k in $(seq 0 $((N - 1))); do
  for _ in $(seq 1 100); do
    [ -s "$DIR/port-$k" ] && break
    sleep 0.1
  done
  if [ ! -s "$DIR/port-$k" ]; then
    echo "error: shard $k never published a port" >&2
    exit 1
  fi
  endpoints="$endpoints${endpoints:+,}127.0.0.1:$(cat "$DIR/port-$k")"
done

"$CLI" --connect "$endpoints" --puts 40 --seed 7
