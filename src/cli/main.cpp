// smartstore_cli: command-line driver for the SmartStore metadata system.
//
// Loads one of the paper's synthetic trace profiles (HP / MSN / EECS),
// builds a SmartStore deployment over it, and replays batches of point,
// range and top-k queries end-to-end, reporting result counts and the
// simulated latency/message/hop accounting. This is the user-facing entry
// point for workload scenarios: every knob the experiments vary (trace,
// TIF, unit count, routing mode, query distribution) is a flag.
//
// Deployments persist across runs: --save snapshots the built store into a
// directory, --load restores it (skipping the expensive SVD/k-means/tree
// build) and replays any write-ahead log found there, --wal logs dynamic
// inserts (--churn) so a crash loses at most one group-commit batch. The
// log is sharded — one v03 log per storage unit under DIR/wal/ — so
// concurrent writers commit and fsync independently; --ingest-threads N
// partitions the churn stream across N writer threads (insert_batch), and
// --group-commit M tunes records-per-fsync per shard. --bg-checkpoint N
// checkpoints in the background every N churn inserts while the insert
// stream keeps running (epoch freeze + copy-on-write); --crash-at K kills
// the K-th persistence write boundary the run crosses, for exercising
// recovery by hand.
//
//   smartstore_cli --trace msn --units 20 --point 200 --range 50 --topk 50
//   smartstore_cli --trace hp --save state/          # build once, persist
//   smartstore_cli --trace hp --load state/ --point 200   # restart, no build
//   smartstore_cli --trace hp --load state/ --churn 5000
//       --save state/ --bg-checkpoint 1000       # checkpoint under load
//   smartstore_cli --trace hp --churn 20000 --ingest-threads 4
//       --wal state/ --group-commit 64           # parallel durable ingest
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/smartstore.h"
#include "metadata/query.h"
#include "persist/bg_checkpoint.h"
#include "persist/fault.h"
#include "persist/recovery.h"
#include "persist/wal_shard.h"
#include "trace/profiles.h"
#include "trace/query_gen.h"
#include "trace/synth.h"
#include "util/bytes.h"
#include "util/thread_pool.h"

namespace {

using namespace smartstore;

struct Options {
  trace::TraceKind kind = trace::TraceKind::kMSN;
  unsigned tif = 1;
  unsigned downscale = 5;
  std::size_t units = 20;
  std::size_t fanout = 8;
  core::Routing routing = core::Routing::kOffline;
  trace::QueryDistribution dist = trace::QueryDistribution::kZipf;
  std::size_t point_queries = 200;
  std::size_t range_queries = 50;
  std::size_t topk_queries = 50;
  std::size_t k = 8;
  std::uint64_t seed = 42;
  std::size_t churn = 0;
  std::size_t ingest_threads = 1;  ///< writer threads over the churn stream
  std::size_t group_commit = 0;    ///< WAL records per fsync (0 = default)
  std::string save_dir;
  std::string load_dir;
  std::string wal_dir;
  std::size_t bg_checkpoint = 0;  ///< checkpoint every N churn inserts
  std::size_t crash_at = 0;       ///< fault-injection point to die at
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Builds a SmartStore over a synthetic trace and replays query batches.\n"
      "\n"
      "options:\n"
      "  --trace hp|msn|eecs        trace profile (default msn)\n"
      "  --tif N                    trace intensifying factor (default 1)\n"
      "  --downscale N              population downscale divisor (default 5)\n"
      "  --units N                  storage units (default 20)\n"
      "  --fanout N                 semantic R-tree fanout M (default 8)\n"
      "  --routing online|offline   query routing mode (default offline)\n"
      "  --dist uniform|gauss|zipf  query distribution (default zipf)\n"
      "  --point N                  point queries to run (default 200)\n"
      "  --range N                  range queries to run (default 50)\n"
      "  --topk N                   top-k queries to run (default 50)\n"
      "  --k K                      k for top-k queries (default 8)\n"
      "  --seed S                   rng seed (default 42)\n"
      "  --churn N                  insert N extra files before querying\n"
      "  --ingest-threads N         writer threads over the churn stream\n"
      "                             (default 1; inserts are batched per\n"
      "                             thread through insert_batch)\n"
      "  --group-commit M           WAL records per group-commit fsync,\n"
      "                             per shard (default: version ratio)\n"
      "  --save DIR                 snapshot the deployment into DIR\n"
      "  --load DIR                 restore DIR's snapshot (+ WAL replay)\n"
      "                             instead of building; trace flags must\n"
      "                             match the saved deployment's\n"
      "  --wal DIR                  write-ahead-log churn inserts in DIR\n"
      "                             (sharded: one log per unit in DIR/wal/)\n"
      "  --bg-checkpoint N          checkpoint in the background every N\n"
      "                             churn inserts while inserting continues\n"
      "                             (requires --save; the WAL lives there)\n"
      "  --crash-at K               kill the K-th persistence write boundary\n"
      "                             (exit 3); recover with --load afterwards\n"
      "  --help                     this message\n",
      argv0);
}

/// Parses argv into Options; exits with a message on malformed input.
Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto parse_size = [&](int i) {
    const char* v = need_value(i);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    // strtoull accepts "-5" via unsigned wraparound; require a leading digit.
    if (!std::isdigit(static_cast<unsigned char>(v[0])) || end == v ||
        *end != '\0') {
      std::fprintf(stderr, "error: %s expects a number, got '%s'\n", argv[i], v);
      std::exit(2);
    }
    return static_cast<std::uint64_t>(n);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--trace") {
      const std::string v = need_value(i++);
      if (v == "hp") opt.kind = trace::TraceKind::kHP;
      else if (v == "msn") opt.kind = trace::TraceKind::kMSN;
      else if (v == "eecs") opt.kind = trace::TraceKind::kEECS;
      else {
        std::fprintf(stderr, "error: unknown trace '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--routing") {
      const std::string v = need_value(i++);
      if (v == "online") opt.routing = core::Routing::kOnline;
      else if (v == "offline") opt.routing = core::Routing::kOffline;
      else {
        std::fprintf(stderr, "error: unknown routing '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--dist") {
      const std::string v = need_value(i++);
      if (v == "uniform") opt.dist = trace::QueryDistribution::kUniform;
      else if (v == "gauss") opt.dist = trace::QueryDistribution::kGauss;
      else if (v == "zipf") opt.dist = trace::QueryDistribution::kZipf;
      else {
        std::fprintf(stderr, "error: unknown distribution '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--tif") {
      opt.tif = static_cast<unsigned>(parse_size(i++));
    } else if (a == "--downscale") {
      opt.downscale = static_cast<unsigned>(parse_size(i++));
    } else if (a == "--units") {
      opt.units = parse_size(i++);
    } else if (a == "--fanout") {
      opt.fanout = parse_size(i++);
    } else if (a == "--point") {
      opt.point_queries = parse_size(i++);
    } else if (a == "--range") {
      opt.range_queries = parse_size(i++);
    } else if (a == "--topk") {
      opt.topk_queries = parse_size(i++);
    } else if (a == "--k") {
      opt.k = parse_size(i++);
    } else if (a == "--seed") {
      opt.seed = parse_size(i++);
    } else if (a == "--churn") {
      opt.churn = parse_size(i++);
    } else if (a == "--ingest-threads") {
      opt.ingest_threads = parse_size(i++);
    } else if (a == "--group-commit") {
      opt.group_commit = parse_size(i++);
    } else if (a == "--save") {
      opt.save_dir = need_value(i++);
    } else if (a == "--load") {
      opt.load_dir = need_value(i++);
    } else if (a == "--wal") {
      opt.wal_dir = need_value(i++);
    } else if (a == "--bg-checkpoint") {
      opt.bg_checkpoint = parse_size(i++);
    } else if (a == "--crash-at") {
      opt.crash_at = parse_size(i++);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage(argv[0]);
      std::exit(2);
    }
  }
  if (opt.tif == 0 || opt.downscale == 0 || opt.units == 0 || opt.k == 0) {
    std::fprintf(stderr, "error: --tif/--downscale/--units/--k must be > 0\n");
    std::exit(2);
  }
  if (opt.ingest_threads == 0) {
    std::fprintf(stderr, "error: --ingest-threads must be > 0\n");
    std::exit(2);
  }
  if (opt.bg_checkpoint > 0) {
    if (opt.save_dir.empty()) {
      std::fprintf(stderr, "error: --bg-checkpoint requires --save DIR\n");
      std::exit(2);
    }
    if (!opt.wal_dir.empty() && opt.wal_dir != opt.save_dir) {
      std::fprintf(stderr,
                   "error: --bg-checkpoint pairs the WAL with the --save "
                   "directory; drop --wal or point it at the same DIR\n");
      std::exit(2);
    }
    opt.wal_dir = opt.save_dir;
  }
  return opt;
}

/// Running sums of per-query accounting for one batch.
struct BatchTotals {
  std::size_t queries = 0;
  std::size_t successes = 0;  ///< found (point) / non-empty (range, top-k)
  std::size_t results = 0;
  double latency_s = 0;
  std::uint64_t messages = 0;
  std::uint64_t hops = 0;

  void add(const core::QueryStats& s, std::size_t nresults) {
    ++queries;
    if (nresults > 0) ++successes;
    results += nresults;
    latency_s += s.latency_s;
    messages += s.messages;
    hops += s.hops;
  }

  void print(const char* what) const {
    if (queries == 0) return;
    const double n = static_cast<double>(queries);
    std::printf(
        "%-6s %6zu queries | %5.1f%% hit | %6.2f results/q | "
        "%8.3f ms/q | %6.1f msgs/q | %5.1f hops/q\n",
        what, queries, 100.0 * static_cast<double>(successes) / n,
        static_cast<double>(results) / n, latency_s / n * 1e3,
        static_cast<double>(messages) / n, static_cast<double>(hops) / n);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  const auto profile = trace::profile_for(opt.kind);
  std::printf("trace   : %s (TIF %u, downscale %u, seed %llu)\n",
              profile.name.c_str(), opt.tif, opt.downscale,
              static_cast<unsigned long long>(opt.seed));
  const auto tr =
      trace::SyntheticTrace::generate(profile, opt.tif, opt.seed, opt.downscale);
  std::printf("population: %zu files, %zu trace ops\n", tr.files().size(),
              tr.ops().size());

  if (opt.crash_at > 0) persist::fault_arm(opt.crash_at);

  std::unique_ptr<core::SmartStore> store;
  // Declared outside the try so the crash handler can freeze the on-disk
  // state (abandon the WAL handles, drain the worker) instead of letting
  // destructors finish durability work the simulated power cut interrupted.
  std::unique_ptr<persist::ShardedWal> wal;
  std::unique_ptr<util::ThreadPool> pool;
  std::unique_ptr<persist::BackgroundCheckpointer> bg;
  try {
    if (!opt.load_dir.empty()) {
      auto rec = persist::recover(opt.load_dir);
      store = std::move(rec.store);
      std::printf("restored : snapshot %s, %zu WAL records replayed "
                  "(%zu blocks, %zu fenced, %zu shards)%s\n",
                  persist::snapshot_path(opt.load_dir).c_str(),
                  rec.wal_records, rec.wal_blocks, rec.wal_fenced,
                  rec.wal_shards,
                  rec.wal_tail_torn ? ", torn tail dropped" : "");
    } else {
      core::Config cfg;
      cfg.num_units = opt.units;
      cfg.fanout = opt.fanout;
      cfg.seed = opt.seed;
      store = std::make_unique<core::SmartStore>(cfg);
      store->build(tr.files());
    }

    if (!opt.wal_dir.empty()) {
      std::filesystem::create_directories(opt.wal_dir);
      wal = std::make_unique<persist::ShardedWal>(
          opt.wal_dir, store->units().size(),
          opt.group_commit > 0 ? opt.group_commit
                               : store->config().version_ratio);
    }

    if (opt.bg_checkpoint > 0) {
      pool = std::make_unique<util::ThreadPool>(2);
      bg = std::make_unique<persist::BackgroundCheckpointer>(
          *store, opt.save_dir, *wal, *pool);
    }

    if (opt.churn > 0) {
      const auto stream = tr.make_insert_stream(opt.churn, opt.seed + 99);
      // Writer threads claim contiguous batches of the stream and push
      // them through insert_batch (hooked into the sharded WAL when one is
      // open). An injected fault in any thread "crashes the process": the
      // first exception wins, the others drain.
      const std::size_t nthreads = std::min(opt.ingest_threads, stream.size());
      const std::size_t batch =
          std::max<std::size_t>(1, std::min<std::size_t>(64, stream.size() /
                                                                 (nthreads * 4)
                                                             + 1));
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::atomic<bool> stop{false};
      std::mutex err_mu;
      std::exception_ptr first_error;
      auto worker = [&] {
        try {
          while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t begin =
                next.fetch_add(batch, std::memory_order_relaxed);
            if (begin >= stream.size()) break;
            const std::size_t end = std::min(begin + batch, stream.size());
            if (bg) {
              for (std::size_t i = begin; i < end; ++i) bg->insert(stream[i]);
            } else {
              const std::vector<metadata::FileMetadata> chunk(
                  stream.begin() + static_cast<std::ptrdiff_t>(begin),
                  stream.begin() + static_cast<std::ptrdiff_t>(end));
              if (wal) {
                // The append hook fires once per file, in chunk order, on
                // this thread, under the routed unit's lock — the cursor
                // pairs each callback with its file; the flush hook runs
                // the group-commit fsync after the lock is released.
                std::size_t cursor = 0;
                store->insert_batch(
                    chunk, 0.0,
                    [&](core::UnitId target) {
                      wal->append_insert(target, chunk[cursor++]);
                    },
                    [&](core::UnitId target) { wal->maybe_commit(target); });
              } else {
                store->insert_batch(chunk, 0.0);
              }
            }
            done.fetch_add(end - begin, std::memory_order_release);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
          stop.store(true, std::memory_order_relaxed);
        }
      };
      std::vector<std::thread> writers;
      writers.reserve(nthreads);
      for (std::size_t t = 0; t < nthreads; ++t) writers.emplace_back(worker);

      // Checkpoint cadence, driven from the main thread against overall
      // progress (the writer threads never block on it). Without a
      // checkpointer there is nothing to pace — just join, rather than
      // burn a core polling next to the writers.
      std::size_t triggered = 0, last_trigger = 0;
      if (bg && opt.bg_checkpoint > 0) {
        while (done.load(std::memory_order_acquire) < stream.size() &&
               !stop.load(std::memory_order_relaxed)) {
          const std::size_t progress = done.load(std::memory_order_acquire);
          if (progress - last_trigger >= opt.bg_checkpoint && bg->trigger()) {
            last_trigger = progress;
            ++triggered;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      for (auto& t : writers) t.join();
      if (first_error) std::rethrow_exception(first_error);
      if (bg) {
        bg->wait();  // surface any failure of the last in-flight checkpoint
      } else if (wal) {
        wal->commit_all();
      }
      std::printf(
          "churn    : %zu files inserted (%zu thread%s)%s\n", stream.size(),
          nthreads, nthreads == 1 ? "" : "s",
          bg ? " (write-ahead logged, background checkpoints)"
             : (wal ? " (write-ahead logged, sharded)" : ""));
      if (bg && triggered > 0) {
        const auto& st = bg->last_stats();
        std::printf(
            "bg ckpt  : %llu background checkpoints (%llu mutations rode "
            "along, %llu COW copies); last: freeze %.1f ms, write %.1f ms, "
            "truncate %.1f ms, %s\n",
            static_cast<unsigned long long>(bg->completed()),
            static_cast<unsigned long long>(bg->total_mutations_during()),
            static_cast<unsigned long long>(bg->total_cow_copies()),
            st.freeze_s * 1e3, st.write_s * 1e3, st.truncate_s * 1e3,
            util::format_bytes(st.snapshot_bytes).c_str());
      }
    }
    if (!opt.save_dir.empty()) {
      // The sharded-WAL checkpoint pairs the fence with the shards only
      // when the writer owns the save directory's logs; a WAL pointed at
      // a different directory is left untouched (its records pair with
      // THAT directory's snapshot — the legacy contract).
      std::error_code wal_ec;
      const bool wal_owns_save =
          wal && std::filesystem::weakly_canonical(wal->dir(), wal_ec) ==
                     std::filesystem::weakly_canonical(
                         persist::ShardedWal::shard_dir(opt.save_dir),
                         wal_ec);
      if (bg) {
        // Final checkpoint through the same background protocol, so the
        // published snapshot covers the whole churn stream.
        if (bg->trigger()) bg->wait();
      } else if (wal_owns_save) {
        persist::checkpoint(*store, opt.save_dir, *wal);
      } else {
        persist::checkpoint(*store, opt.save_dir);
      }
      std::printf("snapshot : saved to %s (%s)\n",
                  persist::snapshot_path(opt.save_dir).c_str(),
                  util::format_bytes(
                      std::filesystem::file_size(
                          persist::snapshot_path(opt.save_dir)))
                      .c_str());
    }
  } catch (const persist::FaultInjected& e) {
    // Freeze the crash state: an in-flight checkpoint that already passed
    // its own boundaries is allowed to land (a crash an instant later),
    // but pending WAL batches must NOT be committed by destructors —
    // those records were never acknowledged as durable.
    if (bg) {
      try {
        bg->wait();
      } catch (const std::exception&) {
        // The worker's own injected fault, already accounted for.
      }
    }
    if (wal) wal->abandon();
    std::printf("crash injected: %s (fault point %zu)\n", e.what(),
                opt.crash_at);
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: persistence failure: %s\n", e.what());
    return 1;
  }

  std::printf(
      "deployment: %zu storage units, %zu index units, tree height %d, "
      "%zu first-level groups, %s routing\n\n",
      store->units().size(), store->tree().num_nodes(), store->tree().height(),
      store->tree().groups().size(),
      opt.routing == core::Routing::kOnline ? "on-line" : "off-line");

  trace::QueryGenerator gen(tr, opt.dist, opt.seed + 1);
  const auto dims = metadata::AttrSubset::all();

  BatchTotals point, range, topk;
  for (std::size_t i = 0; i < opt.point_queries; ++i) {
    const auto r = store->point_query(gen.gen_point(), opt.routing, 0.0);
    point.add(r.stats, r.found ? 1 : 0);
  }
  for (std::size_t i = 0; i < opt.range_queries; ++i) {
    const auto r = store->range_query(gen.gen_range(dims), opt.routing, 0.0);
    range.add(r.stats, r.ids.size());
  }
  for (std::size_t i = 0; i < opt.topk_queries; ++i) {
    const auto r =
        store->topk_query(gen.gen_topk(dims, opt.k), opt.routing, 0.0);
    topk.add(r.stats, r.hits.size());
  }

  std::printf("query batches (%s distribution):\n",
              trace::distribution_name(opt.dist));
  point.print("point");
  range.print("range");
  topk.print("top-k");

  const auto space = store->avg_unit_space();
  std::printf(
      "\nper-unit space: metadata %zu B, hosted index %zu B, replicas %zu B, "
      "versions %zu B (total %zu B)\n",
      space.metadata_bytes, space.index_bytes, space.replica_bytes,
      space.version_bytes, space.total());
  return 0;
}
