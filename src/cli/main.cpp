// smartstore_cli: command-line driver for the SmartStore metadata system.
//
// Loads one of the paper's synthetic trace profiles (HP / MSN / EECS),
// opens a smartstore::db::Store over it, and replays batches of point,
// range and top-k queries end-to-end, reporting result counts and the
// simulated latency/message/hop accounting. This is the user-facing entry
// point for workload scenarios: every knob the experiments vary (trace,
// TIF, unit count, routing mode, query distribution) is a flag.
//
// All durability wiring goes through the Store facade: --save/--load/--wal
// name the data directory (when more than one is given they must agree —
// a deployment lives in ONE directory), Open() recovers whatever snapshot
// + WAL shards it finds there, --churn N inserts ride the sharded WAL,
// --ingest-threads N fans the churn batch across writer threads inside
// Write(), --group-commit M tunes records-per-fsync per shard, and
// --bg-checkpoint N sets the background-checkpoint cadence (a snapshot
// every N acknowledged mutations, concurrent with the insert stream).
// --crash-at K arms the K-th persistence write boundary to simulate a
// power cut (exit 3); recover by re-running with --load.
//
//   smartstore_cli --trace msn --units 20 --point 200 --range 50 --topk 50
//   smartstore_cli --trace hp --save state/          # build once, persist
//   smartstore_cli --trace hp --load state/ --point 200   # restart, no build
//   smartstore_cli --trace hp --load state/ --churn 5000
//       --save state/ --bg-checkpoint 1000       # checkpoint under load
//   smartstore_cli --trace hp --churn 20000 --ingest-threads 4
//       --wal state/ --group-commit 64           # parallel durable ingest
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli/cluster_mode.h"
#include "smartstore/smartstore.h"
#include "trace/profiles.h"
#include "trace/query_gen.h"
#include "trace/synth.h"
#include "util/bytes.h"

namespace {

using namespace smartstore;

struct CliOptions {
  trace::TraceKind kind = trace::TraceKind::kMSN;
  unsigned tif = 1;
  unsigned downscale = 5;
  std::size_t units = 20;
  std::size_t fanout = 8;
  db::Routing routing = db::Routing::kOffline;
  trace::QueryDistribution dist = trace::QueryDistribution::kZipf;
  std::size_t point_queries = 200;
  std::size_t range_queries = 50;
  std::size_t topk_queries = 50;
  std::size_t k = 8;
  std::uint64_t seed = 42;
  std::size_t churn = 0;
  std::size_t ingest_threads = 1;  ///< writer threads over the churn stream
  std::size_t group_commit = 0;    ///< WAL records per fsync (0 = default)
  std::string save_dir;
  std::string load_dir;
  std::string wal_dir;
  std::size_t bg_checkpoint = 0;  ///< checkpoint every N churn inserts
  bool full_checkpoints = false;  ///< disable incremental (delta) mode
  std::size_t compaction_trigger = 4;       ///< fold past N chained cuts
  std::uint64_t compaction_bytes = 64ull << 20;  ///< ...or N delta bytes
  bool compact = false;           ///< fold the delta chain before querying
  std::size_t crash_at = 0;       ///< fault-injection point to die at
  bool time_travel = false;       ///< --query-as-of given
  std::uint64_t as_of_seq = 0;    ///< commit seq the query batches scan at

  // Distributed modes (cluster_mode.h). --serve and --connect are
  // mutually exclusive with each other and with the workload flow above.
  bool serve = false;
  cli::ServeOptions serve_opt;
  bool connect = false;
  cli::ConnectOptions connect_opt;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Builds a SmartStore over a synthetic trace and replays query batches.\n"
      "\n"
      "options:\n"
      "  --trace hp|msn|eecs        trace profile (default msn)\n"
      "  --tif N                    trace intensifying factor (default 1)\n"
      "  --downscale N              population downscale divisor (default 5)\n"
      "  --units N                  storage units (default 20)\n"
      "  --fanout N                 semantic R-tree fanout M (default 8)\n"
      "  --routing online|offline   query routing mode (default offline)\n"
      "  --dist uniform|gauss|zipf  query distribution (default zipf)\n"
      "  --point N                  point queries to run (default 200)\n"
      "  --range N                  range queries to run (default 50)\n"
      "  --topk N                   top-k queries to run (default 50)\n"
      "  --k K                      k for top-k queries (default 8)\n"
      "  --seed S                   rng seed (default 42)\n"
      "  --churn N                  insert N extra files before querying\n"
      "  --ingest-threads N         writer threads the facade fans the churn\n"
      "                             batch across (default 1)\n"
      "  --group-commit M           WAL records per group-commit fsync,\n"
      "                             per shard (default: version ratio)\n"
      "  --save DIR                 checkpoint the deployment into DIR\n"
      "  --load DIR                 restore DIR's snapshot (+ WAL replay)\n"
      "                             instead of building; trace flags must\n"
      "                             match the saved deployment's\n"
      "  --wal DIR                  write-ahead-log churn inserts in DIR\n"
      "                             (sharded: one log per unit in DIR/wal/)\n"
      "  --bg-checkpoint N          checkpoint in the background every N\n"
      "                             churn inserts while inserting continues\n"
      "                             (requires --save; the WAL lives there)\n"
      "  --full-checkpoints         write full snapshot images instead of\n"
      "                             incremental WAL-delta cuts (the\n"
      "                             pre-delta behavior)\n"
      "  --compaction-trigger N     fold the delta chain into a fresh base\n"
      "                             past N chained cuts (default 4; 0 =\n"
      "                             never by length)\n"
      "  --compaction-bytes N       ...or past N chained delta bytes\n"
      "                             (default 64 MiB; 0 = never by bytes)\n"
      "  --compact                  fold the whole delta chain into a\n"
      "                             fresh base image after the churn phase\n"
      "  --crash-at K               kill the K-th persistence write boundary\n"
      "                             (exit 3); recover with --load afterwards\n"
      "  --query-as-of SEQ          time travel: run the query batches as\n"
      "                             exact snapshot scans at commit seq SEQ\n"
      "                             instead of routed reads at latest; a\n"
      "                             seq survives --load, so a historical\n"
      "                             view replays across checkpoint and\n"
      "                             restart boundaries\n"
      "\n"
      "  --save/--load/--wal name the same deployment directory when more\n"
      "  than one is given (a Store owns exactly one directory).\n"
      "\n"
      "cluster modes (exclusive with the workload flags above):\n"
      "  --serve DIR                serve one shard of a metadata-service\n"
      "                             cluster from DIR (created if missing;\n"
      "                             'mem' serves an in-memory shard)\n"
      "  --shard k/N                this shard's index and the cluster\n"
      "                             size (default 0/1)\n"
      "  --port P                   TCP port to bind (default 0 =\n"
      "                             ephemeral)\n"
      "  --port-file FILE           write the bound port to FILE\n"
      "  --serve-seconds S          stop serving after S seconds\n"
      "                             (default 0 = until killed)\n"
      "  --connect EPS              run the client workload against a\n"
      "                             cluster; EPS is host:port[,host:port...]\n"
      "                             with one endpoint per shard, in shard\n"
      "                             order\n"
      "  --puts N                   client workload size (default 64)\n"
      "  --units/--fanout/--seed/--group-commit also shape --serve's store;\n"
      "  --seed also varies --connect's workload names.\n"
      "\n"
      "  --help                     this message\n",
      argv0);
}

/// Parses argv into CliOptions; exits with a message on malformed input.
CliOptions parse_args(int argc, char** argv) {
  CliOptions opt;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s needs a value\n", argv[i]);
      std::exit(2);
    }
    return argv[i + 1];
  };
  auto parse_size = [&](int i) {
    const char* v = need_value(i);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    // strtoull accepts "-5" via unsigned wraparound; require a leading digit.
    if (!std::isdigit(static_cast<unsigned char>(v[0])) || end == v ||
        *end != '\0') {
      std::fprintf(stderr, "error: %s expects a number, got '%s'\n", argv[i], v);
      std::exit(2);
    }
    return static_cast<std::uint64_t>(n);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (a == "--trace") {
      const std::string v = need_value(i++);
      if (v == "hp") opt.kind = trace::TraceKind::kHP;
      else if (v == "msn") opt.kind = trace::TraceKind::kMSN;
      else if (v == "eecs") opt.kind = trace::TraceKind::kEECS;
      else {
        std::fprintf(stderr, "error: unknown trace '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--routing") {
      const std::string v = need_value(i++);
      if (v == "online") opt.routing = db::Routing::kOnline;
      else if (v == "offline") opt.routing = db::Routing::kOffline;
      else {
        std::fprintf(stderr, "error: unknown routing '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--dist") {
      const std::string v = need_value(i++);
      if (v == "uniform") opt.dist = trace::QueryDistribution::kUniform;
      else if (v == "gauss") opt.dist = trace::QueryDistribution::kGauss;
      else if (v == "zipf") opt.dist = trace::QueryDistribution::kZipf;
      else {
        std::fprintf(stderr, "error: unknown distribution '%s'\n", v.c_str());
        std::exit(2);
      }
    } else if (a == "--tif") {
      opt.tif = static_cast<unsigned>(parse_size(i++));
    } else if (a == "--downscale") {
      opt.downscale = static_cast<unsigned>(parse_size(i++));
    } else if (a == "--units") {
      opt.units = parse_size(i++);
    } else if (a == "--fanout") {
      opt.fanout = parse_size(i++);
    } else if (a == "--point") {
      opt.point_queries = parse_size(i++);
    } else if (a == "--range") {
      opt.range_queries = parse_size(i++);
    } else if (a == "--topk") {
      opt.topk_queries = parse_size(i++);
    } else if (a == "--k") {
      opt.k = parse_size(i++);
    } else if (a == "--seed") {
      opt.seed = parse_size(i++);
    } else if (a == "--churn") {
      opt.churn = parse_size(i++);
    } else if (a == "--ingest-threads") {
      opt.ingest_threads = parse_size(i++);
    } else if (a == "--group-commit") {
      opt.group_commit = parse_size(i++);
    } else if (a == "--save") {
      opt.save_dir = need_value(i++);
    } else if (a == "--load") {
      opt.load_dir = need_value(i++);
    } else if (a == "--wal") {
      opt.wal_dir = need_value(i++);
    } else if (a == "--bg-checkpoint") {
      opt.bg_checkpoint = parse_size(i++);
    } else if (a == "--full-checkpoints") {
      opt.full_checkpoints = true;
    } else if (a == "--compaction-trigger") {
      opt.compaction_trigger = parse_size(i++);
    } else if (a == "--compaction-bytes") {
      opt.compaction_bytes = parse_size(i++);
    } else if (a == "--compact") {
      opt.compact = true;
    } else if (a == "--crash-at") {
      opt.crash_at = parse_size(i++);
    } else if (a == "--query-as-of") {
      opt.time_travel = true;
      opt.as_of_seq = parse_size(i++);
    } else if (a == "--serve") {
      opt.serve = true;
      const std::string v = need_value(i++);
      opt.serve_opt.dir = (v == "mem") ? "" : v;
    } else if (a == "--shard") {
      const char* v = need_value(i++);
      unsigned k = 0;
      unsigned n = 0;
      if (std::sscanf(v, "%u/%u", &k, &n) != 2 || n == 0 || k >= n) {
        std::fprintf(stderr, "error: --shard expects k/N with k < N, got '%s'\n",
                     v);
        std::exit(2);
      }
      opt.serve_opt.shard_id = k;
      opt.serve_opt.num_shards = n;
    } else if (a == "--port") {
      const std::uint64_t p = parse_size(i++);
      if (p > 65535) {
        std::fprintf(stderr, "error: --port must be <= 65535\n");
        std::exit(2);
      }
      opt.serve_opt.port = static_cast<std::uint16_t>(p);
    } else if (a == "--port-file") {
      opt.serve_opt.port_file = need_value(i++);
    } else if (a == "--serve-seconds") {
      opt.serve_opt.serve_seconds = parse_size(i++);
    } else if (a == "--connect") {
      opt.connect = true;
      opt.connect_opt.endpoints = need_value(i++);
    } else if (a == "--puts") {
      opt.connect_opt.puts = parse_size(i++);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", a.c_str());
      usage(argv[0]);
      std::exit(2);
    }
  }
  if (opt.serve && opt.connect) {
    std::fprintf(stderr,
                 "error: --serve and --connect are separate processes\n");
    std::exit(2);
  }
  if ((opt.serve || opt.connect) &&
      (!opt.save_dir.empty() || !opt.load_dir.empty() ||
       !opt.wal_dir.empty())) {
    std::fprintf(stderr,
                 "error: cluster modes take --serve DIR, not "
                 "--save/--load/--wal\n");
    std::exit(2);
  }
  if (opt.tif == 0 || opt.downscale == 0 || opt.units == 0 || opt.k == 0) {
    std::fprintf(stderr, "error: --tif/--downscale/--units/--k must be > 0\n");
    std::exit(2);
  }
  if (opt.ingest_threads == 0) {
    std::fprintf(stderr, "error: --ingest-threads must be > 0\n");
    std::exit(2);
  }
  if (opt.bg_checkpoint > 0 && opt.save_dir.empty()) {
    std::fprintf(stderr, "error: --bg-checkpoint requires --save DIR\n");
    std::exit(2);
  }
  // One deployment, one directory: every persistence flag given must agree.
  const std::string* dirs[] = {&opt.save_dir, &opt.load_dir, &opt.wal_dir};
  std::string chosen;
  for (const std::string* d : dirs) {
    if (d->empty()) continue;
    if (chosen.empty()) {
      chosen = *d;
    } else if (*d != chosen) {
      std::fprintf(stderr,
                   "error: --save/--load/--wal must name the same directory "
                   "('%s' vs '%s')\n",
                   chosen.c_str(), d->c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Running sums of per-query accounting for one batch.
struct BatchTotals {
  std::size_t queries = 0;
  std::size_t successes = 0;  ///< found (point) / non-empty (range, top-k)
  std::size_t results = 0;
  double latency_s = 0;
  std::uint64_t messages = 0;
  std::uint64_t hops = 0;

  void add(const db::QueryStats& s, std::size_t nresults) {
    ++queries;
    if (nresults > 0) ++successes;
    results += nresults;
    latency_s += s.latency_s;
    messages += s.messages;
    hops += s.hops;
  }

  void print(const char* what) const {
    if (queries == 0) return;
    const double n = static_cast<double>(queries);
    std::printf(
        "%-6s %6zu queries | %5.1f%% hit | %6.2f results/q | "
        "%8.3f ms/q | %6.1f msgs/q | %5.1f hops/q\n",
        what, queries, 100.0 * static_cast<double>(successes) / n,
        static_cast<double>(results) / n, latency_s / n * 1e3,
        static_cast<double>(messages) / n, static_cast<double>(hops) / n);
  }
};

/// Non-OK statuses funnel here: a kFaultInjected is the simulated power
/// cut (exit 3, on-disk state frozen for a later --load); anything else is
/// a hard error (exit 1).
[[noreturn]] void die(const db::Status& s, std::size_t crash_at) {
  if (s.IsFaultInjected()) {
    std::printf("crash injected: %s (fault point %zu)\n", s.message().c_str(),
                crash_at);
    std::exit(3);
  }
  std::fprintf(stderr, "error: persistence failure: %s\n",
               s.ToString().c_str());
  std::exit(1);
}

std::string property(db::Store& store, const std::string& name) {
  std::string v;
  return store.GetProperty(name, &v) ? v : std::string("?");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt = parse_args(argc, argv);

  if (opt.serve) {
    opt.serve_opt.units = opt.units;
    opt.serve_opt.fanout = opt.fanout;
    opt.serve_opt.seed = opt.seed;
    opt.serve_opt.group_commit = opt.group_commit;
    return cli::RunServe(opt.serve_opt);
  }
  if (opt.connect) {
    opt.connect_opt.seed = opt.seed;
    return cli::RunConnect(opt.connect_opt);
  }

  const auto profile = trace::profile_for(opt.kind);
  std::printf("trace   : %s (TIF %u, downscale %u, seed %llu)\n",
              profile.name.c_str(), opt.tif, opt.downscale,
              static_cast<unsigned long long>(opt.seed));
  const auto tr =
      trace::SyntheticTrace::generate(profile, opt.tif, opt.seed, opt.downscale);
  std::printf("population: %zu files, %zu trace ops\n", tr.files().size(),
              tr.ops().size());

  // One Open composes everything PRs 2-4 exposed piecemeal: recovery,
  // sharded WAL, background checkpoint cadence, the data-directory lock.
  db::Options options;
  options.num_units = opt.units;
  options.fanout = opt.fanout;
  options.seed = opt.seed;
  options.routing = opt.routing;
  options.ingest_threads = opt.ingest_threads;
  options.group_commit = opt.group_commit;
  options.checkpoint_every = opt.bg_checkpoint;
  options.incremental_checkpoints = !opt.full_checkpoints;
  options.compaction_trigger = opt.compaction_trigger;
  options.compaction_byte_budget = opt.compaction_bytes;
  options.crash_at = opt.crash_at;

  std::string dir = !opt.load_dir.empty() ? opt.load_dir : opt.save_dir;
  if (dir.empty()) dir = opt.wal_dir;
  options.in_memory = dir.empty();
  // The WAL shards are only wanted when churn inserts should be logged or
  // the background checkpointer needs them to fence against; a plain
  // --save run checkpoints stop-the-world at the end instead.
  options.enable_wal = !opt.wal_dir.empty() || opt.bg_checkpoint > 0;
  // --load expects an existing deployment; --save/--wal create one.
  options.create_if_missing = opt.load_dir.empty();

  auto opened = db::Store::Open(options, dir);
  if (!opened.ok()) die(opened.status(), opt.crash_at);
  std::unique_ptr<db::Store> store = std::move(opened).value();

  const db::RecoveryInfo& rec = store->recovery_info();
  if (rec.recovered) {
    if (rec.used_manifest) {
      std::printf("restored : delta manifest (base + %zu cuts, %zu delta "
                  "records), %zu WAL records replayed "
                  "(%zu blocks, %zu fenced, %zu shards)%s\n",
                  rec.delta_cuts, rec.delta_records, rec.wal_records,
                  rec.wal_blocks, rec.wal_fenced, rec.wal_shards,
                  rec.wal_tail_torn ? ", torn tail dropped" : "");
    } else {
      std::printf("restored : snapshot %s, %zu WAL records replayed "
                  "(%zu blocks, %zu fenced, %zu shards)%s\n",
                  property(*store, "smartstore.snapshot.path").c_str(),
                  rec.wal_records, rec.wal_blocks, rec.wal_fenced,
                  rec.wal_shards,
                  rec.wal_tail_torn ? ", torn tail dropped" : "");
    }
    if (opt.load_dir.empty()) {
      // --save/--wal hit a directory that already holds a deployment: the
      // saved store wins over the trace flags (a Store owns its
      // directory), which is only obvious if we say so.
      std::printf(
          "note     : %s already held a deployment — restored it instead "
          "of rebuilding from the trace (pass --load to make this "
          "explicit, or use a fresh directory to rebuild)\n",
          dir.c_str());
    }
  } else {
    db::Status built = store->Bulkload(tr.files());
    if (!built.ok()) die(built, opt.crash_at);
  }

  if (opt.churn > 0) {
    const auto stream = tr.make_insert_stream(opt.churn, opt.seed + 99);
    // The facade fans the batch across Options::ingest_threads writer
    // threads (work-stealing over insert_batch), write-ahead logs each
    // record to its routed unit's WAL shard, and triggers background
    // checkpoints at the --bg-checkpoint cadence while inserts continue.
    db::WriteBatch batch;
    batch.reserve(stream.size());
    for (const auto& f : stream) batch.Put(f);
    db::Status ws = store->Write(std::move(batch));
    if (!ws.ok()) die(ws, opt.crash_at);
    std::printf(
        "churn    : %zu files inserted (%zu thread%s)%s\n", stream.size(),
        opt.ingest_threads, opt.ingest_threads == 1 ? "" : "s",
        opt.bg_checkpoint > 0
            ? " (write-ahead logged, background checkpoints)"
            : (options.enable_wal ? " (write-ahead logged, sharded)" : ""));
    if (opt.bg_checkpoint > 0) {
      const db::CheckpointInfo ck = store->GetCheckpointInfo();
      if (ck.completed > 0) {
        std::printf(
            "bg ckpt  : %llu background checkpoints (%llu mutations rode "
            "along, %llu COW copies); last: freeze %.1f ms, write %.1f ms, "
            "truncate %.1f ms, %s\n",
            static_cast<unsigned long long>(ck.completed),
            static_cast<unsigned long long>(ck.total_mutations_during),
            static_cast<unsigned long long>(ck.total_cow_copies),
            ck.last_freeze_s * 1e3, ck.last_write_s * 1e3,
            ck.last_truncate_s * 1e3,
            util::format_bytes(ck.last_snapshot_bytes).c_str());
      }
      if (ck.delta_cuts > 0 || ck.delta_folds > 0) {
        std::printf(
            "delta    : %llu cuts, %llu folds; chain %llu cuts / %s "
            "(total delta written %s)\n",
            static_cast<unsigned long long>(ck.delta_cuts),
            static_cast<unsigned long long>(ck.delta_folds),
            static_cast<unsigned long long>(ck.delta_chain_len),
            util::format_bytes(static_cast<std::size_t>(ck.delta_chain_bytes))
                .c_str(),
            property(*store, "smartstore.ckpt.delta-total-bytes").c_str());
      }
    }
  }

  if (opt.compact && !options.in_memory) {
    db::Status comp = store->Compact();
    if (!comp.ok()) die(comp, opt.crash_at);
    std::printf("compact  : delta chain folded into a fresh base image\n");
  }

  if (!opt.save_dir.empty()) {
    // Checkpoint() runs the background protocol to completion when the
    // WAL shards are attached, the quiesced stop-the-world flavour when
    // not — either way the published snapshot covers the whole run.
    db::Status cs = store->Checkpoint();
    if (!cs.ok()) die(cs, opt.crash_at);
    if (property(*store, "smartstore.ckpt.delta-enabled") == "1") {
      // Incremental mode: the image lives in ckpt/ (base + delta chain),
      // not snapshot.bin — report what the final cut actually wrote.
      const db::CheckpointInfo fin = store->GetCheckpointInfo();
      std::printf(
          "snapshot : delta checkpoint in %s/ckpt (chain %llu cuts / %s, "
          "last cut %llu records)\n",
          opt.save_dir.c_str(),
          static_cast<unsigned long long>(fin.delta_chain_len),
          util::format_bytes(static_cast<std::size_t>(fin.delta_chain_bytes))
              .c_str(),
          static_cast<unsigned long long>(fin.last_delta_records));
    } else {
      std::printf("snapshot : saved to %s (%s)\n",
                  property(*store, "smartstore.snapshot.path").c_str(),
                  util::format_bytes(static_cast<std::size_t>(std::strtoull(
                                         property(*store,
                                                  "smartstore.snapshot.bytes")
                                             .c_str(),
                                         nullptr, 10)))
                      .c_str());
    }
  }

  std::printf(
      "deployment: %s storage units, %s index units, tree height %s, "
      "%s first-level groups, %s routing\n\n",
      property(*store, "smartstore.num-units").c_str(),
      property(*store, "smartstore.index-units").c_str(),
      property(*store, "smartstore.tree-height").c_str(),
      property(*store, "smartstore.tree-groups").c_str(),
      opt.routing == db::Routing::kOnline ? "on-line" : "off-line");

  trace::QueryGenerator gen(tr, opt.dist, opt.seed + 1);
  const auto dims = metadata::AttrSubset::all();

  if (opt.time_travel) {
    std::printf(
        "time travel: snapshot scans as-of commit seq %llu "
        "(latest %llu, gc watermark %s)\n",
        static_cast<unsigned long long>(opt.as_of_seq),
        static_cast<unsigned long long>(store->LatestSequence()),
        property(*store, "smartstore.mvcc.gc-watermark").c_str());
  }
  // Routed reads simulate the paper's network placement at latest;
  // --query-as-of replaces them with exact snapshot scans at one seq.
  const db::ReadOptions as_of{opt.as_of_seq};
  const auto run_query = [&](db::QueryRequest&& req) {
    return opt.time_travel ? store->Query(req, as_of)
                           : store->Query(req);
  };

  BatchTotals point, range, topk;
  for (std::size_t i = 0; i < opt.point_queries; ++i) {
    auto r = run_query(db::QueryRequest::Point(gen.gen_point()));
    if (!r.ok()) die(r.status(), opt.crash_at);
    point.add(r->stats, r->count());
  }
  for (std::size_t i = 0; i < opt.range_queries; ++i) {
    auto r = run_query(db::QueryRequest::Range(gen.gen_range(dims)));
    if (!r.ok()) die(r.status(), opt.crash_at);
    range.add(r->stats, r->count());
  }
  for (std::size_t i = 0; i < opt.topk_queries; ++i) {
    auto r = run_query(db::QueryRequest::TopK(gen.gen_topk(dims, opt.k)));
    if (!r.ok()) die(r.status(), opt.crash_at);
    topk.add(r->stats, r->count());
  }

  std::printf("query batches (%s distribution%s):\n",
              trace::distribution_name(opt.dist),
              opt.time_travel ? ", as-of snapshot scans" : "");
  point.print("point");
  range.print("range");
  topk.print("top-k");

  const db::SpaceInfo space = store->GetSpaceInfo();
  std::printf(
      "\nper-unit space: metadata %zu B, hosted index %zu B, replicas %zu B, "
      "versions %zu B (total %zu B)\n",
      space.metadata_bytes, space.index_bytes, space.replica_bytes,
      space.version_bytes, space.total_bytes);

  db::Status closed = store->Close();
  if (!closed.ok()) die(closed, opt.crash_at);
  return 0;
}
