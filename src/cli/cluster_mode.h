// The distributed modes of smartstore_cli: `--serve` runs ONE shard of a
// metadata-service cluster (a durable db::Store wrapped in
// svc::MetaService behind a TCP rpc::SocketServer); `--connect` is the
// matching client (rpc::SocketChannel per endpoint + svc::Router) that
// drives a put/point workload through the routing/retry contract and
// verifies every acknowledged write is findable.
//
// A 2-shard cluster on one machine is three invocations:
//
//   smartstore_cli --serve state/shard-0 --shard 0/2 --port-file p0
//   smartstore_cli --serve state/shard-1 --shard 1/2 --port-file p1
//   smartstore_cli --connect 127.0.0.1:$(cat p0),127.0.0.1:$(cat p1)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace smartstore::cli {

struct ServeOptions {
  std::string dir;  ///< this shard's data directory ("" = in-memory)
  std::uint32_t shard_id = 0;
  std::uint32_t num_shards = 1;
  std::uint16_t port = 0;       ///< 0 = ephemeral
  std::string port_file;        ///< write the bound port here (handshake)
  std::size_t serve_seconds = 0;  ///< 0 = serve until killed
  std::size_t units = 4;
  std::size_t fanout = 8;
  std::uint64_t seed = 42;
  std::size_t group_commit = 0;  ///< 0 = facade default
};

struct ConnectOptions {
  std::string endpoints;  ///< "host:port[,host:port...]", index = shard id
  std::size_t puts = 64;
  std::uint64_t seed = 42;
};

/// Serves one shard; returns a process exit code.
int RunServe(const ServeOptions& opt);

/// Runs the client workload; returns a process exit code (non-zero when
/// any put fails or any acked put is not found back).
int RunConnect(const ConnectOptions& opt);

}  // namespace smartstore::cli
