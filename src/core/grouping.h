// Semantic grouping (Section 3.1): aggregating correlated units into the
// groups that become semantic R-tree nodes.
//
// The basic grouping of Section 3.1.2 is a greedy pairwise aggregation:
// compute LSI similarities between all pairs, then repeatedly merge the
// most-similar pair whose correlation exceeds the admission threshold ε,
// subject to a group-size cap that keeps group sizes approximately equal
// (Statement 1's second requirement). Applied recursively level by level,
// it builds the tree bottom-up.
//
// K-means is provided as the alternative grouping tool the paper compares
// against conceptually (Section 3.1.1 argues LSI is preferable); the
// grouping ablation bench measures both. A balanced variant also serves as
// the initial file -> storage-unit placement ("files are grouped and stored
// according to their metadata semantics", Section 2).
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "lsi/lsi.h"

namespace smartstore::core {

struct Grouping {
  /// groups[g] lists member indices (into the input document list).
  std::vector<std::vector<std::size_t>> groups;

  /// group_of[i] = index of the group containing document i.
  std::vector<std::size_t> group_of;

  std::size_t num_groups() const { return groups.size(); }
};

/// Greedy threshold aggregation over LSI document coordinates: pairs are
/// merged in decreasing-similarity order while similarity > epsilon and the
/// merged size stays within `max_group_size`. Deterministic.
Grouping group_by_similarity(const lsi::LsiModel& model, double epsilon,
                             std::size_t max_group_size);

/// Same algorithm over raw vectors with cosine similarity (used by tests
/// and by levels where an LSI model over few documents adds nothing).
Grouping group_vectors_by_similarity(const std::vector<la::Vector>& coords,
                                     double epsilon,
                                     std::size_t max_group_size);

/// Lloyd's K-means with k-means++ seeding over arbitrary coordinates.
/// `capacity` == 0 means unbounded; otherwise assignments respect the cap
/// (balanced variant used for file placement). Deterministic in `seed`.
Grouping kmeans_cluster(const std::vector<la::Vector>& coords, std::size_t k,
                        std::size_t iterations, std::uint64_t seed,
                        std::size_t capacity = 0);

/// Random assignment into k equal groups (the no-semantics control in the
/// grouping ablation).
Grouping random_grouping(std::size_t n, std::size_t k, std::uint64_t seed);

/// The semantic-correlation objective of Section 1.1 evaluated over a
/// grouping: sum over groups of squared distances to group centroids
/// (within-group scatter W).
double within_group_scatter(const std::vector<la::Vector>& coords,
                            const Grouping& grouping);

/// Between-group scatter B (group sizes times squared centroid-to-global
/// distances).
double between_group_scatter(const std::vector<la::Vector>& coords,
                             const Grouping& grouping);

/// Calinski–Harabasz variance-ratio criterion: (B/(t-1)) / (W/(n-t)).
/// Higher is better; used to select the optimal admission threshold
/// (Figure 11). Returns 0 when undefined (t < 2 or t >= n).
double variance_ratio_criterion(const std::vector<la::Vector>& coords,
                                const Grouping& grouping);

/// Sweeps candidate thresholds (percentiles of the pairwise-similarity
/// distribution) and returns the epsilon maximizing the variance-ratio
/// criterion of the induced grouping.
double optimal_threshold(const lsi::LsiModel& model,
                         std::size_t max_group_size,
                         std::size_t num_candidates = 40);

}  // namespace smartstore::core
