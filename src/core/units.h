// Storage units, replicated group summaries and version deltas.
//
// A storage unit is a metadata server — a leaf of the semantic R-tree
// (Section 2.3). It holds file metadata records, a local filename index, a
// counting Bloom filter for point queries, the unit's MBR in standardized
// attribute space and its raw-attribute centroid (its semantic vector).
//
// GroupReplica is the unit of the off-line pre-processing scheme (Section
// 3.4): every storage unit keeps replicas of the *first-level index
// units'* summaries and routes queries by checking them locally. Replicas
// go stale as files are inserted/deleted; consistency is restored either
// by lazy full refreshes (when accumulated changes exceed a threshold) or
// incrementally by the versioning scheme of Section 4.4 — sealed
// VersionDelta objects multicast to all units and consulted
// rolling-backward at query time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bloom/bloom_filter.h"
#include "la/matrix.h"
#include "metadata/file_metadata.h"
#include "rtree/mbr.h"

namespace smartstore::core {

using UnitId = std::size_t;
inline constexpr std::size_t kInvalidIndex = static_cast<std::size_t>(-1);

/// Sentinel GC watermark when no snapshot is pinned: every tombstone is
/// immediately reclaimable.
inline constexpr std::uint64_t kNoWatermark =
    static_cast<std::uint64_t>(-1);

/// Sentinel "no forced seq" for insert paths: stamp a fresh commit seq
/// instead of re-homing under a preserved one.
inline constexpr std::uint64_t kAssignSeq = static_cast<std::uint64_t>(-1);

/// A record version that has been deleted but is still visible to some
/// pinned snapshot: visible at snapshot S iff added_seq <= S < deleted_seq.
/// Tombstones keep the standardized coordinates so snapshot scans can run
/// without re-standardizing.
struct TombstoneRecord {
  metadata::FileMetadata file;
  la::Vector std_coords;
  std::uint64_t added_seq = 0;
  std::uint64_t deleted_seq = 0;
};

/// One metadata server (semantic R-tree leaf).
class StorageUnit {
 public:
  StorageUnit(UnitId id, std::size_t bloom_bits, unsigned bloom_hashes);

  UnitId id() const { return id_; }
  std::size_t file_count() const { return files_.size(); }
  bool empty() const { return files_.empty(); }

  /// Adds a record; `std_coords` is the file's standardized full-D vector
  /// (the geometry every MBR in the store is expressed in). `added_seq` is
  /// the commit sequence stamped on the mutation (0 = pre-history: bulk
  /// builds and legacy snapshots, visible to every snapshot).
  void add_file(const metadata::FileMetadata& f, const la::Vector& std_coords,
                std::uint64_t added_seq = 0);

  /// Removes by id; returns the removed record. MBRs are not shrunk on
  /// delete (standard R-tree practice; bounds stay conservative until the
  /// next reconfiguration). With `deleted_seq` > 0 the removed version is
  /// kept on the unit's tombstone chain so pinned snapshots older than the
  /// delete can still see it; `deleted_seq` == 0 drops it outright (bulk
  /// moves that re-home a record under its original added_seq).
  std::optional<metadata::FileMetadata> remove_file(metadata::FileId id,
                                                    std::uint64_t deleted_seq =
                                                        0);

  /// Local filename lookup (exact).
  const metadata::FileMetadata* find_by_name(const std::string& name) const;
  const metadata::FileMetadata* find_by_id(metadata::FileId id) const;

  const std::vector<metadata::FileMetadata>& files() const { return files_; }
  const std::vector<la::Vector>& std_coords() const { return std_coords_; }

  /// Commit sequence of each live record, parallel to files(). 0 means
  /// pre-history (always visible).
  const std::vector<std::uint64_t>& added_seqs() const { return added_seqs_; }

  /// Deleted-but-pinned record versions, oldest deletes first.
  const std::vector<TombstoneRecord>& tombstones() const {
    return tombstones_;
  }

  /// Re-attaches a tombstone loaded from a snapshot image.
  void restore_tombstone(TombstoneRecord t) {
    tombstones_.push_back(std::move(t));
  }

  /// Drops every tombstone no pinned snapshot can still see (deleted at or
  /// before `watermark`, the oldest pinned snapshot seq — kNoWatermark
  /// reclaims everything). Returns how many were reclaimed. This is what
  /// keeps the per-unit version chain bounded: chain length is at most the
  /// number of deletes since the oldest live pin.
  std::size_t prune_tombstones(std::uint64_t watermark);

  /// Membership filter over local filenames (counting, so deletions work);
  /// the plain view is what gets unioned into index units.
  const bloom::CountingBloomFilter& name_filter() const { return name_filter_; }
  bloom::BloomFilter name_filter_view() const {
    return name_filter_.to_bloom_filter();
  }

  /// MBR over standardized coordinates of local files.
  const rtree::Mbr& box() const { return box_; }

  /// Raw-attribute centroid (the unit's semantic vector source).
  la::Vector centroid_raw() const;

  /// Approximate memory footprint of everything this unit stores locally
  /// for itself (records + indexes), excluding hosted index units.
  std::size_t byte_size() const;

 private:
  UnitId id_;
  std::vector<metadata::FileMetadata> files_;
  std::vector<la::Vector> std_coords_;        // parallel to files_
  std::vector<std::uint64_t> added_seqs_;     // parallel to files_
  std::vector<TombstoneRecord> tombstones_;   // MVCC version chain
  std::unordered_map<std::string, std::size_t> by_name_;  // name -> position
  std::unordered_map<metadata::FileId, std::size_t> by_id_;
  bloom::CountingBloomFilter name_filter_;
  rtree::Mbr box_;
  la::Vector attr_sums_;  // running sums for the centroid
};

/// Aggregated changes between two replica synchronization points
/// (Section 4.4). Small by construction: only summaries of the changed
/// files, kept in memory.
struct VersionDelta {
  rtree::Mbr added_box;             ///< MBR of inserted files (standardized)
  bloom::BloomFilter added_names;   ///< filenames inserted in this window
  la::Vector added_attr_sum;        ///< raw-attribute sum of inserted files
  std::size_t added_count = 0;
  std::vector<metadata::FileId> deleted;
  double sealed_at = 0;             ///< simulated seal time t_i

  bool empty() const { return added_count == 0 && deleted.empty(); }
  std::size_t byte_size() const;
};

/// Replica of a first-level index unit's summary, as held by every storage
/// unit for off-line query routing. `versions` are the sealed deltas
/// received since the last full synchronization, newest last; queries scan
/// them rolling backward (newest first, Section 4.4).
struct GroupReplica {
  la::Vector centroid_raw;         ///< as of last full sync
  la::Vector attr_sum;             ///< sum form, for incremental centroids
  std::size_t file_count = 0;
  rtree::Mbr box;
  bloom::BloomFilter name_filter;
  std::vector<VersionDelta> versions;

  /// Effective MBR: the base box unioned with version deltas (when
  /// `with_versions`), i.e. what a remote unit can know about the group.
  rtree::Mbr effective_box(bool with_versions) const;

  /// Effective centroid including version deltas.
  la::Vector effective_centroid(bool with_versions) const;

  /// Filename may-contain check: base filter, then versions newest-first
  /// (rolling backward); honours version deletions before older inserts.
  bool name_may_contain(const std::string& name, bool with_versions) const;

  std::size_t byte_size() const;
  std::size_t versions_byte_size() const;
};

}  // namespace smartstore::core
