#include "core/smartstore.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>

namespace smartstore::core {

using metadata::AttrSubset;
using metadata::FileId;
using metadata::FileMetadata;
using metadata::kNumAttrs;

namespace {

/// Small fixed message sizes for the simulated protocol.
constexpr std::size_t kQueryMsgBytes = 256;
constexpr std::size_t kVersionMsgBytes = 2048;   // a sealed delta is small
constexpr std::size_t kReplicaMsgBytes = 16384;  // a full summary refresh

}  // namespace

namespace {
/// Process-wide store instance ids, so per-thread RNG streams can tell
/// apart two stores that happen to occupy the same address over time.
std::atomic<std::uint64_t> g_next_store_id{1};
}  // namespace

SmartStore::SmartStore(Config cfg)
    : cfg_(std::move(cfg)),
      rng_(cfg_.seed),
      store_id_(g_next_store_id.fetch_add(1, std::memory_order_relaxed)) {}

// ---- concurrent checkpointing (epoch freeze + copy-on-write) ----------------

std::uint64_t SmartStore::begin_checkpoint(
    const std::function<void()>& while_frozen) {
  // Exclusive: every serving thread is outside its operation, so the epoch
  // cut is a mutation boundary for all of them simultaneously — which is
  // also what makes `while_frozen` the right place to fence the WAL shards.
  util::WriterLock ex(structure_mu_);
  std::uint64_t frozen_epoch = 0;
  {
    util::MutexLock lock(freeze_.mu);
    assert(!freeze_.active && "one checkpoint at a time");
    freeze_.active = true;
    freeze_.frozen_epoch = epoch_.load(std::memory_order_relaxed);
    freeze_.cow_copies = 0;

    freeze_.core.bloom_bits = bloom_bits_;
    freeze_.core.total_files = total_files_.load(std::memory_order_relaxed);
    freeze_.core.rng_state = rng_.state();
    freeze_.core.rng_streams = rng_streams_.load(std::memory_order_relaxed);
    freeze_.core.unit_active = unit_active_;
    freeze_.core.standardizer = standardizer_;
    freeze_.core.unit_count = units_.size();
    freeze_.core.group_order = tree_.groups();
    // The MVCC cut: no mutator runs (exclusive structure lock), so the
    // commit counter is the exact seq of the image being captured. The
    // watermark is what the UNITS serializer filters tombstones against —
    // a pin taken after the freeze needs no tombstone this image lacks,
    // because its seq is >= the frozen commit seq.
    freeze_.core.commit_seq = commit_seq_.load(std::memory_order_acquire);
    freeze_.core.gc_watermark = gc_watermark();

    // Units (the bulk of the state) freeze lazily via copy-on-write; the
    // index structures are captured eagerly here, so post-freeze writers
    // never copy a whole tree mid-operation and the serializer never has
    // to reconcile a structure being updated under striped locks.
    freeze_.unit_state.assign(units_.size(), PieceState::kPending);
    freeze_.frozen_units.clear();
    freeze_.frozen_units.resize(units_.size());
    freeze_.frozen_tree = std::make_unique<SemanticRTree>(tree_);
    freeze_.tree_state = PieceState::kFrozen;
    freeze_.frozen_variants =
        std::make_unique<std::vector<TreeVariant>>(variants_);
    freeze_.variants_state = PieceState::kFrozen;
    freeze_.frozen_sync =
        std::make_unique<std::unordered_map<std::size_t, GroupSync>>(sync_);
    freeze_.sync_state = PieceState::kFrozen;
    // Copied out under the lock: the post-freeze read at the bottom of
    // this function used to reach for freeze_.frozen_epoch directly, a
    // data race with a serializer that finishes (and a writer that begins
    // the next cycle) between here and the return.
    frozen_epoch = freeze_.frozen_epoch;
  }
  if (while_frozen) {
    try {
      while_frozen();
    } catch (...) {
      // The checkpoint never happened: release the freeze here, or every
      // later mutation would pay copy-on-write into a stale frozen view
      // forever (and the next begin_checkpoint would assert).
      end_checkpoint();
      throw;
    }
  }
  return frozen_epoch;
}

void SmartStore::end_checkpoint() {
  util::MutexLock lock(freeze_.mu);
  freeze_.active = false;
  freeze_.unit_state.clear();
  freeze_.frozen_units.clear();
  freeze_.frozen_tree.reset();
  freeze_.frozen_variants.reset();
  freeze_.frozen_sync.reset();
}

void SmartStore::mutation_barrier(const std::function<void()>& fn) {
  // Exclusive, like begin_checkpoint's cut — every serving thread is
  // outside its operation — but with no freeze state attached: the delta
  // checkpoint needs only the instantaneous consistency of the cut, not a
  // preserved image (its image IS the WAL prefix the fence names).
  util::WriterLock ex(structure_mu_);
  if (fn) fn();
}

std::uint64_t SmartStore::unit_dirty_seq(UnitId u) const {
  if (u >= unit_dirty_.size() || !unit_dirty_[u]) return 0;
  return unit_dirty_[u]->load(std::memory_order_acquire);
}

void SmartStore::mark_unit_dirty(UnitId u, std::uint64_t seq) {
  if (u >= unit_dirty_.size() || !unit_dirty_[u]) return;
  // Monotonic by construction: writers hold the unit's lock, and the seq
  // stamped inside a later critical section is strictly larger.
  unit_dirty_[u]->store(seq, std::memory_order_release);
}

bool SmartStore::checkpoint_active() const {
  util::MutexLock lock(freeze_.mu);
  return freeze_.active;
}

std::uint64_t SmartStore::checkpoint_cow_copies() const {
  util::MutexLock lock(freeze_.mu);
  return freeze_.cow_copies;
}

void SmartStore::cow_unit_locked(UnitId u) {
  if (u >= freeze_.unit_state.size()) return;
  if (freeze_.unit_state[u] != PieceState::kPending) return;
  freeze_.frozen_units[u] = std::make_unique<StorageUnit>(units_[u]);
  freeze_.unit_state[u] = PieceState::kFrozen;
  ++freeze_.cow_copies;
}

void SmartStore::cow_unit(UnitId u) {
  unit_mutex(u).assert_held();
  util::MutexLock lock(freeze_.mu);
  if (!freeze_.active) return;
  cow_unit_locked(u);
}

void SmartStore::cow_all_units() {
  util::MutexLock lock(freeze_.mu);
  if (!freeze_.active) return;
  for (UnitId u = 0; u < freeze_.unit_state.size(); ++u) cow_unit_locked(u);
}

void SmartStore::rebuild_unit_locks() {
  // Callers own the exclusive structure lock (or are still inside
  // single-threaded assembly), so no unit lock can be held while the
  // vector reshapes; existing mutex objects stay put behind their
  // unique_ptrs.
  unit_mu_.resize(units_.size());
  for (auto& mu : unit_mu_)
    if (!mu) mu = std::make_unique<util::Mutex>(util::LockRank::kUnit);
  unit_dirty_.resize(units_.size());
  for (auto& d : unit_dirty_)
    if (!d) d = std::make_unique<std::atomic<std::uint64_t>>(0);
}

la::Vector SmartStore::std_coords(const FileMetadata& f) const {
  return standardizer_.transform(f.full_vector());
}

void SmartStore::build(const std::vector<FileMetadata>& files) {
  // Bulk construction replaces every piece; serving threads and the
  // checkpoint serializer are excluded for the duration, and any units
  // still pending in an active freeze are copied first (the structures
  // were captured eagerly at freeze time).
  util::WriterLock ex(structure_mu_);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  cow_all_units();
  standardizer_ = fit_standardizer(files);

  // Size Bloom filters for the expected group population (~12 bits per
  // name) so the filter hierarchy stays in a useful false-positive regime.
  bloom_bits_ = cfg_.bloom_bits;
  if (cfg_.bloom_auto_size && !files.empty()) {
    const std::size_t per_group =
        files.size() / std::max<std::size_t>(1, cfg_.num_units) *
        std::max<std::size_t>(2, cfg_.fanout);
    std::size_t bits = cfg_.bloom_bits;
    while (bits < per_group * 12) bits *= 2;
    bloom_bits_ = bits;
  }

  // Semantic placement (Section 2: "files are grouped and stored according
  // to their metadata semantics"): balanced k-means over LSI coordinates
  // assigns correlated files to the same storage unit.
  units_.clear();
  units_.reserve(cfg_.num_units);
  for (std::size_t u = 0; u < cfg_.num_units; ++u)
    units_.emplace_back(u, bloom_bits_, cfg_.bloom_hashes);
  unit_active_.assign(cfg_.num_units, true);
  rebuild_unit_locks();

  if (!files.empty()) {
    Grouping place;
    if (cfg_.placement == PlacementPolicy::kSemantic) {
      std::vector<la::Vector> docs;
      docs.reserve(files.size());
      for (const auto& f : files) docs.push_back(f.full_vector());
      lsi::LsiModel placement = lsi::LsiModel::fit(docs, cfg_.lsi_rank);
      std::vector<la::Vector> coords;
      coords.reserve(files.size());
      for (std::size_t i = 0; i < files.size(); ++i)
        coords.push_back(placement.doc_coords(i));

      const std::size_t cap =
          (files.size() + cfg_.num_units - 1) / cfg_.num_units + 1 +
          files.size() / (cfg_.num_units * 8);
      place = kmeans_cluster(coords, cfg_.num_units, cfg_.placement_iters,
                             cfg_.seed, cap);
    } else {
      place = random_grouping(files.size(), cfg_.num_units, cfg_.seed);
    }
    for (std::size_t g = 0; g < place.groups.size(); ++g) {
      const UnitId u = g % cfg_.num_units;
      for (std::size_t idx : place.groups[g])
        units_[u].add_file(files[idx], std_coords(files[idx]));
    }
  }
  total_files_ = files.size();

  SemanticRTree::BuildParams params;
  params.fanout = cfg_.fanout;
  params.min_fill = cfg_.min_fill;
  params.epsilon = cfg_.epsilon;
  params.lsi_rank = cfg_.lsi_rank;
  params.bloom_bits = bloom_bits_;
  params.bloom_hashes = cfg_.bloom_hashes;
  tree_.build(units_, params);
  tree_.map_index_units(rng_);

  cluster_ = std::make_unique<sim::Cluster>(cfg_.num_units, cfg_.cost);
  variants_.clear();
  init_sync_state();
}

void SmartStore::init_sync_state() {
  sync_.clear();
  for (std::size_t g : tree_.groups()) {
    GroupSync gs;
    const IndexUnit& n = tree_.node(g);
    gs.replica.centroid_raw = n.centroid_raw();
    gs.replica.attr_sum = n.attr_sum;
    gs.replica.file_count = n.file_count;
    gs.replica.box = n.box;
    gs.replica.name_filter = n.name_filter;
    gs.pending.added_names =
        bloom::BloomFilter(bloom_bits_, cfg_.bloom_hashes);
    gs.pending.added_attr_sum.assign(kNumAttrs, 0.0);
    sync_.emplace(g, std::move(gs));
  }
}

void SmartStore::refresh_sync_groups() {
  // Drop state for groups that no longer exist; snapshot new ones.
  for (auto it = sync_.begin(); it != sync_.end();) {
    const auto& gl = tree_.groups();
    if (std::find(gl.begin(), gl.end(), it->first) == gl.end()) {
      it = sync_.erase(it);
    } else {
      ++it;
    }
  }
  for (std::size_t g : tree_.groups()) {
    if (sync_.count(g)) continue;
    GroupSync gs;
    const IndexUnit& n = tree_.node(g);
    gs.replica.centroid_raw = n.centroid_raw();
    gs.replica.attr_sum = n.attr_sum;
    gs.replica.file_count = n.file_count;
    gs.replica.box = n.box;
    gs.replica.name_filter = n.name_filter;
    gs.pending.added_names =
        bloom::BloomFilter(bloom_bits_, cfg_.bloom_hashes);
    gs.pending.added_attr_sum.assign(kNumAttrs, 0.0);
    sync_.emplace(g, std::move(gs));
  }
}

util::Rng& SmartStore::thread_rng() const {
  // One stream per (thread, store): reseeded when this thread first draws
  // for this store, from the store seed and a monotonic stream id — so
  // single-threaded runs stay reproducible (stream 1, always) and
  // concurrent threads draw from uncorrelated streams without sharing any
  // mutable state. Keyed by the store's instance id, not its address — an
  // address can be reused by a later store, which must get fresh streams.
  // Streams are runtime-only: the persisted rng is the store rng, and the
  // freeze captures the stream counter for diagnostics.
  thread_local std::uint64_t owner = 0;
  thread_local util::Rng rng;
  if (owner != store_id_) {
    owner = store_id_;
    const std::uint64_t stream =
        rng_streams_.fetch_add(1, std::memory_order_relaxed) + 1;
    rng.reseed(cfg_.seed ^ (0x9E3779B97F4A7C15ULL * stream));
  }
  return rng;
}

sim::NodeId SmartStore::random_home() {
  // Queries arrive at a uniformly random active storage unit (Section 2.2).
  util::Rng& rng = thread_rng();
  for (int tries = 0; tries < 64; ++tries) {
    const UnitId u = static_cast<UnitId>(rng.uniform_u64(units_.size()));
    if (unit_active_[u]) return u;
  }
  for (UnitId u = 0; u < units_.size(); ++u)
    if (unit_active_[u]) return u;
  return 0;
}

// ---- geometry helpers -------------------------------------------------------

std::vector<std::size_t> SmartStore::dim_indices(const AttrSubset& dims) const {
  std::vector<std::size_t> idx(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i)
    idx[i] = static_cast<std::size_t>(dims[i]);
  return idx;
}

void SmartStore::standardize_range(const metadata::RangeQuery& q,
                                   std::vector<std::size_t>& dim_idx,
                                   la::Vector& lo, la::Vector& hi) const {
  dim_idx = dim_indices(q.dims);
  lo.resize(dim_idx.size());
  hi.resize(dim_idx.size());
  for (std::size_t i = 0; i < dim_idx.size(); ++i) {
    const std::size_t d = dim_idx[i];
    const double a = (q.lo[i] - standardizer_.means[d]) *
                     standardizer_.inv_stdevs[d];
    const double b = (q.hi[i] - standardizer_.means[d]) *
                     standardizer_.inv_stdevs[d];
    lo[i] = std::min(a, b);
    hi[i] = std::max(a, b);
  }
}

la::Vector SmartStore::standardize_point(const metadata::TopKQuery& q,
                                         std::vector<std::size_t>& dim_idx)
    const {
  dim_idx = dim_indices(q.dims);
  la::Vector p(dim_idx.size());
  for (std::size_t i = 0; i < dim_idx.size(); ++i) {
    const std::size_t d = dim_idx[i];
    p[i] = (q.point[i] - standardizer_.means[d]) * standardizer_.inv_stdevs[d];
  }
  return p;
}

bool SmartStore::box_intersects(const rtree::Mbr& box,
                                const std::vector<std::size_t>& dim_idx,
                                const la::Vector& lo, const la::Vector& hi) {
  if (!box.valid()) return false;
  for (std::size_t i = 0; i < dim_idx.size(); ++i) {
    const std::size_t d = dim_idx[i];
    if (box.hi()[d] < lo[i] || box.lo()[d] > hi[i]) return false;
  }
  return true;
}

double SmartStore::box_min_dist2(const rtree::Mbr& box,
                                 const std::vector<std::size_t>& dim_idx,
                                 const la::Vector& point) {
  if (!box.valid()) return std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_idx.size(); ++i) {
    const std::size_t d = dim_idx[i];
    double delta = 0.0;
    if (point[i] < box.lo()[d]) {
      delta = box.lo()[d] - point[i];
    } else if (point[i] > box.hi()[d]) {
      delta = point[i] - box.hi()[d];
    }
    acc += delta * delta;
  }
  return acc;
}

void SmartStore::unit_range_scan(const StorageUnit& u,
                                 const std::vector<std::size_t>& dim_idx,
                                 const la::Vector& lo, const la::Vector& hi,
                                 std::vector<FileId>& out) const {
  const auto& coords = u.std_coords();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    bool ok = true;
    for (std::size_t j = 0; j < dim_idx.size(); ++j) {
      const double v = coords[i][dim_idx[j]];
      if (v < lo[j] || v > hi[j]) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(u.files()[i].id);
  }
}

void SmartStore::unit_topk_scan(
    const StorageUnit& u, const std::vector<std::size_t>& dim_idx,
    const la::Vector& point, std::size_t k,
    std::vector<std::pair<double, FileId>>& heap) const {
  // `heap` is a max-heap of the best k candidates found so far.
  const auto& coords = u.std_coords();
  for (std::size_t i = 0; i < coords.size(); ++i) {
    double dist = 0.0;
    for (std::size_t j = 0; j < dim_idx.size(); ++j) {
      const double delta = coords[i][dim_idx[j]] - point[j];
      dist += delta * delta;
    }
    if (heap.size() < k) {
      heap.emplace_back(dist, u.files()[i].id);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, u.files()[i].id};
      std::push_heap(heap.begin(), heap.end());
    }
  }
}

// ---- routing ---------------------------------------------------------------

std::vector<SmartStore::RankedGroup> SmartStore::rank_groups_range(
    const SemanticRTree& t, const metadata::RangeQuery& q,
    double& version_cost) const {
  std::vector<std::size_t> dim_idx;
  la::Vector lo, hi;
  standardize_range(q, dim_idx, lo, hi);

  const bool main_tree = &t == &tree_;
  std::vector<RankedGroup> out;
  for (std::size_t g : t.groups()) {
    rtree::Mbr box;
    if (main_tree) {
      const auto guard = maybe_lock(&sync_stripes_, &sync_.at(g));
      const GroupSync& gs = sync_.at(g);
      version_cost += static_cast<double>(gs.replica.versions.size()) *
                      cfg_.cost.per_bloom_check_s;
      box = gs.replica.effective_box(cfg_.versioning_enabled);
    } else {
      const auto guard = maybe_lock(&summary_stripes_, &t.node(g));
      box = t.node(g).box;  // variants route on fresh summaries
    }
    if (!box_intersects(box, dim_idx, lo, hi)) continue;
    // Score: negative overlap fraction, so bigger overlaps rank first.
    double overlap = 1.0;
    for (std::size_t i = 0; i < dim_idx.size(); ++i) {
      const std::size_t d = dim_idx[i];
      const double len = std::max(1e-12, box.hi()[d] - box.lo()[d]);
      const double o = std::min(hi[i], box.hi()[d]) -
                       std::max(lo[i], box.lo()[d]);
      overlap *= std::max(0.0, o) / len;
    }
    out.push_back({g, -overlap});
  }
  std::sort(out.begin(), out.end(), [](const RankedGroup& a,
                                       const RankedGroup& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node_id < b.node_id;
  });
  return out;
}

std::vector<SmartStore::RankedGroup> SmartStore::rank_groups_topk(
    const SemanticRTree& t, const la::Vector& std_point,
    const std::vector<std::size_t>& dim_idx, double& version_cost) const {
  const bool main_tree = &t == &tree_;
  std::vector<RankedGroup> out;
  for (std::size_t g : t.groups()) {
    rtree::Mbr box;
    if (main_tree) {
      const auto guard = maybe_lock(&sync_stripes_, &sync_.at(g));
      const GroupSync& gs = sync_.at(g);
      version_cost += static_cast<double>(gs.replica.versions.size()) *
                      cfg_.cost.per_bloom_check_s;
      box = gs.replica.effective_box(cfg_.versioning_enabled);
    } else {
      const auto guard = maybe_lock(&summary_stripes_, &t.node(g));
      box = t.node(g).box;
    }
    out.push_back({g, box_min_dist2(box, dim_idx, std_point)});
  }
  std::sort(out.begin(), out.end(), [](const RankedGroup& a,
                                       const RankedGroup& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node_id < b.node_id;
  });
  return out;
}

std::size_t SmartStore::best_group_for_vector(const la::Vector& raw) const {
  // Section 3.2.1 / 3.4: LSI similarity between the request vector and the
  // (effective) semantic vectors of the first-level index units.
  const lsi::LsiModel& model = tree_.unit_lsi();
  std::size_t best = kInvalidIndex;
  double best_sim = -std::numeric_limits<double>::infinity();
  const la::Vector q =
      model.fitted() ? model.project(tree_.restrict_dims(raw)) : la::Vector{};
  for (std::size_t g : tree_.groups()) {
    double sim = 0.0;
    if (model.fitted()) {
      // Copy the effective centroid under the group's stripe; the LSI
      // projection (the expensive part) runs outside it.
      la::Vector c;
      {
        const auto guard = maybe_lock(&sync_stripes_, &sync_.at(g));
        c = sync_.at(g).replica.effective_centroid(cfg_.versioning_enabled);
      }
      sim = lsi::LsiModel::similarity(q, model.project(tree_.restrict_dims(c)));
    }
    if (sim > best_sim) {
      best_sim = sim;
      best = g;
    }
  }
  return best;
}

// ---- versioning / sync ------------------------------------------------------

void SmartStore::seal_version(std::size_t g, double now, sim::Session* session) {
  sync_stripes_.assert_held(&sync_.at(g));
  GroupSync& gs = sync_.at(g);
  if (gs.pending.empty()) return;
  gs.pending.sealed_at = now;
  gs.replica.versions.push_back(std::move(gs.pending));
  gs.pending = VersionDelta{};
  gs.pending.added_names =
      bloom::BloomFilter(bloom_bits_, cfg_.bloom_hashes);
  gs.pending.added_attr_sum.assign(kNumAttrs, 0.0);

  // Multicast the sealed version to every other storage unit.
  if (session) {
    std::vector<sim::Session> branches;
    const sim::NodeId origin = session->location();
    for (UnitId u = 0; u < units_.size(); ++u) {
      if (u == origin || !unit_active_[u]) continue;
      sim::Session b = session->fork();
      b.send_to(u, kVersionMsgBytes);
      branches.push_back(b);
    }
    // Version multicast is asynchronous: it consumes bandwidth (counted)
    // but does not extend the requester-visible latency, so no join here.
  }
}

void SmartStore::full_sync_group(std::size_t g, sim::Session* session) {
  // Copy the authoritative node summary under the node's stripe, install
  // it under the group's sync stripe: two stripes, never held together
  // (the one-stripe-at-a-time discipline that keeps the pool
  // deadlock-free). An insert landing between the copy and the install is
  // reflected in neither the copied base nor the cleared pending delta —
  // ordinary replica staleness, repaired by the next sync, and exactly the
  // error mode off-line routing already tolerates.
  const IndexUnit& n = tree_.node(g);
  la::Vector centroid, attr_sum;
  std::size_t file_count;
  rtree::Mbr box;
  bloom::BloomFilter name_filter;
  {
    const auto node_guard = maybe_lock(&summary_stripes_, &n);
    centroid = n.centroid_raw();
    attr_sum = n.attr_sum;
    file_count = n.file_count;
    box = n.box;
    name_filter = n.name_filter;
  }
  {
    const auto sync_guard = maybe_lock(&sync_stripes_, &sync_.at(g));
    GroupSync& gs = sync_.at(g);
    gs.replica.centroid_raw = std::move(centroid);
    gs.replica.attr_sum = std::move(attr_sum);
    gs.replica.file_count = file_count;
    gs.replica.box = box;
    gs.replica.name_filter = std::move(name_filter);
    gs.replica.versions.clear();
    gs.pending = VersionDelta{};
    gs.pending.added_names =
        bloom::BloomFilter(bloom_bits_, cfg_.bloom_hashes);
    gs.pending.added_attr_sum.assign(kNumAttrs, 0.0);
    gs.changes_since_full_sync = 0;
  }

  if (session) {
    const sim::NodeId origin = session->location();
    for (UnitId u = 0; u < units_.size(); ++u) {
      if (u == origin || !unit_active_[u]) continue;
      sim::Session b = session->fork();
      b.send_to(u, kReplicaMsgBytes);
    }
  }
}

bool SmartStore::after_group_change(std::size_t g, double now,
                                    sim::Session* session) {
  sync_stripes_.assert_held(&sync_.at(g));
  GroupSync& gs = sync_.at(g);
  ++gs.changes_since_full_sync;

  if (cfg_.versioning_enabled) {
    const std::size_t pending_changes =
        gs.pending.added_count + gs.pending.deleted.size();
    if (pending_changes >= cfg_.version_ratio) seal_version(g, now, session);
  }
  // Lazy updating (Section 3.4): a full replica refresh once accumulated
  // changes exceed the threshold fraction of the group's population. The
  // refresh itself runs after the caller drops this group's sync stripe
  // (full_sync_group re-acquires it after reading the node summary).
  const std::size_t base = std::max<std::size_t>(gs.replica.file_count, 200);
  return static_cast<double>(gs.changes_since_full_sync) >
         cfg_.lazy_update_threshold * static_cast<double>(base);
}

void SmartStore::reconfigure() {
  util::WriterLock ex(structure_mu_);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t g : tree_.groups()) full_sync_group(g, nullptr);
}

// ---- dynamic operations ------------------------------------------------------

QueryStats SmartStore::insert_file(const FileMetadata& f, double arrival,
                                   const WalHook& logged,
                                   const WalFlush& flushed) {
  util::ReaderLock shared(structure_mu_);
  return insert_file_impl(f, arrival, logged, flushed);
}

std::vector<QueryStats> SmartStore::insert_batch(
    const std::vector<FileMetadata>& files, double arrival,
    const WalHook& logged, const WalFlush& flushed) {
  std::vector<QueryStats> out;
  out.reserve(files.size());
  util::ReaderLock shared(structure_mu_);
  for (const FileMetadata& f : files)
    out.push_back(insert_file_impl(f, arrival, logged, flushed));
  return out;
}

QueryStats SmartStore::insert_file_impl(const FileMetadata& f, double arrival,
                                        const WalHook& logged,
                                        const WalFlush& flushed,
                                        std::uint64_t forced_seq) {
  QueryStats stats;
  sim::Session session = cluster_->start_session(random_home(), arrival);

  // Home unit ranks groups from its local replicas (off-line routing).
  session.visit(cfg_.cost.per_node_visit_s +
                static_cast<double>(tree_.groups().size()) *
                    cfg_.cost.per_bloom_check_s);
  const std::size_t g = best_group_for_vector(f.full_vector());
  assert(g != kInvalidIndex);
  const IndexUnit& group = tree_.node(g);
  session.send_to(group.mapped_unit, kQueryMsgBytes);
  session.visit(cfg_.cost.per_node_visit_s);

  // Least-loaded member unit balances load within the group (Section
  // 3.2.1). Counts are read one stripe at a time; the pick can go stale by
  // a few records under concurrency, which only softens the balancing.
  // The scan starts at a per-thread random offset: balanced groups are
  // full of ties, and deterministic tie-breaking would send every
  // concurrent writer to the SAME unit (they all read the counts before
  // any increment lands) — a convoy that serializes the per-shard WAL
  // fsyncs the sharding exists to overlap. Rotating the tie-break spreads
  // simultaneous writers across the group while still picking a strict
  // minimum.
  const std::size_t nchild = group.children.size();
  const std::size_t start =
      nchild > 1 ? static_cast<std::size_t>(thread_rng().uniform_u64(nchild))
                 : 0;
  UnitId target = group.children[start];
  std::size_t target_count = std::numeric_limits<std::size_t>::max();
  for (std::size_t k = 0; k < nchild; ++k) {
    const UnitId u = group.children[(start + k) % nchild];
    std::size_t count;
    {
      const util::MutexLock guard(unit_mutex(u));
      count = units_[u].file_count();
    }
    if (count < target_count) {
      target_count = count;
      target = u;
    }
  }
  session.send_to(target, kQueryMsgBytes);
  session.visit(cfg_.cost.per_node_visit_s, 1);

  // The mutation proper: log, copy-on-write, apply — all under the target
  // unit's lock, so the shard's log order equals this unit's apply order.
  epoch_.fetch_add(1, std::memory_order_relaxed);
  const la::Vector raw = f.full_vector();
  const la::Vector std = std_coords(f);
  // Hashed once, outside every lock: the filters under the unit lock, the
  // ancestor stripes and the group sync stripe all reuse it.
  const bloom::ItemHash name_hash = bloom::hash_item(f.name);
  {
    const util::MutexLock guard(unit_mutex(target));
    // Stamp and apply in ONE critical section: a snapshot reader that pins
    // seq S and then scans this unit either blocks here (and sees the
    // record) or runs after the apply — no mutation with seq <= S can land
    // in a unit the reader already scanned, because stamps issued after the
    // pin are strictly greater than S.
    const std::uint64_t seq = forced_seq != kAssignSeq
                                  ? forced_seq
                                  : commit_stamp(logged ? logged(target) : 0);
    cow_unit(target);
    units_[target].add_file(f, std, seq);
    units_[target].prune_tombstones(gc_watermark());
    if (forced_seq == kAssignSeq) mark_unit_dirty(target, seq);
  }
  // The group-commit fsync (if the flush hook decides one is due) runs
  // here, off every store lock: it stalls only this shard's writers.
  if (flushed) flushed(target);
  // Ancestor summaries widen one stripe at a time (child before parent);
  // readers meanwhile see a box/filter that is at worst transiently
  // narrower up the path, the same staleness replicas already exhibit.
  tree_.on_file_inserted(target, raw, std, f.name, &summary_stripes_, &name_hash);
  for (auto& v : variants_)
    v.tree.on_file_inserted(target, raw, std, f.name, &summary_stripes_, &name_hash);
  total_files_.fetch_add(1, std::memory_order_relaxed);

  bool want_full_sync;
  {
    const auto guard = maybe_lock(&sync_stripes_, &sync_.at(g));
    GroupSync& gs = sync_.at(g);
    gs.pending.added_box.expand(std);
    gs.pending.added_names.insert(name_hash);
    for (std::size_t d = 0; d < kNumAttrs; ++d)
      gs.pending.added_attr_sum[d] += raw[d];
    ++gs.pending.added_count;
    want_full_sync = after_group_change(g, session.clock(), &session);
  }
  if (want_full_sync) full_sync_group(g, &session);

  stats.latency_s = session.clock() - arrival;
  stats.messages = session.messages();
  stats.hops = session.hops();
  stats.routing_hops = 0;
  stats.groups_visited = 1;
  stats.failed = session.failed();
  return stats;
}

std::optional<QueryStats> SmartStore::delete_file(const std::string& name,
                                                  double arrival) {
  util::ReaderLock shared(structure_mu_);
  PointResult located = point_query_impl({name}, Routing::kOffline, arrival);
  if (!located.found) return std::nullopt;

  // The locate and the removal are not atomic: a concurrent delete of the
  // same name can win in between, in which case this one reports "absent".
  if (!remove_located(located.unit, located.id,
                      located.stats.latency_s + arrival, nullptr, {}, {}))
    return std::nullopt;
  return located.stats;
}

bool SmartStore::remove_located(UnitId u, FileId id, double now,
                                sim::Session* session, const WalHook& logged,
                                const WalFlush& flushed) {
  epoch_.fetch_add(1, std::memory_order_relaxed);
  la::Vector raw;
  {
    const util::MutexLock guard(unit_mutex(u));
    if (!units_[u].find_by_id(id)) return false;  // lost a delete race
    const std::uint64_t seq = commit_stamp(logged ? logged(u) : 0);
    cow_unit(u);
    auto removed = units_[u].remove_file(id, seq);
    assert(removed.has_value());
    raw = removed->full_vector();
    units_[u].prune_tombstones(gc_watermark());
    mark_unit_dirty(u, seq);
  }
  if (flushed) flushed(u);
  tree_.on_file_removed(u, raw, &summary_stripes_);
  for (auto& v : variants_) v.tree.on_file_removed(u, raw, &summary_stripes_);
  total_files_.fetch_sub(1, std::memory_order_relaxed);

  const std::size_t g = tree_.group_of_unit(u);
  bool want_full_sync;
  {
    const auto guard = maybe_lock(&sync_stripes_, &sync_.at(g));
    GroupSync& gs = sync_.at(g);
    gs.pending.deleted.push_back(id);
    want_full_sync = after_group_change(g, now, session);
  }
  if (want_full_sync) full_sync_group(g, session);
  return true;
}

bool SmartStore::erase_file(const std::string& name, const WalHook& logged,
                            const WalFlush& flushed) {
  util::ReaderLock shared(structure_mu_);
  return erase_file_impl(name, logged, flushed);
}

bool SmartStore::erase_file_impl(const std::string& name,
                                 const WalHook& logged,
                                 const WalFlush& flushed) {
  for (UnitId u = 0; u < units_.size(); ++u) {
    if (!unit_active_[u]) continue;
    FileId id = 0;
    bool found = false;
    {
      const util::MutexLock guard(unit_mutex(u));
      if (const metadata::FileMetadata* f = units_[u].find_by_name(name)) {
        id = f->id;
        found = true;
      }
    }
    if (!found) continue;
    // The unit lock was dropped between locate and removal; remove_located
    // re-checks by id and reports a lost race, in which case the scan
    // continues (the name might also exist on a later unit).
    if (remove_located(u, id, 0.0, nullptr, logged, flushed)) return true;
  }
  return false;
}

// ---- point query --------------------------------------------------------------

PointResult SmartStore::point_query(const metadata::PointQuery& q,
                                    Routing routing, double arrival) {
  util::ReaderLock shared(structure_mu_);
  return point_query_impl(q, routing, arrival);
}

PointResult SmartStore::point_query_impl(const metadata::PointQuery& q,
                                         Routing routing, double arrival) {
  PointResult res;
  // One digest for every filter this query will consult.
  const bloom::ItemHash qhash = bloom::hash_item(q.filename);
  sim::Session session = cluster_->start_session(random_home(), arrival);
  const UnitId home = session.location();

  // The home unit always checks its own filter first: queries about files
  // the requester itself stores resolve with zero messages.
  session.visit(cfg_.cost.per_bloom_check_s);
  {
    const util::MutexLock guard(unit_mutex(home));
    if (units_[home].name_filter().may_contain(qhash)) {
      session.visit(cfg_.cost.per_node_visit_s);
      if (const auto* f = units_[home].find_by_name(q.filename)) {
        res.found = true;
        res.unit = home;
        res.id = f->id;
        res.first_try = true;
        res.stats.groups_visited = 1;
        res.stats.latency_s = session.clock() - arrival;
        res.stats.failed = session.failed();
        return res;
      }
    }
  }

  std::size_t groups_visited = 0;

  // Probes the member units of one group whose filter reported positive.
  auto probe_group = [&](std::size_t g) {
    ++groups_visited;
    const IndexUnit& group = tree_.node(g);
    std::vector<sim::Session> branches;
    for (UnitId u : group.children) {
      const util::MutexLock guard(unit_mutex(u));
      if (!units_[u].name_filter().may_contain(qhash)) continue;
      sim::Session b = session.fork();
      b.send_to(u, kQueryMsgBytes);
      b.visit(cfg_.cost.per_node_visit_s);
      if (const auto* f = units_[u].find_by_name(q.filename)) {
        res.found = true;
        res.unit = u;
        res.id = f->id;
      }
      branches.push_back(b);
    }
    session.join(branches);
  };

  // On-line walk (Section 3.3.3): ascend from the home group; every
  // ancestor whose unioned filter is positive has its not-yet-searched
  // subtrees descended along positive children. Bloom false positives are
  // discovered when the target metadata is accessed and the walk simply
  // continues, so existing files are always found.
  // Reads one index unit's filter under its stripe.
  auto node_filter_hit = [&](std::size_t nid) {
    const IndexUnit& n = tree_.node(nid);
    const auto guard = maybe_lock(&summary_stripes_, &n);
    return n.name_filter.may_contain(qhash);
  };

  auto online_walk = [&]() {
    std::function<void(sim::Session&, std::size_t)> descend =
        [&](sim::Session& s, std::size_t nid) {
          if (res.found) return;
          const IndexUnit& n = tree_.node(nid);
          s.send_to(n.mapped_unit, kQueryMsgBytes);
          s.visit(cfg_.cost.per_bloom_check_s *
                  static_cast<double>(n.children.size()));
          if (n.level == 1) {
            if (node_filter_hit(nid)) probe_group(nid);
            return;
          }
          std::vector<sim::Session> branches;
          for (std::size_t c : n.children) {
            if (!node_filter_hit(c)) continue;
            sim::Session b = s.fork();
            descend(b, c);
            branches.push_back(b);
          }
          s.join(branches);
        };

    std::size_t prev = kInvalidIndex;
    std::size_t node_id = tree_.group_of_unit(home);
    while (node_id != kInvalidIndex && !res.found) {
      const IndexUnit& n = tree_.node(node_id);
      session.send_to(n.mapped_unit, kQueryMsgBytes);
      session.visit(cfg_.cost.per_bloom_check_s);
      if (node_filter_hit(node_id)) {
        if (n.level == 1) {
          probe_group(node_id);
        } else {
          std::vector<sim::Session> branches;
          for (std::size_t c : n.children) {
            if (c == prev) continue;  // already searched on the way up
            if (!node_filter_hit(c)) continue;
            sim::Session b = session.fork();
            descend(b, c);
            branches.push_back(b);
          }
          session.join(branches);
        }
      }
      prev = node_id;
      node_id = n.parent;
    }
  };

  if (routing == Routing::kOffline) {
    // Candidate groups from the replicated Bloom filters (+versions).
    double version_cost = 0.0;
    std::vector<std::size_t> candidates;
    for (std::size_t g : tree_.groups()) {
      const auto guard = maybe_lock(&sync_stripes_, &sync_.at(g));
      const GroupSync& gs = sync_.at(g);
      version_cost += static_cast<double>(gs.replica.versions.size()) *
                      cfg_.cost.per_bloom_check_s;
      if (gs.replica.name_may_contain(q.filename, cfg_.versioning_enabled))
        candidates.push_back(g);
    }
    session.visit(static_cast<double>(tree_.groups().size()) *
                      cfg_.cost.per_bloom_check_s +
                  version_cost);
    res.stats.version_check_s = version_cost;

    for (std::size_t g : candidates) {
      if (groups_visited >= cfg_.max_groups_per_query) break;
      const IndexUnit& group = tree_.node(g);
      session.send_to(group.mapped_unit, kQueryMsgBytes);
      session.visit(cfg_.cost.per_bloom_check_s *
                    static_cast<double>(group.children.size()));
      if (!node_filter_hit(g)) {
        ++groups_visited;  // wasted visit on a stale/false-positive replica
        continue;
      }
      probe_group(g);
      if (res.found) break;
    }
    // Stale replicas can hide recently inserted files: all-negative
    // candidates then yield a false negative, exactly the error mode
    // Section 5.4.1 attributes to "hash collisions and information
    // staleness". Figure 9's hit rate measures it.
    res.first_try = groups_visited <= 1;
  } else {
    online_walk();
    res.first_try = groups_visited <= 1;
  }

  res.stats.groups_visited = groups_visited;
  res.stats.latency_s = session.clock() - arrival;
  res.stats.messages = session.messages();
  res.stats.hops = session.hops();
  res.stats.failed = session.failed();
  return res;
}

// ---- range query ---------------------------------------------------------------

RangeResult SmartStore::range_query(const metadata::RangeQuery& q,
                                    Routing routing, double arrival) {
  util::ReaderLock shared(structure_mu_);
  return range_query_impl(q, routing, arrival);
}

RangeResult SmartStore::range_query_impl(const metadata::RangeQuery& q,
                                         Routing routing, double arrival) {
  RangeResult res;
  std::vector<std::size_t> dim_idx;
  la::Vector lo, hi;
  standardize_range(q, dim_idx, lo, hi);

  sim::Session session = cluster_->start_session(random_home(), arrival);
  const UnitId home = session.location();
  std::vector<std::size_t> result_groups;

  // Auto-configuration (Section 2.4): pick the tree variant whose grouping
  // predicate best matches the queried attribute subset.
  const SemanticRTree& rt = routing == Routing::kOffline
                                ? tree_for_dims(q.dims)
                                : tree_;

  auto scan_group = [&](std::size_t g) {
    const IndexUnit& group = rt.node(g);
    session.send_to(group.mapped_unit, kQueryMsgBytes);
    session.visit(cfg_.cost.per_node_visit_s);
    const std::size_t before = res.ids.size();
    std::vector<sim::Session> branches;
    for (UnitId u : group.children) {
      // Box check and scan under one stripe hold: the records and their
      // coordinates stay consistent for the duration of the local scan.
      const util::MutexLock guard(unit_mutex(u));
      if (!box_intersects(units_[u].box(), dim_idx, lo, hi)) continue;
      sim::Session b = session.fork();
      b.send_to(u, kQueryMsgBytes);
      b.visit(cfg_.cost.per_node_visit_s, units_[u].file_count());
      unit_range_scan(units_[u], dim_idx, lo, hi, res.ids);
      branches.push_back(b);
    }
    session.join(branches);
    if (res.ids.size() > before) result_groups.push_back(g);
  };

  if (routing == Routing::kOffline) {
    double version_cost = 0.0;
    const auto ranked = rank_groups_range(rt, q, version_cost);
    session.visit(static_cast<double>(rt.groups().size()) *
                      cfg_.cost.per_node_visit_s * 0.1 +
                  version_cost);
    res.stats.version_check_s = version_cost;
    for (const auto& rg : ranked) {
      if (res.stats.groups_visited >= cfg_.max_groups_per_query) break;
      ++res.stats.groups_visited;
      scan_group(rg.node_id);
    }
  } else {
    // On-line: multicast up from the home group to the root (father links),
    // then descend into every subtree whose MBR intersects the box. MBRs
    // are always fresh (local updates propagate on insert), so the on-line
    // answer is exact.
    std::size_t node_id = tree_.group_of_unit(home);
    while (node_id != tree_.root_id() && node_id != kInvalidIndex) {
      const IndexUnit& n = tree_.node(node_id);
      if (n.parent == kInvalidIndex) break;
      session.send_to(tree_.node(n.parent).mapped_unit, kQueryMsgBytes);
      session.visit(cfg_.cost.per_node_visit_s);
      node_id = n.parent;
    }
    std::function<void(sim::Session&, std::size_t)> descend =
        [&](sim::Session& s, std::size_t nid) {
          const IndexUnit& n = tree_.node(nid);
          {
            const auto guard = maybe_lock(&summary_stripes_, &n);
            if (!box_intersects(n.box, dim_idx, lo, hi)) return;
          }
          s.send_to(n.mapped_unit, kQueryMsgBytes);
          s.visit(cfg_.cost.per_node_visit_s);
          if (n.level == 1) {
            ++res.stats.groups_visited;
            const std::size_t before = res.ids.size();
            std::vector<sim::Session> branches;
            for (UnitId u : n.children) {
              const util::MutexLock guard(unit_mutex(u));
              if (!box_intersects(units_[u].box(), dim_idx, lo, hi)) continue;
              sim::Session b = s.fork();
              b.send_to(u, kQueryMsgBytes);
              b.visit(cfg_.cost.per_node_visit_s, units_[u].file_count());
              unit_range_scan(units_[u], dim_idx, lo, hi, res.ids);
              branches.push_back(b);
            }
            s.join(branches);
            if (res.ids.size() > before) result_groups.push_back(nid);
          } else {
            std::vector<sim::Session> branches;
            for (std::size_t c : n.children) {
              sim::Session b = s.fork();
              descend(b, c);
              branches.push_back(b);
            }
            s.join(branches);
          }
        };
    descend(session, node_id);
  }

  res.stats.routing_hops = routing_distance(rt, result_groups);
  res.stats.latency_s = session.clock() - arrival;
  res.stats.messages = session.messages();
  res.stats.hops = session.hops();
  res.stats.records_scanned = res.ids.size();
  res.stats.failed = session.failed();
  return res;
}

// ---- top-k query ---------------------------------------------------------------

TopKResult SmartStore::topk_query(const metadata::TopKQuery& q,
                                  Routing routing, double arrival) {
  util::ReaderLock shared(structure_mu_);
  return topk_query_impl(q, routing, arrival);
}

TopKResult SmartStore::topk_query_impl(const metadata::TopKQuery& q,
                                       Routing routing, double arrival) {
  TopKResult res;
  std::vector<std::size_t> dim_idx;
  const la::Vector point = standardize_point(q, dim_idx);

  sim::Session session = cluster_->start_session(random_home(), arrival);
  const UnitId home = session.location();

  // Max-heap of the best-k candidates with their originating groups.
  std::vector<std::pair<double, FileId>> heap;
  std::vector<std::size_t> result_groups;
  const SemanticRTree& rt = routing == Routing::kOffline
                                ? tree_for_dims(q.dims)
                                : tree_;
  auto max_d = [&]() {
    return heap.size() < q.k ? std::numeric_limits<double>::infinity()
                             : heap.front().first;
  };

  auto scan_group = [&](std::size_t g) {
    const IndexUnit& group = rt.node(g);
    session.send_to(group.mapped_unit, kQueryMsgBytes);
    session.visit(cfg_.cost.per_node_visit_s);
    bool contributed = false;
    std::vector<sim::Session> branches;
    for (UnitId u : group.children) {
      const util::MutexLock guard(unit_mutex(u));
      if (box_min_dist2(units_[u].box(), dim_idx, point) >= max_d() &&
          heap.size() >= q.k)
        continue;
      sim::Session b = session.fork();
      b.send_to(u, kQueryMsgBytes);
      b.visit(cfg_.cost.per_node_visit_s, units_[u].file_count());
      const std::size_t before = heap.size();
      const double before_worst = max_d();
      unit_topk_scan(units_[u], dim_idx, point, q.k, heap);
      if (heap.size() > before || max_d() < before_worst) contributed = true;
      branches.push_back(b);
    }
    session.join(branches);
    if (contributed) result_groups.push_back(g);
  };

  if (routing == Routing::kOffline) {
    double version_cost = 0.0;
    const auto ranked = rank_groups_topk(rt, point, dim_idx, version_cost);
    session.visit(static_cast<double>(rt.groups().size()) *
                      cfg_.cost.per_node_visit_s * 0.1 +
                  version_cost);
    res.stats.version_check_s = version_cost;
    for (const auto& rg : ranked) {
      if (res.stats.groups_visited >= cfg_.max_groups_per_query) break;
      // MaxD pruning (Section 3.3.2): stop when no remaining group can
      // improve the current k-th best distance.
      if (heap.size() >= q.k && rg.score >= max_d()) break;
      ++res.stats.groups_visited;
      scan_group(rg.node_id);
    }
  } else {
    // On-line: serve the home group first to seed MaxD, then climb toward
    // the root, descending into any subtree whose MBR could improve MaxD.
    std::size_t start = tree_.group_of_unit(home);
    ++res.stats.groups_visited;
    scan_group(start);

    std::function<void(sim::Session&, std::size_t)> descend =
        [&](sim::Session& s, std::size_t nid) {
          const IndexUnit& n = tree_.node(nid);
          {
            const auto guard = maybe_lock(&summary_stripes_, &n);
            if (box_min_dist2(n.box, dim_idx, point) >= max_d() &&
                heap.size() >= q.k)
              return;
          }
          if (n.level == 1) {
            if (nid == start) return;  // already served
            s.send_to(n.mapped_unit, kQueryMsgBytes);
            s.visit(cfg_.cost.per_node_visit_s);
            ++res.stats.groups_visited;
            bool contributed = false;
            std::vector<sim::Session> branches;
            for (UnitId u : n.children) {
              const util::MutexLock guard(unit_mutex(u));
              if (box_min_dist2(units_[u].box(), dim_idx, point) >= max_d() &&
                  heap.size() >= q.k)
                continue;
              sim::Session b = s.fork();
              b.send_to(u, kQueryMsgBytes);
              b.visit(cfg_.cost.per_node_visit_s, units_[u].file_count());
              const std::size_t before = heap.size();
              const double bw = max_d();
              unit_topk_scan(units_[u], dim_idx, point, q.k, heap);
              if (heap.size() > before || max_d() < bw) contributed = true;
              branches.push_back(b);
            }
            s.join(branches);
            if (contributed) result_groups.push_back(nid);
          } else {
            s.send_to(n.mapped_unit, kQueryMsgBytes);
            s.visit(cfg_.cost.per_node_visit_s);
            for (std::size_t c : n.children) descend(s, c);
          }
        };
    // Climb: at each ancestor check the other subtrees.
    std::size_t cur = start;
    while (cur != tree_.root_id()) {
      const std::size_t parent = tree_.node(cur).parent;
      if (parent == kInvalidIndex) break;
      session.send_to(tree_.node(parent).mapped_unit, kQueryMsgBytes);
      session.visit(cfg_.cost.per_node_visit_s);
      for (std::size_t sib : tree_.node(parent).children) {
        if (sib == cur) continue;
        descend(session, sib);
      }
      cur = parent;
    }
  }

  std::sort(heap.begin(), heap.end());
  if (heap.size() > q.k) heap.resize(q.k);
  res.hits = std::move(heap);
  res.stats.routing_hops = routing_distance(rt, result_groups);
  res.stats.latency_s = session.clock() - arrival;
  res.stats.messages = session.messages();
  res.stats.hops = session.hops();
  res.stats.failed = session.failed();
  return res;
}

// ---- routing distance (Figure 8) ----------------------------------------------

int SmartStore::lca_distance(const SemanticRTree& t, std::size_t g1,
                             std::size_t g2) const {
  if (g1 == g2) return 0;
  // Collect ancestors of g1 with their levels.
  std::unordered_map<std::size_t, int> anc;
  std::size_t cur = g1;
  while (cur != kInvalidIndex) {
    anc[cur] = t.node(cur).level;
    cur = t.node(cur).parent;
  }
  cur = g2;
  while (cur != kInvalidIndex) {
    auto it = anc.find(cur);
    if (it != anc.end()) return std::max(1, it->second - 1);
    cur = t.node(cur).parent;
  }
  return static_cast<int>(t.height());
}

int SmartStore::routing_distance(
    const SemanticRTree& t,
    const std::vector<std::size_t>& result_groups) const {
  if (result_groups.size() <= 1) return 0;
  const std::size_t primary = result_groups.front();
  int worst = 0;
  for (std::size_t i = 1; i < result_groups.size(); ++i)
    worst = std::max(worst, lca_distance(t, primary, result_groups[i]));
  return worst;
}

// ---- reconfiguration ops -------------------------------------------------------

UnitId SmartStore::add_storage_unit(const StructuralHook& logged) {
  // Exclusive: appending to units_ can reallocate the vector concurrent
  // serving threads and the snapshot serializer index into; any units still
  // pending in an active freeze are copied first.
  util::WriterLock ex(structure_mu_);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (logged) note_commit_seq(logged());
  cow_all_units();
  const UnitId id = units_.size();
  units_.emplace_back(id, bloom_bits_, cfg_.bloom_hashes);
  unit_active_.push_back(true);
  rebuild_unit_locks();
  cluster_->add_node();
  tree_.admit_unit(units_, id);
  for (auto& v : variants_) v.tree.admit_unit(units_, id);
  refresh_sync_groups();
  return id;
}

void SmartStore::remove_storage_unit(UnitId u, const StructuralHook& logged) {
  util::WriterLock ex(structure_mu_);
  assert(u < units_.size() && unit_active_[u]);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (logged) note_commit_seq(logged());
  cow_all_units();
  // Capture the records WITH their commit seqs: re-homing must be invisible
  // to snapshots, so each displaced file re-inserts under its original
  // added_seq (forced_seq below) and the removal leaves no tombstone
  // (deleted_seq 0). Pre-existing tombstones stay on the deactivated unit,
  // where snapshot scans (which visit inactive units too) still find them.
  std::vector<FileMetadata> displaced = units_[u].files();
  std::vector<std::uint64_t> displaced_seqs = units_[u].added_seqs();
  for (const auto& f : displaced) {
    auto removed = units_[u].remove_file(f.id);
    tree_.on_file_removed(u, f.full_vector());
    for (auto& v : variants_) v.tree.on_file_removed(u, f.full_vector());
    total_files_.fetch_sub(1, std::memory_order_relaxed);
  }
  tree_.remove_unit(units_, u);
  for (auto& v : variants_) v.tree.remove_unit(units_, u);
  unit_active_[u] = false;
  cluster_->set_node_alive(u, false);
  refresh_sync_groups();
  // Displaced files re-insert through the impl: the public insert_file
  // takes the structure lock shared and would self-deadlock here. The
  // redistribution is part of the logged structural record, so replay
  // reproduces it without per-file WAL records. forced_seq keeps each
  // record's visibility window unchanged across the move (seq 0 =
  // pre-history records stay pre-history).
  for (std::size_t i = 0; i < displaced.size(); ++i)
    insert_file_impl(displaced[i], 0.0, {}, {}, displaced_seqs[i]);
}

// ---- automatic configuration (Section 2.4) -------------------------------------

std::size_t SmartStore::autoconfigure(
    const std::vector<AttrSubset>& candidates, const StructuralHook& logged) {
  util::WriterLock ex(structure_mu_);
  epoch_.fetch_add(1, std::memory_order_relaxed);
  if (logged) note_commit_seq(logged());
  variants_.clear();
  const double full_count = static_cast<double>(tree_.num_nodes());
  for (const auto& dims : candidates) {
    if (dims.size() == metadata::kNumAttrs) continue;  // the main tree
    SemanticRTree::BuildParams params;
    params.fanout = cfg_.fanout;
    params.min_fill = cfg_.min_fill;
    params.epsilon = cfg_.epsilon;
    params.lsi_rank = cfg_.lsi_rank;
    params.bloom_bits = bloom_bits_;
    params.bloom_hashes = cfg_.bloom_hashes;
    for (std::size_t i = 0; i < dims.size(); ++i)
      params.lsi_dims.push_back(static_cast<std::size_t>(dims[i]));

    TreeVariant v;
    v.dims = dims;
    v.tree.build(units_, params);
    v.tree.map_index_units(rng_);

    // Keep only variants sufficiently different from the main tree: the
    // paper compares the numbers of generated index units.
    const double d = std::abs(static_cast<double>(v.tree.num_nodes()) -
                              full_count);
    if (d > cfg_.autoconfig_threshold * full_count) {
      variants_.push_back(std::move(v));
    }
  }
  return variants_.size();
}

const SemanticRTree& SmartStore::tree_for_dims(const AttrSubset& dims) const {
  const SemanticRTree* best = &tree_;
  double best_score = -1.0;
  for (const auto& v : variants_) {
    // Jaccard similarity between the query dims and the variant dims.
    std::size_t inter = 0;
    for (std::size_t i = 0; i < dims.size(); ++i)
      if (v.dims.contains(dims[i])) ++inter;
    const std::size_t uni = dims.size() + v.dims.size() - inter;
    const double score =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
    if (score > best_score) {
      best_score = score;
      best = &v.tree;
    }
  }
  // The main tree covers every attribute: its Jaccard score.
  std::size_t inter = dims.size();
  const double main_score = static_cast<double>(inter) /
                            static_cast<double>(metadata::kNumAttrs);
  return best_score > main_score ? *best : tree_;
}

// ---- space accounting ----------------------------------------------------------

SmartStore::SpaceBreakdown SmartStore::unit_space(UnitId u) const {
  SpaceBreakdown s;
  s.metadata_bytes = units_[u].byte_size();
  s.index_bytes = tree_.hosted_bytes(u);
  for (const auto& v : variants_) s.index_bytes += v.tree.hosted_bytes(u);
  for (const auto& [g, gs] : sync_) {
    (void)g;
    s.replica_bytes += gs.replica.byte_size() - gs.replica.versions_byte_size();
    s.version_bytes += gs.replica.versions_byte_size();
    if (!gs.pending.empty()) s.version_bytes += gs.pending.byte_size();
  }
  return s;
}

SmartStore::SpaceBreakdown SmartStore::avg_unit_space() const {
  SpaceBreakdown total;
  std::size_t active = 0;
  for (UnitId u = 0; u < units_.size(); ++u) {
    if (!unit_active_[u]) continue;
    ++active;
    const SpaceBreakdown s = unit_space(u);
    total.metadata_bytes += s.metadata_bytes;
    total.index_bytes += s.index_bytes;
    total.replica_bytes += s.replica_bytes;
    total.version_bytes += s.version_bytes;
  }
  if (active == 0) return total;
  total.metadata_bytes /= active;
  total.index_bytes /= active;
  total.replica_bytes /= active;
  total.version_bytes /= active;
  return total;
}

double SmartStore::avg_version_bytes_per_group() const {
  if (sync_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& [g, gs] : sync_) {
    (void)g;
    total += static_cast<double>(gs.replica.versions_byte_size());
    if (!gs.pending.empty())
      total += static_cast<double>(gs.pending.byte_size());
  }
  return total / static_cast<double>(sync_.size());
}

bool SmartStore::check_invariants() const {
  if (!tree_.check_invariants(units_)) return false;
  for (const auto& v : variants_) {
    if (!v.tree.check_invariants(units_)) return false;
  }
  std::size_t files = 0;
  for (UnitId u = 0; u < units_.size(); ++u) files += units_[u].file_count();
  if (files != total_files_.load(std::memory_order_relaxed)) return false;
  for (std::size_t g : tree_.groups()) {
    if (!sync_.count(g)) return false;
  }
  return true;
}

// ---- MVCC snapshots ------------------------------------------------------------

std::uint64_t SmartStore::commit_stamp(std::uint64_t wal_seq) {
  if (wal_seq == 0) {
    // No WAL stamp (in-memory store): self-assign the next counter value.
    return commit_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }
  // Adopt the WAL stamp via CAS-max: shards hand out stamps concurrently,
  // so a smaller stamp can arrive here after a larger one was adopted.
  std::uint64_t cur = commit_seq_.load(std::memory_order_relaxed);
  while (cur < wal_seq &&
         !commit_seq_.compare_exchange_weak(cur, wal_seq,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
  }
  return wal_seq;
}

void SmartStore::note_commit_seq(std::uint64_t seq) {
  std::uint64_t cur = commit_seq_.load(std::memory_order_relaxed);
  while (cur < seq &&
         !commit_seq_.compare_exchange_weak(cur, seq,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
  }
}

std::shared_ptr<void> SmartStore::pin_snapshot(std::uint64_t* seq_out) const {
  const std::uint64_t seq = commit_seq_.load(std::memory_order_acquire);
  std::shared_ptr<SnapshotPins> pins = pins_;
  {
    const util::MutexLock guard(pins->mu);
    pins->pins.insert(seq);
    pins->watermark.store(*pins->pins.begin(), std::memory_order_release);
  }
  if (seq_out) *seq_out = seq;
  // Deleter-only handle: the lambda owns the registry, so unpinning after
  // the store is destroyed is safe.
  return std::shared_ptr<void>(nullptr, [pins, seq](void*) {
    const util::MutexLock guard(pins->mu);
    auto it = pins->pins.find(seq);
    if (it != pins->pins.end()) pins->pins.erase(it);
    pins->watermark.store(
        pins->pins.empty() ? kNoWatermark : *pins->pins.begin(),
        std::memory_order_release);
  });
}

std::size_t SmartStore::pinned_snapshots() const {
  const util::MutexLock guard(pins_->mu);
  return pins_->pins.size();
}

std::size_t SmartStore::tombstone_count() const {
  util::ReaderLock shared(structure_mu_);
  std::size_t n = 0;
  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    n += units_[u].tombstones().size();
  }
  return n;
}

namespace {

/// Live record visible at snapshot `seq`? (0 = pre-history, always.)
inline bool live_visible(std::uint64_t added_seq, std::uint64_t seq) {
  return added_seq <= seq;
}

/// Tombstoned version visible at snapshot `seq`?
inline bool dead_visible(const TombstoneRecord& t, std::uint64_t seq) {
  return t.added_seq <= seq && seq < t.deleted_seq;
}

}  // namespace

std::size_t SmartStore::snapshot_file_count(std::uint64_t seq) const {
  util::ReaderLock shared(structure_mu_);
  std::size_t n = 0;
  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    const StorageUnit& unit = units_[u];
    const auto& seqs = unit.added_seqs();
    for (std::size_t i = 0; i < seqs.size(); ++i)
      if (live_visible(seqs[i], seq)) ++n;
    for (const auto& t : unit.tombstones())
      if (dead_visible(t, seq)) ++n;
  }
  return n;
}

std::vector<metadata::FileMetadata> SmartStore::snapshot_dump(
    std::uint64_t seq) const {
  util::ReaderLock shared(structure_mu_);
  std::vector<metadata::FileMetadata> out;
  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    const StorageUnit& unit = units_[u];
    const auto& files = unit.files();
    const auto& seqs = unit.added_seqs();
    for (std::size_t i = 0; i < files.size(); ++i)
      if (live_visible(seqs[i], seq)) out.push_back(files[i]);
    for (const auto& t : unit.tombstones())
      if (dead_visible(t, seq)) out.push_back(t.file);
  }
  // Canonical order, like the snapshot queries: two dumps at the same seq
  // (even across different stores with different placement) compare ==.
  std::sort(out.begin(), out.end(),
            [](const metadata::FileMetadata& a, const metadata::FileMetadata& b) {
              return a.id != b.id ? a.id < b.id : a.name < b.name;
            });
  return out;
}

PointResult SmartStore::snapshot_point_query(const metadata::PointQuery& q,
                                             std::uint64_t seq) const {
  util::ReaderLock shared(structure_mu_);
  return snapshot_point_impl(q, seq);
}

PointResult SmartStore::snapshot_point_impl(const metadata::PointQuery& q,
                                            std::uint64_t seq) const {
  PointResult res;
  // Deterministic version pick: newest visible added_seq wins, ties broken
  // by smallest id — independent of unit visit order and writer timing.
  std::uint64_t best_added = 0;
  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    const StorageUnit& unit = units_[u];
    const auto& files = unit.files();
    const auto& seqs = unit.added_seqs();
    auto consider = [&](std::uint64_t added, FileId id, UnitId where) {
      if (res.found &&
          (added < best_added || (added == best_added && id >= res.id)))
        return;
      res.found = true;
      res.unit = where;
      res.id = id;
      best_added = added;
    };
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (!live_visible(seqs[i], seq)) continue;
      if (files[i].name == q.filename) consider(seqs[i], files[i].id, u);
    }
    for (const auto& t : unit.tombstones()) {
      if (!dead_visible(t, seq)) continue;
      if (t.file.name == q.filename) consider(t.added_seq, t.file.id, u);
    }
  }
  res.first_try = true;
  res.stats.groups_visited = res.found ? 1 : 0;
  return res;
}

RangeResult SmartStore::snapshot_range_query(const metadata::RangeQuery& q,
                                             std::uint64_t seq) const {
  util::ReaderLock shared(structure_mu_);
  return snapshot_range_impl(q, seq);
}

RangeResult SmartStore::snapshot_range_impl(const metadata::RangeQuery& q,
                                            std::uint64_t seq) const {
  RangeResult res;
  std::vector<std::size_t> dim_idx;
  la::Vector lo, hi;
  standardize_range(q, dim_idx, lo, hi);

  auto in_box = [&](const la::Vector& c) {
    for (std::size_t j = 0; j < dim_idx.size(); ++j) {
      const double v = c[dim_idx[j]];
      if (v < lo[j] || v > hi[j]) return false;
    }
    return true;
  };

  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    const StorageUnit& unit = units_[u];
    const auto& coords = unit.std_coords();
    const auto& seqs = unit.added_seqs();
    for (std::size_t i = 0; i < coords.size(); ++i) {
      if (!live_visible(seqs[i], seq)) continue;
      if (in_box(coords[i])) res.ids.push_back(unit.files()[i].id);
    }
    for (const auto& t : unit.tombstones()) {
      if (!dead_visible(t, seq)) continue;
      if (in_box(t.std_coords)) res.ids.push_back(t.file.id);
    }
  }
  // Canonical order: sorted ids, so two scans at the same seq compare ==.
  std::sort(res.ids.begin(), res.ids.end());
  res.stats.records_scanned = res.ids.size();
  return res;
}

TopKResult SmartStore::snapshot_topk_query(const metadata::TopKQuery& q,
                                           std::uint64_t seq) const {
  util::ReaderLock shared(structure_mu_);
  return snapshot_topk_impl(q, seq);
}

TopKResult SmartStore::snapshot_topk_impl(const metadata::TopKQuery& q,
                                          std::uint64_t seq) const {
  TopKResult res;
  std::vector<std::size_t> dim_idx;
  const la::Vector point = standardize_point(q, dim_idx);

  auto dist2 = [&](const la::Vector& c) {
    double d = 0.0;
    for (std::size_t j = 0; j < dim_idx.size(); ++j) {
      const double delta = c[dim_idx[j]] - point[j];
      d += delta * delta;
    }
    return d;
  };

  std::vector<std::pair<double, FileId>> all;
  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    const StorageUnit& unit = units_[u];
    const auto& coords = unit.std_coords();
    const auto& seqs = unit.added_seqs();
    for (std::size_t i = 0; i < coords.size(); ++i) {
      if (!live_visible(seqs[i], seq)) continue;
      all.emplace_back(dist2(coords[i]), unit.files()[i].id);
    }
    for (const auto& t : unit.tombstones()) {
      if (!dead_visible(t, seq)) continue;
      all.emplace_back(dist2(t.std_coords), t.file.id);
    }
  }
  // Exact global order with (dist, id) tie-break, then truncate: canonical.
  std::sort(all.begin(), all.end());
  if (all.size() > q.k) all.resize(q.k);
  res.hits = std::move(all);
  return res;
}

SmartStore::Introspection SmartStore::introspect(std::uint64_t seq) const {
  util::ReaderLock shared(structure_mu_);
  Introspection out;
  // Topology changes only under the exclusive structure lock; the shared
  // lock is enough for stable reads. Node-summary writers mutate contents
  // under their stripes but never resize anything byte_size reads.
  out.num_units = units_.size();
  out.tree_height = static_cast<std::size_t>(tree_.height());
  out.tree_groups = tree_.groups().size();
  out.index_units = tree_.num_nodes();

  std::size_t active = 0;
  for (UnitId u = 0; u < units_.size(); ++u) {
    const util::MutexLock guard(unit_mutex(u));
    const StorageUnit& unit = units_[u];
    const auto& seqs = unit.added_seqs();
    for (std::size_t i = 0; i < seqs.size(); ++i)
      if (live_visible(seqs[i], seq)) ++out.files;
    for (const auto& t : unit.tombstones())
      if (dead_visible(t, seq)) ++out.files;
    if (!unit_active_[u]) continue;
    ++active;
    out.avg_space.metadata_bytes += unit.byte_size();
    out.avg_space.index_bytes += tree_.hosted_bytes(u);
    for (const auto& v : variants_)
      out.avg_space.index_bytes += v.tree.hosted_bytes(u);
  }
  if (active != 0) {
    out.avg_space.metadata_bytes /= active;
    out.avg_space.index_bytes /= active;
  }
  // Every unit carries a replica of every group summary, so the per-unit
  // replica/version bytes ARE the totals — no averaging. Version vectors
  // grow under the group's sync stripe; read under it.
  for (const auto& [g, gs] : sync_) {
    (void)g;
    const StripeLock stripe(&sync_stripes_, &gs);
    out.avg_space.replica_bytes +=
        gs.replica.byte_size() - gs.replica.versions_byte_size();
    out.avg_space.version_bytes += gs.replica.versions_byte_size();
    if (!gs.pending.empty())
      out.avg_space.version_bytes += gs.pending.byte_size();
  }
  return out;
}

}  // namespace smartstore::core
