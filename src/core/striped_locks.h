// Address-keyed striped mutex pools: the leaf-level synchronization for
// the multi-writer serving path's *summary* and *replica-sync* updates.
//
// The store's coarse shape (which units exist, tree topology, the variant
// list) is guarded by a reader/writer structure lock; storage-unit records
// get DEDICATED per-unit mutexes (the WAL hook may fsync under them, so
// they must never alias anything else); the remaining shared state every
// insert touches is guarded here, striped by object address, in two pools
// with distinct ranks: an index unit's MBR/Bloom/centroid sums
// (kSummaryStripe) and a group's replica sync state (kSyncStripe).
// Writers routed to different storage units then only ever contend where
// their ancestor paths overlap (the root stripe), and that critical
// section is a few bit-sets and adds — never I/O.
//
// Discipline (what keeps this deadlock-free):
//   * at most ONE stripe-or-unit-lock is held at a time — walkers lock a
//     node, update it, release, then move to the parent; summary updates
//     are commutative (MBR expand, filter insert, sum add), so cross-node
//     atomicity is not needed and readers tolerate the transient widening;
//   * a stripe may be held while taking a leaf-class lock (the freeze
//     mutex, a WAL shard mutex, the sim-cluster mutex) — never the reverse;
//   * striping is by current address: objects only move (vector
//     reallocation) under the exclusive structure lock, when no stripe can
//     be held.
//
// Clang TSA cannot model these locks (which mutex you take is a runtime
// hash of an address), so the discipline is enforced dynamically instead:
// every stripe carries the pool's LockRank and reports to the
// LockOrderValidator — holding any stripe while taking another (same pool
// or not) aborts a debug/asan/tsan run, and assert_held() gives callees an
// ASSERT_CAPABILITY-style runtime check that their caller really locked
// the stripe they are about to mutate under.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

#include "util/lock_rank.h"

namespace smartstore::core {

class StripedMutexPool {
 public:
  static constexpr std::size_t kStripes = 64;

  explicit StripedMutexPool(
      util::LockRank rank = util::LockRank::kSummaryStripe) noexcept
      : rank_(rank) {}

  util::LockRank rank() const noexcept { return rank_; }

  /// The stripe guarding the object at `p`. Distinct objects may share a
  /// stripe (that is the point); the same address always maps to the same
  /// stripe while any lock is held.
  std::mutex& for_ptr(const void* p) const {
    auto h = reinterpret_cast<std::uintptr_t>(p);
    h ^= h >> 17;  // drop allocation-granularity bias before folding
    h *= 0x9E3779B97F4A7C15ULL;
    return mu_[(h >> 32) % kStripes];
  }

  /// Runtime REQUIRES stand-in for the stripe TSA cannot name: aborts in
  /// validator builds unless the calling thread holds `p`'s stripe.
  void assert_held(const void* p) const {
#ifdef SMARTSTORE_LOCK_RANK_ACTIVE
    if (!util::LockOrderValidator::holds(&for_ptr(p))) {
      std::fprintf(stderr,
                   "lock-rank violation: assert_held(%s stripe) failed\n",
                   util::lock_rank_name(rank_));
      std::abort();
    }
#endif
  }

 private:
  mutable std::array<std::mutex, kStripes> mu_;
  const util::LockRank rank_;
};

/// RAII guard for one stripe; empty when constructed with a null pool (the
/// single-threaded paths — bulk build, recovery replay — skip the locking
/// without a second code path). Registers with the LockOrderValidator so a
/// thread holding any stripe-or-above lock of equal or greater rank aborts
/// before it can deadlock.
class StripeLock {
 public:
  StripeLock() noexcept = default;
  StripeLock(const StripedMutexPool* pool, const void* p) {
    if (pool == nullptr) return;
    mu_ = &pool->for_ptr(p);
    rank_ = pool->rank();
    util::LockOrderValidator::on_acquire(mu_, rank_);
    mu_->lock();
  }
  ~StripeLock() {
    if (mu_ == nullptr) return;
    mu_->unlock();
    util::LockOrderValidator::on_release(mu_, rank_);
  }

  StripeLock(const StripeLock&) = delete;
  StripeLock& operator=(const StripeLock&) = delete;

 private:
  std::mutex* mu_ = nullptr;
  util::LockRank rank_ = util::LockRank::kLeaf;
};

/// Locks `p`'s stripe when `pool` is non-null; otherwise an empty guard.
inline StripeLock maybe_lock(const StripedMutexPool* pool, const void* p) {
  return StripeLock(pool, p);
}

}  // namespace smartstore::core
