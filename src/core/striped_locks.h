// Address-keyed striped mutex pool: the leaf-level synchronization for the
// multi-writer serving path's *summary* updates.
//
// The store's coarse shape (which units exist, tree topology, the variant
// list) is guarded by a reader/writer structure lock; storage-unit records
// get DEDICATED per-unit mutexes (the WAL hook may fsync under them, so
// they must never alias anything else); the remaining summaries every
// insert touches — an index unit's MBR/Bloom/centroid sums, a group's
// replica sync state — are guarded here, striped by object address.
// Writers routed to different storage units then only ever contend where
// their ancestor paths overlap (the root stripe), and that critical
// section is a few bit-sets and adds — never I/O.
//
// Discipline (what keeps this deadlock-free):
//   * at most ONE stripe-or-unit-lock is held at a time — walkers lock a
//     node, update it, release, then move to the parent; summary updates
//     are commutative (MBR expand, filter insert, sum add), so cross-node
//     atomicity is not needed and readers tolerate the transient widening;
//   * a stripe may be held while taking a leaf-class lock (the freeze
//     mutex, a WAL shard mutex, the sim-cluster mutex) — never the reverse;
//   * striping is by current address: objects only move (vector
//     reallocation) under the exclusive structure lock, when no stripe can
//     be held.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>

namespace smartstore::core {

class StripedMutexPool {
 public:
  static constexpr std::size_t kStripes = 64;

  /// The stripe guarding the object at `p`. Distinct objects may share a
  /// stripe (that is the point); the same address always maps to the same
  /// stripe while any lock is held.
  std::mutex& for_ptr(const void* p) const {
    auto h = reinterpret_cast<std::uintptr_t>(p);
    h ^= h >> 17;  // drop allocation-granularity bias before folding
    h *= 0x9E3779B97F4A7C15ULL;
    return mu_[(h >> 32) % kStripes];
  }

 private:
  mutable std::array<std::mutex, kStripes> mu_;
};

/// Locks `p`'s stripe when `pool` is non-null; otherwise an empty guard
/// (the single-threaded paths — bulk build, recovery replay — skip the
/// locking without a second code path).
inline std::unique_lock<std::mutex> maybe_lock(const StripedMutexPool* pool,
                                               const void* p) {
  return pool ? std::unique_lock<std::mutex>(pool->for_ptr(p))
              : std::unique_lock<std::mutex>();
}

}  // namespace smartstore::core
