// Brute-force reference answers for the recall experiments (Section 5.4:
// recall = |T(q) ∩ A(q)| / |T(q)| where T(q) is the ideal result set).
//
// The reference scans the full metadata population with exactly the same
// geometry the store uses: per-dimension z-scored coordinates, Euclidean
// distance restricted to the query's attribute subset.
#pragma once

#include <vector>

#include "la/stats.h"
#include "metadata/file_metadata.h"
#include "metadata/query.h"

namespace smartstore::core {

/// Fits the standardizer all stores and ground truth share: z-score per
/// attribute over the population.
la::RowStandardizer fit_standardizer(
    const std::vector<metadata::FileMetadata>& files);

/// All file ids matching the range query (raw-space semantics; identical
/// to standardized-space semantics for non-degenerate attributes).
std::vector<metadata::FileId> brute_force_range(
    const std::vector<metadata::FileMetadata>& files,
    const metadata::RangeQuery& q);

/// The k nearest files to the query point under standardized Euclidean
/// distance on the query's dimensions; (squared distance, id), ascending.
std::vector<std::pair<double, metadata::FileId>> brute_force_topk(
    const std::vector<metadata::FileMetadata>& files,
    const la::RowStandardizer& standardizer, const metadata::TopKQuery& q);

/// recall = |truth ∩ answer| / |truth|; returns 1 when truth is empty.
double recall(const std::vector<metadata::FileId>& truth,
              const std::vector<metadata::FileId>& answer);

}  // namespace smartstore::core
