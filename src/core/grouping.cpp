#include "core/grouping.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/rng.h"

namespace smartstore::core {

namespace {

/// Union-find with size tracking, used by the greedy aggregation.
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  std::size_t size(std::size_t x) { return size_[find(x)]; }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

Grouping finalize_groups(std::size_t n, DisjointSets& ds) {
  Grouping g;
  g.group_of.assign(n, 0);
  std::vector<std::size_t> root_to_group(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = ds.find(i);
    if (root_to_group[r] == static_cast<std::size_t>(-1)) {
      root_to_group[r] = g.groups.size();
      g.groups.emplace_back();
    }
    const std::size_t gi = root_to_group[r];
    g.groups[gi].push_back(i);
    g.group_of[i] = gi;
  }
  return g;
}

struct SimPair {
  double sim;
  std::size_t a, b;
};

Grouping greedy_aggregate(const std::vector<la::Vector>& coords,
                          double epsilon, std::size_t max_group_size) {
  const std::size_t n = coords.size();
  DisjointSets ds(n);
  if (n > 1) {
    std::vector<SimPair> pairs;
    pairs.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double s = la::cosine_similarity(coords[i], coords[j]);
        if (s > epsilon) pairs.push_back({s, i, j});
      }
    }
    // Highest correlation first ("the one with the largest correlation
    // value will be chosen"); ties broken by index for determinism.
    std::sort(pairs.begin(), pairs.end(), [](const SimPair& x, const SimPair& y) {
      if (x.sim != y.sim) return x.sim > y.sim;
      if (x.a != y.a) return x.a < y.a;
      return x.b < y.b;
    });
    const std::size_t cap =
        max_group_size == 0 ? n : std::max<std::size_t>(1, max_group_size);
    for (const auto& p : pairs) {
      if (ds.find(p.a) == ds.find(p.b)) continue;
      if (ds.size(p.a) + ds.size(p.b) > cap) continue;
      ds.unite(p.a, p.b);
    }
  }
  return finalize_groups(n, ds);
}

}  // namespace

Grouping group_by_similarity(const lsi::LsiModel& model, double epsilon,
                             std::size_t max_group_size) {
  std::vector<la::Vector> coords;
  coords.reserve(model.num_docs());
  for (std::size_t i = 0; i < model.num_docs(); ++i)
    coords.push_back(model.doc_coords(i));
  return greedy_aggregate(coords, epsilon, max_group_size);
}

Grouping group_vectors_by_similarity(const std::vector<la::Vector>& coords,
                                     double epsilon,
                                     std::size_t max_group_size) {
  return greedy_aggregate(coords, epsilon, max_group_size);
}

Grouping kmeans_cluster(const std::vector<la::Vector>& coords, std::size_t k,
                        std::size_t iterations, std::uint64_t seed,
                        std::size_t capacity) {
  const std::size_t n = coords.size();
  Grouping g;
  if (n == 0 || k == 0) return g;
  k = std::min(k, n);
  const std::size_t dims = coords[0].size();
  util::Rng rng(seed);

  // k-means++ seeding.
  std::vector<la::Vector> centers;
  centers.reserve(k);
  centers.push_back(coords[rng.uniform_u64(n)]);
  std::vector<double> d2(n, 0.0);
  while (centers.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centers)
        best = std::min(best, la::squared_distance(coords[i], c));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      centers.push_back(coords[rng.uniform_u64(n)]);
      continue;
    }
    double pick = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      pick -= d2[i];
      if (pick <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(coords[chosen]);
  }

  std::vector<std::size_t> assign(n, 0);
  const std::size_t cap = capacity == 0 ? n : capacity;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t iter = 0; iter < std::max<std::size_t>(1, iterations);
       ++iter) {
    // Assignment pass; random order so capacity saturation is unbiased.
    rng.shuffle(order);
    std::vector<std::size_t> load(k, 0);
    for (std::size_t oi = 0; oi < n; ++oi) {
      const std::size_t i = order[oi];
      // Rank centers by distance, take the nearest with spare capacity.
      std::size_t best = k;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        if (load[c] >= cap) continue;
        const double d = la::squared_distance(coords[i], centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (best == k) best = oi % k;  // every center full (cap*k < n guard)
      assign[i] = best;
      ++load[best];
    }
    // Update pass.
    std::vector<la::Vector> sums(k, la::Vector(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < dims; ++d) sums[assign[i]][d] += coords[i][d];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dims; ++d)
        centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
  }

  g.groups.assign(k, {});
  g.group_of.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    g.groups[assign[i]].push_back(i);
    g.group_of[i] = assign[i];
  }
  // Drop empty groups (possible when k is close to n).
  Grouping out;
  out.group_of.assign(n, 0);
  for (auto& members : g.groups) {
    if (members.empty()) continue;
    for (std::size_t m : members) out.group_of[m] = out.groups.size();
    out.groups.push_back(std::move(members));
  }
  return out;
}

Grouping random_grouping(std::size_t n, std::size_t k, std::uint64_t seed) {
  Grouping g;
  if (n == 0 || k == 0) return g;
  k = std::min(k, n);
  util::Rng rng(seed);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  g.groups.assign(k, {});
  g.group_of.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gi = i % k;
    g.groups[gi].push_back(order[i]);
    g.group_of[order[i]] = gi;
  }
  return g;
}

double within_group_scatter(const std::vector<la::Vector>& coords,
                            const Grouping& grouping) {
  double w = 0.0;
  for (const auto& members : grouping.groups) {
    if (members.empty()) continue;
    const std::size_t dims = coords[members[0]].size();
    la::Vector c(dims, 0.0);
    for (std::size_t m : members)
      for (std::size_t d = 0; d < dims; ++d) c[d] += coords[m][d];
    for (auto& x : c) x /= static_cast<double>(members.size());
    for (std::size_t m : members) w += la::squared_distance(coords[m], c);
  }
  return w;
}

double between_group_scatter(const std::vector<la::Vector>& coords,
                             const Grouping& grouping) {
  if (coords.empty()) return 0.0;
  const std::size_t dims = coords[0].size();
  la::Vector global(dims, 0.0);
  for (const auto& x : coords)
    for (std::size_t d = 0; d < dims; ++d) global[d] += x[d];
  for (auto& v : global) v /= static_cast<double>(coords.size());

  double b = 0.0;
  for (const auto& members : grouping.groups) {
    if (members.empty()) continue;
    la::Vector c(dims, 0.0);
    for (std::size_t m : members)
      for (std::size_t d = 0; d < dims; ++d) c[d] += coords[m][d];
    for (auto& x : c) x /= static_cast<double>(members.size());
    b += static_cast<double>(members.size()) * la::squared_distance(c, global);
  }
  return b;
}

double variance_ratio_criterion(const std::vector<la::Vector>& coords,
                                const Grouping& grouping) {
  const std::size_t n = coords.size();
  const std::size_t t = grouping.num_groups();
  if (t < 2 || t >= n) return 0.0;
  const double w = within_group_scatter(coords, grouping);
  const double b = between_group_scatter(coords, grouping);
  // w == 0 happens for singleton-dominated groupings (every group trivially
  // tight); treating it as "infinitely good" would always select the
  // degenerate all-singletons threshold, so score it as undefined instead.
  if (w <= 0.0) return 0.0;
  return (b / static_cast<double>(t - 1)) /
         (w / static_cast<double>(n - t));
}

double optimal_threshold(const lsi::LsiModel& model,
                         std::size_t max_group_size,
                         std::size_t num_candidates) {
  const std::size_t n = model.num_docs();
  if (n < 3) return 0.5;
  std::vector<la::Vector> coords;
  coords.reserve(n);
  for (std::size_t i = 0; i < n; ++i) coords.push_back(model.doc_coords(i));

  // Candidate thresholds: evenly spaced quantiles of the pairwise
  // similarity distribution (plus the extremes are implicitly covered).
  std::vector<double> sims;
  sims.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      sims.push_back(la::cosine_similarity(coords[i], coords[j]));
  std::sort(sims.begin(), sims.end());

  // Two passes: prefer thresholds that actually aggregate (mean group size
  // >= 2 — Statement 1 asks for balanced, non-trivial groups); fall back to
  // the unconstrained optimum if every candidate leaves units isolated.
  double best_eps = 0.5, best_score = -1.0;
  double any_eps = 0.5, any_score = -1.0;
  for (std::size_t c = 0; c < num_candidates; ++c) {
    const double q = (static_cast<double>(c) + 0.5) /
                     static_cast<double>(num_candidates);
    const double eps =
        sims[static_cast<std::size_t>(q * static_cast<double>(sims.size() - 1))];
    const Grouping g = greedy_aggregate(coords, eps, max_group_size);
    const double score = variance_ratio_criterion(coords, g);
    if (score > any_score) {
      any_score = score;
      any_eps = eps;
    }
    if (g.num_groups() <= std::max<std::size_t>(1, n / 2) &&
        score > best_score) {
      best_score = score;
      best_eps = eps;
    }
  }
  return best_score >= 0.0 ? best_eps : any_eps;
}

}  // namespace smartstore::core
