#include "core/semantic_rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "metadata/schema.h"

namespace smartstore::core {

using metadata::kNumAttrs;

la::Vector IndexUnit::centroid_raw() const {
  la::Vector c = attr_sum;
  if (file_count > 0) {
    const double inv = 1.0 / static_cast<double>(file_count);
    for (auto& x : c) x *= inv;
  }
  return c;
}

std::size_t IndexUnit::byte_size() const {
  return sizeof(*this) + children.capacity() * sizeof(std::size_t) +
         box.byte_size() + name_filter.byte_size() +
         attr_sum.capacity() * sizeof(double);
}

std::size_t SemanticRTree::new_node(int level) {
  std::size_t id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = IndexUnit{};
  } else {
    id = nodes_.size();
    nodes_.emplace_back();
  }
  nodes_[id].node_id = id;
  nodes_[id].level = level;
  nodes_[id].name_filter =
      bloom::BloomFilter(params_.bloom_bits, params_.bloom_hashes);
  nodes_[id].attr_sum.assign(kNumAttrs, 0.0);
  ++live_nodes_;
  return id;
}

void SemanticRTree::free_node(std::size_t id) {
  nodes_[id].node_id = kInvalidIndex;
  nodes_[id].children.clear();
  free_list_.push_back(id);
  --live_nodes_;
}

rtree::Mbr SemanticRTree::child_box(const std::vector<StorageUnit>& units,
                                    const IndexUnit& node,
                                    std::size_t child) const {
  return node.level == 1 ? units[child].box() : nodes_[child].box;
}

void SemanticRTree::recompute_node(const std::vector<StorageUnit>& units,
                                   std::size_t id) {
  IndexUnit& n = nodes_[id];
  n.box = rtree::Mbr();
  n.name_filter.clear();
  n.attr_sum.assign(kNumAttrs, 0.0);
  n.file_count = 0;
  for (std::size_t c : n.children) {
    if (n.level == 1) {
      const StorageUnit& u = units[c];
      n.box.expand(u.box());
      n.name_filter.merge(u.name_filter_view());
      const la::Vector cent = u.centroid_raw();
      for (std::size_t d = 0; d < kNumAttrs; ++d)
        n.attr_sum[d] += cent[d] * static_cast<double>(u.file_count());
      n.file_count += u.file_count();
    } else {
      const IndexUnit& ch = nodes_[c];
      n.box.expand(ch.box);
      n.name_filter.merge(ch.name_filter);
      for (std::size_t d = 0; d < kNumAttrs; ++d)
        n.attr_sum[d] += ch.attr_sum[d];
      n.file_count += ch.file_count;
    }
  }
}

void SemanticRTree::recompute_upward(const std::vector<StorageUnit>& units,
                                     std::size_t id) {
  std::size_t cur = id;
  while (cur != kInvalidIndex) {
    recompute_node(units, cur);
    cur = nodes_[cur].parent;
  }
}

void SemanticRTree::recompute_all(const std::vector<StorageUnit>& units) {
  // Bottom-up by level so parents see refreshed children.
  if (!built()) return;
  const int h = nodes_[root_].level;
  for (int level = 1; level <= h; ++level) {
    for (std::size_t id : nodes_at_level(level)) recompute_node(units, id);
  }
}

std::vector<std::size_t> SemanticRTree::nodes_at_level(int level) const {
  std::vector<std::size_t> out;
  for (const auto& n : nodes_) {
    if (n.node_id != kInvalidIndex && n.level == level)
      out.push_back(n.node_id);
  }
  return out;
}

void SemanticRTree::rebuild_group_list() {
  groups_ = nodes_at_level(1);
}

la::Vector SemanticRTree::restrict_dims(const la::Vector& full) const {
  if (params_.lsi_dims.empty()) return full;
  la::Vector out(params_.lsi_dims.size());
  for (std::size_t i = 0; i < params_.lsi_dims.size(); ++i)
    out[i] = full[params_.lsi_dims[i]];
  return out;
}

namespace {

/// Fallback when threshold aggregation makes no progress: order documents
/// by their first coordinate and cut into chunks of `fanout`, which always
/// reduces the population (fanout >= 2, n > 1).
Grouping chunk_grouping(const std::vector<la::Vector>& docs,
                        std::size_t fanout) {
  const std::size_t n = docs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double xa = docs[a].empty() ? 0.0 : docs[a][0];
    const double xb = docs[b].empty() ? 0.0 : docs[b][0];
    if (xa != xb) return xa < xb;
    return a < b;
  });
  Grouping g;
  g.group_of.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % fanout == 0) g.groups.emplace_back();
    g.groups.back().push_back(order[i]);
    g.group_of[order[i]] = g.groups.size() - 1;
  }
  return g;
}

}  // namespace

void SemanticRTree::build(const std::vector<StorageUnit>& units,
                          const BuildParams& params) {
  params_ = params;
  nodes_.clear();
  free_list_.clear();
  live_nodes_ = 0;
  groups_.clear();
  level_epsilons_.clear();
  root_replicas_.clear();
  root_ = kInvalidIndex;
  unit_group_.assign(units.size(), kInvalidIndex);
  if (units.empty()) return;

  // Level 1: LSI over the storage units' semantic vectors, restricted to
  // the grouping predicate's dimensions.
  std::vector<la::Vector> docs;
  docs.reserve(units.size());
  for (const auto& u : units) docs.push_back(restrict_dims(u.centroid_raw()));
  unit_lsi_ = lsi::LsiModel::fit(docs, params.lsi_rank);

  double eps1 = params.epsilon;
  if (eps1 <= 0.0) eps1 = optimal_threshold(unit_lsi_, params.fanout);
  // An unfitted model (degenerate data: one unit, or identical/empty
  // centroids) falls back to raw-vector grouping, which handles any n.
  Grouping g = unit_lsi_.fitted() && unit_lsi_.num_docs() == units.size()
                   ? group_by_similarity(unit_lsi_, eps1, params.fanout)
                   : group_vectors_by_similarity(docs, eps1, params.fanout);
  if (g.num_groups() == units.size() && units.size() > params.fanout) {
    g = chunk_grouping(docs, params.fanout);
  }
  level_epsilons_.push_back(eps1);

  std::vector<std::size_t> current;
  for (const auto& members : g.groups) {
    const std::size_t id = new_node(/*level=*/1);
    nodes_[id].children = members;
    for (std::size_t u : members) unit_group_[u] = id;
    recompute_node(units, id);
    current.push_back(id);
  }

  // Recursive aggregation to the root (Section 3.1.1: level (i-1) nodes
  // aggregate into level-i nodes with threshold ε_i).
  int level = 1;
  while (current.size() > 1) {
    ++level;
    std::vector<la::Vector> level_docs;
    level_docs.reserve(current.size());
    for (std::size_t id : current)
      level_docs.push_back(restrict_dims(nodes_[id].centroid_raw()));

    double eps = params.epsilon;
    Grouping lg;
    if (current.size() <= params.fanout) {
      // Few enough to form the root directly.
      lg.groups = {std::vector<std::size_t>(current.size())};
      std::iota(lg.groups[0].begin(), lg.groups[0].end(), 0);
      lg.group_of.assign(current.size(), 0);
      eps = 0.0;
    } else {
      lsi::LsiModel model = lsi::LsiModel::fit(level_docs, params.lsi_rank);
      if (eps <= 0.0) eps = optimal_threshold(model, params.fanout);
      lg = model.fitted() && model.num_docs() == current.size()
               ? group_by_similarity(model, eps, params.fanout)
               : group_vectors_by_similarity(level_docs, eps, params.fanout);
      if (lg.num_groups() >= current.size() || lg.num_groups() == 0) {
        lg = chunk_grouping(level_docs, params.fanout);
      }
    }
    level_epsilons_.push_back(eps);

    std::vector<std::size_t> next;
    for (const auto& members : lg.groups) {
      const std::size_t id = new_node(level);
      for (std::size_t m : members) {
        nodes_[id].children.push_back(current[m]);
        nodes_[current[m]].parent = id;
      }
      recompute_node(units, id);
      next.push_back(id);
    }
    current = std::move(next);
  }
  root_ = current.front();
  nodes_[root_].parent = kInvalidIndex;
  rebuild_group_list();
}

void SemanticRTree::on_file_inserted(UnitId unit, const la::Vector& raw,
                                     const la::Vector& std_coords,
                                     const std::string& name,
                                     const StripedMutexPool* locks,
                                     const bloom::ItemHash* precomputed) {
  // Hash once, outside every stripe: each ancestor's filter insert is then
  // pure bit-sets inside its critical section.
  const bloom::ItemHash name_hash =
      precomputed ? *precomputed : bloom::hash_item(name);
  std::size_t cur = unit_group_[unit];
  while (cur != kInvalidIndex) {
    IndexUnit& n = nodes_[cur];
    std::size_t parent;
    {
      const auto guard = maybe_lock(locks, &n);
      n.box.expand(std_coords);
      n.name_filter.insert(name_hash);
      for (std::size_t d = 0; d < kNumAttrs; ++d) n.attr_sum[d] += raw[d];
      ++n.file_count;
      parent = n.parent;  // topology; read inside the stripe for free
    }
    cur = parent;
  }
}

void SemanticRTree::on_file_removed(UnitId unit, const la::Vector& raw,
                                    const StripedMutexPool* locks) {
  std::size_t cur = unit_group_[unit];
  while (cur != kInvalidIndex) {
    IndexUnit& n = nodes_[cur];
    std::size_t parent;
    {
      const auto guard = maybe_lock(locks, &n);
      for (std::size_t d = 0; d < kNumAttrs; ++d) n.attr_sum[d] -= raw[d];
      if (n.file_count > 0) --n.file_count;
      parent = n.parent;
    }
    cur = parent;
  }
}

double SemanticRTree::child_box_distance(const std::vector<StorageUnit>& units,
                                         const IndexUnit& node, std::size_t a,
                                         std::size_t b) const {
  const rtree::Mbr ba = child_box(units, node, a);
  const rtree::Mbr bb = child_box(units, node, b);
  if (!ba.valid() || !bb.valid()) return 0.0;
  return la::squared_distance(ba.center(), bb.center());
}

void SemanticRTree::split_node(const std::vector<StorageUnit>& units,
                               std::size_t id) {
  IndexUnit& n = nodes_[id];
  if (n.children.size() <= params_.fanout) return;

  // Seed with the two farthest-apart children (quadratic-split flavour on
  // box centers), then greedily assign the rest to the nearer seed.
  const std::size_t k = n.children.size();
  std::size_t sa = 0, sb = 1;
  double worst = -1.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d = child_box_distance(units, n, n.children[i],
                                          n.children[j]);
      if (d > worst) {
        worst = d;
        sa = i;
        sb = j;
      }
    }
  }

  std::vector<std::size_t> left{n.children[sa]}, right{n.children[sb]};
  rtree::Mbr left_box = child_box(units, n, n.children[sa]);
  rtree::Mbr right_box = child_box(units, n, n.children[sb]);
  for (std::size_t i = 0; i < k; ++i) {
    if (i == sa || i == sb) continue;
    const std::size_t c = n.children[i];
    const rtree::Mbr cb = child_box(units, n, c);
    const double dl = cb.valid() && left_box.valid()
                          ? la::squared_distance(cb.center(), left_box.center())
                          : 0.0;
    const double dr = cb.valid() && right_box.valid()
                          ? la::squared_distance(cb.center(), right_box.center())
                          : 0.0;
    // Keep sizes within bounds: force the smaller side when one is starved.
    const std::size_t remaining = k - i - (sa > i ? 1 : 0) - (sb > i ? 1 : 0);
    const bool force_left = right.size() >= params_.fanout ||
                            left.size() + remaining <= params_.min_fill;
    const bool force_right = left.size() >= params_.fanout ||
                             right.size() + remaining <= params_.min_fill;
    bool to_left;
    if (force_left && !force_right) {
      to_left = true;
    } else if (force_right && !force_left) {
      to_left = false;
    } else {
      to_left = dl <= dr;
    }
    if (to_left) {
      left.push_back(c);
      left_box.expand(cb);
    } else {
      right.push_back(c);
      right_box.expand(cb);
    }
  }

  const int level = n.level;
  const std::size_t parent = n.parent;
  const std::size_t sibling = new_node(level);
  // NOTE: new_node may reallocate nodes_; refresh the reference.
  IndexUnit& node = nodes_[id];
  node.children = std::move(left);
  nodes_[sibling].children = std::move(right);

  for (std::size_t c : nodes_[sibling].children) {
    if (level == 1) {
      unit_group_[c] = sibling;
    } else {
      nodes_[c].parent = sibling;
    }
  }
  recompute_node(units, id);
  recompute_node(units, sibling);

  if (parent == kInvalidIndex) {
    // Root split: grow the tree by one level.
    const std::size_t new_root = new_node(level + 1);
    nodes_[new_root].children = {id, sibling};
    nodes_[id].parent = new_root;
    nodes_[sibling].parent = new_root;
    recompute_node(units, new_root);
    root_ = new_root;
  } else {
    nodes_[sibling].parent = parent;
    nodes_[parent].children.push_back(sibling);
    recompute_upward(units, parent);
    if (nodes_[parent].children.size() > params_.fanout)
      split_node(units, parent);
  }
  if (level == 1) rebuild_group_list();
}

std::size_t SemanticRTree::admit_unit(const std::vector<StorageUnit>& units,
                                      UnitId u) {
  assert(u < units.size());
  if (unit_group_.size() < units.size())
    unit_group_.resize(units.size(), kInvalidIndex);

  // Locate the most semantically correlated group via LSI projection of
  // the new unit's semantic vector (Section 3.2.1).
  const la::Vector q =
      unit_lsi_.fitted()
          ? unit_lsi_.project(restrict_dims(units[u].centroid_raw()))
          : la::Vector{};
  std::size_t best = kInvalidIndex;
  double best_sim = -std::numeric_limits<double>::infinity();
  for (std::size_t g : groups_) {
    double sim = 0.0;
    if (unit_lsi_.fitted()) {
      sim = lsi::LsiModel::similarity(
          q, unit_lsi_.project(restrict_dims(nodes_[g].centroid_raw())));
    }
    if (sim > best_sim) {
      best_sim = sim;
      best = g;
    }
  }
  if (best == kInvalidIndex) {
    // Empty tree: bootstrap a single-group tree.
    const std::size_t id = new_node(1);
    nodes_[id].children = {u};
    unit_group_[u] = id;
    recompute_node(units, id);
    root_ = id;
    rebuild_group_list();
    map_new_nodes();
    return id;
  }

  nodes_[best].children.push_back(u);
  unit_group_[u] = best;
  recompute_upward(units, best);
  if (nodes_[best].children.size() > params_.fanout) {
    split_node(units, best);
    map_new_nodes();
    return unit_group_[u];
  }
  return best;
}

void SemanticRTree::remove_unit(const std::vector<StorageUnit>& units,
                                UnitId u) {
  const std::size_t g = unit_group_[u];
  if (g == kInvalidIndex) return;
  IndexUnit& group = nodes_[g];
  group.children.erase(
      std::remove(group.children.begin(), group.children.end(), u),
      group.children.end());
  unit_group_[u] = kInvalidIndex;
  recompute_upward(units, g);

  // The departed unit can no longer host index units: queries routed to a
  // node it hosted would hit a dead server forever. Evict it as a host
  // and let map_new_nodes() pick live members.
  auto evict_host = [&] {
    for (IndexUnit& n : nodes_) {
      if (n.node_id != kInvalidIndex && n.mapped_unit == u)
        n.mapped_unit = kInvalidIndex;
    }
    map_new_nodes();
  };

  if (group.children.size() >= params_.min_fill || groups_.size() <= 1) {
    evict_host();
    return;
  }

  // Merge the underfull group's remaining units into the most correlated
  // other group (Section 3.2.2).
  std::size_t target = kInvalidIndex;
  double best_sim = -std::numeric_limits<double>::infinity();
  const la::Vector gc = group.centroid_raw();
  for (std::size_t other : groups_) {
    if (other == g) continue;
    const double sim =
        la::cosine_similarity(gc, nodes_[other].centroid_raw());
    if (sim > best_sim) {
      best_sim = sim;
      target = other;
    }
  }
  if (target == kInvalidIndex) return;

  for (std::size_t member : nodes_[g].children) {
    nodes_[target].children.push_back(member);
    unit_group_[member] = target;
  }
  nodes_[g].children.clear();

  // Detach the emptied group from its parent; collapse single-child
  // parents upward (height adjustment).
  std::size_t parent = nodes_[g].parent;
  if (parent != kInvalidIndex) {
    auto& pc = nodes_[parent].children;
    pc.erase(std::remove(pc.begin(), pc.end(), g), pc.end());
  }
  const std::size_t freed_parent = nodes_[g].parent;
  free_node(g);

  std::size_t cur = freed_parent;
  while (cur != kInvalidIndex) {
    IndexUnit& n = nodes_[cur];
    const std::size_t up = n.parent;
    if (n.children.empty()) {
      // The dissolved group was this node's only child: remove the node
      // itself and keep propagating.
      if (up != kInvalidIndex) {
        auto& upc = nodes_[up].children;
        upc.erase(std::remove(upc.begin(), upc.end(), cur), upc.end());
      }
      free_node(cur);
    } else if (n.children.size() == 1) {
      // Single-child parent: the child takes its place (height adjustment
      // propagated upwardly, Section 3.2.2).
      const std::size_t only = n.children.front();
      if (up == kInvalidIndex) {
        nodes_[only].parent = kInvalidIndex;
        root_ = only;
        free_node(cur);
      } else {
        auto& upc = nodes_[up].children;
        std::replace(upc.begin(), upc.end(), cur, only);
        nodes_[only].parent = up;
        free_node(cur);
      }
    } else {
      recompute_node(units, cur);
    }
    cur = up;
  }

  recompute_upward(units, target);
  if (nodes_[target].children.size() > params_.fanout)
    split_node(units, target);
  rebuild_group_list();
  evict_host();  // also maps any nodes the merge/split/collapse created
}

void SemanticRTree::map_new_nodes() {
  for (IndexUnit& n : nodes_) {
    if (n.node_id == kInvalidIndex || n.mapped_unit != kInvalidIndex)
      continue;
    // Descend to a first-level node and host on its first member unit.
    std::size_t cur = n.node_id;
    while (nodes_[cur].level > 1 && !nodes_[cur].children.empty())
      cur = nodes_[cur].children.front();
    if (nodes_[cur].level == 1 && !nodes_[cur].children.empty())
      n.mapped_unit = nodes_[cur].children.front();
  }
}

void SemanticRTree::map_index_units(util::Rng& rng) {
  if (!built()) return;

  // Covered storage units per node, by DFS.
  std::vector<std::vector<UnitId>> covered(nodes_.size());
  const int h = nodes_[root_].level;
  for (int level = 1; level <= h; ++level) {
    for (std::size_t id : nodes_at_level(level)) {
      auto& cov = covered[id];
      if (nodes_[id].level == 1) {
        cov = nodes_[id].children;
      } else {
        for (std::size_t c : nodes_[id].children) {
          cov.insert(cov.end(), covered[c].begin(), covered[c].end());
        }
      }
    }
  }

  std::vector<bool> labeled(unit_group_.size(), false);
  for (auto& n : nodes_) {
    if (n.node_id != kInvalidIndex) n.mapped_unit = kInvalidIndex;
  }

  // Bottom-up: first-level index units first (Figure 6), then upward.
  for (int level = 1; level <= h; ++level) {
    std::vector<std::size_t> ids = nodes_at_level(level);
    rng.shuffle(ids);
    for (std::size_t id : ids) {
      const auto& cov = covered[id];
      if (cov.empty()) continue;
      std::vector<UnitId> unlabeled;
      for (UnitId u : cov)
        if (!labeled[u]) unlabeled.push_back(u);
      UnitId pick;
      if (!unlabeled.empty()) {
        pick = unlabeled[rng.uniform_u64(unlabeled.size())];
        labeled[pick] = true;
      } else {
        pick = cov[rng.uniform_u64(cov.size())];
      }
      nodes_[id].mapped_unit = pick;
    }
  }

  // Root multi-mapping (Section 4.3): one replica inside each root-child
  // subtree, so every subtree can reach a root copy locally.
  root_replicas_.clear();
  if (nodes_[root_].level == 1) {
    root_replicas_.push_back(nodes_[root_].mapped_unit);
  } else {
    for (std::size_t c : nodes_[root_].children) {
      const auto& cov = covered[c];
      if (cov.empty()) continue;
      root_replicas_.push_back(cov[rng.uniform_u64(cov.size())]);
    }
  }
}

std::size_t SemanticRTree::hosted_bytes(UnitId u) const {
  std::size_t b = 0;
  for (const auto& n : nodes_) {
    if (n.node_id == kInvalidIndex) continue;
    if (n.mapped_unit == u) b += n.byte_size();
  }
  // Root replicas hold a copy of the root node.
  if (built()) {
    for (UnitId r : root_replicas_) {
      if (r == u && nodes_[root_].mapped_unit != u)
        b += nodes_[root_].byte_size();
    }
  }
  return b;
}

std::size_t SemanticRTree::total_index_bytes() const {
  std::size_t b = 0;
  for (const auto& n : nodes_) {
    if (n.node_id != kInvalidIndex) b += n.byte_size();
  }
  return b;
}

bool SemanticRTree::check_invariants(
    const std::vector<StorageUnit>& units) const {
  if (!built()) return live_nodes_ == 0;
  std::vector<bool> seen_unit(units.size(), false);
  std::size_t visited = 0;

  std::vector<std::size_t> stack{root_};
  while (!stack.empty()) {
    const std::size_t id = stack.back();
    stack.pop_back();
    const IndexUnit& n = nodes_[id];
    if (n.node_id != id) return false;
    ++visited;
    if (n.children.empty()) return false;
    if (n.children.size() > params_.fanout) return false;
    // A mapped index unit must be hosted somewhere real: routing sends
    // queries to mapped_unit, so a stale host id (the bug class: splits
    // during unit admission forgetting the Section 4.2 mapping) would
    // send sessions to an out-of-range node. Unmapped is allowed only
    // because freshly built trees are mapped in a separate pass.
    if (n.mapped_unit != kInvalidIndex && n.mapped_unit >= units.size())
      return false;

    std::size_t child_files = 0;
    for (std::size_t c : n.children) {
      if (n.level == 1) {
        if (c >= units.size()) return false;
        if (seen_unit[c]) return false;
        seen_unit[c] = true;
        if (unit_group_[c] != id) return false;
        if (units[c].box().valid() && !n.box.contains(units[c].box()))
          return false;
        child_files += units[c].file_count();
      } else {
        const IndexUnit& ch = nodes_[c];
        if (ch.parent != id) return false;
        if (ch.level >= n.level) return false;
        if (ch.box.valid() && !n.box.contains(ch.box)) return false;
        child_files += ch.file_count;
        stack.push_back(c);
      }
    }
    if (n.file_count != child_files) return false;
  }
  if (visited != live_nodes_) return false;

  // Every unit assigned to a group must have been reached.
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (unit_group_[u] != kInvalidIndex && !seen_unit[u]) return false;
  }
  return true;
}

}  // namespace smartstore::core
