// SmartStore: the decentralized semantic-aware metadata organization
// (the paper's primary contribution).
//
// A SmartStore instance owns a set of storage units (simulated metadata
// servers), a main semantic R-tree over them, the off-line pre-processing
// state (replicated first-level index-unit summaries with versioning), and
// optional auto-configured tree variants for attribute-subset queries.
// All operations run against a virtual-time cluster (sim::Cluster), which
// yields the latency/message/hop numbers the paper's evaluation reports.
//
// Query semantics follow Section 3.3:
//   * point queries walk the Bloom-filter hierarchy;
//   * range queries check MBRs;
//   * top-k queries use branch-and-bound with the MaxD threshold;
// in one of two routing modes (Section 3.3 vs 3.4):
//   * kOnline — multicast from a random home unit through father/sibling
//     links of the semantic R-tree (exact but message-heavy);
//   * kOffline — the home unit consults its local replicas of the
//     first-level index units, projects the request with LSI/MBR checks,
//     and forwards directly to the most correlated group(s). The search
//     scope is bounded to a few groups ("SmartStore limits search scope of
//     complex query to a single or a minimal number of semantically
//     related groups"), which is where recall < 100% comes from.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ground_truth.h"
#include "core/semantic_rtree.h"
#include "core/striped_locks.h"
#include "core/units.h"
#include "la/stats.h"
#include "metadata/file_metadata.h"
#include "metadata/query.h"
#include "sim/cluster.h"
#include "util/annotated_mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace smartstore::persist {
struct SnapshotAccess;  // persistence-layer serialization hook
}

namespace smartstore::core {

enum class Routing { kOnline, kOffline };

/// How files are assigned to storage units at build time. kSemantic is the
/// paper's design (correlated files co-located); kRandom is the ablation
/// control showing what semantic placement buys.
enum class PlacementPolicy { kSemantic, kRandom };

struct Config {
  std::size_t num_units = 60;     ///< storage units (paper's testbed: 60)
  std::size_t fanout = 8;         ///< semantic R-tree M
  std::size_t min_fill = 2;       ///< semantic R-tree m (<= M/2)
  double epsilon = 0.0;           ///< admission threshold; 0 = auto
  std::size_t lsi_rank = 0;       ///< LSI rank p; 0 = auto (90% energy)
  std::size_t bloom_bits = 1024;  ///< per paper Section 5.1
  unsigned bloom_hashes = 7;      ///< k = 7
  /// When true (default), filters are sized at build time for the expected
  /// group population (~12 bits per name, next power of two, at least
  /// `bloom_bits`). The paper's fixed 1024-bit filters saturate beyond a
  /// few hundred names per group; auto-sizing keeps the false-positive
  /// rate in the regime Figure 9 reports. Set false to reproduce the
  /// paper's exact configuration (the Bloom ablation bench does).
  bool bloom_auto_size = true;
  std::size_t placement_iters = 4;       ///< balanced k-means iterations
  PlacementPolicy placement = PlacementPolicy::kSemantic;
  double lazy_update_threshold = 0.05;   ///< Section 3.4 (5%)
  double autoconfig_threshold = 0.10;    ///< Section 2.4 (10%)
  std::size_t version_ratio = 4;  ///< changes aggregated into one version
  bool versioning_enabled = true;
  std::size_t max_groups_per_query = 3;  ///< complex-query scope bound
  std::uint64_t seed = 42;
  sim::CostModel cost;
};

/// Per-operation accounting reported by every query/update.
struct QueryStats {
  double latency_s = 0;          ///< completion - arrival (virtual time)
  std::uint64_t messages = 0;    ///< network messages this operation sent
  std::uint64_t hops = 0;        ///< inter-unit hops
  int routing_hops = 0;          ///< Figure 8 group-distance (0 = 1 group)
  std::size_t groups_visited = 0;
  std::size_t records_scanned = 0;
  double version_check_s = 0;    ///< extra latency from version checks
  bool failed = false;           ///< touched a crashed node
};

struct PointResult {
  bool found = false;
  UnitId unit = kInvalidIndex;
  metadata::FileId id = 0;
  bool first_try = false;  ///< resolved at the first routed group (Fig. 9)
  QueryStats stats;
};

struct RangeResult {
  std::vector<metadata::FileId> ids;
  QueryStats stats;
};

struct TopKResult {
  std::vector<std::pair<double, metadata::FileId>> hits;  ///< (dist², id)
  QueryStats stats;

  std::vector<metadata::FileId> ids() const {
    std::vector<metadata::FileId> out;
    out.reserve(hits.size());
    for (const auto& h : hits) out.push_back(h.second);
    return out;
  }
};

/// An auto-configured semantic R-tree over a subset of attributes
/// (Section 2.4).
struct TreeVariant {
  metadata::AttrSubset dims;
  SemanticRTree tree;
};

class SmartStore {
 public:
  /// Write-ahead hook: invoked with the routed target storage unit while
  /// that unit's stripe lock is held, after routing and before the
  /// in-memory apply. This is where the persistence layer appends the
  /// record to the target unit's WAL shard — under the same lock that
  /// orders the apply, so per-shard log order always equals per-unit apply
  /// order, the invariant sharded recovery's sequence merge relies on.
  /// Returns the store-wide sequence number the WAL stamped on the record
  /// (the commit timestamp MVCC snapshot reads pin); 0 means "unsequenced"
  /// and the store self-assigns from its own commit counter.
  using WalHook = std::function<std::uint64_t(UnitId target)>;
  /// Write-behind flush hook: invoked with the same target AFTER the unit
  /// lock is released (mutation applied, record appended). This is where
  /// the sharded WAL runs its group-commit fsync — off every store lock,
  /// so a flush stalls only writers of the same shard, never a writer
  /// that merely routed to the same unit or collided on a stripe.
  using WalFlush = std::function<void(UnitId target)>;
  /// Structural-op hook: invoked under the exclusive structure lock before
  /// the reconfiguration applies (the sharded WAL barrier-commits every
  /// shard and then logs the structural record, so no later per-unit
  /// record can be durable while the structural one it followed is not).
  /// Returns the stamped sequence number (0 = unsequenced, as above).
  using StructuralHook = std::function<std::uint64_t()>;

  explicit SmartStore(Config cfg);

  /// Bulk-loads a population: semantic placement of files onto storage
  /// units (balanced k-means in LSI space), bottom-up tree construction,
  /// index-unit mapping, replica initialization.
  void build(const std::vector<metadata::FileMetadata>& files);

  // ---- dynamic operations (virtual arrival time in seconds) -------------
  //
  // insert_file / insert_batch / delete_file / erase_file and the three
  // query methods may be called from any number of threads concurrently
  // (multi-writer serving): each takes the structure lock shared, routes
  // under striped summary locks, and mutates only the target unit under
  // that unit's dedicated lock. The reconfiguration block below and
  // build() are exclusive and may run concurrently with anything.

  /// Routes the file to its most correlated group and inserts it into the
  /// least-loaded member unit; updates the tree locally and the
  /// versioning/lazy-update machinery (Sections 3.2.1, 3.4, 4.4).
  QueryStats insert_file(const metadata::FileMetadata& f, double arrival,
                         const WalHook& logged = {},
                         const WalFlush& flushed = {});

  /// Inserts a batch under one structure-lock acquisition (the bulk-ingest
  /// fast path the CLI's --ingest-threads partitions work into).
  std::vector<QueryStats> insert_batch(
      const std::vector<metadata::FileMetadata>& files, double arrival,
      const WalHook& logged = {}, const WalFlush& flushed = {});

  /// Locates by name and removes. Returns nullopt when absent.
  std::optional<QueryStats> delete_file(const std::string& name,
                                        double arrival);

  /// Authoritative removal: locates `name` by scanning the units' exact
  /// local indexes (no simulated routing, no replica staleness) and removes
  /// it with full tree/sync bookkeeping. This is the WAL-replay path — a
  /// delete that was acknowledged live must always re-apply on recovery,
  /// even when the off-line replicas that located it then have since gone
  /// stale. Returns false when the file does not exist.
  bool erase_file(const std::string& name, const WalHook& logged = {},
                  const WalFlush& flushed = {});

  PointResult point_query(const metadata::PointQuery& q, Routing routing,
                          double arrival);
  RangeResult range_query(const metadata::RangeQuery& q, Routing routing,
                          double arrival);
  TopKResult topk_query(const metadata::TopKQuery& q, Routing routing,
                        double arrival);

  // ---- MVCC snapshot reads ----------------------------------------------
  //
  // Every mutation carries a store-wide commit sequence number (the WAL
  // v03 stamp for durable stores, a private counter otherwise). A reader
  // pins the current commit seq and scans against it: a record is visible
  // at snapshot S iff added_seq <= S and (still live, or tombstoned with
  // deleted_seq > S). Because the seq is stamped and the in-memory apply
  // happens inside the SAME unit-lock critical section (and the commit
  // counter advances only after the apply), acquiring each unit lock in
  // turn observes every mutation with seq <= S — any pinned S is a
  // consistent cut with no quiescing and no stripe-wide exclusion.
  //
  // Tombstones are reclaimed against the GC watermark (the oldest pinned
  // snapshot; everything is reclaimable when nothing is pinned), so the
  // per-unit version chain stays bounded by the delete traffic since the
  // oldest live pin.

  /// Commit sequence of the latest applied mutation (0 = nothing since
  /// build/load).
  std::uint64_t last_commit_seq() const {
    return commit_seq_.load(std::memory_order_acquire);
  }

  /// Advances the commit counter to at least `seq` (recovery replay and
  /// snapshot load call this with persisted stamps).
  void note_commit_seq(std::uint64_t seq);

  /// Pins the current commit seq against tombstone GC. `*seq_out` receives
  /// the pinned seq; the returned handle unpins on destruction (safe to
  /// outlive the store — the pin registry is shared-owned).
  std::shared_ptr<void> pin_snapshot(std::uint64_t* seq_out) const;

  /// Oldest pinned snapshot seq, or core::kNoWatermark when none is
  /// pinned (every tombstone reclaimable).
  std::uint64_t gc_watermark() const {
    return pins_->watermark.load(std::memory_order_acquire);
  }

  /// Number of currently pinned snapshots.
  std::size_t pinned_snapshots() const;

  /// Exact exhaustive reads at a pinned seq. Unlike the routed queries
  /// above they do not simulate network placement: each visits every unit
  /// (including deactivated ones, whose tombstone chains may still be
  /// visible) under that unit's lock, one at a time, and returns canonical
  /// (sorted) results — two scans at the same seq are bit-identical no
  /// matter what writers do in between.
  PointResult snapshot_point_query(const metadata::PointQuery& q,
                                   std::uint64_t seq) const;
  RangeResult snapshot_range_query(const metadata::RangeQuery& q,
                                   std::uint64_t seq) const;
  TopKResult snapshot_topk_query(const metadata::TopKQuery& q,
                                 std::uint64_t seq) const;

  /// Records visible at `seq` (exhaustive count, same locking as above).
  std::size_t snapshot_file_count(std::uint64_t seq) const;

  /// Every record visible at `seq` — live or tombstoned-later — in
  /// canonical (id, name) order; same per-unit locking as the snapshot
  /// queries. Replication bootstrap ships this dump to an empty follower,
  /// and the failover oracle compares two stores through it.
  std::vector<metadata::FileMetadata> snapshot_dump(std::uint64_t seq) const;

  /// Live tombstone-chain length summed over all units (non-quiescing).
  std::size_t tombstone_count() const;

  // ---- reconfiguration (exclusive: blocks all serving threads) -----------

  /// Full replica synchronization: applies and removes all versions
  /// (Section 4.4 "removing versions"), refreshing every group replica.
  void reconfigure();

  /// Admits a new (empty) storage unit into the system (Section 3.2.1).
  UnitId add_storage_unit(const StructuralHook& logged = {});

  /// Removes a storage unit, redistributing its files (Section 3.2.2).
  void remove_storage_unit(UnitId u, const StructuralHook& logged = {});

  /// Enumerates candidate attribute subsets and keeps tree variants whose
  /// index-unit count differs from the full tree's by more than the
  /// configured threshold (Section 2.4). Returns number of variants kept.
  std::size_t autoconfigure(
      const std::vector<metadata::AttrSubset>& candidates,
      const StructuralHook& logged = {});

  // ---- accessors ---------------------------------------------------------

  // The introspection accessors below are quiesced-only: callers provide
  // stillness (single-threaded phases, or the db facade's exclusive
  // GetProperty path), which the type system cannot see — hence the
  // analysis opt-outs on the ones that touch GUARDED_BY state.
  const Config& config() const { return cfg_; }
  const SemanticRTree& tree() const { return tree_; }
  const std::vector<StorageUnit>& units() const { return units_; }
  bool unit_active(UnitId u) const SS_NO_THREAD_SAFETY_ANALYSIS {
    return unit_active_[u];
  }
  const la::RowStandardizer& standardizer() const
      SS_NO_THREAD_SAFETY_ANALYSIS {
    return standardizer_;
  }
  sim::Cluster& cluster() { return *cluster_; }
  const std::vector<TreeVariant>& variants() const { return variants_; }
  std::size_t total_files() const { return total_files_; }

  /// Standardized full-D coordinates of a record (quiesced-only, as above).
  la::Vector std_coords(const metadata::FileMetadata& f) const
      SS_NO_THREAD_SAFETY_ANALYSIS;

  // ---- space accounting (Figures 7 and 14a) ------------------------------

  struct SpaceBreakdown {
    std::size_t metadata_bytes = 0;   ///< records + local indexes
    std::size_t index_bytes = 0;      ///< hosted index units
    std::size_t replica_bytes = 0;    ///< replicated group summaries
    std::size_t version_bytes = 0;    ///< attached versions
    std::size_t total() const {
      return metadata_bytes + index_bytes + replica_bytes + version_bytes;
    }
  };
  /// Space on one storage unit.
  SpaceBreakdown unit_space(UnitId u) const;
  /// Average space per storage unit (quiesced-only, as above).
  SpaceBreakdown avg_unit_space() const SS_NO_THREAD_SAFETY_ANALYSIS;
  /// Average attached-version bytes per first-level index unit (Fig. 14a).
  double avg_version_bytes_per_group() const;

  /// One snapshot-consistent introspection pass, concurrent with serving
  /// threads: topology counters read under the shared structure lock
  /// (they change only under the exclusive one), the file count and
  /// per-unit bytes under each unit's lock at the pinned seq, replica and
  /// version bytes under each group's sync stripe. The space numbers
  /// describe the CURRENT unit contents (space is accounting, not
  /// versioned data) — only the file count is an as-of read.
  struct Introspection {
    std::size_t files = 0;       ///< records visible at the pinned seq
    std::size_t num_units = 0;
    std::size_t tree_height = 0;
    std::size_t tree_groups = 0;
    std::size_t index_units = 0;
    SpaceBreakdown avg_space;    ///< averaged over active units
  };
  Introspection introspect(std::uint64_t seq) const;

  /// Structural invariants across units, tree and sync state.
  bool check_invariants() const;

  // ---- concurrent checkpointing (epoch-based freeze + copy-on-write) ------
  //
  // Threading contract: any number of serving threads may mutate and query
  // concurrently; begin_checkpoint() takes the structure lock exclusively
  // (a bounded stop-the-world pause), captures the CONFIG scalars plus the
  // index structures (tree, variants, replica sync — cheap relative to the
  // file records), and returns. Storage units — the bulk of the state —
  // stay live: post-freeze mutators copy a still-unserialized unit on
  // first write under that unit's lock, and the background serializer
  // resolves each unit piece under the freeze mutex, so neither ever
  // observes a half-mutated piece. The per-thread query RNG streams never
  // touch the store rng, so the freeze capture of the persisted rng state
  // is deterministic without locking queries out.

  /// Freezes the logical state at the current epoch; returns that epoch.
  /// At most one checkpoint may be active at a time. `while_frozen`, if
  /// given, runs inside the exclusive section — the background
  /// checkpointer uses it to commit the WAL shards and capture their
  /// frontier vector at exactly the frozen mutation boundary.
  std::uint64_t begin_checkpoint(
      const std::function<void()>& while_frozen = {});

  /// Runs `fn` under the exclusive structure lock: a bounded
  /// stop-the-world mutation barrier with NO freeze/COW attached. The
  /// incremental-checkpoint engine cuts each delta inside one — with every
  /// serving thread excluded, the WAL frontier, the commit seq and the
  /// per-unit dirty watermarks all describe the same instant, and every
  /// record stamped before the barrier is in some shard's batch (so the
  /// frontier commit makes the cut exact). Much cheaper than a full
  /// freeze: no piece capture, no copy-on-write tax afterwards.
  void mutation_barrier(const std::function<void()>& fn);

  /// Commit seq of the last fresh-stamped mutation applied to storage
  /// unit `u` (0 = untouched since build/load). Monotonic per unit,
  /// updated inside the mutating unit-lock critical section; a
  /// mutation_barrier therefore observes a consistent vector. Structural
  /// moves that re-home a record under its ORIGINAL seq do not raise it —
  /// they are replayed from the structural record, not from a per-unit
  /// one, which is exactly the "records newer than the last cut"
  /// semantics the delta checkpoint filters on.
  std::uint64_t unit_dirty_seq(UnitId u) const;

  /// Releases frozen copies; mutations stop paying the copy-on-write tax.
  void end_checkpoint();

  bool checkpoint_active() const;

  /// Bumped by every mutation (insert/delete/reconfiguration).
  std::uint64_t mutation_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Pieces copied on first write during the current/last checkpoint.
  std::uint64_t checkpoint_cow_copies() const;

 private:
  /// The snapshot codec in src/persist/ serializes the full private state
  /// (units, tree, variants, replica/version sync, rng) and reassembles a
  /// deployment without re-running SVD/k-means/tree construction.
  friend struct ::smartstore::persist::SnapshotAccess;

  // Per-group synchronization state for the off-line pre-processing scheme.
  struct GroupSync {
    GroupReplica replica;   ///< what every remote unit sees
    VersionDelta pending;   ///< unsealed changes, invisible remotely
    std::size_t changes_since_full_sync = 0;
  };

  // ---- checkpoint freeze state -------------------------------------------

  /// Lifecycle of one freezable piece during an active checkpoint.
  enum class PieceState : std::uint8_t {
    kPending,  ///< untouched since freeze: the live object IS the frozen view
    kFrozen,   ///< mutated since freeze: a copy preserves the frozen view
    kDone,     ///< serialized: mutations may write through without copying
  };

  /// CONFIG/STANDARDIZER-section scalars, captured eagerly at freeze time
  /// (the freeze holds the exclusive structure lock, so the capture is a
  /// consistent cut; the per-thread query RNG streams are derived state
  /// and never persisted — only the store rng is).
  struct FrozenCore {
    std::size_t bloom_bits = 0;
    std::size_t total_files = 0;
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t rng_streams = 0;  ///< thread streams handed out so far
    std::vector<bool> unit_active;
    la::RowStandardizer standardizer;
    std::size_t unit_count = 0;  ///< units_ size at freeze
    /// Frozen-epoch group list, for the SYNC section's deterministic
    /// ordering (the live tree may mutate while SYNC serializes).
    std::vector<std::size_t> group_order;
    /// MVCC cut at freeze: the snapshot image's commit seq and the GC
    /// watermark the UNITS serializer filters tombstones against
    /// ("checkpoint respects the watermark").
    std::uint64_t commit_seq = 0;
    std::uint64_t gc_watermark = kNoWatermark;
  };

  struct FreezeState {
    /// Interlocks COW hooks with the serializer; every other field below
    /// is GUARDED_BY it (the serializer runs in the persist layer via the
    /// SnapshotAccess friend, so the annotations police that TU too).
    mutable util::Mutex mu{util::LockRank::kFreeze};
    bool active SS_GUARDED_BY(mu) = false;
    std::uint64_t frozen_epoch SS_GUARDED_BY(mu) = 0;
    std::uint64_t cow_copies SS_GUARDED_BY(mu) = 0;
    FrozenCore core SS_GUARDED_BY(mu);
    std::vector<PieceState> unit_state SS_GUARDED_BY(mu);
    std::vector<std::unique_ptr<StorageUnit>> frozen_units SS_GUARDED_BY(mu);
    PieceState tree_state SS_GUARDED_BY(mu) = PieceState::kPending;
    std::unique_ptr<SemanticRTree> frozen_tree SS_GUARDED_BY(mu);
    PieceState variants_state SS_GUARDED_BY(mu) = PieceState::kPending;
    std::unique_ptr<std::vector<TreeVariant>> frozen_variants
        SS_GUARDED_BY(mu);
    PieceState sync_state SS_GUARDED_BY(mu) = PieceState::kPending;
    std::unique_ptr<std::unordered_map<std::size_t, GroupSync>> frozen_sync
        SS_GUARDED_BY(mu);
  };

  /// Lock-held body shared by cow_unit and cow_all_units.
  void cow_unit_locked(UnitId u) SS_REQUIRES(freeze_.mu);

  /// Copies storage unit `u` into the frozen view if a checkpoint is active
  /// and the unit has not yet been serialized or copied. Caller must hold
  /// unit `u`'s lock (the tree/variants/sync structures are captured
  /// eagerly at freeze time, so units are the only lazily copied pieces) —
  /// enforced at runtime via assert_held, since the per-unit locks are
  /// picked by index and TSA cannot name them.
  void cow_unit(UnitId u);
  /// Freezes every unit still pending: required before structural changes
  /// (unit admission/removal reallocates units_, invalidating the
  /// serializer's view of the live vector). Caller holds the exclusive
  /// structure lock, which is why no unit locks are needed here.
  void cow_all_units() SS_REQUIRES(structure_mu_);
  /// Shared removal bookkeeping once a file has been located (unit, id).
  /// Re-checks existence under the unit lock (a concurrent delete may
  /// have won); returns whether the removal happened.
  bool remove_located(UnitId u, metadata::FileId id, double now,
                      sim::Session* session, const WalHook& logged,
                      const WalFlush& flushed)
      SS_REQUIRES_SHARED(structure_mu_);

  // ---- internals ---------------------------------------------------------
  //
  // *_impl bodies assume the structure lock is already held (shared or
  // exclusive); the public wrappers acquire it. remove_storage_unit calls
  // insert_file_impl for displaced files while holding it exclusively —
  // the shared-acquiring public method would self-deadlock there.

  /// `forced_seq` != kAssignSeq re-homes a record under its ORIGINAL
  /// added_seq (remove_storage_unit re-inserting displaced files): the move
  /// is invisible to every snapshot — the record stays visible at exactly
  /// the seqs it was visible at before, just in a different unit. 0 forces
  /// pre-history; the kAssignSeq default stamps a fresh commit seq.
  QueryStats insert_file_impl(const metadata::FileMetadata& f, double arrival,
                              const WalHook& logged, const WalFlush& flushed,
                              std::uint64_t forced_seq = kAssignSeq)
      SS_REQUIRES_SHARED(structure_mu_);
  bool erase_file_impl(const std::string& name, const WalHook& logged,
                       const WalFlush& flushed)
      SS_REQUIRES_SHARED(structure_mu_);
  PointResult point_query_impl(const metadata::PointQuery& q, Routing routing,
                               double arrival)
      SS_REQUIRES_SHARED(structure_mu_);
  RangeResult range_query_impl(const metadata::RangeQuery& q, Routing routing,
                               double arrival)
      SS_REQUIRES_SHARED(structure_mu_);
  TopKResult topk_query_impl(const metadata::TopKQuery& q, Routing routing,
                             double arrival)
      SS_REQUIRES_SHARED(structure_mu_);

  PointResult snapshot_point_impl(const metadata::PointQuery& q,
                                  std::uint64_t seq) const
      SS_REQUIRES_SHARED(structure_mu_);
  RangeResult snapshot_range_impl(const metadata::RangeQuery& q,
                                  std::uint64_t seq) const
      SS_REQUIRES_SHARED(structure_mu_);
  TopKResult snapshot_topk_impl(const metadata::TopKQuery& q,
                                std::uint64_t seq) const
      SS_REQUIRES_SHARED(structure_mu_);

  /// Resolves the commit seq for one mutation inside its unit-lock
  /// critical section: adopts the WAL stamp when one exists (advancing the
  /// commit counter to it), otherwise self-assigns the next counter value.
  std::uint64_t commit_stamp(std::uint64_t wal_seq);

  /// The calling thread's private RNG stream, lazily seeded from the store
  /// seed and a monotonic stream id — queries draw home units without
  /// contending on any store-wide state (the store rng serves only the
  /// single-threaded build/reconfiguration paths and the snapshot).
  util::Rng& thread_rng() const;

  sim::NodeId random_home() SS_REQUIRES_SHARED(structure_mu_);
  void init_sync_state() SS_REQUIRES(structure_mu_);
  /// Snapshots group `g`'s current truth into its replica (full sync) and
  /// multicasts it; clears versions. Copies the authoritative node summary
  /// under the node's stripe, then installs it under the group's sync
  /// stripe — never holding two stripes at once.
  void full_sync_group(std::size_t g, sim::Session* session)
      SS_REQUIRES_SHARED(structure_mu_);
  /// Seals the pending delta into a version and multicasts it. Caller
  /// holds group `g`'s sync stripe (asserted at runtime — the stripe is
  /// hash-picked, so TSA cannot name it).
  void seal_version(std::size_t g, double now, sim::Session* session)
      SS_REQUIRES_SHARED(structure_mu_);
  /// Applies the versioning policy after a change to group g (caller holds
  /// the group's sync stripe, asserted at runtime); returns true when the
  /// lazy-update threshold tripped and the caller must run full_sync_group
  /// once the stripe is released.
  bool after_group_change(std::size_t g, double now, sim::Session* session)
      SS_REQUIRES_SHARED(structure_mu_);

  struct RankedGroup {
    std::size_t node_id;
    double score;  ///< lower is better (distance-like)
  };
  /// Ranks groups of `t` for a range query by MBR intersection. For the
  /// main tree the (possibly stale) replicas + versions are consulted; for
  /// auto-configured variants the fresh node summaries are used.
  std::vector<RankedGroup> rank_groups_range(const SemanticRTree& t,
                                             const metadata::RangeQuery& q,
                                             double& version_cost) const
      SS_REQUIRES_SHARED(structure_mu_);
  /// Ranks groups of `t` for a top-k query by MBR min-distance.
  std::vector<RankedGroup> rank_groups_topk(const SemanticRTree& t,
                                            const la::Vector& std_point,
                                            const std::vector<std::size_t>&
                                                dim_idx,
                                            double& version_cost) const
      SS_REQUIRES_SHARED(structure_mu_);
  /// Ranks groups for an insertion by LSI similarity of centroids.
  std::size_t best_group_for_vector(const la::Vector& raw) const
      SS_REQUIRES_SHARED(structure_mu_);

  /// Standardized query-geometry helpers (full-D boxes, subset dims).
  std::vector<std::size_t> dim_indices(const metadata::AttrSubset& dims) const;
  void standardize_range(const metadata::RangeQuery& q,
                         std::vector<std::size_t>& dim_idx, la::Vector& lo,
                         la::Vector& hi) const
      SS_REQUIRES_SHARED(structure_mu_);
  la::Vector standardize_point(const metadata::TopKQuery& q,
                               std::vector<std::size_t>& dim_idx) const
      SS_REQUIRES_SHARED(structure_mu_);

  static bool box_intersects(const rtree::Mbr& box,
                             const std::vector<std::size_t>& dim_idx,
                             const la::Vector& lo, const la::Vector& hi);
  static double box_min_dist2(const rtree::Mbr& box,
                              const std::vector<std::size_t>& dim_idx,
                              const la::Vector& point);

  /// Scans one unit for range matches (fresh, exact).
  void unit_range_scan(const StorageUnit& u,
                       const std::vector<std::size_t>& dim_idx,
                       const la::Vector& lo, const la::Vector& hi,
                       std::vector<metadata::FileId>& out) const;
  /// Local exact top-k within a unit.
  void unit_topk_scan(const StorageUnit& u,
                      const std::vector<std::size_t>& dim_idx,
                      const la::Vector& point, std::size_t k,
                      std::vector<std::pair<double, metadata::FileId>>& heap)
      const;

  /// Figure 8 metric: tree distance between the primary result group and
  /// the farthest other result group (0 when a single group sufficed).
  int routing_distance(const SemanticRTree& t,
                       const std::vector<std::size_t>& result_groups) const;
  int lca_distance(const SemanticRTree& t, std::size_t g1,
                   std::size_t g2) const;

  /// Picks the tree variant matching the query dims best (or main tree).
  const SemanticRTree& tree_for_dims(const metadata::AttrSubset& dims) const
      SS_REQUIRES_SHARED(structure_mu_);

  /// Reconciles sync_ with the current group list after structural changes
  /// (unit admission/removal can split or merge groups).
  void refresh_sync_groups() SS_REQUIRES(structure_mu_);

  Config cfg_;
  /// Effective (possibly auto-sized) Bloom bits. Written only under the
  /// exclusive structure lock, read under at least the shared one — one of
  /// the few members whose discipline GUARDED_BY can express directly.
  std::size_t bloom_bits_ SS_GUARDED_BY(structure_mu_) = 1024;
  // units_/tree_/variants_/sync_ follow the two-level scheme GUARDED_BY
  // cannot express (shape shared + a per-unit lock or stripe for interior
  // mutation): the REQUIRES_SHARED annotations on the *_impl helpers plus
  // the stripe pools' runtime assertions police them instead.
  std::vector<StorageUnit> units_;
  std::vector<bool> unit_active_ SS_GUARDED_BY(structure_mu_);
  SemanticRTree tree_;
  std::vector<TreeVariant> variants_;
  std::unique_ptr<sim::Cluster> cluster_;
  la::RowStandardizer standardizer_ SS_GUARDED_BY(structure_mu_);
  std::unordered_map<std::size_t, GroupSync> sync_;  // group node -> state
  /// Store rng: build-time placement and index-unit mapping only. Mutated
  /// exclusively under the exclusive structure lock; persisted and
  /// captured at freeze without further locking. Query-side draws come
  /// from per-thread streams (thread_rng) instead.
  util::Rng rng_;
  /// Monotonic id generator for per-thread RNG streams.
  mutable std::atomic<std::uint64_t> rng_streams_{0};
  /// Process-unique instance id (per-thread RNG stream ownership key).
  std::uint64_t store_id_ = 0;
  std::atomic<std::size_t> total_files_{0};
  std::atomic<std::uint64_t> epoch_{0};  ///< mutation counter

  /// MVCC commit timestamp: advanced inside the mutating unit-lock
  /// critical section, AFTER the apply — so any value a reader loads names
  /// a cut where every mutation with seq <= it is (or is about to be,
  /// behind that unit's lock) applied.
  std::atomic<std::uint64_t> commit_seq_{0};

  /// Pinned-snapshot registry. Shared-owned so a pin handle released after
  /// the store is gone unpins against a still-live registry. The mutex is
  /// kLeaf (terminal): pin/unpin only update the multiset and the cached
  /// watermark, never call out, and may run from any lock context (the
  /// service tier drops leases under its own lease lock).
  struct SnapshotPins {
    mutable util::Mutex mu{util::LockRank::kLeaf};
    std::multiset<std::uint64_t> pins SS_GUARDED_BY(mu);
    /// Min pinned seq; kNoWatermark when nothing is pinned. Cached so the
    /// mutation path reads one atomic instead of taking the mutex.
    std::atomic<std::uint64_t> watermark{kNoWatermark};
  };
  std::shared_ptr<SnapshotPins> pins_ = std::make_shared<SnapshotPins>();

  // ---- multi-writer serving locks ----------------------------------------
  //
  // Hierarchy (outer to inner, = increasing LockRank): structure_mu_
  // (kShape) -> one unit lock (kUnit) OR one summary stripe
  // (kSummaryStripe) OR one sync stripe (kSyncStripe) -> { freeze_.mu
  // (kFreeze) | WAL shard mutexes (kWalShardMap/kWalShard) | cluster mutex
  // (kCluster) }. At most one unit-lock-or-stripe is ever held at a time
  // (see striped_locks.h) — the validator's strictly-increasing-rank rule
  // enforces exactly that, since unit locks and each pool's stripes share
  // a rank. Structural operations take structure_mu_ exclusively and then
  // need no finer locks at all.
  //
  // Units get DEDICATED locks (not pool stripes) because the WAL hook
  // fsyncs under them: a shared stripe would make an unrelated hot index
  // node or replica — every insert touches the root and its group's sync
  // state — collide with an in-flight fsync and serialize the whole
  // ingest path on one disk flush. The stripe pools only ever protect
  // microsecond-scale critical sections.
  mutable util::SharedMutex structure_mu_{util::LockRank::kShape};
  /// Ancestor index-unit summaries (MBR/Bloom/centroid sums), striped by
  /// node address.
  mutable StripedMutexPool summary_stripes_{util::LockRank::kSummaryStripe};
  /// Group replica/version sync state, striped by GroupSync address. A
  /// separate pool (and rank) from the summaries: the insert path releases
  /// its last summary stripe before taking the group's sync stripe, and
  /// distinct pools keep an unlucky hash collision from ever aliasing the
  /// two domains onto one mutex.
  mutable StripedMutexPool sync_stripes_{util::LockRank::kSyncStripe};
  /// One mutex per storage unit, parallel to units_ (stable addresses;
  /// reshaped only under the exclusive structure lock).
  mutable std::vector<std::unique_ptr<util::Mutex>> unit_mu_;
  /// Per-unit dirty watermark, parallel to unit_mu_ (heap-stable for the
  /// same reason): commit seq of the unit's last fresh-stamped mutation.
  /// Written under that unit's lock, read by the delta engine inside a
  /// mutation_barrier (quiesced) or relaxed for introspection.
  mutable std::vector<std::unique_ptr<std::atomic<std::uint64_t>>>
      unit_dirty_;

  /// Raises unit `u`'s dirty watermark to `seq` (caller holds the unit's
  /// lock; monotonic, so a plain store under the lock suffices).
  void mark_unit_dirty(UnitId u, std::uint64_t seq);

  util::Mutex& unit_mutex(UnitId u) const { return *unit_mu_[u]; }
  /// Re-sizes unit_mu_ to match units_ (build, snapshot assembly, unit
  /// admission). Caller holds the exclusive structure lock or is still
  /// single-threaded construction.
  void rebuild_unit_locks();

  FreezeState freeze_;
};

}  // namespace smartstore::core
