#include "core/ground_truth.h"

#include <algorithm>
#include <unordered_set>

namespace smartstore::core {

using metadata::FileId;
using metadata::FileMetadata;
using metadata::kNumAttrs;

la::RowStandardizer fit_standardizer(const std::vector<FileMetadata>& files) {
  la::Matrix a(kNumAttrs, files.size());
  for (std::size_t j = 0; j < files.size(); ++j)
    for (std::size_t d = 0; d < kNumAttrs; ++d) a(d, j) = files[j].attrs[d];
  return la::RowStandardizer::fit(a);
}

std::vector<FileId> brute_force_range(const std::vector<FileMetadata>& files,
                                      const metadata::RangeQuery& q) {
  std::vector<FileId> out;
  for (const auto& f : files) {
    if (q.matches(f)) out.push_back(f.id);
  }
  return out;
}

std::vector<std::pair<double, FileId>> brute_force_topk(
    const std::vector<FileMetadata>& files,
    const la::RowStandardizer& standardizer, const metadata::TopKQuery& q) {
  // Standardize the query point on its subset dimensions.
  const std::size_t d = q.dims.size();
  la::Vector point(d);
  for (std::size_t i = 0; i < d; ++i) {
    const std::size_t a = static_cast<std::size_t>(q.dims[i]);
    point[i] = (q.point[i] - standardizer.means[a]) * standardizer.inv_stdevs[a];
  }
  std::vector<std::pair<double, FileId>> all;
  all.reserve(files.size());
  for (const auto& f : files) {
    double dist = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      const std::size_t a = static_cast<std::size_t>(q.dims[i]);
      const double v = (f.attrs[a] - standardizer.means[a]) *
                       standardizer.inv_stdevs[a];
      const double delta = v - point[i];
      dist += delta * delta;
    }
    all.emplace_back(dist, f.id);
  }
  const std::size_t k = std::min(q.k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  all.resize(k);
  return all;
}

double recall(const std::vector<FileId>& truth,
              const std::vector<FileId>& answer) {
  if (truth.empty()) return 1.0;
  std::unordered_set<FileId> got(answer.begin(), answer.end());
  std::size_t hit = 0;
  for (FileId id : truth)
    if (got.count(id)) ++hit;
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

}  // namespace smartstore::core
