// The semantic R-tree (Sections 2.1, 3.1.2, 3.2, 4.1-4.3).
//
// Leaves are storage units (metadata servers); non-leaf nodes are index
// units carrying, per Section 2.2: an MBR over the standardized attribute
// space of all covered metadata, a Bloom filter that is the union of the
// children's filters (Figure 4), and the node's semantic vector (here the
// raw-attribute centroid, kept in sum form for O(1) incremental updates).
//
// Construction is bottom-up (Figure 3): LSI over the units' semantic
// vectors yields pairwise correlations; units with correlation above the
// level's admission threshold ε_i aggregate into groups (capped at the
// R-tree fanout M so group sizes stay approximately equal), recursively
// until a single root remains. Thresholds may be fixed or auto-selected by
// the variance-ratio criterion (Figure 11's "optimal thresholds").
//
// Reconfiguration follows Section 3.2 and 4.1: storage units are admitted
// into the most-correlated group (split at fanout overflow via quadratic
// split on the child boxes) and removed with sibling-merge on underflow,
// with height adjustment propagating upward.
//
// Index units are mapped onto storage units bottom-up with random
// selection and labeling (Section 4.2, Figure 6); the root is additionally
// multi-mapped to one unit per root-child subtree (Section 4.3).
#pragma once

#include <cstddef>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/grouping.h"
#include "core/striped_locks.h"
#include "core/units.h"
#include "la/matrix.h"
#include "lsi/lsi.h"
#include "rtree/mbr.h"
#include "util/rng.h"

namespace smartstore::persist {
struct SnapshotAccess;  // persistence-layer serialization hook
}

namespace smartstore::core {

/// Non-leaf semantic R-tree node.
struct IndexUnit {
  std::size_t node_id = kInvalidIndex;
  int level = 1;  ///< 1 = first-level index unit (a "group"); root = max
  std::size_t parent = kInvalidIndex;
  /// level == 1: storage-unit ids; level > 1: node ids of the level below.
  std::vector<std::size_t> children;

  rtree::Mbr box;                 ///< standardized coords of covered files
  bloom::BloomFilter name_filter; ///< union of children's filters
  la::Vector attr_sum;            ///< raw-attribute sum over covered files
  std::size_t file_count = 0;

  UnitId mapped_unit = kInvalidIndex;  ///< storage unit hosting this node

  la::Vector centroid_raw() const;
  std::size_t byte_size() const;
};

class SemanticRTree {
 public:
  struct BuildParams {
    std::size_t fanout = 8;       ///< M: max children per index unit
    std::size_t min_fill = 2;     ///< m <= M/2: merge threshold
    double epsilon = 0.0;         ///< admission threshold; 0 = auto/level
    std::size_t lsi_rank = 0;     ///< 0 = auto (90% spectral energy)
    std::size_t bloom_bits = 1024;
    unsigned bloom_hashes = 7;
    /// Attribute indices the grouping predicate uses (Section 3.1.1's
    /// d-of-D subset); empty = all D dimensions. This is what the
    /// automatic-configuration component varies across tree variants.
    std::vector<std::size_t> lsi_dims;
  };

  /// Builds the tree bottom-up over the current unit contents.
  void build(const std::vector<StorageUnit>& units, const BuildParams& params);

  bool built() const { return root_ != kInvalidIndex; }
  std::size_t root_id() const { return root_; }
  const IndexUnit& node(std::size_t id) const { return nodes_[id]; }
  std::size_t num_nodes() const { return live_nodes_; }
  int height() const { return built() ? nodes_[root_].level : 0; }

  /// Node ids of the first-level index units (the semantic groups), in a
  /// deterministic order.
  const std::vector<std::size_t>& groups() const { return groups_; }
  std::size_t group_of_unit(UnitId u) const { return unit_group_[u]; }
  /// Storage-unit members of a group node.
  const std::vector<std::size_t>& group_members(std::size_t group_node) const {
    return nodes_[group_node].children;
  }

  /// Admission thresholds chosen per level during build (index 0 = ε_1).
  const std::vector<double>& level_epsilons() const { return level_epsilons_; }
  /// The LSI model fitted over unit semantic vectors at build time (used
  /// for similarity-based routing and unit admission).
  const lsi::LsiModel& unit_lsi() const { return unit_lsi_; }

  /// Restricts a full-D raw vector to the grouping-predicate dimensions
  /// this tree was built with (identity when lsi_dims is empty).
  la::Vector restrict_dims(const la::Vector& full) const;

  // ---- incremental file updates (Section 3.4 "local update") ------------

  /// Propagates a file insertion at `unit` up the tree: expands MBRs,
  /// inserts into Bloom filters, updates centroid sums. With `locks`, each
  /// ancestor is updated under its stripe — one node at a time, child
  /// before parent — so concurrent writers routed to different units only
  /// contend where their ancestor paths overlap. The updates are
  /// commutative (expand/insert/add), so per-node atomicity is all the
  /// walk needs; the name is hashed once, outside every stripe.
  /// `name_hash`, when given, is the precomputed digest of `name` (the
  /// store hashes once per insert and shares it across trees/filters).
  void on_file_inserted(UnitId unit, const la::Vector& raw,
                        const la::Vector& std_coords, const std::string& name,
                        const StripedMutexPool* locks = nullptr,
                        const bloom::ItemHash* name_hash = nullptr);

  /// Propagates a deletion (sums/counts only; MBRs and Bloom filters stay
  /// conservative until reconfiguration). Same per-stripe walk as inserts.
  void on_file_removed(UnitId unit, const la::Vector& raw,
                       const StripedMutexPool* locks = nullptr);

  // ---- system reconfiguration (Sections 3.2, 4.1) -----------------------

  /// Admits a new storage unit (already appended to `units`) into the most
  /// semantically correlated group; splits the group when it overflows the
  /// fanout M. Returns the group node id the unit joined.
  std::size_t admit_unit(const std::vector<StorageUnit>& units, UnitId u);

  /// Removes a storage unit from the tree; groups falling below the
  /// min-fill m are merged into their most correlated sibling, and a
  /// single-child root collapses (height adjustment, Section 3.2.2).
  void remove_unit(const std::vector<StorageUnit>& units, UnitId u);

  /// Recomputes every node's summary from its children (used after bulk
  /// mutations and by tests).
  void recompute_all(const std::vector<StorageUnit>& units);

  // ---- mapping (Sections 4.2, 4.3) ---------------------------------------

  /// Bottom-up random mapping of index units onto storage units; each unit
  /// hosts at most one index unit while unlabeled candidates remain.
  void map_index_units(util::Rng& rng);

  /// Units hosting a replica of the root (multi-mapping): one per subtree
  /// of each root child.
  const std::vector<UnitId>& root_replicas() const { return root_replicas_; }

  /// Bytes of index units hosted on storage unit `u` (incl. root replicas).
  std::size_t hosted_bytes(UnitId u) const;
  /// Total bytes of all index units.
  std::size_t total_index_bytes() const;

  /// Structural invariants: tree shape, MBR containment, count consistency.
  bool check_invariants(const std::vector<StorageUnit>& units) const;

 private:
  /// The snapshot codec in src/persist/ reads and restores the full private
  /// state (nodes, free list, group maps, fitted LSI model) so a persisted
  /// tree resumes without a rebuild.
  friend struct ::smartstore::persist::SnapshotAccess;

  std::size_t new_node(int level);
  void free_node(std::size_t id);
  /// Maps index units created by incremental reconfiguration (splits, root
  /// growth) onto storage units: each unmapped node is hosted by the first
  /// storage unit in its subtree. Section 4.2's mapping minus the
  /// randomization — the incremental path must stay deterministic so WAL
  /// replay reconstructs the same routing topology.
  void map_new_nodes();
  /// Recomputes one node's summary from its children.
  void recompute_node(const std::vector<StorageUnit>& units, std::size_t id);
  void recompute_upward(const std::vector<StorageUnit>& units, std::size_t id);
  /// Splits an overflowing group/index node; recurses upward on overflow.
  void split_node(const std::vector<StorageUnit>& units, std::size_t id);
  /// Collects ids of all live nodes at a level.
  std::vector<std::size_t> nodes_at_level(int level) const;
  void rebuild_group_list();
  double child_box_distance(const std::vector<StorageUnit>& units,
                            const IndexUnit& node, std::size_t a,
                            std::size_t b) const;
  rtree::Mbr child_box(const std::vector<StorageUnit>& units,
                       const IndexUnit& node, std::size_t child) const;

  BuildParams params_;
  std::vector<IndexUnit> nodes_;
  std::vector<std::size_t> free_list_;
  std::size_t live_nodes_ = 0;
  std::size_t root_ = kInvalidIndex;
  std::vector<std::size_t> groups_;      // level-1 node ids
  std::vector<std::size_t> unit_group_;  // unit id -> group node id
  std::vector<double> level_epsilons_;
  lsi::LsiModel unit_lsi_;
  std::vector<UnitId> root_replicas_;
};

}  // namespace smartstore::core
