#include "core/units.h"

#include <algorithm>
#include <cassert>

namespace smartstore::core {

using metadata::FileId;
using metadata::FileMetadata;
using metadata::kNumAttrs;

StorageUnit::StorageUnit(UnitId id, std::size_t bloom_bits,
                         unsigned bloom_hashes)
    : id_(id), name_filter_(bloom_bits, bloom_hashes),
      attr_sums_(kNumAttrs, 0.0) {}

void StorageUnit::add_file(const FileMetadata& f, const la::Vector& std_coords,
                           std::uint64_t added_seq) {
  assert(std_coords.size() == kNumAttrs);
  by_name_[f.name] = files_.size();
  by_id_[f.id] = files_.size();
  files_.push_back(f);
  std_coords_.push_back(std_coords);
  added_seqs_.push_back(added_seq);
  name_filter_.insert(f.name);
  box_.expand(std_coords);
  for (std::size_t d = 0; d < kNumAttrs; ++d) attr_sums_[d] += f.attrs[d];
}

std::optional<FileMetadata> StorageUnit::remove_file(FileId id,
                                                     std::uint64_t
                                                         deleted_seq) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return std::nullopt;
  const std::size_t pos = it->second;
  FileMetadata removed = files_[pos];

  if (deleted_seq > 0) {
    // Version chain: snapshots pinned before the delete still see this
    // record. The caller prunes against the GC watermark.
    TombstoneRecord t;
    t.file = removed;
    t.std_coords = std_coords_[pos];
    t.added_seq = added_seqs_[pos];
    t.deleted_seq = deleted_seq;
    tombstones_.push_back(std::move(t));
  }

  name_filter_.remove(removed.name);
  by_name_.erase(removed.name);
  by_id_.erase(it);
  for (std::size_t d = 0; d < kNumAttrs; ++d)
    attr_sums_[d] -= removed.attrs[d];

  // Swap-remove; fix the indexes of the moved record.
  const std::size_t last = files_.size() - 1;
  if (pos != last) {
    files_[pos] = std::move(files_[last]);
    std_coords_[pos] = std::move(std_coords_[last]);
    added_seqs_[pos] = added_seqs_[last];
    by_name_[files_[pos].name] = pos;
    by_id_[files_[pos].id] = pos;
  }
  files_.pop_back();
  std_coords_.pop_back();
  added_seqs_.pop_back();
  return removed;
}

std::size_t StorageUnit::prune_tombstones(std::uint64_t watermark) {
  if (tombstones_.empty()) return 0;
  const std::size_t before = tombstones_.size();
  tombstones_.erase(
      std::remove_if(tombstones_.begin(), tombstones_.end(),
                     [watermark](const TombstoneRecord& t) {
                       return t.deleted_seq <= watermark;
                     }),
      tombstones_.end());
  return before - tombstones_.size();
}

const FileMetadata* StorageUnit::find_by_name(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &files_[it->second];
}

const FileMetadata* StorageUnit::find_by_id(FileId id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &files_[it->second];
}

la::Vector StorageUnit::centroid_raw() const {
  la::Vector c = attr_sums_;
  if (!files_.empty()) {
    const double inv = 1.0 / static_cast<double>(files_.size());
    for (auto& x : c) x *= inv;
  }
  return c;
}

std::size_t StorageUnit::byte_size() const {
  std::size_t b = sizeof(*this);
  for (const auto& f : files_) b += f.byte_size();
  b += std_coords_.size() * (kNumAttrs * sizeof(double) + sizeof(la::Vector));
  // Hash indexes: bucket array + one node per entry (approximation).
  b += by_name_.size() * (sizeof(void*) * 2 + 48);
  b += by_id_.size() * (sizeof(void*) * 2 + 24);
  b += added_seqs_.size() * sizeof(std::uint64_t);
  for (const auto& t : tombstones_) {
    b += sizeof(TombstoneRecord) + t.file.byte_size() +
         t.std_coords.capacity() * sizeof(double);
  }
  b += name_filter_.byte_size();
  b += box_.byte_size();
  return b;
}

std::size_t VersionDelta::byte_size() const {
  return sizeof(*this) + added_box.byte_size() + added_names.byte_size() +
         added_attr_sum.capacity() * sizeof(double) +
         deleted.capacity() * sizeof(metadata::FileId);
}

rtree::Mbr GroupReplica::effective_box(bool with_versions) const {
  rtree::Mbr b = box;
  if (with_versions) {
    for (const auto& v : versions) b.expand(v.added_box);
  }
  return b;
}

la::Vector GroupReplica::effective_centroid(bool with_versions) const {
  if (!with_versions || versions.empty()) return centroid_raw;
  la::Vector sum = attr_sum;
  std::size_t count = file_count;
  for (const auto& v : versions) {
    if (v.added_count == 0) continue;
    for (std::size_t d = 0; d < sum.size(); ++d) sum[d] += v.added_attr_sum[d];
    count += v.added_count;
  }
  if (count == 0) return centroid_raw;
  for (auto& x : sum) x /= static_cast<double>(count);
  return sum;
}

bool GroupReplica::name_may_contain(const std::string& name,
                                    bool with_versions) const {
  if (with_versions) {
    // Rolling backward: newest version first, so the most recent insert or
    // delete wins (Section 4.4).
    for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
      if (it->added_names.may_contain(name)) return true;
    }
  }
  return name_filter.may_contain(name);
}

std::size_t GroupReplica::byte_size() const {
  return sizeof(*this) + centroid_raw.capacity() * sizeof(double) +
         attr_sum.capacity() * sizeof(double) + box.byte_size() +
         name_filter.byte_size() + versions_byte_size();
}

std::size_t GroupReplica::versions_byte_size() const {
  std::size_t b = 0;
  for (const auto& v : versions) b += v.byte_size();
  return b;
}

}  // namespace smartstore::core
