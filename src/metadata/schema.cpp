#include "metadata/schema.h"

#include <algorithm>
#include <cassert>

namespace smartstore::metadata {

const char* attr_name(Attr a) {
  switch (a) {
    case Attr::kFileSize: return "size";
    case Attr::kCreationTime: return "ctime";
    case Attr::kModificationTime: return "mtime";
    case Attr::kAccessTime: return "atime";
    case Attr::kReadCount: return "rdcnt";
    case Attr::kWriteCount: return "wrcnt";
    case Attr::kReadBytes: return "rdbytes";
    case Attr::kWriteBytes: return "wrbytes";
    case Attr::kAccessFrequency: return "freq";
    case Attr::kOwnerId: return "owner";
  }
  return "?";
}

bool attr_is_physical(Attr a) {
  switch (a) {
    case Attr::kFileSize:
    case Attr::kCreationTime:
    case Attr::kModificationTime:
    case Attr::kOwnerId:
      return true;
    default:
      return false;
  }
}

AttrSubset::AttrSubset(std::vector<Attr> attrs) : attrs_(std::move(attrs)) {
  std::sort(attrs_.begin(), attrs_.end());
  attrs_.erase(std::unique(attrs_.begin(), attrs_.end()), attrs_.end());
}

AttrSubset AttrSubset::all() {
  std::vector<Attr> v;
  v.reserve(kNumAttrs);
  for (std::size_t i = 0; i < kNumAttrs; ++i) v.push_back(static_cast<Attr>(i));
  return AttrSubset(std::move(v));
}

bool AttrSubset::contains(Attr a) const {
  return std::binary_search(attrs_.begin(), attrs_.end(), a);
}

unsigned AttrSubset::mask() const {
  unsigned m = 0;
  for (Attr a : attrs_) m |= 1u << static_cast<std::size_t>(a);
  return m;
}

AttrSubset AttrSubset::from_mask(unsigned mask) {
  std::vector<Attr> v;
  for (std::size_t i = 0; i < kNumAttrs; ++i)
    if (mask & (1u << i)) v.push_back(static_cast<Attr>(i));
  return AttrSubset(std::move(v));
}

std::vector<AttrSubset> AttrSubset::enumerate(const AttrSubset& space) {
  const std::size_t n = space.size();
  assert(n <= 16 && "subset enumeration is exponential");
  std::vector<AttrSubset> out;
  out.reserve((1u << n) - 1);
  for (unsigned m = 1; m < (1u << n); ++m) {
    std::vector<Attr> v;
    for (std::size_t i = 0; i < n; ++i)
      if (m & (1u << i)) v.push_back(space[i]);
    out.emplace_back(std::move(v));
  }
  return out;
}

std::string AttrSubset::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i) s += "+";
    s += attr_name(attrs_[i]);
  }
  return s.empty() ? "<empty>" : s;
}

}  // namespace smartstore::metadata
