// The multi-dimensional attribute space of file metadata (Section 2.3).
//
// SmartStore distinguishes *physical* attributes (filename, size, creation
// time — mostly immutable) from *behavioral* attributes (access frequency,
// read/write volumes — frequently changing). The reproduction fixes a
// D = 10 numeric schema covering both classes; the filename is kept
// separately as the point-query key.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace smartstore::metadata {

enum class Attr : std::size_t {
  kFileSize = 0,        ///< bytes (physical)
  kCreationTime = 1,    ///< seconds since trace epoch (physical)
  kModificationTime = 2,///< seconds since trace epoch (physical)
  kAccessTime = 3,      ///< seconds since trace epoch (behavioral)
  kReadCount = 4,       ///< number of read operations (behavioral)
  kWriteCount = 5,      ///< number of write operations (behavioral)
  kReadBytes = 6,       ///< total bytes read (behavioral)
  kWriteBytes = 7,      ///< total bytes written (behavioral)
  kAccessFrequency = 8, ///< accesses per hour (behavioral)
  kOwnerId = 9,         ///< numeric owner/process id (physical)
};

inline constexpr std::size_t kNumAttrs = 10;

/// Display name for an attribute.
const char* attr_name(Attr a);

/// True for physical (rarely changing) attributes, false for behavioral.
bool attr_is_physical(Attr a);

/// An ordered subset of attribute dimensions, used by queries that probe
/// only d of the D dimensions and by the automatic-configuration component
/// (Section 2.4).
class AttrSubset {
 public:
  AttrSubset() = default;
  explicit AttrSubset(std::vector<Attr> attrs);

  /// The full D-dimensional space.
  static AttrSubset all();

  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  Attr operator[](std::size_t i) const { return attrs_[i]; }
  const std::vector<Attr>& attrs() const { return attrs_; }

  bool contains(Attr a) const;

  /// Canonical bitmask (bit i set when attribute i is included), used to
  /// key the auto-configuration registry of semantic R-trees.
  unsigned mask() const;

  /// Builds a subset from a bitmask.
  static AttrSubset from_mask(unsigned mask);

  /// Enumerates all non-empty subsets of the given dimensions (2^n - 1 of
  /// them); n must be small. Used by automatic configuration.
  static std::vector<AttrSubset> enumerate(const AttrSubset& space);

  /// Human-readable "size+ctime+mtime".
  std::string to_string() const;

  bool operator==(const AttrSubset&) const = default;

 private:
  std::vector<Attr> attrs_;
};

}  // namespace smartstore::metadata
