// Query types served by SmartStore (Section 3.3): point (filename), range
// (multi-dimensional interval) and top-k nearest neighbor.
//
// Range and top-k queries carry the subset of attribute dimensions they
// constrain; queries probing fewer than D dimensions are the motivation for
// the automatic-configuration component (Section 2.4).
#pragma once

#include <cstddef>
#include <string>

#include "la/matrix.h"
#include "metadata/file_metadata.h"
#include "metadata/schema.h"

namespace smartstore::metadata {

/// Filename lookup: "does file X exist, and on which storage unit?"
struct PointQuery {
  std::string filename;
};

/// Multi-dimensional interval: lo[i] <= attr(dims[i]) <= hi[i] for all i.
/// The paper's example: files revised between 10:00 and 16:20 with read
/// volume in [30MB, 50MB] and write volume in [5MB, 8MB] is a box over
/// three dimensions.
struct RangeQuery {
  AttrSubset dims;
  la::Vector lo;
  la::Vector hi;

  bool matches(const FileMetadata& f) const {
    for (std::size_t i = 0; i < dims.size(); ++i) {
      const double v = f.attr(dims[i]);
      if (v < lo[i] || v > hi[i]) return false;
    }
    return true;
  }
};

/// k nearest neighbors of a query point in the (sub)space of `dims`,
/// under Euclidean distance on standardized coordinates.
struct TopKQuery {
  AttrSubset dims;
  la::Vector point;  ///< raw attribute coordinates, one per dims[i]
  std::size_t k = 8;
};

}  // namespace smartstore::metadata
