#include "metadata/file_metadata.h"

namespace smartstore::metadata {

la::Vector FileMetadata::project(const AttrSubset& subset) const {
  la::Vector v(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i)
    v[i] = attrs[static_cast<std::size_t>(subset[i])];
  return v;
}

la::Vector FileMetadata::full_vector() const {
  return la::Vector(attrs.begin(), attrs.end());
}

la::Vector centroid(const std::vector<FileMetadata>& files,
                    const AttrSubset& subset) {
  la::Vector c(subset.size(), 0.0);
  if (files.empty()) return c;
  for (const auto& f : files) {
    for (std::size_t i = 0; i < subset.size(); ++i)
      c[i] += f.attr(subset[i]);
  }
  const double inv = 1.0 / static_cast<double>(files.size());
  for (auto& x : c) x *= inv;
  return c;
}

double group_variance(const std::vector<FileMetadata>& files,
                      const AttrSubset& subset) {
  if (files.empty()) return 0.0;
  const la::Vector c = centroid(files, subset);
  double acc = 0.0;
  for (const auto& f : files) acc += la::squared_distance(f.project(subset), c);
  return acc;
}

}  // namespace smartstore::metadata
