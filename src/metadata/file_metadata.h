// File metadata records: the unit of storage in SmartStore.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.h"
#include "metadata/schema.h"

namespace smartstore::metadata {

using FileId = std::uint64_t;

/// One file's metadata: an identifier, the filename (point-query key), and
/// the D-dimensional numeric attribute vector (semantic vector source).
struct FileMetadata {
  FileId id = 0;
  std::string name;
  std::array<double, kNumAttrs> attrs{};

  double attr(Attr a) const { return attrs[static_cast<std::size_t>(a)]; }
  void set_attr(Attr a, double v) { attrs[static_cast<std::size_t>(a)] = v; }

  /// The attribute vector restricted to a subset of dimensions, in subset
  /// order. This is the raw (unstandardized) semantic vector S_a.
  la::Vector project(const AttrSubset& subset) const;

  /// Full D-dimensional raw vector.
  la::Vector full_vector() const;

  /// Approximate in-memory footprint (metadata record size matters for the
  /// space-overhead experiments).
  std::size_t byte_size() const {
    return sizeof(*this) + name.capacity();
  }
};

/// Centroid of a set of metadata records over a subset of dimensions: the
/// average attribute values (the C_i of the semantic-correlation measure in
/// Section 1.1).
la::Vector centroid(const std::vector<FileMetadata>& files,
                    const AttrSubset& subset);

/// The semantic-correlation objective of Section 1.1 for one group: the sum
/// of squared Euclidean distances from each member to the centroid.
double group_variance(const std::vector<FileMetadata>& files,
                      const AttrSubset& subset);

}  // namespace smartstore::metadata
