// Dense row-major matrix and vector types used by the LSI substrate.
//
// The attribute-file matrices in SmartStore have a small attribute dimension
// (D <= 32) and a large file/unit dimension, so a straightforward dense
// implementation is both simple and fast enough; no expression templates.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace smartstore::la {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (rows are contiguous).
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  void set_row(std::size_t r, const Vector& v);
  void set_col(std::size_t c, const Vector& v);

  Matrix transposed() const;

  /// this * other (dims must agree).
  Matrix multiply(const Matrix& other) const;

  /// this * v for a column vector v of length cols().
  Vector multiply(const Vector& v) const;

  /// this^T * this, an NxN Gram matrix for N = cols(). O(rows * cols^2).
  Matrix gram() const;

  /// this * this^T, an MxM Gram matrix for M = rows(). O(cols * rows^2).
  Matrix outer_gram() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; matrices must have identical shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  std::size_t byte_size() const {
    return sizeof(*this) + data_.capacity() * sizeof(double);
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

// ---- free vector helpers ---------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
/// Euclidean distance between points of equal dimension.
double euclidean_distance(const Vector& a, const Vector& b);
/// Squared Euclidean distance (the semantic-correlation objective uses it).
double squared_distance(const Vector& a, const Vector& b);
/// Cosine similarity in [-1, 1]; returns 0 if either vector is zero.
double cosine_similarity(const Vector& a, const Vector& b);
/// a + b elementwise.
Vector add(const Vector& a, const Vector& b);
/// a - b elementwise.
Vector sub(const Vector& a, const Vector& b);
/// s * a.
Vector scale(const Vector& a, double s);

}  // namespace smartstore::la
