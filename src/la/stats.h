// Small statistics helpers: per-dimension standardization for building the
// attribute-file matrix (metadata attributes have wildly different scales:
// bytes vs seconds vs counts), plus summary statistics for experiment output.
#pragma once

#include <cstddef>

#include "la/matrix.h"

namespace smartstore::la {

double mean(const Vector& v);
double stdev(const Vector& v);
double median(Vector v);  // by value: sorts a copy
double percentile(Vector v, double p);  // p in [0, 100]

/// Per-row standardization parameters for an attribute-file matrix whose
/// rows are attributes: value -> (value - mean) / stdev. Rows with zero
/// spread map to 0 (constant attributes carry no correlation signal).
struct RowStandardizer {
  Vector means;
  Vector inv_stdevs;  ///< 0 where stdev == 0

  /// Learns parameters from the rows of `a`.
  static RowStandardizer fit(const Matrix& a);

  /// Applies in place.
  void apply(Matrix& a) const;

  /// Standardizes a single attribute vector (one value per row of the
  /// original matrix).
  Vector transform(const Vector& raw) const;
};

}  // namespace smartstore::la
