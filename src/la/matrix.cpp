#include "la/matrix.h"

#include <algorithm>
#include <cmath>

namespace smartstore::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::row(std::size_t r) const {
  assert(r < rows_);
  return Vector(row_ptr(r), row_ptr(r) + cols_);
}

Vector Matrix::col(std::size_t c) const {
  assert(c < cols_);
  Vector v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  assert(v.size() == cols_);
  std::copy(v.begin(), v.end(), row_ptr(r));
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  assert(v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.row_ptr(k);
      double* orow = out.row_ptr(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector Matrix::multiply(const Vector& v) const {
  assert(v.size() == cols_);
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = row_ptr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += r[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rp = row_ptr(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double ri = rp[i];
      if (ri == 0.0) continue;
      double* grow = g.row_ptr(i);
      for (std::size_t j = i; j < cols_; ++j) grow[j] += ri * rp[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  return g;
}

Matrix Matrix::outer_gram() const {
  Matrix g(rows_, rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* ri = row_ptr(i);
    for (std::size_t j = i; j < rows_; ++j) {
      const double* rj = row_ptr(j);
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) acc += ri[c] * rj[c];
      g(i, j) = acc;
      g(j, i) = acc;
    }
  }
  return g;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double euclidean_distance(const Vector& a, const Vector& b) {
  return std::sqrt(squared_distance(a, b));
}

double squared_distance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double cosine_similarity(const Vector& a, const Vector& b) {
  const double na = norm2(a), nb = norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

Vector add(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace smartstore::la
