// Singular value decomposition for the LSI substrate.
//
// Two independent routes are provided:
//   * svd_thin():  eigendecomposition of the smaller Gram matrix (the
//     attribute dimension in SmartStore is <= 32, so this is exact and
//     cheap: O(min(m,n)^3 + m*n*min(m,n))).
//   * svd_jacobi_one_sided(): classical one-sided Jacobi on the full
//     matrix; slower but makes no shape assumptions. Used in tests to
//     cross-validate svd_thin().
//
// Both return singular values sorted in decreasing order with U, V columns
// aligned to them.
#pragma once

#include <cstddef>

#include "la/matrix.h"

namespace smartstore::la {

struct SvdResult {
  Matrix u;        ///< m x r, orthonormal columns (left singular vectors)
  Vector sigma;    ///< r singular values, decreasing
  Matrix v;        ///< n x r, orthonormal columns (right singular vectors)

  /// Reconstructs U * diag(sigma) * V^T (rank = sigma.size()).
  Matrix reconstruct() const;

  /// Drops all but the p largest singular triplets (LSI rank truncation,
  /// A_p = U_p Sigma_p V_p^T). No-op if p >= rank.
  void truncate(std::size_t p);
};

/// Symmetric eigendecomposition via cyclic Jacobi rotations.
/// `a` must be symmetric. Returns eigenvalues (decreasing) and the matrix of
/// eigenvectors as columns: a = Q diag(lambda) Q^T.
struct SymmetricEigenResult {
  Vector eigenvalues;  ///< decreasing
  Matrix eigenvectors; ///< n x n, column i pairs with eigenvalues[i]
};
SymmetricEigenResult eigen_symmetric(const Matrix& a, double tol = 1e-12,
                                     int max_sweeps = 64);

/// Thin SVD via the Gram matrix on the smaller side. Singular values below
/// `rank_tol * sigma_max` are dropped (rank revealing).
SvdResult svd_thin(const Matrix& a, double rank_tol = 1e-10);

/// One-sided Jacobi SVD (Hestenes). Reference implementation for testing.
SvdResult svd_jacobi_one_sided(const Matrix& a, double tol = 1e-12,
                               int max_sweeps = 64);

}  // namespace smartstore::la
