#include "la/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smartstore::la {

double mean(const Vector& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double stdev(const Vector& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double median(Vector v) { return percentile(std::move(v), 50.0); }

double percentile(Vector v, double p) {
  if (v.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

RowStandardizer RowStandardizer::fit(const Matrix& a) {
  RowStandardizer s;
  s.means.resize(a.rows());
  s.inv_stdevs.resize(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Vector row = a.row(r);
    s.means[r] = mean(row);
    const double sd = stdev(row);
    s.inv_stdevs[r] = sd > 0.0 ? 1.0 / sd : 0.0;
  }
  return s;
}

void RowStandardizer::apply(Matrix& a) const {
  assert(a.rows() == means.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double* row = a.row_ptr(r);
    for (std::size_t c = 0; c < a.cols(); ++c)
      row[c] = (row[c] - means[r]) * inv_stdevs[r];
  }
}

Vector RowStandardizer::transform(const Vector& raw) const {
  assert(raw.size() == means.size());
  Vector out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    out[i] = (raw[i] - means[i]) * inv_stdevs[i];
  return out;
}

}  // namespace smartstore::la
