#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace smartstore::la {

Matrix SvdResult::reconstruct() const {
  const std::size_t m = u.rows(), n = v.rows(), r = sigma.size();
  Matrix out(m, n, 0.0);
  for (std::size_t k = 0; k < r; ++k) {
    for (std::size_t i = 0; i < m; ++i) {
      const double us = u(i, k) * sigma[k];
      if (us == 0.0) continue;
      double* orow = out.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) orow[j] += us * v(j, k);
    }
  }
  return out;
}

void SvdResult::truncate(std::size_t p) {
  const std::size_t r = sigma.size();
  if (p >= r) return;
  Matrix u2(u.rows(), p), v2(v.rows(), p);
  for (std::size_t k = 0; k < p; ++k) {
    for (std::size_t i = 0; i < u.rows(); ++i) u2(i, k) = u(i, k);
    for (std::size_t j = 0; j < v.rows(); ++j) v2(j, k) = v(j, k);
  }
  u = std::move(u2);
  v = std::move(v2);
  sigma.resize(p);
}

SymmetricEigenResult eigen_symmetric(const Matrix& a, double tol,
                                     int max_sweeps) {
  const std::size_t n = a.rows();
  Matrix d = a;                 // working copy, driven to diagonal
  Matrix q = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    if (std::sqrt(off) <= tol * std::max(1.0, d.frobenius_norm())) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t r = p + 1; r < n; ++r) {
        const double apq = d(p, r);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = d(p, p), aqq = d(r, r);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation J(p, r, theta) on both sides of d and accumulate
        // into q.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p), dkq = d(k, r);
          d(k, p) = c * dkp - s * dkq;
          d(k, r) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k), dqk = d(r, k);
          d(p, k) = c * dpk - s * dqk;
          d(r, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p), qkq = q(k, r);
          q(k, p) = c * qkp - s * qkq;
          q(k, r) = s * qkp + c * qkq;
        }
      }
    }
  }

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t x, std::size_t y) { return d(x, x) > d(y, y); });

  SymmetricEigenResult res;
  res.eigenvalues.resize(n);
  res.eigenvectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    res.eigenvalues[k] = d(idx[k], idx[k]);
    for (std::size_t i = 0; i < n; ++i)
      res.eigenvectors(i, k) = q(i, idx[k]);
  }
  return res;
}

namespace {

/// Gram route when rows <= cols: eig(A A^T) gives U and sigma^2; then
/// v_k = A^T u_k / sigma_k.
SvdResult svd_via_rows(const Matrix& a, double rank_tol) {
  const std::size_t m = a.rows(), n = a.cols();
  SymmetricEigenResult eig = eigen_symmetric(a.outer_gram());

  // Determine numerical rank.
  const double lmax = std::max(0.0, eig.eigenvalues.empty() ? 0.0
                                                            : eig.eigenvalues[0]);
  const double smax = std::sqrt(lmax);
  const double cutoff = rank_tol * std::max(smax, 1e-300);
  std::size_t r = 0;
  for (std::size_t k = 0; k < m; ++k) {
    const double lk = eig.eigenvalues[k];
    if (lk > 0.0 && std::sqrt(lk) > cutoff) ++r;
  }

  SvdResult out;
  out.sigma.resize(r);
  out.u = Matrix(m, r);
  out.v = Matrix(n, r);
  for (std::size_t k = 0; k < r; ++k) {
    const double s = std::sqrt(eig.eigenvalues[k]);
    out.sigma[k] = s;
    for (std::size_t i = 0; i < m; ++i) out.u(i, k) = eig.eigenvectors(i, k);
    // v_k = A^T u_k / s
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < m; ++i) acc += a(i, j) * out.u(i, k);
      out.v(j, k) = acc / s;
    }
  }
  return out;
}

}  // namespace

SvdResult svd_thin(const Matrix& a, double rank_tol) {
  if (a.rows() <= a.cols()) return svd_via_rows(a, rank_tol);
  // Tall matrix: decompose the transpose and swap factors.
  SvdResult t = svd_via_rows(a.transposed(), rank_tol);
  SvdResult out;
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  out.sigma = std::move(t.sigma);
  return out;
}

SvdResult svd_jacobi_one_sided(const Matrix& a, double tol, int max_sweeps) {
  // Hestenes method: orthogonalize the columns of a working copy W = A V by
  // plane rotations applied on the right; on convergence the column norms
  // are the singular values, normalized columns are U, and the accumulated
  // rotations form V.
  const std::size_t m = a.rows(), n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          alpha += w(i, p) * w(i, p);
          beta += w(i, q) * w(i, q);
          gamma += w(i, p) * w(i, q);
        }
        if (std::fabs(gamma) <= tol * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const double wip = w(i, p), wiq = w(i, q);
          w(i, p) = c * wip - s * wiq;
          w(i, q) = s * wip + c * wiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
    if (!rotated) break;
  }

  // Column norms -> singular values; sort decreasing, drop numerically zero.
  std::vector<double> norms(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += w(i, j) * w(i, j);
    norms[j] = std::sqrt(acc);
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });

  const double smax = norms.empty() ? 0.0 : norms[idx[0]];
  const double cutoff = 1e-12 * std::max(smax, 1e-300);
  std::size_t r = 0;
  for (std::size_t j = 0; j < n; ++j)
    if (norms[idx[j]] > cutoff) ++r;

  SvdResult out;
  out.sigma.resize(r);
  out.u = Matrix(m, r);
  out.v = Matrix(n, r);
  for (std::size_t k = 0; k < r; ++k) {
    const std::size_t j = idx[k];
    out.sigma[k] = norms[j];
    for (std::size_t i = 0; i < m; ++i) out.u(i, k) = w(i, j) / norms[j];
    for (std::size_t i = 0; i < n; ++i) out.v(i, k) = v(i, j);
  }
  return out;
}

}  // namespace smartstore::la
