// Fault-injecting channel wrapper: the adversarial network for the retry-
// semantics tests.
//
// Wraps any Channel and, per call, rolls a seeded die to duplicate the
// delivery, drop the request before it arrives, drop the response after
// the handler ran, or delay the delivery (which, under concurrent client
// threads, reorders requests). Drops surface as kTimeout — the client
// cannot know whether the server applied the request, which is exactly the
// ambiguity the (client_id, seq) dedup protocol must absorb: the tests
// assert exactly-once apply and no lost acked write under any mix of these
// faults.
//
// Deterministic in the seed; the die is per-channel (its own leaf-rank
// mutex), so concurrent callers stay race-free without serializing the
// wrapped transport.
#pragma once

#include <cstdint>
#include <memory>

#include "rpc/transport.h"
#include "util/annotated_mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace smartstore::rpc {

struct FaultSpec {
  double duplicate_p = 0;  ///< deliver the request twice, return the 2nd answer
  double drop_request_p = 0;   ///< never delivered -> kTimeout
  double drop_response_p = 0;  ///< delivered, answer lost -> kTimeout
  double delay_p = 0;          ///< deliver after a short sleep (reordering)
  std::uint32_t delay_us = 200;
  std::uint64_t seed = 1;
};

class FaultChannel : public Channel {
 public:
  FaultChannel(std::shared_ptr<Channel> inner, const FaultSpec& spec)
      : inner_(std::move(inner)), spec_(spec), rng_(spec.seed) {}

  db::Status Call(const Frame& req, Frame* resp) override;

  /// Accounting for assertions: how often each fault fired.
  struct Counts {
    std::uint64_t calls = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t dropped_requests = 0;
    std::uint64_t dropped_responses = 0;
    std::uint64_t delayed = 0;
  };
  Counts counts() const;

 private:
  /// One die roll (0=none, 1=dup, 2=drop-req, 3=drop-resp, 4=delay).
  int roll();

  std::shared_ptr<Channel> inner_;
  const FaultSpec spec_;
  mutable util::Mutex mu_;  ///< leaf: guards rng + counts only
  util::Rng rng_ SS_GUARDED_BY(mu_);
  Counts counts_ SS_GUARDED_BY(mu_);
};

}  // namespace smartstore::rpc
