// The transport seam of the service tier: everything that moves frames
// implements Channel (client side) and accepts a Handler (server side), so
// the meta-service, router and tests are transport-agnostic — the same
// cluster logic runs over the in-process registry (CTest/TSan), the
// fault-injecting wrapper (retry-semantics tests) and the socket transport
// (real processes) without changing a line.
//
// Contract:
//   * Call() is synchronous and thread-safe; many threads may share one
//     Channel.
//   * Transport-level failures come back as the Status return value:
//       kUnavailable  the endpoint is gone/unreachable (retry may help
//                     after backoff — the peer may be restarting)
//       kTimeout      delivery is UNKNOWN: the request may have been
//                     applied; a retry must reuse the same request id
//     Application-level failures (kNotFound, kWrongShard, ...) ride
//     INSIDE the response frame's status field with the Call() returning
//     OK — the transport delivered an answer, the answer is the error.
//   * Handler is invoked once per delivered request (the fault wrapper
//     deliberately violates "once" — that is the point) and must not
//     throw.
#pragma once

#include <functional>

#include "rpc/wire.h"
#include "smartstore/status.h"

namespace smartstore::rpc {

/// Server-side dispatch: consumes a decoded request frame, produces the
/// response frame. Runs on the transport's delivery thread (the caller's
/// thread for the in-process transport, a connection thread for sockets).
using Handler = std::function<Frame(const Frame&)>;

class Channel {
 public:
  virtual ~Channel() = default;

  /// Delivers `req` and fills `resp`. See the contract above for the
  /// split between transport-level and application-level failures.
  virtual db::Status Call(const Frame& req, Frame* resp) = 0;
};

}  // namespace smartstore::rpc
