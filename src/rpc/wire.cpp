#include "rpc/wire.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/crc32.h"

namespace smartstore::rpc {

namespace {

/// Runs a BinaryReader decode body, mapping the reader's bounds-check
/// exception onto the wire boundary's kCorruption contract.
template <typename Fn>
db::Status decode_guard(const char* what, Fn&& fn) {
  try {
    fn();
    return db::Status::OK();
  } catch (const util::BinaryIoError& e) {
    return db::Status::Corruption(std::string(what) + ": " + e.what());
  } catch (const std::exception& e) {
    return db::Status::Corruption(std::string(what) + ": " + e.what());
  }
}

void append(const util::BinaryWriter& w, std::vector<std::uint8_t>* out) {
  out->insert(out->end(), w.buffer().begin(), w.buffer().end());
}

std::uint32_t payload_crc(const std::vector<std::uint8_t>& p) {
  return p.empty() ? util::crc32_final(util::crc32_init())
                   : util::crc32(p.data(), p.size());
}

void write_file_fields(util::BinaryWriter& w, const metadata::FileMetadata& f) {
  w.write_u64(f.id);
  w.write_string(f.name);
  for (std::size_t i = 0; i < metadata::kNumAttrs; ++i) {
    w.write_f64(f.attrs[i]);
  }
}

void read_file_fields(util::BinaryReader& r, metadata::FileMetadata* f) {
  f->id = r.read_u64();
  f->name = r.read_string();
  for (std::size_t i = 0; i < metadata::kNumAttrs; ++i) {
    f->attrs[i] = r.read_f64();
  }
}

void write_dims(util::BinaryWriter& w, const metadata::AttrSubset& dims) {
  w.write_u64(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    w.write_u8(static_cast<std::uint8_t>(dims[i]));
  }
}

metadata::AttrSubset read_dims(util::BinaryReader& r) {
  const std::uint64_t n =
      r.read_u64_max(metadata::kNumAttrs, "attr subset size");
  std::vector<metadata::Attr> attrs;
  attrs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t a = r.read_u8();
    if (a >= metadata::kNumAttrs) {
      throw util::BinaryIoError("attribute id out of range");
    }
    attrs.push_back(static_cast<metadata::Attr>(a));
  }
  return metadata::AttrSubset(std::move(attrs));
}

}  // namespace

const char* method_name(Method m) {
  switch (m) {
    case Method::kPing: return "ping";
    case Method::kPut: return "put";
    case Method::kDelete: return "delete";
    case Method::kPointQuery: return "point-query";
    case Method::kRangeQuery: return "range-query";
    case Method::kTopKQuery: return "topk-query";
    case Method::kBatchWrite: return "batch-write";
    case Method::kFlush: return "flush";
    case Method::kGetMap: return "get-map";
    case Method::kStats: return "stats";
    case Method::kSnapPin: return "snap-pin";
    case Method::kSnapRelease: return "snap-release";
    case Method::kReplAppend: return "repl-append";
    case Method::kReplFrontier: return "repl-frontier";
    case Method::kReplBootstrap: return "repl-bootstrap";
  }
  return "?";
}

// ---- frame ------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  util::BinaryWriter w;
  w.write_u32(kWireMagic);
  // write_u32 is the only fixed-width integer writer below u64; the u16
  // version travels in a u32's low half (the header layout counts it as
  // 2 bytes of that u32; the high half is the type/method pair).
  w.write_u8(static_cast<std::uint8_t>(kWireVersion & 0xff));
  w.write_u8(static_cast<std::uint8_t>(kWireVersion >> 8));
  w.write_u8(static_cast<std::uint8_t>(f.type));
  w.write_u8(static_cast<std::uint8_t>(f.method));
  w.write_u8(static_cast<std::uint8_t>(f.status));
  w.write_u8(0);  // reserved
  w.write_u32(f.shard);
  w.write_u64(f.client_id);
  w.write_u64(f.seq);
  w.write_u64(f.map_version);
  w.write_u32(static_cast<std::uint32_t>(f.payload.size()));
  w.write_u32(payload_crc(f.payload));
  std::vector<std::uint8_t> out = w.buffer();
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  return out;
}

db::Status peek_payload_len(const std::uint8_t* header, std::size_t size,
                            std::uint32_t* len) {
  if (size < kFrameHeaderBytes) {
    return db::Status::Corruption("frame header truncated");
  }
  return decode_guard("frame header", [&] {
    util::BinaryReader r(header, kFrameHeaderBytes);
    if (r.read_u32() != kWireMagic) {
      throw util::BinaryIoError("bad frame magic");
    }
    const std::uint16_t version = static_cast<std::uint16_t>(
        r.read_u8() | (static_cast<std::uint16_t>(r.read_u8()) << 8));
    if (version > kWireVersion) {
      throw util::BinaryIoError("frame from a newer wire version");
    }
    r.skip(4);  // type, method, status, reserved
    r.skip(4 + 8 + 8 + 8);
    const std::uint32_t payload_len = r.read_u32();
    if (payload_len > kMaxPayloadBytes) {
      throw util::BinaryIoError("implausible payload length");
    }
    *len = payload_len;
  });
}

db::Status decode_frame(const std::uint8_t* data, std::size_t size,
                        Frame* out) {
  if (size < kFrameHeaderBytes) {
    return db::Status::Corruption("frame truncated before header end");
  }
  util::BinaryReader r(data, size);
  std::uint16_t version = 0;
  db::Status s = decode_guard("frame", [&] {
    if (r.read_u32() != kWireMagic) {
      throw util::BinaryIoError("bad frame magic");
    }
    version = static_cast<std::uint16_t>(
        r.read_u8() | (static_cast<std::uint16_t>(r.read_u8()) << 8));
  });
  if (!s.ok()) return s;
  if (version > kWireVersion) {
    return db::Status::InvalidArgument(
        "frame from wire version " + std::to_string(version) +
        " (this build speaks " + std::to_string(kWireVersion) + ")");
  }
  return decode_guard("frame", [&] {
    const std::uint8_t type = r.read_u8();
    if (type > static_cast<std::uint8_t>(MsgType::kResponse)) {
      throw util::BinaryIoError("bad message type");
    }
    out->type = static_cast<MsgType>(type);
    const std::uint8_t method = r.read_u8();
    if (method > static_cast<std::uint8_t>(Method::kReplBootstrap)) {
      throw util::BinaryIoError("unknown method");
    }
    out->method = static_cast<Method>(method);
    const std::uint8_t status = r.read_u8();
    if (status >= db::kNumStatusCodes) {
      throw util::BinaryIoError("status code out of range");
    }
    out->status = static_cast<db::StatusCode>(status);
    r.skip(1);  // reserved
    out->shard = r.read_u32();
    out->client_id = r.read_u64();
    out->seq = r.read_u64();
    out->map_version = r.read_u64();
    const std::uint32_t payload_len = r.read_u32();
    if (payload_len > kMaxPayloadBytes) {
      throw util::BinaryIoError("implausible payload length");
    }
    const std::uint32_t crc = r.read_u32();
    if (r.remaining() != payload_len) {
      throw util::BinaryIoError("payload length does not match frame size");
    }
    out->payload.assign(data + r.position(), data + r.position() + payload_len);
    if (payload_crc(out->payload) != crc) {
      throw util::BinaryIoError("payload CRC mismatch");
    }
  });
}

db::Status decode_frame(const std::vector<std::uint8_t>& bytes, Frame* out) {
  return decode_frame(bytes.data(), bytes.size(), out);
}

// ---- payload codecs ---------------------------------------------------------

void encode_file(const metadata::FileMetadata& f,
                 std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  write_file_fields(w, f);
  append(w, out);
}

db::Status decode_file(const std::vector<std::uint8_t>& in,
                       metadata::FileMetadata* out) {
  return decode_guard("file payload", [&] {
    util::BinaryReader r(in);
    read_file_fields(r, out);
  });
}

void encode_name(const std::string& name, std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_string(name);
  append(w, out);
}

db::Status decode_name(const std::vector<std::uint8_t>& in, std::string* out) {
  return decode_guard("name payload", [&] {
    util::BinaryReader r(in);
    *out = r.read_string();
  });
}

namespace {

/// The v2 trailing as-of seq: v1 payloads end right before it, so a
/// remaining() check is the version switch (0 = latest either way).
std::uint64_t read_as_of_tail(util::BinaryReader& r) {
  return r.remaining() >= 8 ? r.read_u64() : 0;
}

}  // namespace

void encode_point_query(const metadata::PointQuery& q,
                        std::vector<std::uint8_t>* out, std::uint64_t as_of) {
  util::BinaryWriter w;
  w.write_string(q.filename);
  w.write_u64(as_of);
  append(w, out);
}

db::Status decode_point_query(const std::vector<std::uint8_t>& in,
                              metadata::PointQuery* out,
                              std::uint64_t* as_of) {
  return decode_guard("point query payload", [&] {
    util::BinaryReader r(in);
    out->filename = r.read_string();
    const std::uint64_t seq = read_as_of_tail(r);
    if (as_of != nullptr) *as_of = seq;
  });
}

void encode_range_query(const metadata::RangeQuery& q,
                        std::vector<std::uint8_t>* out, std::uint64_t as_of) {
  util::BinaryWriter w;
  write_dims(w, q.dims);
  w.write_vec_f64(q.lo);
  w.write_vec_f64(q.hi);
  w.write_u64(as_of);
  append(w, out);
}

db::Status decode_range_query(const std::vector<std::uint8_t>& in,
                              metadata::RangeQuery* out,
                              std::uint64_t* as_of) {
  return decode_guard("range query payload", [&] {
    util::BinaryReader r(in);
    out->dims = read_dims(r);
    out->lo = r.read_vec_f64();
    out->hi = r.read_vec_f64();
    const std::uint64_t seq = read_as_of_tail(r);
    if (as_of != nullptr) *as_of = seq;
  });
}

void encode_topk_query(const metadata::TopKQuery& q,
                       std::vector<std::uint8_t>* out, std::uint64_t as_of) {
  util::BinaryWriter w;
  write_dims(w, q.dims);
  w.write_vec_f64(q.point);
  w.write_u64(q.k);
  w.write_u64(as_of);
  append(w, out);
}

db::Status decode_topk_query(const std::vector<std::uint8_t>& in,
                             metadata::TopKQuery* out, std::uint64_t* as_of) {
  return decode_guard("topk query payload", [&] {
    util::BinaryReader r(in);
    out->dims = read_dims(r);
    out->point = r.read_vec_f64();
    out->k = r.read_u64();
    const std::uint64_t seq = read_as_of_tail(r);
    if (as_of != nullptr) *as_of = seq;
  });
}

void encode_snapshot_lease(const SnapshotLease& l,
                           std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(l.lease_id);
  w.write_u64(l.seq);
  append(w, out);
}

db::Status decode_snapshot_lease(const std::vector<std::uint8_t>& in,
                                 SnapshotLease* out) {
  return decode_guard("snapshot lease payload", [&] {
    util::BinaryReader r(in);
    out->lease_id = r.read_u64();
    out->seq = r.read_u64();
  });
}

void encode_batch(const std::vector<BatchOp>& ops,
                  std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(ops.size());
  for (const BatchOp& op : ops) {
    w.write_u8(op.is_put ? 1 : 0);
    if (op.is_put) {
      write_file_fields(w, op.file);
    } else {
      w.write_string(op.name);
    }
  }
  append(w, out);
}

db::Status decode_batch(const std::vector<std::uint8_t>& in,
                        std::vector<BatchOp>* out) {
  return decode_guard("batch payload", [&] {
    util::BinaryReader r(in);
    // Each op is at least 2 bytes (tag + shortest field), so a count
    // larger than the remaining bytes is garbage, not a big batch.
    const std::uint64_t n = r.read_u64_max(r.remaining(), "batch op count");
    out->clear();
    out->reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      BatchOp op;
      op.is_put = r.read_u8() != 0;
      if (op.is_put) {
        read_file_fields(r, &op.file);
      } else {
        op.name = r.read_string();
      }
      out->push_back(std::move(op));
    }
  });
}

void encode_query_result(const db::QueryResult& r,
                         std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u8(static_cast<std::uint8_t>(r.kind));
  w.write_bool(r.found);
  w.write_u64(r.id);
  w.write_u64(r.unit);
  w.write_bool(r.first_try);
  w.write_vec_u64(r.ids);
  w.write_u64(r.hits.size());
  for (const auto& [dist, id] : r.hits) {
    w.write_f64(dist);
    w.write_u64(id);
  }
  w.write_f64(r.stats.latency_s);
  w.write_u64(r.stats.messages);
  w.write_u64(r.stats.hops);
  w.write_i32(r.stats.routing_hops);
  w.write_u64(r.stats.groups_visited);
  w.write_u64(r.stats.records_scanned);
  w.write_f64(r.stats.version_check_s);
  w.write_bool(r.stats.failed);
  append(w, out);
}

db::Status decode_query_result(const std::vector<std::uint8_t>& in,
                               db::QueryResult* out) {
  return decode_guard("query result payload", [&] {
    util::BinaryReader r(in);
    const std::uint8_t kind = r.read_u8();
    if (kind > static_cast<std::uint8_t>(db::QueryKind::kTopK)) {
      throw util::BinaryIoError("query kind out of range");
    }
    out->kind = static_cast<db::QueryKind>(kind);
    out->found = r.read_bool();
    out->id = r.read_u64();
    out->unit = r.read_u64();
    out->first_try = r.read_bool();
    out->ids = r.read_vec_u64();
    const std::uint64_t nhits =
        r.read_u64_max(r.remaining() / (8 + 8), "hit count");
    out->hits.clear();
    out->hits.reserve(nhits);
    for (std::uint64_t i = 0; i < nhits; ++i) {
      const double dist = r.read_f64();
      const std::uint64_t id = r.read_u64();
      out->hits.emplace_back(dist, id);
    }
    out->stats.latency_s = r.read_f64();
    out->stats.messages = r.read_u64();
    out->stats.hops = r.read_u64();
    out->stats.routing_hops = r.read_i32();
    out->stats.groups_visited = r.read_u64();
    out->stats.records_scanned = r.read_u64();
    out->stats.version_check_s = r.read_f64();
    out->stats.failed = r.read_bool();
  });
}

void encode_message(const std::string& msg, std::vector<std::uint8_t>* out) {
  encode_name(msg, out);
}

db::Status decode_message(const std::vector<std::uint8_t>& in,
                          std::string* out) {
  return decode_name(in, out);
}

void encode_shard_stats(const ShardStats& s, std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(s.applied_puts);
  w.write_u64(s.applied_deletes);
  w.write_u64(s.dup_hits);
  w.write_u64(s.wrong_shard);
  w.write_u64(s.total_files);
  append(w, out);
}

db::Status decode_shard_stats(const std::vector<std::uint8_t>& in,
                              ShardStats* out) {
  return decode_guard("shard stats payload", [&] {
    util::BinaryReader r(in);
    out->applied_puts = r.read_u64();
    out->applied_deletes = r.read_u64();
    out->dup_hits = r.read_u64();
    out->wrong_shard = r.read_u64();
    out->total_files = r.read_u64();
  });
}

// ---- replication stream (v3) ------------------------------------------------

void encode_repl_batch(const ReplBatch& b, std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_bool(b.sync_engaged);
  w.write_u64(b.ops.size());
  for (const ReplOp& op : b.ops) {
    // Tag: 0 = remove, 1 = insert, 2 = noop (seq-hole marker, seq only).
    w.write_u8(op.is_noop ? 2 : (op.is_insert ? 1 : 0));
    w.write_u64(op.seq);
    if (op.is_noop) continue;
    if (op.is_insert) {
      write_file_fields(w, op.file);
    } else {
      w.write_string(op.name);
    }
  }
  append(w, out);
}

db::Status decode_repl_batch(const std::vector<std::uint8_t>& in,
                             ReplBatch* out) {
  return decode_guard("repl batch payload", [&] {
    util::BinaryReader r(in);
    out->sync_engaged = r.read_bool();
    // Each op is at least 9 bytes (tag + seq), so a count above the
    // remaining byte count is garbage, not a big batch.
    const std::uint64_t n = r.read_u64_max(r.remaining(), "repl op count");
    out->ops.clear();
    out->ops.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      ReplOp op;
      const std::uint8_t tag = r.read_u8();
      if (tag > 2) throw util::BinaryIoError("bad repl op tag");
      op.is_noop = tag == 2;
      op.is_insert = tag == 1;
      op.seq = r.read_u64();
      if (!op.is_noop) {
        if (op.is_insert) {
          read_file_fields(r, &op.file);
        } else {
          op.name = r.read_string();
        }
      }
      out->ops.push_back(std::move(op));
    }
  });
}

void encode_repl_status(const ReplStatus& s, std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(s.frontier);
  w.write_bool(s.ready);
  append(w, out);
}

db::Status decode_repl_status(const std::vector<std::uint8_t>& in,
                              ReplStatus* out) {
  return decode_guard("repl status payload", [&] {
    util::BinaryReader r(in);
    out->frontier = r.read_u64();
    out->ready = r.read_bool();
  });
}

void encode_repl_bootstrap(const ReplBootstrap& b,
                           std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(b.seq);
  w.write_u64(b.files.size());
  for (const metadata::FileMetadata& f : b.files) {
    write_file_fields(w, f);
  }
  append(w, out);
}

db::Status decode_repl_bootstrap(const std::vector<std::uint8_t>& in,
                                 ReplBootstrap* out) {
  return decode_guard("repl bootstrap payload", [&] {
    util::BinaryReader r(in);
    out->seq = r.read_u64();
    // A serialized record is well over 8 bytes; remaining() bounds the
    // count the same way the batch codec does.
    const std::uint64_t n = r.read_u64_max(r.remaining(), "bootstrap count");
    out->files.clear();
    out->files.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      metadata::FileMetadata f;
      read_file_fields(r, &f);
      out->files.push_back(std::move(f));
    }
  });
}

}  // namespace smartstore::rpc
