#include "rpc/socket.h"

#include <utility>

#include "rpc/wire.h"

#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace smartstore::rpc {

namespace {

db::Status errno_status(const char* what) {
  return db::Status::IOError(std::string(what) + ": " +
                             std::strerror(errno));
}

/// Writes the whole buffer or fails. MSG_NOSIGNAL: a dead peer must come
/// back as EPIPE, not a process-wide SIGPIPE.
db::Status send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return db::Status::Unavailable(std::string("send: ") +
                                     std::strerror(errno));
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return db::Status();
}

/// Reads exactly `len` bytes. EOF mid-message is kUnavailable (the peer
/// went away); a receive timeout is kTimeout (delivery unknown — the
/// caller must treat the connection as desynchronized and drop it).
db::Status recv_all(int fd, std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return db::Status::Timeout("recv timed out");
      }
      return db::Status::Unavailable(std::string("recv: ") +
                                     std::strerror(errno));
    }
    if (n == 0) return db::Status::Unavailable("peer closed connection");
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return db::Status();
}

/// One frame off the stream: fixed header, then the payload length the
/// (validated) header announces.
db::Status recv_frame(int fd, Frame* out) {
  std::vector<std::uint8_t> buf(kFrameHeaderBytes);
  db::Status s = recv_all(fd, buf.data(), buf.size());
  if (!s.ok()) return s;
  std::uint32_t payload_len = 0;
  s = peek_payload_len(buf.data(), buf.size(), &payload_len);
  if (!s.ok()) return s;
  buf.resize(kFrameHeaderBytes + payload_len);
  s = recv_all(fd, buf.data() + kFrameHeaderBytes, payload_len);
  if (!s.ok()) return s;
  return decode_frame(buf, out);
}

db::Status send_frame(int fd, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  return send_all(fd, bytes.data(), bytes.size());
}

db::Status resolve(const std::string& host, std::uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return db::Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return db::Status();
}

}  // namespace

SocketServer::~SocketServer() { Stop(); }

db::Status SocketServer::Start(const std::string& host, std::uint16_t port,
                               Handler handler) {
  if (listen_fd_ >= 0) {
    return db::Status::FailedPrecondition("server already started");
  }
  sockaddr_in addr;
  db::Status s = resolve(host, port, &addr);
  if (!s.ok()) return s;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    s = errno_status("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    s = errno_status("listen");
    ::close(fd);
    return s;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    s = errno_status("getsockname");
    ::close(fd);
    return s;
  }

  handler_ = std::move(handler);
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return db::Status();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down (Stop) or unrecoverable
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const util::MutexLock lock(conns_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void SocketServer::ServeConnection(int fd) {
  for (;;) {
    Frame req;
    if (!recv_frame(fd, &req).ok()) break;  // EOF, damage, or shutdown
    const Frame resp = handler_(req);
    if (!send_frame(fd, resp).ok()) break;
  }
  // The fd is closed by Stop (which owns the list); closing here too would
  // race a concurrent shutdown() on the same descriptor.
}

void SocketServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Accept thread is gone: the connection lists are frozen now. Shut every
  // connection down (unblocks recv in the serving threads), join, close.
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    const util::MutexLock lock(conns_mu_);
    fds.swap(conn_fds_);
    threads.swap(conn_threads_);
  }
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (const int fd : fds) ::close(fd);
}

SocketChannel::SocketChannel(std::string host, std::uint16_t port,
                             std::uint32_t recv_timeout_ms)
    : host_(std::move(host)), port_(port), recv_timeout_ms_(recv_timeout_ms) {}

SocketChannel::~SocketChannel() {
  const util::MutexLock lock(mu_);
  Disconnect();
}

db::Status SocketChannel::EnsureConnected() {
  if (fd_ >= 0) return db::Status();
  sockaddr_in addr;
  db::Status s = resolve(host_, port_, &addr);
  if (!s.ok()) return s;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    s = db::Status::Unavailable(std::string("connect ") + host_ + ":" +
                                std::to_string(port_) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv;
  tv.tv_sec = recv_timeout_ms_ / 1000;
  tv.tv_usec = static_cast<long>(recv_timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  fd_ = fd;
  return db::Status();
}

void SocketChannel::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

db::Status SocketChannel::Call(const Frame& req, Frame* resp) {
  const util::MutexLock lock(mu_);
  // Reconnect-once: a connection that died since the last call (server
  // restart) costs one failed send, after which we retry on a fresh
  // connection before reporting kUnavailable to the router.
  for (int attempt = 0; attempt < 2; ++attempt) {
    db::Status s = EnsureConnected();
    if (!s.ok()) {
      Disconnect();
      if (attempt == 0) continue;
      return s;
    }
    s = send_frame(fd_, req);
    if (!s.ok()) {
      Disconnect();
      if (attempt == 0) continue;
      return s;
    }
    s = recv_frame(fd_, resp);
    if (!s.ok()) {
      // Whatever happened (timeout, EOF, corrupt frame), the stream can no
      // longer be trusted to be on a frame boundary: drop the connection.
      // No silent retry here — the request may have been applied, and only
      // the request-id dedup layer may safely resend it.
      Disconnect();
      return s;
    }
    return db::Status();
  }
  return db::Status::Unavailable("unreachable");
}

}  // namespace smartstore::rpc

#else  // !(__unix__ || __APPLE__)

namespace smartstore::rpc {

namespace {
db::Status no_sockets() {
  return db::Status::FailedPrecondition(
      "socket transport is not available on this platform");
}
}  // namespace

SocketServer::~SocketServer() = default;

db::Status SocketServer::Start(const std::string&, std::uint16_t, Handler) {
  return no_sockets();
}

void SocketServer::Stop() {}

void SocketServer::AcceptLoop() {}
void SocketServer::ServeConnection(int) {}

SocketChannel::SocketChannel(std::string host, std::uint16_t port,
                             std::uint32_t recv_timeout_ms)
    : host_(std::move(host)), port_(port), recv_timeout_ms_(recv_timeout_ms) {}

SocketChannel::~SocketChannel() = default;

db::Status SocketChannel::EnsureConnected() { return no_sockets(); }
void SocketChannel::Disconnect() {}

db::Status SocketChannel::Call(const Frame&, Frame*) { return no_sockets(); }

}  // namespace smartstore::rpc

#endif
