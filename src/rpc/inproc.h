// In-process transport: the whole cluster inside one address space, so
// multi-shard oracle tests run under CTest/ASan/TSan with the lock-rank
// validator active.
//
// An InprocNetwork is a registry of shard id -> Handler. Channels resolve
// the handler PER CALL (under the registry lock, released before
// invocation), so a shard crashing (Unbind) or restarting (Bind) is
// visible to existing channels immediately — exactly like a reconnecting
// socket client. Every call still round-trips through encode_frame /
// decode_frame on both sides: the in-process transport exercises the real
// wire format, it only skips the kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "rpc/transport.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::rpc {

class InprocNetwork {
 public:
  /// Registers (or replaces) the handler serving `shard`.
  void Bind(std::uint32_t shard, Handler handler);

  /// Removes the endpoint: subsequent Calls return kUnavailable. In-flight
  /// deliveries complete (the handler copy is shared, not destroyed).
  void Unbind(std::uint32_t shard);

  /// A channel to `shard`. Valid before the shard is ever bound — calls
  /// simply fail kUnavailable until Bind.
  std::shared_ptr<Channel> Connect(std::uint32_t shard);

  /// True when `shard` currently has a bound handler.
  bool IsBound(std::uint32_t shard) const;

 private:
  friend class InprocChannel;

  /// Snapshot of the endpoint for one delivery (nullptr when unbound).
  std::shared_ptr<Handler> endpoint(std::uint32_t shard) const;

  mutable util::Mutex mu_{util::LockRank::kRpcRegistry};
  std::unordered_map<std::uint32_t, std::shared_ptr<Handler>> endpoints_
      SS_GUARDED_BY(mu_);
};

}  // namespace smartstore::rpc
