// The service tier's wire format: one versioned, CRC-guarded frame shape
// for every request and response between a metadata client and a shard
// server.
//
// A frame is a fixed-size little-endian header followed by a
// method-specific payload:
//
//   u32  magic        'SSRP' (0x53535250) — rejects foreign byte streams
//   u16  version      kWireVersion; a decoder REJECTS frames from a NEWER
//                     version (it cannot know what the fields mean) and
//                     accepts older ones (the format only appends)
//   u8   type         0 = request, 1 = response
//   u8   method       Method enum
//   u8   status       db::StatusCode (responses; requests carry kOk)
//   u8   reserved     zero on the wire (room for flags)
//   u32  shard        request: target shard; response: responding shard
//   u64  client_id    }  the request id: (client_id, seq) — a retry MUST
//   u64  seq          }  resend the same pair so server dedup can keep the
//                        apply exactly-once
//   u64  map_version  request: the client's cached partition-map version;
//                     response: the server's current one
//   u32  payload_len  bytes following the header
//   u32  payload_crc  CRC-32 of the payload bytes
//
// Payload codecs for the metadata vocabulary (FileMetadata, the three
// query types, batches, query results, status messages) live here too —
// the transports move opaque frames; only this header knows what is inside
// them.
//
// The decode entry points are exception-free: malformed input surfaces as
// db::Status (kCorruption for damage, kInvalidArgument for a future wire
// version), never as an exception or an out-of-bounds read (BinaryReader
// bounds-checks every access).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metadata/file_metadata.h"
#include "metadata/query.h"
#include "smartstore/query.h"
#include "smartstore/status.h"

namespace smartstore::rpc {

inline constexpr std::uint32_t kWireMagic = 0x53535250;  // "SSRP"
/// v2 adds the snapshot-lease methods (kSnapPin / kSnapRelease) and a
/// trailing as-of sequence on the three query payloads (absent in v1
/// frames, decoded as 0 = latest). v3 adds the replication stream
/// (kReplAppend / kReplFrontier / kReplBootstrap). Decoders accept v1/v2
/// unchanged.
inline constexpr std::uint16_t kWireVersion = 3;
/// Fixed header size in bytes (see the layout above).
inline constexpr std::size_t kFrameHeaderBytes =
    4 + 2 + 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 4 + 4;
/// Upper bound a decoder accepts for payload_len: rejects garbage length
/// prefixes before any allocation. Generous — a 64 MiB batch is ~100k
/// records.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class MsgType : std::uint8_t { kRequest = 0, kResponse = 1 };

/// The meta-service method vocabulary. Values are wire-stable: new methods
/// append, existing values never change meaning.
enum class Method : std::uint8_t {
  kPing = 0,        ///< liveness probe; echoes the payload
  kPut = 1,         ///< upsert one FileMetadata record (keyed, deduped)
  kDelete = 2,      ///< delete by filename (keyed, deduped)
  kPointQuery = 3,  ///< filename lookup (keyed)
  kRangeQuery = 4,  ///< multi-dimensional interval (scatter-gather)
  kTopKQuery = 5,   ///< k nearest neighbors (scatter-gather)
  kBatchWrite = 6,  ///< ordered put/delete batch (keyed per-op, deduped)
  kFlush = 7,       ///< group-commit the shard's WAL
  kGetMap = 8,      ///< fetch the authoritative partition map
  kStats = 9,       ///< shard counters (applied ops, dup hits, files)
  kSnapPin = 10,    ///< pin a shard snapshot; response carries the lease
  kSnapRelease = 11,  ///< drop a snapshot lease (payload: the lease)
  // v3: the primary -> follower replication stream. These carry the map
  // EPOCH in the frame's map_version field — a follower rejects frames
  // from a deposed primary (stale epoch) with kFailedPrecondition.
  kReplAppend = 12,  ///< committed-record batch; response: follower frontier
  kReplFrontier = 13,  ///< read the follower's durable frontier (empty req)
  kReplBootstrap = 14,  ///< full snapshot push to an empty late joiner
};

const char* method_name(Method m);

struct Frame {
  MsgType type = MsgType::kRequest;
  Method method = Method::kPing;
  db::StatusCode status = db::StatusCode::kOk;  ///< responses only
  std::uint32_t shard = 0;
  std::uint64_t client_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t map_version = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes `f` into the wire layout (header + payload + CRC).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Parses one complete frame. Errors: kCorruption (bad magic, bad CRC,
/// truncation, trailing bytes), kInvalidArgument (newer wire version).
db::Status decode_frame(const std::uint8_t* data, std::size_t size,
                        Frame* out);
db::Status decode_frame(const std::vector<std::uint8_t>& bytes, Frame* out);

/// Reads payload_len out of a serialized header so a stream transport
/// knows how many more bytes to read. Validates magic/version/bounds.
db::Status peek_payload_len(const std::uint8_t* header, std::size_t size,
                            std::uint32_t* len);

// ---- payload codecs ---------------------------------------------------------
//
// Writers append to a byte buffer; readers are exception-free wrappers
// that surface malformed payloads as kCorruption. Each request/response
// payload is the concatenation of the fields its method needs.

void encode_file(const metadata::FileMetadata& f,
                 std::vector<std::uint8_t>* out);
db::Status decode_file(const std::vector<std::uint8_t>& in,
                       metadata::FileMetadata* out);

void encode_name(const std::string& name, std::vector<std::uint8_t>* out);
db::Status decode_name(const std::vector<std::uint8_t>& in, std::string* out);

// The three query payloads end with a trailing as-of token (v2).
// kAsOfLatest (0) selects the routed/semantic read path; any other value
// t asks the shard for an exact snapshot scan at commit seq t - 1. The
// +1 bias keeps seq 0 — a freshly pinned empty shard — distinguishable
// from "latest". A v1 payload simply lacks the field and decodes as
// kAsOfLatest; decoders that don't care may pass a null as_of.

/// Wire value of the query as-of token meaning "read latest".
inline constexpr std::uint64_t kAsOfLatest = 0;

/// Commit seq -> wire as-of token (and back, on the serving side).
inline constexpr std::uint64_t as_of_token(std::uint64_t seq) {
  return seq + 1;
}

void encode_point_query(const metadata::PointQuery& q,
                        std::vector<std::uint8_t>* out,
                        std::uint64_t as_of = 0);
db::Status decode_point_query(const std::vector<std::uint8_t>& in,
                              metadata::PointQuery* out,
                              std::uint64_t* as_of = nullptr);

void encode_range_query(const metadata::RangeQuery& q,
                        std::vector<std::uint8_t>* out,
                        std::uint64_t as_of = 0);
db::Status decode_range_query(const std::vector<std::uint8_t>& in,
                              metadata::RangeQuery* out,
                              std::uint64_t* as_of = nullptr);

void encode_topk_query(const metadata::TopKQuery& q,
                       std::vector<std::uint8_t>* out,
                       std::uint64_t as_of = 0);
db::Status decode_topk_query(const std::vector<std::uint8_t>& in,
                             metadata::TopKQuery* out,
                             std::uint64_t* as_of = nullptr);

/// A shard's snapshot lease: the pinned commit seq plus the server-issued
/// id a release must quote. kSnapPin requests carry an empty payload and
/// get a lease back; kSnapRelease requests send the lease back verbatim.
struct SnapshotLease {
  std::uint64_t lease_id = 0;
  std::uint64_t seq = 0;
};

void encode_snapshot_lease(const SnapshotLease& l,
                           std::vector<std::uint8_t>* out);
db::Status decode_snapshot_lease(const std::vector<std::uint8_t>& in,
                                 SnapshotLease* out);

/// One batch op: a put (carrying a record) or a delete (carrying a name).
struct BatchOp {
  bool is_put = true;
  metadata::FileMetadata file;  ///< puts
  std::string name;             ///< deletes
};

void encode_batch(const std::vector<BatchOp>& ops,
                  std::vector<std::uint8_t>* out);
db::Status decode_batch(const std::vector<std::uint8_t>& in,
                        std::vector<BatchOp>* out);

/// Query responses reuse the facade's public result type; the full shape
/// (ids, hits, per-op stats) round-trips so the router can merge
/// scatter-gather results and the bench can account redirect-free latency.
void encode_query_result(const db::QueryResult& r,
                         std::vector<std::uint8_t>* out);
db::Status decode_query_result(const std::vector<std::uint8_t>& in,
                               db::QueryResult* out);

/// Error responses carry their message as the payload.
void encode_message(const std::string& msg, std::vector<std::uint8_t>* out);
db::Status decode_message(const std::vector<std::uint8_t>& in,
                          std::string* out);

/// Per-shard counters for Method::kStats.
struct ShardStats {
  std::uint64_t applied_puts = 0;
  std::uint64_t applied_deletes = 0;
  std::uint64_t dup_hits = 0;      ///< retries answered from the dedup table
  std::uint64_t wrong_shard = 0;   ///< requests redirected away
  std::uint64_t total_files = 0;   ///< records currently hosted
};

void encode_shard_stats(const ShardStats& s, std::vector<std::uint8_t>* out);
db::Status decode_shard_stats(const std::vector<std::uint8_t>& in,
                              ShardStats* out);

// ---- replication stream (v3) ------------------------------------------------

/// One committed WAL record on the wire: the primary's seq travels with
/// the op so the follower's log (and MVCC visibility) stays seq-identical
/// to what clients were acked. A NOOP op carries only the seq — it marks a
/// sequence number the primary consumed on a replica-private structural
/// record (unit split/merge); the follower must still account the seq or
/// the contiguous stream (and a promoted follower's stamp counter) would
/// hold a permanent hole.
struct ReplOp {
  bool is_insert = true;
  bool is_noop = false;  ///< seq-hole marker: neither file nor name valid
  std::uint64_t seq = 0;
  metadata::FileMetadata file;  ///< inserts
  std::string name;             ///< removes
};

/// kReplAppend request: a seq-contiguous run of committed records.
/// `sync_engaged` is the primary's statement that this follower is fully
/// caught up (no degraded-window acks outstanding) — the follower latches
/// it into its promotion-eligibility "ready" flag.
struct ReplBatch {
  bool sync_engaged = false;
  std::vector<ReplOp> ops;
};

void encode_repl_batch(const ReplBatch& b, std::vector<std::uint8_t>* out);
db::Status decode_repl_batch(const std::vector<std::uint8_t>& in,
                             ReplBatch* out);

/// Response payload for all three replication methods, and the promotion
/// scan's input: the follower's durable frontier (highest seq both applied
/// and WAL-committed locally) plus whether it is promotion-eligible.
struct ReplStatus {
  std::uint64_t frontier = 0;
  bool ready = false;
};

void encode_repl_status(const ReplStatus& s, std::vector<std::uint8_t>* out);
db::Status decode_repl_status(const std::vector<std::uint8_t>& in,
                              ReplStatus* out);

/// kReplBootstrap request: the primary's full state at snapshot seq `seq`.
/// The receiving store must be EMPTY; it loads the dump, then the regular
/// append stream resumes from the retained buffer (overlap is skipped by
/// the follower's frontier gate).
struct ReplBootstrap {
  std::uint64_t seq = 0;
  std::vector<metadata::FileMetadata> files;
};

void encode_repl_bootstrap(const ReplBootstrap& b,
                           std::vector<std::uint8_t>* out);
db::Status decode_repl_bootstrap(const std::vector<std::uint8_t>& in,
                                 ReplBootstrap* out);

}  // namespace smartstore::rpc
