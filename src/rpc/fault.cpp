#include "rpc/fault.h"

#include <chrono>
#include <thread>

namespace smartstore::rpc {

int FaultChannel::roll() {
  const util::MutexLock lock(mu_);
  ++counts_.calls;
  const double x = rng_.uniform();
  double edge = spec_.duplicate_p;
  if (x < edge) {
    ++counts_.duplicated;
    return 1;
  }
  edge += spec_.drop_request_p;
  if (x < edge) {
    ++counts_.dropped_requests;
    return 2;
  }
  edge += spec_.drop_response_p;
  if (x < edge) {
    ++counts_.dropped_responses;
    return 3;
  }
  edge += spec_.delay_p;
  if (x < edge) {
    ++counts_.delayed;
    return 4;
  }
  return 0;
}

db::Status FaultChannel::Call(const Frame& req, Frame* resp) {
  switch (roll()) {
    case 1: {  // duplicate: same frame (same request id) delivered twice
      Frame first;
      const db::Status s1 = inner_->Call(req, &first);
      (void)s1;  // the first copy's fate does not matter to the client
      return inner_->Call(req, resp);
    }
    case 2:  // dropped before arrival: the server never saw it
      return db::Status::Timeout("request dropped by fault injection");
    case 3: {  // dropped after arrival: applied (maybe), answer lost
      Frame discarded;
      (void)inner_->Call(req, &discarded);
      return db::Status::Timeout("response dropped by fault injection");
    }
    case 4:  // delayed: under concurrent clients this reorders deliveries
      std::this_thread::sleep_for(std::chrono::microseconds(spec_.delay_us));
      return inner_->Call(req, resp);
    default:
      return inner_->Call(req, resp);
  }
}

FaultChannel::Counts FaultChannel::counts() const {
  const util::MutexLock lock(mu_);
  return counts_;
}

}  // namespace smartstore::rpc
