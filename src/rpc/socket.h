// Pluggable socket transport: the same Channel/Handler contract as the
// in-process registry, over TCP.
//
// One frame per request, one per response, on a persistent connection. The
// stream framing is the wire format itself: the receiver reads the fixed
// header, learns payload_len from it (peek_payload_len validates magic /
// version / bounds first), reads the payload, and hands the whole buffer
// to decode_frame — so a corrupted stream fails the CRC, not the process.
//
// SocketServer runs one accept thread plus one thread per connection
// (metadata frames are small and the shard store underneath is internally
// striped; connection counts in the hundreds are the design point, not
// tens of thousands). SocketChannel serializes calls on its connection and
// reconnects lazily, so a restarted server looks like a few kUnavailable
// results followed by recovery — which is exactly what the router's
// bounded backoff expects.
//
// POSIX-only: on other platforms every entry point returns
// kFailedPrecondition (the in-process transport still works everywhere).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rpc/transport.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::rpc {

class SocketServer {
 public:
  SocketServer() = default;
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds `host:port` (port 0 picks an ephemeral port — read the result
  /// from port()) and starts serving `handler`. Errors: kIOError (bind /
  /// listen failed), kFailedPrecondition (already started / no sockets on
  /// this platform).
  db::Status Start(const std::string& host, std::uint16_t port,
                   Handler handler);

  /// The bound port (valid after a successful Start).
  std::uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection, joins every thread.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  util::Mutex conns_mu_{util::LockRank::kRpcChannel};
  std::vector<int> conn_fds_ SS_GUARDED_BY(conns_mu_);
  std::vector<std::thread> conn_threads_ SS_GUARDED_BY(conns_mu_);
};

/// Client end. Thread-safe: calls are serialized on the connection.
class SocketChannel : public Channel {
 public:
  /// Does not connect yet — the first Call does (and any Call after a
  /// connection loss retries the connect once before failing
  /// kUnavailable).
  SocketChannel(std::string host, std::uint16_t port,
                std::uint32_t recv_timeout_ms = 5000);
  ~SocketChannel() override;

  db::Status Call(const Frame& req, Frame* resp) override;

 private:
  db::Status EnsureConnected() SS_REQUIRES(mu_);
  void Disconnect() SS_REQUIRES(mu_);

  const std::string host_;
  const std::uint16_t port_;
  const std::uint32_t recv_timeout_ms_;

  util::Mutex mu_{util::LockRank::kRpcChannel};
  int fd_ SS_GUARDED_BY(mu_) = -1;
};

}  // namespace smartstore::rpc
