#include "rpc/inproc.h"

namespace smartstore::rpc {

namespace {

/// One delivery through the serialized wire format: encode on the client
/// side, decode on the server side, run the handler, encode the response,
/// decode it back on the client side. A codec bug therefore fails the
/// in-process tests, not just the socket path.
db::Status deliver(const Handler& handler, const Frame& req, Frame* resp) {
  const std::vector<std::uint8_t> req_bytes = encode_frame(req);
  Frame server_view;
  db::Status s = decode_frame(req_bytes, &server_view);
  if (!s.ok()) return s;
  const Frame server_resp = handler(server_view);
  const std::vector<std::uint8_t> resp_bytes = encode_frame(server_resp);
  return decode_frame(resp_bytes, resp);
}

}  // namespace

// Named (non-anonymous) so InprocNetwork's friend declaration matches.
class InprocChannel : public Channel {
 public:
  InprocChannel(InprocNetwork* net, std::uint32_t shard)
      : net_(net), shard_(shard) {}

  db::Status Call(const Frame& req, Frame* resp) override {
    const std::shared_ptr<Handler> h = net_->endpoint(shard_);
    if (!h) {
      return db::Status::Unavailable("shard " + std::to_string(shard_) +
                                     " is not bound");
    }
    return deliver(*h, req, resp);
  }

 private:
  InprocNetwork* net_;  ///< outlives every channel (owned by the cluster)
  std::uint32_t shard_;
};

void InprocNetwork::Bind(std::uint32_t shard, Handler handler) {
  const util::MutexLock lock(mu_);
  endpoints_[shard] = std::make_shared<Handler>(std::move(handler));
}

void InprocNetwork::Unbind(std::uint32_t shard) {
  const util::MutexLock lock(mu_);
  endpoints_.erase(shard);
}

std::shared_ptr<Channel> InprocNetwork::Connect(std::uint32_t shard) {
  return std::make_shared<InprocChannel>(this, shard);
}

bool InprocNetwork::IsBound(std::uint32_t shard) const {
  return endpoint(shard) != nullptr;
}

std::shared_ptr<Handler> InprocNetwork::endpoint(std::uint32_t shard) const {
  const util::MutexLock lock(mu_);
  auto it = endpoints_.find(shard);
  return it == endpoints_.end() ? nullptr : it->second;
}

}  // namespace smartstore::rpc
