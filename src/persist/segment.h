// Incremental-checkpoint on-disk formats: the delta manifest and the
// per-unit log-structured segment files.
//
// A deployment running incremental checkpoints keeps, under <dir>/ckpt/:
//
//   MANIFEST          the chain descriptor (below) — the ONE file recovery
//                     consults to decide the incremental layout exists
//   base-<id>.bin     a full snapshot image (persist/snapshot.h) written
//                     by a compaction fold
//   units/<u>.seg     unit u's segment: append-only concatenation of the
//                     delta extents cut for that unit
//
// A *cut* freezes nothing: inside a store mutation barrier the engine
// records the sharded-WAL frontier, then copies each dirty shard's
// new-records slice into that unit's segment as one *extent*, publishes a
// new MANIFEST whose chain grew by one cut, and rebases the WAL. A cold
// unit (no records since the previous cut) contributes no extent and its
// segment is not even opened. Recovery = load the base image, apply every
// cut's extents merged by store-wide sequence number, then replay the WAL
// tail past the manifest fence — the same fence/generation protocol as
// the legacy WALFENCE, so nothing ever applies twice.
//
// Manifest layout (little-endian):
//
//   [8B magic "SSMFTv01"] [u32 format version]
//   [u64 manifest id]                  bumped on every publish
//   [u8 base kind] [u64 base id]       1 = legacy <dir>/snapshot.bin,
//                                      2 = ckpt/base-<id>.bin
//   [u64 last cut seq]                 commit seq at the newest cut/fold
//   fence: [u64 generation] [u64 records] [u8 present]
//          [u64 shard count] then per shard
//          [u64 shard] [u64 generation] [u64 records]
//   [u64 cut count] then per cut:
//     [u64 cut id] [u64 cut seq] [u64 extent count]
//     per extent: [u64 unit] [u64 offset] [u64 length] [u64 records]
//                 [u32 CRC-32 of the extent bytes]
//     [u32 chain CRC]                  CRC-32 over (previous cut's chain
//                                      CRC || this cut's fields above) —
//                                      links the chain like a hash chain,
//                                      so a manifest stitched from
//                                      mismatched histories fails closed
//   [u32 trailer CRC]                  CRC-32 of everything after the magic
//
// The manifest publishes atomically (temp + rename + dir fsync, fault
// prefix "ckpt:manifest"); segments are append-only with an fsync per
// extent, and every extent's bounds + checksum live in the manifest, so a
// crashed cut leaves at worst orphan segment bytes past the last
// manifest-known end — which the next cut truncates away before
// appending. Segment file layout:
//
//   [8B magic "SSSEGv01"] [u64 unit id]
//   then raw concatenated v03-encoded WAL records (persist/wal.h codec)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/snapshot.h"
#include "persist/wal.h"

namespace smartstore::persist {

inline constexpr char kManifestMagic[8] = {'S', 'S', 'M', 'F',
                                           'T', 'v', '0', '1'};
inline constexpr std::uint32_t kManifestFormatVersion = 1;
inline constexpr char kSegmentMagic[8] = {'S', 'S', 'S', 'E',
                                          'G', 'v', '0', '1'};
inline constexpr std::size_t kSegmentHeaderBytes = sizeof(kSegmentMagic) + 8;

/// What the delta chain's base image is.
enum class BaseKind : std::uint8_t {
  kLegacySnapshot = 1,  ///< <dir>/snapshot.bin (adopted full image)
  kCheckpointBase = 2,  ///< <dir>/ckpt/base-<id>.bin (compaction fold)
};

/// One unit's slice of one cut: `records` v03-encoded WAL records at
/// [offset, offset + length) of that unit's segment file.
struct DeltaExtent {
  std::uint64_t unit = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t records = 0;
  std::uint32_t crc = 0;  ///< CRC-32 of the extent bytes
};

/// One delta cut: every dirty unit's extent, chain-linked by CRC.
struct DeltaCut {
  std::uint64_t cut_id = 0;
  std::uint64_t cut_seq = 0;  ///< commit seq at the cut barrier
  std::vector<DeltaExtent> extents;
  std::uint32_t chain_crc = 0;
};

struct DeltaManifest {
  std::uint64_t manifest_id = 0;
  BaseKind base_kind = BaseKind::kLegacySnapshot;
  std::uint64_t base_id = 0;
  std::uint64_t last_cut_seq = 0;
  /// WAL prefix (per shard) the base + delta chain subsumes; recovery
  /// replays only past it, the next cut slices only past it.
  WalFence fence;
  std::vector<DeltaCut> cuts;

  std::uint64_t delta_bytes() const {
    std::uint64_t total = 0;
    for (const DeltaCut& c : cuts)
      for (const DeltaExtent& e : c.extents) total += e.length;
    return total;
  }
  std::uint64_t delta_records() const {
    std::uint64_t total = 0;
    for (const DeltaCut& c : cuts)
      for (const DeltaExtent& e : c.extents) total += e.records;
    return total;
  }
  std::uint64_t next_cut_id() const {
    return cuts.empty() ? 1 : cuts.back().cut_id + 1;
  }
  /// End offset of unit's last manifest-known extent (the truncate target
  /// before a new append); the header size when the unit has none.
  std::uint64_t segment_end(std::uint64_t unit) const;
  /// Records the fence covers for `shard` iff the generation matches the
  /// live log's — the slice-skip the next cut and recovery both apply.
  std::uint64_t fenced_records(std::uint64_t shard,
                               std::uint64_t generation) const;
};

std::string ckpt_dir(const std::string& dir);
std::string manifest_path(const std::string& dir);
std::string base_path(const std::string& dir, std::uint64_t base_id);
std::string segment_dir(const std::string& dir);
std::string segment_path(const std::string& dir, std::uint64_t unit);

bool manifest_exists(const std::string& dir);

/// Loads and fully verifies <dir>/ckpt/MANIFEST: magic, version, trailer
/// CRC, chain CRCs. Throws PersistError kNotFound when absent, kCorruption
/// on any mismatch.
DeltaManifest read_manifest(const std::string& dir);

/// Publishes the manifest atomically (creates <dir>/ckpt first). Computes
/// and stores each cut's chain CRC from the chain order as given.
void write_manifest(const std::string& dir, const DeltaManifest& m);

/// Appends `records` (v03 encoding, seqs included) to unit's segment:
/// creates it (with header) if needed, truncates to `known_end` first so
/// orphan bytes from a crashed cut can never be spliced into a later
/// extent, then appends and fsyncs. Returns the fully-filled extent.
DeltaExtent append_segment_extent(const std::string& dir, std::uint64_t unit,
                                  const std::vector<WalRecord>& records,
                                  std::uint64_t known_end);

/// Reads one extent, verifies its CRC and decodes its records onto *out.
/// Throws PersistError kCorruption on any mismatch.
void read_segment_extent(const std::string& dir, const DeltaExtent& ext,
                         std::vector<WalRecord>* out);

/// Removes the whole incremental-checkpoint state (manifest, bases,
/// segments). The quiesced full checkpoint calls this AFTER publishing
/// snapshot.bin and BEFORE resetting the WAL: once the fresh full image is
/// durable the manifest describes a superseded history, and it must be
/// gone before the WAL prefix it fences is truncated.
void remove_ckpt_state(const std::string& dir);

/// Deletes base images and segment files `m` does not reference (compaction
/// cleanup — after a fold the chain is empty, so every segment goes).
void prune_ckpt_files(const std::string& dir, const DeltaManifest& m);

}  // namespace smartstore::persist
