// Sharded write-ahead log: one v03 log per storage unit, so concurrent
// writers stop serializing on a single append/fsync point.
//
// Layout on disk: <deploy dir>/wal/<unit id>.log, each a v03 WalWriter log
// (persist/wal.h) whose records carry a store-wide monotonic sequence
// number. A record for storage unit u is appended to shard u under the
// caller-held unit stripe (core::SmartStore::WalHook), which makes each
// shard's record order equal that unit's in-memory apply order; shards
// group-commit and fsync independently, so writers routed to different
// units overlap their durability waits. Recovery (persist/recovery.h)
// scans every shard and replays the merged record stream in sequence
// order — records that cross shards are independent (they touch different
// units), so losing an *unacknowledged* suffix of one shard never
// invalidates an acknowledged record in another.
//
// Structural operations (add/remove unit, autoconfigure) are logged under
// the store's exclusive structure lock through a barrier: every shard is
// committed first, then the structural record lands in shard 0 and is
// committed immediately. No per-unit record logged before the structural
// op can therefore be less durable than the structural record itself, so
// the merged replay order around topology changes is exact.
//
// Checkpoint fencing is per shard: frontier() commits all shards at the
// frozen mutation boundary and returns a WalFence carrying one
// (generation, records) entry per shard (plus byte offsets for the O(tail)
// rebase); rebase_to() drops each shard's fenced prefix under the next
// generation, one shard mutex at a time, concurrent with live appends to
// the other shards. A crash between per-shard rebases leaves some shards
// fenced (generation matches: recovery skips the prefix) and some rebased
// (generation changed: recovery replays the whole tail) — consistent
// either way, exactly as with the single-log protocol, shard by shard.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "persist/wal.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::persist {

class ShardedWal {
 public:
  /// Observer for records that have become COMMITTED (durable) in this
  /// log. Invoked under the owning shard's mutex (rank kWalShard), one
  /// record at a time in that shard's commit order; the callee may take
  /// locks ranked above kWalShard only (the replication buffer uses
  /// kReplBuffer). Every record that consumes a stamp is delivered — data
  /// records (kInsert/kRemove) AND structural records; the consumer maps
  /// structural records (replica-private unit topology) to seq-hole
  /// markers so a seq-ordered stream never waits on a consumed seq.
  using CommitTap = std::function<void(const WalRecord&)>;

  /// Opens (creating if needed) the shard directory under `deploy_dir` and
  /// every existing shard log in it, plus shards [0, num_shards). The
  /// store-wide sequence counter resumes past the largest sequence found.
  ///
  /// With `adaptive` set, `group_commit` is only the starting point: each
  /// shard re-sizes its own batch from an EWMA of its fsync latency and
  /// record inter-arrival gap — batch ≈ sync_cost / arrival_gap, clamped
  /// to [1, kMaxAdaptiveGroupCommit] — so a hot shard amortizes the fsync
  /// over more records while an idle one stays at latency-optimal 1.
  /// Adaptive timing makes commit points wall-clock-dependent; the
  /// deterministic crash sweeps pass explicit static sizes instead.
  ShardedWal(std::string deploy_dir, std::size_t num_shards,
             std::size_t group_commit = 4, bool adaptive = false);

  ShardedWal(const ShardedWal&) = delete;
  ShardedWal& operator=(const ShardedWal&) = delete;

  static std::string shard_dir(const std::string& deploy_dir);
  static std::string shard_path(const std::string& deploy_dir,
                                std::size_t shard);

  /// Parses a shard filename ("<digits>.log") into its shard id; false
  /// for anything else, including all-digit stems too long to be a real
  /// unit id (an unchecked std::stoull would throw out_of_range — not a
  /// PersistError — out of recover()). Shared by the writer's directory
  /// scan and recovery's.
  static bool parse_shard_id(const std::filesystem::path& p,
                             std::uint64_t* id_out);

  // ---- per-unit records (called from the store's WalHook, under that
  // ---- unit's lock) ------------------------------------------------------

  /// Append + group-commit in one call (fsync may run under the caller's
  /// unit lock — fine for single-threaded drivers and the deterministic
  /// crash sweeps). Returns the stamped sequence number: the store adopts
  /// it as the mutation's commit timestamp (MVCC snapshot visibility).
  std::uint64_t log_insert(std::size_t shard, const metadata::FileMetadata& f);
  std::uint64_t log_remove(std::size_t shard, const std::string& name);

  /// The two-phase flavour the concurrent ingest paths use: append_* runs
  /// under the unit lock (cheap — encode + buffer), maybe_commit runs
  /// from the store's flush hook AFTER the unit lock is released, so a
  /// group-commit fsync never blocks another writer routed to the same
  /// unit, only the shard it flushes. Returns the stamped seq, as above.
  std::uint64_t append_insert(std::size_t shard,
                              const metadata::FileMetadata& f);
  std::uint64_t append_remove(std::size_t shard, const std::string& name);
  /// Commits `shard` if its pending batch reached the group-commit size.
  void maybe_commit(std::size_t shard);

  /// Replication-apply flavour: appends a record carrying the PRIMARY's
  /// sequence number instead of stamping a fresh one, then raises the
  /// local counter past it. A follower's log thereby stays seq-identical
  /// to the primary's stream, so recovery replay and MVCC visibility on a
  /// promoted follower line up exactly with what clients were acked.
  void append_insert_at(std::size_t shard, const metadata::FileMetadata& f,
                        std::uint64_t seq);
  void append_remove_at(std::size_t shard, const std::string& name,
                        std::uint64_t seq);

  /// Arms (or, with nullptr, disarms) the commit tap. Disarming discards
  /// any tapped-but-uncommitted records. Safe to call concurrently with
  /// appends: the pointer swap is atomic under a leaf lock and each
  /// shard's pending tap queue is guarded by that shard's mutex.
  void set_commit_tap(CommitTap tap);

  // ---- structural records (caller holds the store's exclusive structure
  // ---- lock; all shards are barrier-committed first) ---------------------

  std::uint64_t log_add_unit();
  std::uint64_t log_remove_unit(std::uint64_t unit);
  std::uint64_t log_autoconfigure(
      const std::vector<metadata::AttrSubset>& subsets);

  /// Commits every shard's pending batch (fsync per dirty shard).
  void commit_all();

  /// Commits every shard and returns the sharded fence at that frontier:
  /// one (generation, records) entry per shard, `present` set. When
  /// `bytes_out` is given it receives each shard's committed byte offset,
  /// the hint that makes the later rebase O(tail). Call at a mutation
  /// boundary (the background checkpointer calls it from inside
  /// begin_checkpoint's frozen section).
  WalFence frontier(std::vector<std::size_t>* bytes_out = nullptr);

  /// Drops each shard's fenced prefix under its next generation. Safe to
  /// run concurrently with live appends: each shard swaps under its own
  /// mutex. `bytes` pairs with the fence from frontier() (may be empty —
  /// the slow re-encode path then runs per shard).
  void rebase_to(const WalFence& fence,
                 const std::vector<std::size_t>& bytes = {});

  /// Truncates every shard to a fresh, empty log under a new generation
  /// (quiesced checkpoint: the snapshot subsumes everything).
  void reset_all();

  /// Drops all handles and pending batches without committing — the
  /// in-process stand-in for the process dying (crash-injection tests).
  void abandon();

  std::size_t num_shards() const;
  std::uint64_t committed_records(std::size_t shard) const;
  std::uint64_t pending_records(std::size_t shard) const;
  std::uint64_t generation(std::size_t shard) const;
  /// Next sequence number to be stamped (monotonic across all shards).
  std::uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Raises the sequence counter so the next stamp is at least `floor`.
  /// Store::Open calls this with last_commit_seq() + 1 after recovery:
  /// reset/rebase drop replayed records, so the directory scan alone can
  /// under-resume the counter and reuse seqs a loaded snapshot already
  /// carries.
  void ensure_seq_at_least(std::uint64_t floor) {
    std::uint64_t cur = next_seq_.load(std::memory_order_relaxed);
    while (cur < floor && !next_seq_.compare_exchange_weak(
                              cur, floor, std::memory_order_relaxed)) {
    }
  }
  std::size_t group_commit() const { return group_commit_; }
  bool adaptive() const { return adaptive_; }
  /// The group-commit size actually in force: the static configuration
  /// when not adaptive, else the mean of the per-shard adaptive targets
  /// (shards that have not yet converged report the starting size).
  std::size_t effective_group_commit() const;
  const std::string& dir() const { return dir_; }

  /// Ceiling of the adaptive batch size: past this, the marginal fsync
  /// amortization is negligible but the unacked-loss window on a torn
  /// tail keeps growing.
  static constexpr std::size_t kMaxAdaptiveGroupCommit = 64;

 private:
  struct Shard {
    explicit Shard(std::unique_ptr<WalWriter> w) : writer(std::move(w)) {}
    /// Guards `writer` (append/commit/swap). kWalShard ranks above every
    /// store lock, so a shard mutex may be taken from under a unit lock or
    /// the freeze mutex — and must never be held while taking either.
    mutable util::Mutex mu{util::LockRank::kWalShard};
    std::unique_ptr<WalWriter> writer SS_GUARDED_BY(mu);
    // Adaptive group-commit state (all under mu; unused when the log runs
    // a static size). Gaps and sync costs are EWMA-smoothed so one slow
    // fsync or one idle stretch does not whipsaw the batch size.
    double ewma_sync_s SS_GUARDED_BY(mu) = 0;
    double ewma_gap_s SS_GUARDED_BY(mu) = 0;
    double last_append_s SS_GUARDED_BY(mu) = -1;  ///< steady-clock seconds
    std::size_t target SS_GUARDED_BY(mu) = 0;     ///< 0 = not yet converged
    /// Data records appended while the tap was armed but not yet known
    /// committed. The drain invariant: the first
    /// `tap_pending.size() - writer->pending_records()` entries are
    /// durable and get delivered (works no matter where the commit
    /// happened — group-commit inside log(), explicit commit(), or a
    /// barrier), because tapped records commit strictly in append order.
    std::vector<WalRecord> tap_pending SS_GUARDED_BY(mu);
  };

  /// The shard for `i`, created lazily (units admitted at runtime get
  /// their shard on first record). Returned reference is stable.
  Shard& shard(std::size_t i);
  Shard* shard_if_exists(std::size_t i) const;
  std::uint64_t stamp() {
    return next_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t log_structural(const WalRecord& rec);
  /// Copies `rec` into the shard's tap queue iff the tap is armed.
  void tap_append(Shard& s, const WalRecord& rec) SS_REQUIRES(s.mu);
  /// Delivers the committed prefix of the shard's tap queue (see the
  /// tap_pending invariant).
  void drain_tap(Shard& s) SS_REQUIRES(s.mu);
  std::shared_ptr<const CommitTap> tap_snapshot() const;

  // ---- adaptive sizing (no-ops when adaptive_ is unset) -------------------
  /// Folds the inter-arrival gap since the shard's previous append into
  /// its EWMA. Call on every data append, under s.mu.
  void note_append(Shard& s) SS_REQUIRES(s.mu);
  /// Commits the shard's batch, timing the flush+fsync into the EWMA and
  /// recomputing the target batch size.
  void timed_commit(Shard& s) SS_REQUIRES(s.mu);
  /// This shard's in-force batch size.
  std::size_t shard_group_commit(const Shard& s) const SS_REQUIRES(s.mu) {
    return adaptive_ && s.target > 0 ? s.target : group_commit_;
  }

  std::string deploy_dir_;
  std::string dir_;  ///< <deploy_dir>/wal
  std::size_t group_commit_;
  bool adaptive_ = false;
  /// Guards the shard vector's SHAPE only; Shard objects themselves are
  /// heap-stable and carry their own mutex (never held together with this
  /// one — shard()/shard_if_exists() release it before returning).
  mutable util::Mutex map_mu_{util::LockRank::kWalShardMap};
  std::vector<std::unique_ptr<Shard>> shards_ SS_GUARDED_BY(map_mu_);
  std::atomic<std::uint64_t> next_seq_{1};
  /// Leaf-ranked: guards only the shared_ptr swap/copy (never held while
  /// invoking the tap), so it may be taken from under any shard mutex.
  mutable util::Mutex tap_mu_{util::LockRank::kLeaf};
  std::shared_ptr<const CommitTap> tap_ SS_GUARDED_BY(tap_mu_);
};

}  // namespace smartstore::persist
