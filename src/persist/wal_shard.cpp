#include "persist/wal_shard.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <filesystem>

namespace smartstore::persist {

namespace fs = std::filesystem;

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// EWMA smoothing factor. 1/8 reacts within a few dozen records while a
/// single outlier (one stalled fsync, one idle gap) moves the estimate
/// by at most 12.5%.
constexpr double kEwmaAlpha = 0.125;

double ewma(double state, double sample) {
  return state <= 0 ? sample : state + kEwmaAlpha * (sample - state);
}

}  // namespace

std::string ShardedWal::shard_dir(const std::string& deploy_dir) {
  return (fs::path(deploy_dir) / "wal").string();
}

std::string ShardedWal::shard_path(const std::string& deploy_dir,
                                   std::size_t shard) {
  return (fs::path(deploy_dir) / "wal" / (std::to_string(shard) + ".log"))
      .string();
}

bool ShardedWal::parse_shard_id(const fs::path& p, std::uint64_t* id_out) {
  if (p.extension() != ".log") return false;
  const std::string stem = p.stem().string();
  // Nine digits bounds any plausible unit count while keeping the
  // accumulation overflow-free.
  if (stem.empty() || stem.size() > 9) return false;
  std::uint64_t id = 0;
  for (char c : stem) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *id_out = id;
  return true;
}

ShardedWal::ShardedWal(std::string deploy_dir, std::size_t num_shards,
                       std::size_t group_commit, bool adaptive)
    : deploy_dir_(std::move(deploy_dir)),
      dir_(shard_dir(deploy_dir_)),
      group_commit_(group_commit == 0 ? 1 : group_commit),
      adaptive_(adaptive) {
  fs::create_directories(dir_);

  // Open every shard already on disk (a restart must resume the sequence
  // counter past everything it ever stamped, even shards for units that
  // have since been removed), then make sure [0, num_shards) exist.
  std::size_t max_existing = 0;
  bool any = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::uint64_t id = 0;
    if (!parse_shard_id(entry.path(), &id)) continue;
    any = true;
    max_existing = std::max(max_existing, static_cast<std::size_t>(id));
  }
  const std::size_t open_up_to =
      std::max(num_shards, any ? max_existing + 1 : 0);
  std::uint64_t max_seq = 0;
  for (std::size_t i = 0; i < open_up_to; ++i) {
    const bool on_disk = fs::exists(shard_path(deploy_dir_, i));
    if (!on_disk && i >= num_shards) continue;  // sparse ids stay sparse
    Shard& s = shard(i);
    const util::MutexLock lock(s.mu);
    max_seq = std::max(max_seq, s.writer->opened_max_seq());
  }
  next_seq_.store(max_seq + 1, std::memory_order_relaxed);
}

ShardedWal::Shard& ShardedWal::shard(std::size_t i) {
  const util::MutexLock lock(map_mu_);
  if (i >= shards_.size()) shards_.resize(i + 1);
  if (!shards_[i]) {
    shards_[i] = std::make_unique<Shard>(std::make_unique<WalWriter>(
        shard_path(deploy_dir_, i), group_commit_, /*with_seq=*/true));
  }
  return *shards_[i];
}

ShardedWal::Shard* ShardedWal::shard_if_exists(std::size_t i) const {
  const util::MutexLock lock(map_mu_);
  return i < shards_.size() && shards_[i] ? shards_[i].get() : nullptr;
}

std::size_t ShardedWal::num_shards() const {
  const util::MutexLock lock(map_mu_);
  return shards_.size();
}

void ShardedWal::set_commit_tap(CommitTap tap) {
  {
    const util::MutexLock lock(tap_mu_);
    tap_ = tap ? std::make_shared<const CommitTap>(std::move(tap)) : nullptr;
  }
  if (tap_snapshot()) return;
  // Disarm: tapped-but-uncommitted records will never be delivered (the
  // next armed tap belongs to a different replication stream); drop them
  // so the drain arithmetic starts clean.
  const std::size_t n = num_shards();
  for (std::size_t i = 0; i < n; ++i) {
    if (Shard* s = shard_if_exists(i)) {
      const util::MutexLock lock(s->mu);
      s->tap_pending.clear();
    }
  }
}

std::shared_ptr<const ShardedWal::CommitTap> ShardedWal::tap_snapshot() const {
  const util::MutexLock lock(tap_mu_);
  return tap_;
}

void ShardedWal::tap_append(Shard& s, const WalRecord& rec) {
  if (!tap_snapshot()) return;
  s.tap_pending.push_back(rec);
}

void ShardedWal::drain_tap(Shard& s) {
  if (s.tap_pending.empty()) return;
  const std::uint64_t pending = s.writer->pending_records();
  if (s.tap_pending.size() <= pending) return;
  const std::size_t committed =
      s.tap_pending.size() - static_cast<std::size_t>(pending);
  const std::shared_ptr<const CommitTap> tap = tap_snapshot();
  if (tap) {
    // Delivered under s.mu on purpose: the tap sees each shard's records
    // in commit order with no interleaving window where a later commit of
    // the same shard could overtake an earlier one.
    for (std::size_t i = 0; i < committed; ++i) (*tap)(s.tap_pending[i]);
  }
  s.tap_pending.erase(s.tap_pending.begin(),
                      s.tap_pending.begin() + static_cast<long>(committed));
}

std::uint64_t ShardedWal::log_insert(std::size_t shard_id,
                                     const metadata::FileMetadata& f) {
  Shard& s = shard(shard_id);
  const util::MutexLock lock(s.mu);
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.file = f;
  rec.seq = stamp();
  tap_append(s, rec);
  note_append(s);
  s.writer->append(rec);
  if (s.writer->pending_records() >= shard_group_commit(s)) timed_commit(s);
  drain_tap(s);
  return rec.seq;
}

std::uint64_t ShardedWal::log_remove(std::size_t shard_id,
                                     const std::string& name) {
  Shard& s = shard(shard_id);
  const util::MutexLock lock(s.mu);
  WalRecord rec;
  rec.type = WalRecordType::kRemove;
  rec.name = name;
  rec.seq = stamp();
  tap_append(s, rec);
  note_append(s);
  s.writer->append(rec);
  if (s.writer->pending_records() >= shard_group_commit(s)) timed_commit(s);
  drain_tap(s);
  return rec.seq;
}

std::uint64_t ShardedWal::append_insert(std::size_t shard_id,
                                        const metadata::FileMetadata& f) {
  Shard& s = shard(shard_id);
  const util::MutexLock lock(s.mu);
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.file = f;
  rec.seq = stamp();
  tap_append(s, rec);
  note_append(s);
  s.writer->append(rec);
  return rec.seq;
}

std::uint64_t ShardedWal::append_remove(std::size_t shard_id,
                                        const std::string& name) {
  Shard& s = shard(shard_id);
  const util::MutexLock lock(s.mu);
  WalRecord rec;
  rec.type = WalRecordType::kRemove;
  rec.name = name;
  rec.seq = stamp();
  tap_append(s, rec);
  note_append(s);
  s.writer->append(rec);
  return rec.seq;
}

void ShardedWal::append_insert_at(std::size_t shard_id,
                                  const metadata::FileMetadata& f,
                                  std::uint64_t seq) {
  Shard& s = shard(shard_id);
  const util::MutexLock lock(s.mu);
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.file = f;
  rec.seq = seq;
  tap_append(s, rec);
  note_append(s);
  s.writer->append(rec);
  ensure_seq_at_least(seq + 1);
}

void ShardedWal::append_remove_at(std::size_t shard_id,
                                  const std::string& name, std::uint64_t seq) {
  Shard& s = shard(shard_id);
  const util::MutexLock lock(s.mu);
  WalRecord rec;
  rec.type = WalRecordType::kRemove;
  rec.name = name;
  rec.seq = seq;
  tap_append(s, rec);
  note_append(s);
  s.writer->append(rec);
  ensure_seq_at_least(seq + 1);
}

void ShardedWal::maybe_commit(std::size_t shard_id) {
  Shard* s = shard_if_exists(shard_id);
  if (!s) return;
  const util::MutexLock lock(s->mu);
  if (s->writer->pending_records() >= shard_group_commit(*s))
    timed_commit(*s);
  drain_tap(*s);
}

void ShardedWal::note_append(Shard& s) {
  if (!adaptive_) return;
  const double now = steady_seconds();
  if (s.last_append_s >= 0) s.ewma_gap_s = ewma(s.ewma_gap_s, now - s.last_append_s);
  s.last_append_s = now;
}

void ShardedWal::timed_commit(Shard& s) {
  if (!adaptive_) {
    s.writer->commit();
    return;
  }
  const double start = steady_seconds();
  s.writer->commit();
  s.ewma_sync_s = ewma(s.ewma_sync_s, steady_seconds() - start);
  // Amortization balance point: batch until the fsync cost is spread at
  // the rate records actually arrive on this shard. An idle shard (gap ≫
  // sync) converges to 1 — latency-optimal; a hot one grows toward the
  // ceiling.
  if (s.ewma_gap_s > 0 && s.ewma_sync_s > 0) {
    const double ratio = s.ewma_sync_s / s.ewma_gap_s;
    s.target = static_cast<std::size_t>(std::clamp(
        ratio, 1.0, static_cast<double>(kMaxAdaptiveGroupCommit)));
  }
}

std::size_t ShardedWal::effective_group_commit() const {
  if (!adaptive_) return group_commit_;
  std::size_t sum = 0, n = 0;
  const std::size_t shards = num_shards();
  for (std::size_t i = 0; i < shards; ++i) {
    Shard* s = shard_if_exists(i);
    if (!s) continue;
    const util::MutexLock lock(s->mu);
    sum += s->target > 0 ? s->target : group_commit_;
    ++n;
  }
  return n == 0 ? group_commit_ : sum / n;
}

std::uint64_t ShardedWal::log_structural(const WalRecord& rec_in) {
  // Barrier: everything logged so far becomes durable before the
  // structural record does, so the merged replay can never see a durable
  // structural record ahead of a lost earlier per-unit record.
  commit_all();
  Shard& s = shard(0);
  const util::MutexLock lock(s.mu);
  WalRecord rec = rec_in;
  rec.seq = stamp();
  // Structural records ARE tapped (the consumer maps them to seq-hole
  // markers): they consume a stamp, and a seq-ordered replication stream
  // would otherwise wait forever on the hole.
  tap_append(s, rec);
  s.writer->log(rec);
  s.writer->commit();
  drain_tap(s);
  return rec.seq;
}

std::uint64_t ShardedWal::log_add_unit() {
  WalRecord rec;
  rec.type = WalRecordType::kAddUnit;
  return log_structural(rec);
}

std::uint64_t ShardedWal::log_remove_unit(std::uint64_t unit) {
  WalRecord rec;
  rec.type = WalRecordType::kRemoveUnit;
  rec.unit = unit;
  return log_structural(rec);
}

std::uint64_t ShardedWal::log_autoconfigure(
    const std::vector<metadata::AttrSubset>& subsets) {
  WalRecord rec;
  rec.type = WalRecordType::kAutoconfigure;
  rec.subsets = subsets;
  return log_structural(rec);
}

void ShardedWal::commit_all() {
  const std::size_t n = num_shards();
  for (std::size_t i = 0; i < n; ++i) {
    if (Shard* s = shard_if_exists(i)) {
      const util::MutexLock lock(s->mu);
      s->writer->commit();
      drain_tap(*s);
    }
  }
}

WalFence ShardedWal::frontier(std::vector<std::size_t>* bytes_out) {
  WalFence fence;
  fence.present = true;
  const std::size_t n = num_shards();
  if (bytes_out) bytes_out->assign(n, WalWriter::kNoByteHint);
  for (std::size_t i = 0; i < n; ++i) {
    Shard* s = shard_if_exists(i);
    if (!s) continue;
    const util::MutexLock lock(s->mu);
    s->writer->commit();
    drain_tap(*s);
    fence.shards.push_back(
        {i, s->writer->generation(), s->writer->committed_records()});
    if (bytes_out) (*bytes_out)[i] = s->writer->committed_bytes();
  }
  return fence;
}

void ShardedWal::rebase_to(const WalFence& fence,
                           const std::vector<std::size_t>& bytes) {
  for (const ShardFence& f : fence.shards) {
    Shard* s = shard_if_exists(static_cast<std::size_t>(f.shard));
    if (!s) continue;
    const util::MutexLock lock(s->mu);
    // A mismatched generation means this shard was already rebased (or
    // reset) since the fence was taken — dropping by count would discard
    // unfenced records.
    if (s->writer->generation() != f.generation) continue;
    const std::size_t hint = f.shard < bytes.size()
                                 ? bytes[static_cast<std::size_t>(f.shard)]
                                 : WalWriter::kNoByteHint;
    s->writer->rebase(static_cast<std::size_t>(f.records), hint);
  }
}

void ShardedWal::reset_all() {
  const std::size_t n = num_shards();
  for (std::size_t i = 0; i < n; ++i) {
    if (Shard* s = shard_if_exists(i)) {
      const util::MutexLock lock(s->mu);
      s->writer->reset();
      s->tap_pending.clear();  // reset drops pending records — never acked
    }
  }
}

void ShardedWal::abandon() {
  const std::size_t n = num_shards();
  for (std::size_t i = 0; i < n; ++i) {
    if (Shard* s = shard_if_exists(i)) {
      const util::MutexLock lock(s->mu);
      s->writer->abandon();
      s->tap_pending.clear();  // dropped with the uncommitted batch
    }
  }
}

std::uint64_t ShardedWal::committed_records(std::size_t shard_id) const {
  Shard* s = shard_if_exists(shard_id);
  if (!s) return 0;
  const util::MutexLock lock(s->mu);
  return s->writer->committed_records();
}

std::uint64_t ShardedWal::pending_records(std::size_t shard_id) const {
  Shard* s = shard_if_exists(shard_id);
  if (!s) return 0;
  const util::MutexLock lock(s->mu);
  return s->writer->pending_records();
}

std::uint64_t ShardedWal::generation(std::size_t shard_id) const {
  Shard* s = shard_if_exists(shard_id);
  if (!s) return 0;
  const util::MutexLock lock(s->mu);
  return s->writer->generation();
}

}  // namespace smartstore::persist
