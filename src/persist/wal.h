// Versioned write-ahead log for SmartStore's dynamic operations.
//
// Records mirror the store's mutation API — one kInsert per insert_file,
// one kRemove per delete_file, plus the reconfiguration operations
// (add_storage_unit / remove_storage_unit / autoconfigure), so a crash
// between a topology change and the next checkpoint replays into the new
// topology, not the old one. Records are batched into group-commit blocks
// the same way Section 4.4 aggregates changes into sealed VersionDeltas:
// `group_commit` records (default: the store's version_ratio) form one
// atomic, CRC-checksummed block, flushed and fsynced together. Recovery is
// load-latest-snapshot + replay; a torn or truncated tail block (the crash
// window) is detected by its checksum/length and dropped, rolling the log
// back to the last group-commit boundary.
//
// On-disk layout (little-endian):
//
//   [8B magic "SSWALv02"] [u64 log generation]
//   then per commit block:
//   [u32 block magic] [u32 record count] [u64 payload length]
//   [payload] [u32 CRC-32 of payload]
//
// Payload: `record count` records, each
//   [u8 type]  type 1 (insert): FileMetadata record (persist/codec.h)
//              type 2 (remove): u64-length-prefixed filename
//              type 3 (add unit): no payload
//              type 4 (remove unit): u64 unit id
//              type 5 (autoconfigure): u64 count + attribute subsets
//                                      (persist/codec.h)
//
// v01 logs (no reconfiguration record types) are still read; new logs are
// written as v02 so an old binary rejects them by magic instead of
// misparsing the new record types as corruption.
//
// v03 is the *sharded* flavour (persist/wal_shard.h): one log per storage
// unit, same block framing, but every record carries a store-wide
// monotonic sequence number — [u64 seq] prefixed to the record body — so
// recovery can merge the shards back into one mutation order. A v03
// writer is WalWriter with `with_seq = true`; v01/v02 logs opened by one
// are upgraded in place (their records sort before all new ones at seq 0).
//
// The generation changes every time the log is emptied or rebased. A
// checkpoint records (generation, record count) as a fence inside the
// snapshot it writes; recovery skips fenced records when the generations
// match, so a crash landing between "snapshot renamed" and "WAL
// emptied/rebased" replays nothing twice (see persist/recovery.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metadata/file_metadata.h"
#include "metadata/schema.h"
#include "persist/snapshot.h"
#include "util/binary_io.h"

namespace smartstore::persist {

inline constexpr char kWalMagic[8] = {'S', 'S', 'W', 'A', 'L', 'v', '0', '2'};
inline constexpr char kWalMagicV1[8] = {'S', 'S', 'W', 'A',
                                        'L', 'v', '0', '1'};
inline constexpr char kWalMagicV3[8] = {'S', 'S', 'W', 'A',
                                        'L', 'v', '0', '3'};
inline constexpr std::uint32_t kWalBlockMagic = 0x4B4C4257;  // "WBLK"

enum class WalRecordType : std::uint8_t {
  kInsert = 1,
  kRemove = 2,
  kAddUnit = 3,        ///< add_storage_unit()
  kRemoveUnit = 4,     ///< remove_storage_unit(unit)
  kAutoconfigure = 5,  ///< autoconfigure(subsets)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  /// Store-wide monotonic sequence number (v03 sharded logs only; 0 in
  /// v01/v02 logs and for records upgraded from them).
  std::uint64_t seq = 0;
  metadata::FileMetadata file;                  ///< kInsert payload
  std::string name;                             ///< kRemove payload
  std::uint64_t unit = 0;                       ///< kRemoveUnit payload
  std::vector<metadata::AttrSubset> subsets;    ///< kAutoconfigure payload
};

/// Result of scanning a log: all records from complete, checksum-valid
/// blocks, plus where the valid prefix ends.
struct WalScan {
  std::vector<WalRecord> records;
  std::uint64_t generation = 0;
  std::size_t blocks = 0;
  std::size_t valid_bytes = 0;  ///< file offset just past the last good block
  bool torn_tail = false;       ///< trailing partial/corrupt block dropped
  bool v1_magic = false;        ///< header was the legacy "SSWALv01"
  bool v3_magic = false;        ///< header was the sharded "SSWALv03"
  std::uint64_t max_seq = 0;    ///< largest record seq seen (v03)
};

/// Scans a WAL, stopping (not failing) at the first torn or corrupt block.
/// A missing file scans as empty. Throws PersistError only when the file
/// exists but is not a WAL at all (bad magic).
WalScan scan_wal(const std::string& path);

/// Encodes one record in the block-payload layout — the exact bytes
/// scan_wal parses. Shared by the live append path, the rebase re-encode
/// and the incremental-checkpoint delta segments (persist/segment.h), so
/// the layouts cannot drift. `with_seq` selects the v03 per-record
/// sequence prefix.
void encode_wal_record(util::BinaryWriter& w, const WalRecord& rec,
                       bool with_seq);

/// Decodes one record from the block-payload layout. Returns false on an
/// unknown record type; throws util::BinaryIoError on truncation. The
/// caller chooses the failure semantics: scan_wal treats both as a torn
/// tail (keep the prefix), the segment reader as kCorruption (the extent
/// passed its checksum, so a parse failure is a real format break).
bool decode_wal_record(util::BinaryReader& r, bool with_seq, WalRecord* out);

/// Append-side of the log.
class WalWriter {
 public:
  /// Opens (or creates) the log at `path`. An existing log is scanned and
  /// truncated to its last valid commit block first, so a torn tail from a
  /// previous crash never poisons subsequent appends. `with_seq` selects
  /// the v03 record layout (each record prefixed with its store-wide
  /// sequence number) — the per-shard writer mode ShardedWal uses.
  explicit WalWriter(std::string path, std::size_t group_commit = 4,
                     bool with_seq = false);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void log_insert(const metadata::FileMetadata& f);
  void log_remove(const std::string& name);
  void log_add_unit();
  void log_remove_unit(std::uint64_t unit);
  void log_autoconfigure(const std::vector<metadata::AttrSubset>& subsets);

  /// Appends an arbitrary record (the sharded writer pre-stamps rec.seq).
  void log(const WalRecord& rec);

  /// Appends without ever auto-committing — the sharded writer's
  /// under-the-unit-lock half (the group-commit fsync then runs from
  /// maybe_commit() after the caller has released its locks).
  void append(const WalRecord& rec);

  /// Seals the pending batch into one commit block: write, flush, fsync.
  /// No-op when nothing is pending.
  void commit();

  /// Truncates to a fresh, empty log (after a checkpoint made the tail
  /// redundant). Pending uncommitted records are discarded.
  void reset();

  /// No byte hint: rebase() falls back to re-parsing the log.
  static constexpr std::size_t kNoByteHint = static_cast<std::size_t>(-1);

  /// Drops the first `drop` committed records — the prefix a just-published
  /// snapshot's fence subsumes — and keeps the tail under the next
  /// generation. Pending records are committed first so the rebased log is
  /// exact. The swap is atomic (temp + rename + directory fsync): a crash
  /// at any instant leaves either the old log (the snapshot's fence skips
  /// the prefix) or the new one (generation mismatch replays the whole
  /// tail), never a torn mixture. This is how a background checkpoint
  /// truncates the log without quiescing the writers appending behind it.
  ///
  /// `drop_bytes` — committed_bytes() observed at the same instant the
  /// fence observed committed_records() — lets the tail splice over as raw
  /// block bytes, O(tail) instead of an O(log) re-parse (rebase runs with
  /// the serving thread excluded, so this matters under load). Without it,
  /// or with an out-of-range value, the slow re-encode path runs.
  void rebase(std::size_t drop, std::size_t drop_bytes = kNoByteHint);

  /// Drops the handle and the pending batch without committing — the
  /// in-process stand-in for the process dying with this writer open
  /// (crash-injection tests freeze the on-disk state with this). Every
  /// later append or commit through this object is a no-op.
  void abandon();

  std::size_t pending_records() const { return pending_; }
  std::uint64_t committed_records() const { return committed_; }
  /// File offset just past the last committed block — the byte-side of the
  /// commit frontier (pair it with committed_records() for rebase()).
  std::size_t committed_bytes() const { return committed_bytes_; }
  std::uint64_t generation() const { return generation_; }
  /// Largest record sequence number found when the log was opened (v03).
  std::uint64_t opened_max_seq() const { return opened_max_seq_; }
  bool with_seq() const { return with_seq_; }
  const std::string& path() const { return path_; }

 private:
  void open_truncated_to_valid_prefix();

  std::string path_;
  std::size_t group_commit_;
  bool with_seq_ = false;
  std::FILE* file_ = nullptr;
  util::BinaryWriter batch_;
  std::size_t pending_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t opened_max_seq_ = 0;
  std::size_t committed_bytes_ = 0;  ///< offset past the last block
};

/// Overwrites `path` with a fresh, empty log carrying `generation` (header
/// only, fsynced, directory entry synced). Does not read the old contents.
/// `with_seq` selects the v03 magic.
void write_empty_wal(const std::string& path, std::uint64_t generation,
                     bool with_seq = false);

/// A generation for a log with no usable predecessor: drawn from the
/// system entropy source so it cannot collide with a fence some earlier
/// snapshot recorded against an unrelated log history.
std::uint64_t fresh_wal_generation();

}  // namespace smartstore::persist
