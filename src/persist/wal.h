// Versioned write-ahead log for SmartStore's dynamic operations.
//
// Records mirror the store's mutation API — one kInsert per insert_file,
// one kRemove per delete_file — and are batched into group-commit blocks
// the same way Section 4.4 aggregates changes into sealed VersionDeltas:
// `group_commit` records (default: the store's version_ratio) form one
// atomic, CRC-checksummed block, flushed and fsynced together. Recovery is
// load-latest-snapshot + replay; a torn or truncated tail block (the crash
// window) is detected by its checksum/length and dropped, rolling the log
// back to the last group-commit boundary.
//
// On-disk layout (little-endian):
//
//   [8B magic "SSWALv01"] [u64 log generation]
//   then per commit block:
//   [u32 block magic] [u32 record count] [u64 payload length]
//   [payload] [u32 CRC-32 of payload]
//
// Payload: `record count` records, each
//   [u8 type]  type 1 (insert): FileMetadata record (persist/codec.h)
//              type 2 (remove): u64-length-prefixed filename
//
// The generation changes every time the log is emptied. A checkpoint
// records (generation, record count) as a fence inside the snapshot it
// writes; recovery skips fenced records when the generations match, so a
// crash landing between "snapshot renamed" and "WAL emptied" replays
// nothing twice (see persist/recovery.h).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metadata/file_metadata.h"
#include "persist/snapshot.h"
#include "util/binary_io.h"

namespace smartstore::persist {

inline constexpr char kWalMagic[8] = {'S', 'S', 'W', 'A', 'L', 'v', '0', '1'};
inline constexpr std::uint32_t kWalBlockMagic = 0x4B4C4257;  // "WBLK"

enum class WalRecordType : std::uint8_t { kInsert = 1, kRemove = 2 };

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  metadata::FileMetadata file;  ///< kInsert payload
  std::string name;             ///< kRemove payload
};

/// Result of scanning a log: all records from complete, checksum-valid
/// blocks, plus where the valid prefix ends.
struct WalScan {
  std::vector<WalRecord> records;
  std::uint64_t generation = 0;
  std::size_t blocks = 0;
  std::size_t valid_bytes = 0;  ///< file offset just past the last good block
  bool torn_tail = false;       ///< trailing partial/corrupt block dropped
};

/// Scans a WAL, stopping (not failing) at the first torn or corrupt block.
/// A missing file scans as empty. Throws PersistError only when the file
/// exists but is not a WAL at all (bad magic).
WalScan scan_wal(const std::string& path);

/// Append-side of the log.
class WalWriter {
 public:
  /// Opens (or creates) the log at `path`. An existing log is scanned and
  /// truncated to its last valid commit block first, so a torn tail from a
  /// previous crash never poisons subsequent appends.
  explicit WalWriter(std::string path, std::size_t group_commit = 4);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void log_insert(const metadata::FileMetadata& f);
  void log_remove(const std::string& name);

  /// Seals the pending batch into one commit block: write, flush, fsync.
  /// No-op when nothing is pending.
  void commit();

  /// Truncates to a fresh, empty log (after a checkpoint made the tail
  /// redundant). Pending uncommitted records are discarded.
  void reset();

  std::size_t pending_records() const { return pending_; }
  std::uint64_t committed_records() const { return committed_; }
  std::uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  void open_truncated_to_valid_prefix();

  std::string path_;
  std::size_t group_commit_;
  std::FILE* file_ = nullptr;
  util::BinaryWriter batch_;
  std::size_t pending_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t generation_ = 0;
};

/// Overwrites `path` with a fresh, empty log carrying `generation` (header
/// only, fsynced, directory entry synced). Does not read the old contents.
void write_empty_wal(const std::string& path, std::uint64_t generation);

/// A generation for a log with no usable predecessor: drawn from the
/// system entropy source so it cannot collide with a fence some earlier
/// snapshot recorded against an unrelated log history.
std::uint64_t fresh_wal_generation();

}  // namespace smartstore::persist
