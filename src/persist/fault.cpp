#include "persist/fault.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>

#include "util/annotated_mutex.h"
#include "util/binary_io.h"
#include "util/thread_annotations.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace smartstore::persist {

namespace {

// countdown < 0: disarmed. countdown == k > 0: the k-th fault_point from
// now fires. Decremented at each pass; fires when it reaches 0.
std::atomic<std::int64_t> g_countdown{-1};
std::atomic<std::uint64_t> g_passed{0};

util::Mutex g_name_mu;
std::string g_last_fired SS_GUARDED_BY(g_name_mu);

}  // namespace

void fault_arm(std::uint64_t nth) {
  g_passed.store(0, std::memory_order_relaxed);
  g_countdown.store(static_cast<std::int64_t>(nth), std::memory_order_relaxed);
}

void fault_disarm() {
  g_countdown.store(-1, std::memory_order_relaxed);
  g_passed.store(0, std::memory_order_relaxed);
}

std::uint64_t fault_points_passed() {
  return g_passed.load(std::memory_order_relaxed);
}

std::string fault_last_fired() {
  const util::MutexLock lock(g_name_mu);
  return g_last_fired;
}

void fault_point(const char* where) {
  g_passed.fetch_add(1, std::memory_order_relaxed);
  if (g_countdown.load(std::memory_order_relaxed) < 0) return;
  if (g_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    {
      const util::MutexLock lock(g_name_mu);
      g_last_fired = where;
    }
    throw FaultInjected(std::string("injected crash at ") + where);
  }
}

void write_file_atomic_faulted(const std::string& path,
                               const std::vector<std::uint8_t>& bytes,
                               const std::string& fault_prefix) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw PersistError("cannot open for writing: " + tmp);
  // The bytes land in two halves with a crash boundary between them: a
  // power cut does not respect write() boundaries, and the flushed torn
  // temp is exactly what the crash-injection suite must recover past.
  // Empty buffers skip fwrite entirely: data() may be null then, and
  // fwrite with a null pointer is undefined even for zero bytes.
  const std::size_t half = bytes.size() / 2;
  bool short_write =
      half > 0 && std::fwrite(bytes.data(), 1, half, f) != half;
  if (!short_write) {
    try {
      fault_point((fault_prefix + ":torn-temp").c_str());
    } catch (...) {
      std::fflush(f);
      std::fclose(f);
      throw;  // half a temp file; the published file is untouched
    }
    const std::size_t rest = bytes.size() - half;
    short_write =
        rest > 0 && std::fwrite(bytes.data() + half, 1, rest, f) != rest;
  }
  if (short_write) {
    std::fclose(f);
    throw PersistError("short write: " + tmp);
  }
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
  std::fclose(f);

  fault_point((fault_prefix + ":pre-rename").c_str());
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    throw PersistError("rename " + tmp + " -> " + path + ": " + ec.message());
  fault_point((fault_prefix + ":pre-dirsync").c_str());
  util::fsync_parent_dir(path);
}

}  // namespace smartstore::persist
