#include "persist/delta_checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <system_error>

#include "persist/fault.h"
#include "persist/recovery.h"
#include "util/timer.h"

namespace smartstore::persist {

namespace fs = std::filesystem;

DeltaEngine::DeltaEngine(core::SmartStore& store, ShardedWal& wal,
                         std::string dir)
    : store_(store), wal_(wal), dir_(std::move(dir)) {
  std::error_code ec;
  if (fs::weakly_canonical(wal_.dir(), ec) !=
      fs::weakly_canonical(ShardedWal::shard_dir(dir_), ec)) {
    throw PersistError("DeltaEngine: the sharded WAL must own this "
                       "directory's shards (" +
                       ShardedWal::shard_dir(dir_) + "), got " + wal_.dir());
  }
}

bool DeltaEngine::ensure_manifest_locked() {
  if (loaded_) return true;
  if (manifest_exists(dir_)) {
    manifest_ = read_manifest(dir_);
    loaded_ = true;
    return true;
  }

  // No manifest yet. An existing full image can be adopted as the chain's
  // base — its WALFENCE says which WAL prefix it already contains — but
  // only when no pre-sharding wal.bin carries live records: legacy records
  // replay BEFORE the sharded stream, while a delta chain would apply them
  // after the base, so their order cannot be expressed as a chain link.
  const std::string sp = snapshot_path(dir_);
  std::error_code ec;
  if (!fs::exists(sp, ec)) return false;  // fresh store: fold
  const WalFence base_fence = read_snapshot_fence(sp);
  const std::string wp = wal_path(dir_);
  if (fs::exists(wp, ec)) {
    try {
      const WalScan scan = scan_wal(wp);
      std::size_t covered = 0;
      if (base_fence.present && base_fence.generation == scan.generation)
        covered = static_cast<std::size_t>(std::min<std::uint64_t>(
            base_fence.records, scan.records.size()));
      if (scan.records.size() > covered) return false;  // live legacy tail
    } catch (const PersistError&) {
      // Not a WAL; recovery ignores it the same way.
    }
  }
  manifest_ = DeltaManifest{};
  manifest_.base_kind = BaseKind::kLegacySnapshot;
  manifest_.fence = base_fence;
  loaded_ = true;  // adopted in memory; the first cut publishes it
  return true;
}

void DeltaEngine::publish_stats_locked(const DeltaManifest& m) {
  chain_len_.store(m.cuts.size(), std::memory_order_relaxed);
  chain_bytes_.store(m.delta_bytes(), std::memory_order_relaxed);
  last_cut_seq_.store(m.last_cut_seq, std::memory_order_relaxed);
}

DeltaCutStats DeltaEngine::cut() {
  util::WallTimer t;
  const util::MutexLock lock(mu_);
  if (!ensure_manifest_locked()) {
    DeltaCutStats st = fold_locked();
    st.seconds = t.seconds();
    return st;
  }

  // The barrier: with every serving thread outside its operation, the
  // frontier, the commit seq and the dirty watermarks describe one
  // instant, and every stamped record is committed by the frontier.
  WalFence fence;
  std::vector<std::size_t> fence_bytes;
  std::uint64_t cut_seq = 0;
  store_.mutation_barrier([&] {
    fence = wal_.frontier(&fence_bytes);
    cut_seq = store_.last_commit_seq();
  });
  // The frontier's legacy pair is empty; the chain keeps fencing whatever
  // prefix of a leftover wal.bin its base already covers.
  fence.generation = manifest_.fence.generation;
  fence.records = manifest_.fence.records;

  DeltaCutStats st;
  st.cut_seq = cut_seq;
  DeltaCut cutrec;
  cutrec.cut_id = manifest_.next_cut_id();
  cutrec.cut_seq = cut_seq;
  for (const ShardFence& f : fence.shards) {
    const std::uint64_t skip = manifest_.fenced_records(f.shard, f.generation);
    if (f.records <= skip) {
      // Cold unit: no records since the previous cut. The per-unit dirty
      // watermark (store_.unit_dirty_seq) says the same thing for data
      // records; the fence count is authoritative because structural
      // records in shard 0 never raise a unit watermark.
      ++st.units_cold;
      continue;
    }
    // The shard log may take concurrent appends while we read it; the
    // committed frontier prefix is durable and stable, and anything past
    // it (including a torn in-flight block) is beyond the slice we take.
    WalScan scan = scan_wal(ShardedWal::shard_path(dir_, f.shard));
    if (scan.generation != f.generation || scan.records.size() < f.records) {
      throw PersistError("delta cut: shard " + std::to_string(f.shard) +
                             " log moved under the engine",
                         PersistError::Code::kCorruption);
    }
    std::vector<WalRecord> slice(
        std::make_move_iterator(scan.records.begin() +
                                static_cast<std::ptrdiff_t>(skip)),
        std::make_move_iterator(scan.records.begin() +
                                static_cast<std::ptrdiff_t>(f.records)));
    const DeltaExtent ext = append_segment_extent(
        dir_, f.shard, slice, manifest_.segment_end(f.shard));
    st.delta_records += ext.records;
    st.delta_bytes += ext.length;
    ++st.units_contributing;
    cutrec.extents.push_back(ext);
  }

  if (cutrec.extents.empty()) {
    // Wholly cold store: publishing an empty cut would grow the chain for
    // nothing, and rebasing would churn generations. True no-op.
    st.noop = true;
    st.chain_len = manifest_.cuts.size();
    st.chain_bytes = manifest_.delta_bytes();
    st.seconds = t.seconds();
    return st;
  }

  DeltaManifest next = manifest_;
  next.manifest_id = manifest_.manifest_id + 1;
  next.last_cut_seq = cut_seq;
  next.fence = fence;
  next.cuts.push_back(std::move(cutrec));
  write_manifest(dir_, next);
  manifest_ = std::move(next);
  publish_stats_locked(manifest_);
  total_delta_bytes_.fetch_add(st.delta_bytes, std::memory_order_relaxed);
  cuts_.fetch_add(1, std::memory_order_relaxed);

  // The crash window: manifest published, WAL not yet rebased. The fence
  // (generation match) makes recovery — and the next cut — skip exactly
  // the records the new delta carries.
  fault_point("delta:pre-rebase");
  wal_.rebase_to(fence, fence_bytes);

  st.chain_len = manifest_.cuts.size();
  st.chain_bytes = manifest_.delta_bytes();
  st.seconds = t.seconds();
  return st;
}

DeltaCutStats DeltaEngine::fold() {
  util::WallTimer t;
  const util::MutexLock lock(mu_);
  if (!loaded_ && manifest_exists(dir_)) {
    manifest_ = read_manifest(dir_);
    loaded_ = true;
  }
  DeltaCutStats st = fold_locked();
  st.seconds = t.seconds();
  return st;
}

DeltaCutStats DeltaEngine::fold_locked() {
  DeltaCutStats st;
  st.folded = true;
  const std::uint64_t next_id = (loaded_ ? manifest_.manifest_id : 0) + 1;

  std::error_code ec;
  fs::create_directories(ckpt_dir(dir_), ec);

  // The classic fuzzy-checkpoint protocol, targeting ckpt/base-<id> and a
  // manifest instead of snapshot.bin: FREEZE (frontier inside the
  // exclusive section), WRITE (concurrent, epoch-freeze/COW, GC watermark
  // captured by the frozen core), PUBLISH+TRUNCATE.
  WalFence fence;
  std::vector<std::size_t> fence_bytes;
  std::uint64_t cut_seq = 0;
  store_.begin_checkpoint([&] {
    fence = wal_.frontier(&fence_bytes);
    cut_seq = store_.last_commit_seq();
    // A leftover pre-sharding wal.bin is subsumed by the full image too:
    // fence it, or its stale records would replay over base-<id> on the
    // next recover().
    const std::string wp = wal_path(dir_);
    if (fs::exists(wp)) {
      try {
        const WalScan scan = scan_wal(wp);
        fence.generation = scan.generation;
        fence.records = scan.records.size();
      } catch (const PersistError&) {
        // Not a WAL; recovery ignores it the same way.
      }
    }
  });
  st.cut_seq = cut_seq;

  try {
    const std::string base = base_path(dir_, next_id);
    save_snapshot_frozen(store_, base, fence);
    const auto sz = fs::file_size(base, ec);
    if (!ec) st.base_bytes = static_cast<std::size_t>(sz);

    DeltaManifest next;
    next.manifest_id = next_id;
    next.base_kind = BaseKind::kCheckpointBase;
    next.base_id = next_id;
    next.last_cut_seq = cut_seq;
    next.fence = fence;
    write_manifest(dir_, next);
    manifest_ = std::move(next);
    loaded_ = true;
    publish_stats_locked(manifest_);
    folds_.fetch_add(1, std::memory_order_relaxed);

    fault_point("compact:pre-rebase");
    wal_.rebase_to(fence, fence_bytes);
    const std::string wp = wal_path(dir_);
    if (fence.records > 0 && fs::exists(wp))
      write_empty_wal(wp, fresh_wal_generation());
  } catch (...) {
    store_.end_checkpoint();
    throw;
  }
  store_.end_checkpoint();

  // Superseded state: older bases, every segment (the chain is empty),
  // and the stale snapshot.bin the chain no longer reads. Failures here
  // leave only unreferenced garbage.
  fault_point("compact:pre-prune");
  prune_ckpt_files(dir_, manifest_);
  fs::remove(snapshot_path(dir_), ec);
  return st;
}

std::unique_ptr<core::SmartStore> DeltaEngine::reconstruct_at_last_cut(
    std::uint64_t* seq_out) {
  const util::MutexLock lock(mu_);
  // Read disk, not the cache: a quiesced full checkpoint may have removed
  // or rewritten the layout since the last cut.
  const DeltaManifest m = read_manifest(dir_);
  std::unique_ptr<core::SmartStore> store = load_delta_base(dir_, m, nullptr);
  if (seq_out) *seq_out = m.last_cut_seq;
  return store;
}

void DeltaEngine::invalidate() {
  const util::MutexLock lock(mu_);
  loaded_ = false;
  manifest_ = DeltaManifest{};
  publish_stats_locked(manifest_);
}

}  // namespace smartstore::persist
