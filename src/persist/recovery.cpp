#include "persist/recovery.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

#include "persist/fault.h"

namespace smartstore::persist {

std::string snapshot_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "snapshot.bin").string();
}

std::string wal_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "wal.bin").string();
}

void apply_record(core::SmartStore& store, const WalRecord& rec) {
  // Replay runs at virtual time zero: queue state is not part of recovery,
  // only the logical outcome of each mutation. The hooks do not re-log —
  // they hand the record's persisted seq back to the store, so the
  // replayed mutation lands under the SAME commit timestamp it carried
  // live and time-travel reads replay identically across a restart.
  const auto replay_seq = [&rec](core::UnitId) { return rec.seq; };
  switch (rec.type) {
    case WalRecordType::kInsert:
      store.insert_file(rec.file, 0.0, replay_seq);
      break;
    case WalRecordType::kRemove:
      // erase_file, not delete_file: the live delete was acknowledged, so
      // replay must not depend on the off-line replicas (whose staleness
      // evolves differently during recovery) re-locating the file.
      store.erase_file(rec.name, replay_seq);
      break;
    case WalRecordType::kAddUnit:
      store.add_storage_unit([&rec] { return rec.seq; });
      break;
    case WalRecordType::kRemoveUnit: {
      const auto u = static_cast<core::UnitId>(rec.unit);
      if (u < store.units().size() && store.unit_active(u))
        store.remove_storage_unit(u, [&rec] { return rec.seq; });
      break;
    }
    case WalRecordType::kAutoconfigure:
      store.autoconfigure(rec.subsets, [&rec] { return rec.seq; });
      break;
  }
}

std::size_t replay(core::SmartStore& store, const WalScan& scan) {
  for (const WalRecord& rec : scan.records) apply_record(store, rec);
  return scan.records.size();
}

void replay_dir_logs(core::SmartStore& store, const std::string& dir,
                     const WalFence& fence, RecoveryResult& res) {
  // Legacy single log first (a deployment that migrated to the sharded
  // layout may still carry an emptied wal.bin alongside the shard dir).
  const WalScan scan = scan_wal(wal_path(dir));
  std::size_t skip = 0;
  if (fence.present && fence.generation == scan.generation) {
    // Records the snapshot's fence covers are already reflected in it;
    // this is the crash window between "snapshot renamed" and "WAL
    // emptied".
    skip = static_cast<std::size_t>(
        std::min<std::uint64_t>(fence.records, scan.records.size()));
  }
  for (std::size_t i = skip; i < scan.records.size(); ++i)
    apply_record(store, scan.records[i]);
  res.wal_blocks += scan.blocks;
  res.wal_records += scan.records.size() - skip;
  res.wal_fenced += skip;
  res.wal_tail_torn = res.wal_tail_torn || scan.torn_tail;

  // Sharded logs: scan every shard, drop each shard's fenced prefix
  // (matching generations only — a rebased shard replays in full), then
  // merge by the store-wide sequence number back into one mutation order.
  const std::string sdir = ShardedWal::shard_dir(dir);
  std::error_code ec;
  if (std::filesystem::is_directory(sdir, ec)) {
    std::vector<WalRecord> merged;
    for (const auto& entry : std::filesystem::directory_iterator(sdir)) {
      std::uint64_t shard_id = 0;
      if (!ShardedWal::parse_shard_id(entry.path(), &shard_id)) continue;
      WalScan shard_scan = scan_wal(entry.path().string());
      std::size_t shard_skip = 0;
      for (const ShardFence& f : fence.shards) {
        if (f.shard == shard_id && f.generation == shard_scan.generation) {
          shard_skip = static_cast<std::size_t>(std::min<std::uint64_t>(
              f.records, shard_scan.records.size()));
          break;
        }
      }
      res.wal_blocks += shard_scan.blocks;
      res.wal_fenced += shard_skip;
      res.wal_tail_torn = res.wal_tail_torn || shard_scan.torn_tail;
      ++res.wal_shards;
      for (std::size_t i = shard_skip; i < shard_scan.records.size(); ++i)
        merged.push_back(std::move(shard_scan.records[i]));
    }
    // Stable: records upgraded from unsequenced logs (seq 0) keep their
    // per-shard order at the front.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const WalRecord& a, const WalRecord& b) {
                       return a.seq < b.seq;
                     });
    for (const WalRecord& rec : merged) apply_record(store, rec);
    res.wal_records += merged.size();
  }
}

std::unique_ptr<core::SmartStore> load_delta_base(const std::string& dir,
                                                  const DeltaManifest& m,
                                                  RecoveryResult* res) {
  const std::string base = m.base_kind == BaseKind::kLegacySnapshot
                               ? snapshot_path(dir)
                               : base_path(dir, m.base_id);
  std::unique_ptr<core::SmartStore> store = load_snapshot(base);
  std::vector<WalRecord> merged;
  for (const DeltaCut& c : m.cuts)
    for (const DeltaExtent& e : c.extents) read_segment_extent(dir, e, &merged);
  // The global merge across cuts is sound: each cut's barrier strictly
  // separates seq draws, so every record of cut N precedes every record
  // of cut N+1 — sorting across the whole chain reproduces the exact live
  // mutation order, exactly as replay_dir_logs does for shard tails.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const WalRecord& a, const WalRecord& b) {
                     return a.seq < b.seq;
                   });
  for (const WalRecord& rec : merged) apply_record(*store, rec);
  if (res) {
    res->delta_cuts = m.cuts.size();
    res->delta_records = merged.size();
  }
  return store;
}

RecoveryResult recover(const std::string& dir) {
  RecoveryResult res;
  WalFence fence;
  if (manifest_exists(dir)) {
    const DeltaManifest m = read_manifest(dir);
    res.store = load_delta_base(dir, m, &res);
    fence = m.fence;
    res.used_manifest = true;
  } else {
    res.store = load_snapshot(snapshot_path(dir), &fence);
  }
  replay_dir_logs(*res.store, dir, fence, res);
  return res;
}

db::Status recover(const std::string& dir, RecoveryResult* out) noexcept {
  *out = RecoveryResult{};
  try {
    *out = recover(dir);
    return db::Status::OK();
  } catch (const FaultInjected& e) {
    // IS-A PersistError (default code kCorruption); type it first so a
    // simulated power cut never reads as on-disk corruption.
    *out = RecoveryResult{};
    return db::Status::FaultInjected(e.what());
  } catch (const PersistError& e) {
    *out = RecoveryResult{};
    switch (e.code()) {
      case PersistError::Code::kNotFound:
        return db::Status::NotFound(e.what());
      case PersistError::Code::kIo:
        return db::Status::IOError(e.what());
      case PersistError::Code::kCorruption:
        break;
    }
    return db::Status::Corruption(e.what());
  } catch (const util::BinaryIoError& e) {
    // The codecs' bounds checks fire on truncated or malformed payloads
    // inside checksum-valid framing — still corruption, just detected a
    // layer lower.
    *out = RecoveryResult{};
    return db::Status::Corruption(e.what());
  } catch (const std::filesystem::filesystem_error& e) {
    *out = RecoveryResult{};
    return db::Status::IOError(e.what());
  } catch (const std::exception& e) {
    *out = RecoveryResult{};
    return db::Status::Unknown(e.what());
  }
}

void checkpoint(const core::SmartStore& store, const std::string& dir,
                WalWriter* wal) {
  std::filesystem::create_directories(dir);

  // Only this directory's log is subsumed by the snapshot about to be
  // written. A live writer is used when it owns that log; a writer logging
  // into a different directory is left untouched — its records pair with
  // *that* directory's snapshot, and emptying it would lose them.
  const std::string wp = wal_path(dir);
  std::error_code ec;
  const bool owns_log =
      wal && std::filesystem::weakly_canonical(wal->path(), ec) ==
                 std::filesystem::weakly_canonical(wp, ec);

  // Fence before switching: note how much of the log the snapshot covers,
  // so a crash between the snapshot rename and the WAL reset cannot make
  // recovery replay those records twice.
  WalFence fence;
  std::uint64_t next_generation = 0;
  if (owns_log) {
    wal->commit();  // pending records become durable and countable
    fence = {wal->generation(), wal->committed_records(), true};
  } else if (std::filesystem::exists(wp)) {
    try {
      const WalScan scan = scan_wal(wp);
      fence = {scan.generation, scan.records.size(), true};
      next_generation = scan.generation + 1;
    } catch (const PersistError&) {
      // Not a WAL (junk from an interrupted copy, say): no fence; the file
      // is about to be overwritten regardless.
      next_generation = fresh_wal_generation();
    }
  }

  save_snapshot(store, snapshot_path(dir), fence);

  // Any incremental-checkpoint layout is superseded by the full image
  // just published, and it must be gone BEFORE the WAL reset below: a
  // manifest that outlived the truncation of the prefix its fence covers
  // would recover a stale chain with no tail to catch it up. (Crashing
  // between the rename and this removal is fine the other way around —
  // the old manifest plus the still-intact log recovers the same state.)
  fault_point("checkpoint:pre-ckpt-clear");
  remove_ckpt_state(dir);

  // The classic checkpoint crash window: snapshot published, log not yet
  // emptied. The fence recorded above is what keeps this state consistent.
  fault_point("checkpoint:pre-wal-reset");

  if (owns_log) {
    wal->reset();
  } else if (std::filesystem::exists(wp)) {
    write_empty_wal(wp, next_generation);  // stale records must not replay
  }                                        // over the fresher snapshot

  // A shard directory no writer owns is equally subsumed: remove it, or
  // its stale records would replay over the fresher snapshot on the next
  // recover() (the snapshot just written fences none of them).
  const std::string sdir = ShardedWal::shard_dir(dir);
  std::error_code sec;
  if (std::filesystem::is_directory(sdir, sec))
    std::filesystem::remove_all(sdir);
}

void checkpoint(const core::SmartStore& store, const std::string& dir,
                ShardedWal& wal) {
  std::filesystem::create_directories(dir);
  std::error_code cec;
  if (std::filesystem::weakly_canonical(wal.dir(), cec) !=
      std::filesystem::weakly_canonical(ShardedWal::shard_dir(dir), cec)) {
    throw PersistError("checkpoint: the sharded WAL must own " +
                       ShardedWal::shard_dir(dir) + ", got " + wal.dir());
  }

  // Same fence-then-switch discipline as the single-log flavour, with the
  // frontier taken across every shard (frontier() commits them all first).
  WalFence fence = wal.frontier();
  // A leftover single log (pre-migration deployments) is subsumed too; it
  // must be FENCED in the snapshot, not merely emptied afterwards — a
  // crash between the snapshot rename and the emptying below would
  // otherwise replay its stale records over a snapshot that already
  // contains them.
  const std::string wp = wal_path(dir);
  if (std::filesystem::exists(wp)) {
    try {
      const WalScan scan = scan_wal(wp);
      fence.generation = scan.generation;
      fence.records = scan.records.size();
    } catch (const PersistError&) {
      // Not a WAL; the overwrite below deals with it.
    }
  }
  save_snapshot(store, snapshot_path(dir), fence);

  // Same ordering as the single-log flavour: the superseded incremental
  // layout goes after the snapshot publish, before the WAL reset.
  fault_point("checkpoint:pre-ckpt-clear");
  remove_ckpt_state(dir);

  fault_point("checkpoint:pre-wal-reset");

  wal.reset_all();
  if (std::filesystem::exists(wp))
    write_empty_wal(wp, fresh_wal_generation());
}

}  // namespace smartstore::persist
