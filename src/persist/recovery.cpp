#include "persist/recovery.h"

#include <algorithm>
#include <filesystem>

#include "persist/fault.h"

namespace smartstore::persist {

std::string snapshot_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "snapshot.bin").string();
}

std::string wal_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "wal.bin").string();
}

void apply_record(core::SmartStore& store, const WalRecord& rec) {
  // Replay runs at virtual time zero: queue state is not part of recovery,
  // only the logical outcome of each mutation.
  switch (rec.type) {
    case WalRecordType::kInsert:
      store.insert_file(rec.file, 0.0);
      break;
    case WalRecordType::kRemove:
      // erase_file, not delete_file: the live delete was acknowledged, so
      // replay must not depend on the off-line replicas (whose staleness
      // evolves differently during recovery) re-locating the file.
      store.erase_file(rec.name);
      break;
    case WalRecordType::kAddUnit:
      store.add_storage_unit();
      break;
    case WalRecordType::kRemoveUnit: {
      const auto u = static_cast<core::UnitId>(rec.unit);
      if (u < store.units().size() && store.unit_active(u))
        store.remove_storage_unit(u);
      break;
    }
    case WalRecordType::kAutoconfigure:
      store.autoconfigure(rec.subsets);
      break;
  }
}

std::size_t replay(core::SmartStore& store, const WalScan& scan) {
  for (const WalRecord& rec : scan.records) apply_record(store, rec);
  return scan.records.size();
}

RecoveryResult recover(const std::string& dir) {
  RecoveryResult res;
  WalFence fence;
  res.store = load_snapshot(snapshot_path(dir), &fence);
  const WalScan scan = scan_wal(wal_path(dir));

  // Records the snapshot's fence covers are already reflected in it; this
  // is the crash window between "snapshot renamed" and "WAL emptied".
  std::size_t skip = 0;
  if (fence.present && fence.generation == scan.generation) {
    skip = static_cast<std::size_t>(
        std::min<std::uint64_t>(fence.records, scan.records.size()));
  }
  for (std::size_t i = skip; i < scan.records.size(); ++i)
    apply_record(*res.store, scan.records[i]);

  res.wal_blocks = scan.blocks;
  res.wal_records = scan.records.size() - skip;
  res.wal_fenced = skip;
  res.wal_tail_torn = scan.torn_tail;
  return res;
}

void checkpoint(const core::SmartStore& store, const std::string& dir,
                WalWriter* wal) {
  std::filesystem::create_directories(dir);

  // Only this directory's log is subsumed by the snapshot about to be
  // written. A live writer is used when it owns that log; a writer logging
  // into a different directory is left untouched — its records pair with
  // *that* directory's snapshot, and emptying it would lose them.
  const std::string wp = wal_path(dir);
  std::error_code ec;
  const bool owns_log =
      wal && std::filesystem::weakly_canonical(wal->path(), ec) ==
                 std::filesystem::weakly_canonical(wp, ec);

  // Fence before switching: note how much of the log the snapshot covers,
  // so a crash between the snapshot rename and the WAL reset cannot make
  // recovery replay those records twice.
  WalFence fence;
  std::uint64_t next_generation = 0;
  if (owns_log) {
    wal->commit();  // pending records become durable and countable
    fence = {wal->generation(), wal->committed_records(), true};
  } else if (std::filesystem::exists(wp)) {
    try {
      const WalScan scan = scan_wal(wp);
      fence = {scan.generation, scan.records.size(), true};
      next_generation = scan.generation + 1;
    } catch (const PersistError&) {
      // Not a WAL (junk from an interrupted copy, say): no fence; the file
      // is about to be overwritten regardless.
      next_generation = fresh_wal_generation();
    }
  }

  save_snapshot(store, snapshot_path(dir), fence);

  // The classic checkpoint crash window: snapshot published, log not yet
  // emptied. The fence recorded above is what keeps this state consistent.
  fault_point("checkpoint:pre-wal-reset");

  if (owns_log) {
    wal->reset();
  } else if (std::filesystem::exists(wp)) {
    write_empty_wal(wp, next_generation);  // stale records must not replay
  }                                        // over the fresher snapshot
}

}  // namespace smartstore::persist
