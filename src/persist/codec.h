// Shared wire codecs for the persistence layer: the FileMetadata record
// encoding is the unit both the snapshot UNITS section and every WAL insert
// record speak, and the AttrSubset encoding is shared by the snapshot
// VARIANTS section and WAL autoconfigure records — so both live here
// rather than in either format.
#pragma once

#include "metadata/file_metadata.h"
#include "metadata/schema.h"
#include "util/binary_io.h"

namespace smartstore::persist {

void write_file_meta(util::BinaryWriter& w, const metadata::FileMetadata& f);

/// Bounds-checked decode; throws util::BinaryIoError on truncation or an
/// attribute-dimension mismatch against the compiled-in schema.
metadata::FileMetadata read_file_meta(util::BinaryReader& r);

void write_attr_subset(util::BinaryWriter& w, const metadata::AttrSubset& s);

/// Bounds-checked decode; throws util::BinaryIoError on an attribute id
/// outside the compiled-in schema or an implausible subset size.
metadata::AttrSubset read_attr_subset(util::BinaryReader& r);

}  // namespace smartstore::persist
