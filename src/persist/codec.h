// Shared wire codecs for the persistence layer: the FileMetadata record
// encoding is the unit both the snapshot UNITS section and every WAL insert
// record speak, so it lives here rather than in either format.
#pragma once

#include "metadata/file_metadata.h"
#include "util/binary_io.h"

namespace smartstore::persist {

void write_file_meta(util::BinaryWriter& w, const metadata::FileMetadata& f);

/// Bounds-checked decode; throws util::BinaryIoError on truncation or an
/// attribute-dimension mismatch against the compiled-in schema.
metadata::FileMetadata read_file_meta(util::BinaryReader& r);

}  // namespace smartstore::persist
