#include "persist/compactor.h"

namespace smartstore::persist {

bool Compactor::maybe_schedule() {
  if (!over_budget()) return false;
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel))
    return false;
  struct ClearRunning {
    std::atomic<bool>& flag;
    bool armed = true;
    ~ClearRunning() {
      if (armed) flag.store(false, std::memory_order_release);
    }
  } caller_guard{running_};

  // A finished-but-unobserved predecessor must not be overwritten
  // silently: surface its failure here rather than discarding it.
  if (inflight_.valid()) inflight_.get();

  inflight_ = pool_.submit([this] {
    ClearRunning worker_guard{running_};
    engine_.fold();
  });
  caller_guard.armed = false;  // the worker's guard owns the flag now
  scheduled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

DeltaCutStats Compactor::compact_now() {
  wait();  // a concurrent background fold must not interleave its publish
  return engine_.fold();
}

bool Compactor::wait() {
  if (!inflight_.valid()) return false;
  inflight_.get();
  return true;
}

}  // namespace smartstore::persist
