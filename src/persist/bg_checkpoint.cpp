#include "persist/bg_checkpoint.h"

#include <filesystem>

#include "persist/fault.h"
#include "persist/recovery.h"
#include "util/timer.h"

namespace smartstore::persist {

BackgroundCheckpointer::BackgroundCheckpointer(core::SmartStore& store,
                                               std::string dir,
                                               WalWriter& wal,
                                               util::ThreadPool& pool)
    : store_(store), dir_(std::move(dir)), wal_(&wal), pool_(pool) {
  std::filesystem::create_directories(dir_);
  std::error_code ec;
  if (std::filesystem::weakly_canonical(wal_->path(), ec) !=
      std::filesystem::weakly_canonical(wal_path(dir_), ec)) {
    throw PersistError(
        "BackgroundCheckpointer: the WAL writer must own this directory's "
        "log (" + wal_path(dir_) + "), got " + wal_->path());
  }
}

BackgroundCheckpointer::BackgroundCheckpointer(core::SmartStore& store,
                                               std::string dir,
                                               ShardedWal& wal,
                                               util::ThreadPool& pool)
    : store_(store), dir_(std::move(dir)), sharded_(&wal), pool_(pool) {
  std::filesystem::create_directories(dir_);
  std::error_code ec;
  if (std::filesystem::weakly_canonical(sharded_->dir(), ec) !=
      std::filesystem::weakly_canonical(ShardedWal::shard_dir(dir_), ec)) {
    throw PersistError(
        "BackgroundCheckpointer: the sharded WAL must own this directory's "
        "shards (" + ShardedWal::shard_dir(dir_) + "), got " +
        sharded_->dir());
  }
}

BackgroundCheckpointer::~BackgroundCheckpointer() {
  if (inflight_.valid()) {
    try {
      inflight_.get();
    } catch (...) {
      // Destruction cannot surface the failure; the next recover() sees a
      // state every crash window of the protocol keeps consistent.
    }
  }
}

// ---- serving-thread mutation API --------------------------------------------

core::QueryStats BackgroundCheckpointer::insert(const metadata::FileMetadata& f,
                                                double arrival) {
  if (sharded_) {
    // The append fires under the routed unit's lock (shard log order ==
    // that unit's apply order); the group-commit fsync runs from the
    // flush hook after that lock is released, so it stalls only this
    // shard's writers.
    return store_.insert_file(
        f, arrival,
        [this, &f](core::UnitId target) {
          return sharded_->append_insert(target, f);
        },
        [this](core::UnitId target) { sharded_->maybe_commit(target); });
  }
  const util::MutexLock lock(mu_);
  wal_->log_insert(f);
  return store_.insert_file(f, arrival);
}

bool BackgroundCheckpointer::erase(const std::string& name) {
  if (sharded_) {
    return store_.erase_file(
        name,
        [this, &name](core::UnitId located) {
          return sharded_->append_remove(located, name);
        },
        [this](core::UnitId located) { sharded_->maybe_commit(located); });
  }
  const util::MutexLock lock(mu_);
  const bool existed = store_.erase_file(name);
  if (existed) wal_->log_remove(name);
  return existed;
}

core::UnitId BackgroundCheckpointer::add_storage_unit() {
  if (sharded_) {
    return store_.add_storage_unit([this] { return sharded_->log_add_unit(); });
  }
  const util::MutexLock lock(mu_);
  wal_->log_add_unit();
  return store_.add_storage_unit();
}

void BackgroundCheckpointer::remove_storage_unit(core::UnitId u) {
  if (sharded_) {
    store_.remove_storage_unit(u, [this, u] { return sharded_->log_remove_unit(u); });
    return;
  }
  const util::MutexLock lock(mu_);
  wal_->log_remove_unit(u);
  store_.remove_storage_unit(u);
}

std::size_t BackgroundCheckpointer::autoconfigure(
    const std::vector<metadata::AttrSubset>& candidates) {
  if (sharded_) {
    return store_.autoconfigure(
        candidates, [this, &candidates] {
          return sharded_->log_autoconfigure(candidates);
        });
  }
  const util::MutexLock lock(mu_);
  wal_->log_autoconfigure(candidates);
  return store_.autoconfigure(candidates);
}

// ---- checkpoint control -----------------------------------------------------

void BackgroundCheckpointer::set_delta(DeltaEngine* engine,
                                       Compactor* compactor) {
  if (engine && !sharded_) {
    throw PersistError(
        "BackgroundCheckpointer: delta mode requires the sharded-WAL "
        "constructor (the delta engine cuts from shard logs)");
  }
  delta_engine_ = engine;
  compactor_ = compactor;
}

bool BackgroundCheckpointer::trigger() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel))
    return false;
  // From here until the worker owns it, any exit path must release
  // running_ — a stuck flag would disable checkpointing forever while the
  // WAL grows unboundedly.
  struct ClearRunning {
    std::atomic<bool>& flag;
    bool armed = true;
    ~ClearRunning() {
      if (armed) flag.store(false, std::memory_order_release);
    }
  } caller_guard{running_};

  // A finished-but-unobserved predecessor must not be overwritten silently:
  // surface its failure here rather than discarding the exception with the
  // old future.
  if (inflight_.valid()) inflight_.get();

  inflight_ = pool_.submit([this] {
    ClearRunning worker_guard{running_};
    run_checkpoint();
  });
  caller_guard.armed = false;  // the worker's guard owns the flag now
  return true;
}

bool BackgroundCheckpointer::wait() {
  if (!inflight_.valid()) return false;
  inflight_.get();  // rethrows the worker's failure
  return true;
}

void BackgroundCheckpointer::run_checkpoint() {
  CheckpointStats st;
  if (delta_engine_) {
    run_checkpoint_delta(st);
  } else if (sharded_) {
    run_checkpoint_sharded(st);
  } else {
    run_checkpoint_single(st);
  }
  stats_ = st;
  ++completed_;
  total_mutations_ += st.mutations_during;
  total_cow_ += st.cow_copies;
}

void BackgroundCheckpointer::run_checkpoint_delta(CheckpointStats& st) {
  const DeltaCutStats d = delta_engine_->cut();
  st.delta = true;
  st.delta_folded = d.folded;
  st.delta_records = d.delta_records;
  st.delta_bytes = d.delta_bytes;
  st.delta_units = d.units_contributing;
  st.delta_units_cold = d.units_cold;
  st.delta_chain_len = d.chain_len;
  st.fence_records = d.delta_records;
  st.write_s = d.seconds;
  st.snapshot_bytes = d.folded ? d.base_bytes
                               : static_cast<std::size_t>(d.delta_bytes);
  // A cut never freezes, so there is no COW tax to report; a fold
  // escalation ran the full protocol inside the engine.
  if (compactor_) compactor_->maybe_schedule();
}

void BackgroundCheckpointer::run_checkpoint_single(CheckpointStats& st) {
  // Step 1 — FREEZE. The fence must land at a mutation boundary: under
  // mu_ no mutation is half-logged or half-applied, the commit makes every
  // acknowledged record countable, and the epoch freeze starts exactly at
  // the state those fence.records produced.
  WalFence fence;
  std::size_t fence_bytes = WalWriter::kNoByteHint;
  {
    const util::MutexLock lock(mu_);
    util::WallTimer t;
    wal_->commit();
    fence = WalFence{wal_->generation(), wal_->committed_records(), true};
    fence_bytes = wal_->committed_bytes();  // frontier offset, for O(tail)
    st.epoch = store_.begin_checkpoint();   // truncation later
    st.freeze_s = t.seconds();
  }
  st.fence_generation = fence.generation;
  st.fence_records = fence.records;

  // Step 2 — WRITE, concurrent with serving. Any failure (including an
  // injected crash) must release the freeze so a surviving store stops
  // paying the copy-on-write tax.
  try {
    util::WallTimer t;
    save_snapshot_frozen(store_, snapshot_path(dir_), fence);
    st.write_s = t.seconds();
    std::error_code ec;
    const auto sz =
        std::filesystem::file_size(snapshot_path(dir_), ec);
    if (!ec) st.snapshot_bytes = static_cast<std::size_t>(sz);
  } catch (...) {
    store_.end_checkpoint();
    throw;
  }

  // Step 3 — TRUNCATE. The snapshot is published; dropping the fenced
  // prefix (under the next generation) keeps the log equal to exactly
  // what the snapshot does not contain.
  {
    const util::MutexLock lock(mu_);
    util::WallTimer t;
    try {
      fault_point("bg:pre-rebase");
      wal_->rebase(static_cast<std::size_t>(fence.records), fence_bytes);
    } catch (...) {
      store_.end_checkpoint();
      throw;
    }
    st.tail_records = wal_->committed_records();
    st.cow_copies = store_.checkpoint_cow_copies();
    st.mutations_during = store_.mutation_epoch() - st.epoch;
    store_.end_checkpoint();
    st.truncate_s = t.seconds();
  }
}

void BackgroundCheckpointer::run_checkpoint_sharded(CheckpointStats& st) {
  // Step 1 — FREEZE. begin_checkpoint holds the store's exclusive
  // structure lock: every writer is outside its operation, so committing
  // all shards inside `while_frozen` captures the frontier vector at
  // exactly the frozen mutation boundary — across every shard at once.
  WalFence fence;
  std::vector<std::size_t> fence_bytes;
  {
    util::WallTimer t;
    st.epoch = store_.begin_checkpoint([&] {
      fence = sharded_->frontier(&fence_bytes);
      // A leftover single log (a deployment migrated from the PR-3
      // layout) is subsumed by this snapshot too: fence it, or its stale
      // records would replay over the published image on the next
      // recover(). Nothing appends to it in sharded mode, so the frozen
      // section is as good a scan point as any.
      const std::string wp = wal_path(dir_);
      if (std::filesystem::exists(wp)) {
        try {
          const WalScan scan = scan_wal(wp);
          fence.generation = scan.generation;
          fence.records = scan.records.size();
        } catch (const PersistError&) {
          // Not a WAL; recovery ignores it the same way.
        }
      }
    });
    st.freeze_s = t.seconds();
  }
  st.fence_shards = fence.shards.size();
  for (const ShardFence& f : fence.shards) st.fence_records += f.records;

  // Step 2 — WRITE, fully concurrent with the (multi-writer) serving path.
  try {
    util::WallTimer t;
    save_snapshot_frozen(store_, snapshot_path(dir_), fence);
    st.write_s = t.seconds();
    std::error_code ec;
    const auto sz = std::filesystem::file_size(snapshot_path(dir_), ec);
    if (!ec) st.snapshot_bytes = static_cast<std::size_t>(sz);
  } catch (...) {
    store_.end_checkpoint();
    throw;
  }

  // Step 3 — TRUNCATE, shard by shard: each rebase swaps under its own
  // shard mutex, concurrent with live appends to every other shard. A
  // crash mid-loop leaves fenced shards (generation match: prefix
  // skipped) and rebased shards (generation changed: tail replays) —
  // recovery is consistent either way.
  {
    util::WallTimer t;
    try {
      fault_point("bg:pre-rebase");
      sharded_->rebase_to(fence, fence_bytes);
      // The fenced legacy log (if any) is fully subsumed: empty it under
      // a fresh generation so the fence needn't be carried forever.
      const std::string wp = wal_path(dir_);
      if (fence.records > 0 && std::filesystem::exists(wp))
        write_empty_wal(wp, fresh_wal_generation());
    } catch (...) {
      store_.end_checkpoint();
      throw;
    }
    for (const ShardFence& f : fence.shards)
      st.tail_records +=
          sharded_->committed_records(static_cast<std::size_t>(f.shard));
    st.cow_copies = store_.checkpoint_cow_copies();
    st.mutations_during = store_.mutation_epoch() - st.epoch;
    store_.end_checkpoint();
    st.truncate_s = t.seconds();
  }
}

}  // namespace smartstore::persist
