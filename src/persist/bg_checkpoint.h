// Background checkpointing: snapshots a serving deployment without
// stopping it, following the ARIES-style fuzzy-checkpoint discipline —
// snapshot concurrently from a frozen view, fence with the log, prove by
// replay.
//
// The protocol, per checkpoint:
//
//   1. FREEZE (serving thread excluded for O(1) work): commit the WAL so
//      every acknowledged mutation is durable and countable, record the
//      fence (generation, committed records), begin_checkpoint() on the
//      store — the epoch freeze that makes later mutations copy still-
//      unserialized pieces on first write.
//   2. WRITE (fully concurrent): a thread-pool worker serializes the
//      frozen view piece by piece while the serving thread keeps mutating
//      and appending to the WAL, then publishes the snapshot atomically
//      (temp + rename + directory fsync) with the fence inside it.
//   3. TRUNCATE (serving thread excluded briefly): rebase the WAL — drop
//      the fenced prefix the snapshot subsumes, keep the live tail under
//      the next generation — and end_checkpoint().
//
// Crash-ordering invariants (what the crash-injection suite asserts):
//   * before the snapshot rename, the old snapshot + full log pair is
//     intact, so recovery replays everything on the old image;
//   * between the rename and the WAL rebase, the new snapshot's fence
//     (generation match) suppresses replay of exactly the records it
//     subsumes, so nothing applies twice;
//   * after the rebase, the generation changed, so the fence matches
//     nothing and the whole remaining tail replays on the new image.
//   In every window, every acknowledged write is in the snapshot, the
//   log, or both — never neither.
//
// Threading contract: with the single-log constructor, all mutations go
// through this object's mutation API on ONE serving thread (the PR-3
// contract — the log has a single append point). With the sharded-WAL
// constructor, ANY NUMBER of serving threads may call the mutation API
// concurrently: logging rides the store's own WAL hooks (per-unit record
// under the target unit's stripe, structural record under the exclusive
// structure lock), the freeze captures the per-shard frontier vector
// inside the store's exclusive section, and the truncate rebases shard by
// shard, concurrent with live appends to the others. The checkpoint runs
// on one pool worker either way; queries may keep running throughout.
#pragma once

#include <atomic>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "core/smartstore.h"
#include "persist/compactor.h"
#include "persist/delta_checkpoint.h"
#include "persist/wal.h"
#include "persist/wal_shard.h"
#include "util/annotated_mutex.h"
#include "util/thread_pool.h"

namespace smartstore::persist {

struct CheckpointStats {
  std::uint64_t epoch = 0;           ///< store mutation epoch at freeze
  std::uint64_t fence_generation = 0;  ///< single-log mode only
  std::uint64_t fence_records = 0;   ///< WAL prefix the snapshot subsumes
                                     ///< (sharded: summed across shards)
  std::uint64_t fence_shards = 0;    ///< shards in the frontier vector
  std::uint64_t tail_records = 0;    ///< records rebased into the next log
  std::uint64_t cow_copies = 0;      ///< pieces copied on write during it
  std::uint64_t mutations_during = 0;  ///< epoch delta while writing
  double freeze_s = 0;               ///< serving threads excluded (step 1)
  double write_s = 0;                ///< concurrent serialization (step 2)
  double truncate_s = 0;             ///< per-shard rebase (step 3)
  std::size_t snapshot_bytes = 0;
  // Delta mode (an attached DeltaEngine ran the cadence action):
  bool delta = false;                ///< this checkpoint was a delta cut
  bool delta_folded = false;         ///< ...that escalated to a full fold
  std::uint64_t delta_records = 0;   ///< records captured into segments
  std::uint64_t delta_bytes = 0;     ///< segment bytes appended
  std::uint64_t delta_units = 0;     ///< units that contributed an extent
  std::uint64_t delta_units_cold = 0;  ///< fenced units with nothing new
  std::uint64_t delta_chain_len = 0;   ///< chain length after the cut
};

class BackgroundCheckpointer {
 public:
  /// Single-log mode. `store` and `wal` must outlive the checkpointer;
  /// `wal` must be the log at wal_path(dir) so snapshot fences and rebases
  /// pair with it. `pool` supplies the worker the snapshot is written on.
  BackgroundCheckpointer(core::SmartStore& store, std::string dir,
                         WalWriter& wal, util::ThreadPool& pool);

  /// Sharded multi-writer mode: durability through one WAL shard per
  /// storage unit under dir/wal/. Same ownership rules.
  BackgroundCheckpointer(core::SmartStore& store, std::string dir,
                         ShardedWal& wal, util::ThreadPool& pool);

  /// Waits for an in-flight checkpoint (swallowing its error — use wait()
  /// to observe failures before destruction).
  ~BackgroundCheckpointer();

  BackgroundCheckpointer(const BackgroundCheckpointer&) = delete;
  BackgroundCheckpointer& operator=(const BackgroundCheckpointer&) = delete;

  // ---- serving-thread mutation API ---------------------------------------
  // Write-ahead order: each mutation is logged, then applied — except
  // erase(), which must locate the file first and logs only on success.
  // That reversal is safe because the log record and the apply happen
  // under the same unit stripe: a crash inside the window loses both
  // together, and the caller never saw the delete acknowledged. In
  // single-log mode the internal mutex serializes these against the
  // freeze/truncate steps; in sharded mode the store's own locks do (the
  // mutation API is then safe from any number of threads).

  core::QueryStats insert(const metadata::FileMetadata& f,
                          double arrival = 0.0);
  /// Authoritative erase (core::SmartStore::erase_file); logged only when
  /// the file existed. Returns whether it did.
  bool erase(const std::string& name);
  core::UnitId add_storage_unit();
  void remove_storage_unit(core::UnitId u);
  std::size_t autoconfigure(
      const std::vector<metadata::AttrSubset>& candidates);

  // ---- checkpoint control -------------------------------------------------

  /// Switches the cadence action to incremental mode (sharded constructor
  /// only): trigger() then takes a delta CUT through `engine` instead of
  /// writing a full image, and — when `compactor` is non-null — lets it
  /// schedule a background fold after each cut that leaves the chain over
  /// budget. Both must outlive this object. Call before the first
  /// trigger(); not thread-safe against an in-flight checkpoint.
  void set_delta(DeltaEngine* engine, Compactor* compactor);

  /// Starts a checkpoint on the pool. Returns false (and does nothing)
  /// when one is already in flight.
  bool trigger();

  /// Blocks until the in-flight checkpoint (if any) finishes; rethrows the
  /// worker's exception. Returns true when a checkpoint actually ran.
  bool wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Stats of the last checkpoint that completed successfully.
  const CheckpointStats& last_stats() const { return stats_; }
  std::uint64_t completed() const { return completed_; }
  /// Accumulated over every completed checkpoint (read after wait()).
  std::uint64_t total_mutations_during() const { return total_mutations_; }
  std::uint64_t total_cow_copies() const { return total_cow_; }

 private:
  void run_checkpoint();
  void run_checkpoint_single(CheckpointStats& st);
  void run_checkpoint_sharded(CheckpointStats& st);
  void run_checkpoint_delta(CheckpointStats& st);

  core::SmartStore& store_;
  std::string dir_;
  WalWriter* wal_ = nullptr;        ///< single-log mode
  ShardedWal* sharded_ = nullptr;   ///< sharded multi-writer mode
  DeltaEngine* delta_engine_ = nullptr;  ///< incremental cadence action
  Compactor* compactor_ = nullptr;       ///< fold scheduling after cuts
  util::ThreadPool& pool_;

  /// Single-log mode: mutations vs. freeze/truncate. Ranked above the
  /// lifecycle/db-checkpoint locks and below every store lock — it is held
  /// across whole store mutations (which take shape → unit → stripe
  /// underneath).
  util::Mutex mu_{util::LockRank::kCheckpointCoord};
  std::atomic<bool> running_{false};
  std::future<void> inflight_;
  CheckpointStats stats_;
  std::uint64_t completed_ = 0;
  std::uint64_t total_mutations_ = 0;
  std::uint64_t total_cow_ = 0;
};

}  // namespace smartstore::persist
