#include "persist/snapshot.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <utility>

#include "persist/codec.h"
#include "persist/fault.h"
#include "util/annotated_mutex.h"
#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/thread_annotations.h"

namespace smartstore::persist {

namespace {

using util::BinaryReader;
using util::BinaryWriter;

// Section ids. New sections get new ids; readers skip unknown ids so old
// binaries can open newer snapshots that only added sections.
constexpr std::uint32_t kSecConfig = 1;
constexpr std::uint32_t kSecStandardizer = 2;
constexpr std::uint32_t kSecUnits = 3;
constexpr std::uint32_t kSecTree = 4;
constexpr std::uint32_t kSecVariants = 5;
constexpr std::uint32_t kSecSync = 6;
constexpr std::uint32_t kSecWalFence = 7;  // optional, written by checkpoint
constexpr std::uint32_t kMaxSection = 7;

/// An index that is either < limit or the kInvalidIndex sentinel.
std::size_t read_index(BinaryReader& r, std::size_t limit, const char* what) {
  const std::uint64_t v = r.read_u64();
  const auto idx = static_cast<std::size_t>(v);
  if (idx != core::kInvalidIndex && idx >= limit) {
    throw PersistError(std::string(what) + " index " + std::to_string(v) +
                       " out of range (limit " + std::to_string(limit) + ")");
  }
  return idx;
}

std::vector<std::size_t> read_index_vec(BinaryReader& r, std::size_t limit,
                                        const char* what) {
  std::vector<std::size_t> v = r.read_vec_size();
  for (std::size_t x : v) {
    if (x >= limit) {
      throw PersistError(std::string(what) + " index " + std::to_string(x) +
                         " out of range (limit " + std::to_string(limit) +
                         ")");
    }
  }
  return v;
}

// ---- primitive codecs -------------------------------------------------------

void write_mbr(BinaryWriter& w, const rtree::Mbr& box) {
  w.write_bool(box.valid());
  if (!box.valid()) return;
  w.write_vec_f64(box.lo());
  w.write_vec_f64(box.hi());
}

rtree::Mbr read_mbr(BinaryReader& r) {
  if (!r.read_bool()) return rtree::Mbr{};
  la::Vector lo = r.read_vec_f64();
  la::Vector hi = r.read_vec_f64();
  if (lo.size() != hi.size())
    throw PersistError("MBR lo/hi dimension mismatch");
  return rtree::Mbr(std::move(lo), std::move(hi));
}

void write_bloom(BinaryWriter& w, const bloom::BloomFilter& f) {
  w.write_u64(f.bit_count());
  w.write_u32(f.num_hashes());
  w.write_vec_u64(f.words());
}

bloom::BloomFilter read_bloom(BinaryReader& r) {
  const std::uint64_t bits = r.read_u64();
  const std::uint32_t k = r.read_u32();
  std::vector<std::uint64_t> words = r.read_vec_u64();
  if (bits == 0 || bits % 64 != 0 || words.size() != bits / 64)
    throw PersistError("Bloom filter geometry/word-count mismatch");
  return bloom::BloomFilter::from_words(static_cast<std::size_t>(bits), k,
                                        std::move(words));
}

void write_matrix(BinaryWriter& w, const la::Matrix& m) {
  w.write_u64(m.rows());
  w.write_u64(m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) w.write_f64(m(i, j));
}

la::Matrix read_matrix(BinaryReader& r) {
  const std::uint64_t rows = r.read_u64();
  const std::uint64_t cols = r.read_u64();
  // Guard cols first so 8 * cols cannot wrap around and defeat the bound.
  if (cols != 0 &&
      (cols > r.remaining() / 8 || rows > r.remaining() / (8 * cols)))
    throw PersistError("implausible matrix dimensions");
  la::Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) = r.read_f64();
  return m;
}

void write_lsi(BinaryWriter& w, const lsi::LsiModel& m) {
  w.write_vec_f64(m.standardizer().means);
  w.write_vec_f64(m.standardizer().inv_stdevs);
  write_matrix(w, m.u_p());
  w.write_vec_f64(m.singular_values());
  w.write_u64(m.num_docs());
  for (std::size_t i = 0; i < m.num_docs(); ++i)
    w.write_vec_f64(m.doc_coords(i));
  w.write_u64(m.rank());
}

lsi::LsiModel read_lsi(BinaryReader& r) {
  la::RowStandardizer std;
  std.means = r.read_vec_f64();
  std.inv_stdevs = r.read_vec_f64();
  la::Matrix u_p = read_matrix(r);
  la::Vector sigma = r.read_vec_f64();
  const std::size_t ndocs = static_cast<std::size_t>(
      r.read_u64_max(r.remaining(), "LSI document count"));
  std::vector<la::Vector> docs(ndocs);
  for (auto& d : docs) d = r.read_vec_f64();
  const auto rank = static_cast<std::size_t>(r.read_u64());
  return lsi::LsiModel::from_parts(std::move(std), std::move(u_p),
                                   std::move(sigma), std::move(docs), rank);
}

void write_version_delta(BinaryWriter& w, const core::VersionDelta& v) {
  write_mbr(w, v.added_box);
  write_bloom(w, v.added_names);
  w.write_vec_f64(v.added_attr_sum);
  w.write_u64(v.added_count);
  w.write_vec_u64(v.deleted);
  w.write_f64(v.sealed_at);
}

core::VersionDelta read_version_delta(BinaryReader& r) {
  core::VersionDelta v;
  v.added_box = read_mbr(r);
  v.added_names = read_bloom(r);
  v.added_attr_sum = r.read_vec_f64();
  v.added_count = static_cast<std::size_t>(r.read_u64());
  v.deleted = r.read_vec_u64();
  v.sealed_at = r.read_f64();
  return v;
}

void write_replica(BinaryWriter& w, const core::GroupReplica& g) {
  w.write_vec_f64(g.centroid_raw);
  w.write_vec_f64(g.attr_sum);
  w.write_u64(g.file_count);
  write_mbr(w, g.box);
  write_bloom(w, g.name_filter);
  w.write_u64(g.versions.size());
  for (const auto& v : g.versions) write_version_delta(w, v);
}

core::GroupReplica read_replica(BinaryReader& r) {
  core::GroupReplica g;
  g.centroid_raw = r.read_vec_f64();
  g.attr_sum = r.read_vec_f64();
  g.file_count = static_cast<std::size_t>(r.read_u64());
  g.box = read_mbr(r);
  g.name_filter = read_bloom(r);
  const std::size_t n = static_cast<std::size_t>(
      r.read_u64_max(r.remaining(), "version count"));
  g.versions.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    g.versions.push_back(read_version_delta(r));
  return g;
}

}  // namespace

// ---- SnapshotAccess: the befriended codec over private state ----------------

struct SnapshotAccess {
  using Store = core::SmartStore;
  using Tree = core::SemanticRTree;

  // ---- encode ---------------------------------------------------------------

  /// CONFIG-section writer over explicit state, shared by the quiesced
  /// path (live members) and the concurrent path (the eagerly frozen
  /// scalars captured at begin_checkpoint()).
  static void save_config_state(const core::Config& c, std::size_t bloom_bits,
                                std::size_t total_files,
                                const std::array<std::uint64_t, 4>& rng_state,
                                const std::vector<bool>& unit_active,
                                std::uint64_t commit_seq, BinaryWriter& w) {
    w.write_u32(static_cast<std::uint32_t>(metadata::kNumAttrs));
    w.write_u64(c.num_units);
    w.write_u64(c.fanout);
    w.write_u64(c.min_fill);
    w.write_f64(c.epsilon);
    w.write_u64(c.lsi_rank);
    w.write_u64(c.bloom_bits);
    w.write_u32(c.bloom_hashes);
    w.write_bool(c.bloom_auto_size);
    w.write_u64(c.placement_iters);
    w.write_u8(static_cast<std::uint8_t>(c.placement));
    w.write_f64(c.lazy_update_threshold);
    w.write_f64(c.autoconfig_threshold);
    w.write_u64(c.version_ratio);
    w.write_bool(c.versioning_enabled);
    w.write_u64(c.max_groups_per_query);
    w.write_u64(c.seed);
    w.write_f64(c.cost.hop_latency_s);
    w.write_f64(c.cost.bandwidth_bytes_per_s);
    w.write_f64(c.cost.per_message_cpu_s);
    w.write_f64(c.cost.per_record_scan_s);
    w.write_f64(c.cost.per_node_visit_s);
    w.write_f64(c.cost.per_bloom_check_s);
    // Store-level scalars that ride in the CONFIG section.
    w.write_u64(bloom_bits);
    w.write_u64(total_files);
    for (std::uint64_t word : rng_state) w.write_u64(word);
    w.write_u64(unit_active.size());
    for (bool b : unit_active) w.write_bool(b);
    // v2: the commit timestamp the image captures — recovery resumes the
    // MVCC clock here, then the WAL replay advances it record by record.
    w.write_u64(commit_seq);
  }

  // The plain save_* readers run on the quiesced path (save_snapshot):
  // the caller guarantees no concurrent mutation, so they read
  // structure-guarded members without the shape lock and are exempted
  // from analysis rather than given a lock they do not need.
  static void save_config(const Store& s, BinaryWriter& w)
      SS_NO_THREAD_SAFETY_ANALYSIS {
    save_config_state(s.cfg_, s.bloom_bits_, s.total_files_, s.rng_.state(),
                      s.unit_active_, s.last_commit_seq(), w);
  }

  static void save_standardizer_state(const la::RowStandardizer& st,
                                      BinaryWriter& w) {
    w.write_vec_f64(st.means);
    w.write_vec_f64(st.inv_stdevs);
  }

  static void save_standardizer(const Store& s, BinaryWriter& w)
      SS_NO_THREAD_SAFETY_ANALYSIS {
    save_standardizer_state(s.standardizer_, w);
  }

  /// v2 unit entry: the v1 record block, then the parallel added_seq array
  /// and the tombstone versions still pinned above `watermark` — the
  /// "checkpoint respects the GC watermark" rule. Tombstone coordinates are
  /// rebuilt from the standardizer on load, like live records'.
  static void save_unit(const core::StorageUnit& u, std::uint64_t watermark,
                        BinaryWriter& w) {
    w.write_u64(u.id());
    w.write_u64(u.file_count());
    for (const auto& f : u.files()) write_file_meta(w, f);
    for (std::uint64_t seq : u.added_seqs()) w.write_u64(seq);
    std::uint64_t kept = 0;
    for (const auto& t : u.tombstones())
      if (t.deleted_seq > watermark) ++kept;
    w.write_u64(kept);
    for (const auto& t : u.tombstones()) {
      if (t.deleted_seq <= watermark) continue;
      write_file_meta(w, t.file);
      w.write_u64(t.added_seq);
      w.write_u64(t.deleted_seq);
    }
  }

  static void save_units(const Store& s, BinaryWriter& w) {
    const std::uint64_t watermark = s.gc_watermark();
    w.write_u64(s.units_.size());
    for (const core::StorageUnit& u : s.units_) save_unit(u, watermark, w);
  }

  static void save_tree(const Tree& t, BinaryWriter& w) {
    w.write_u64(t.params_.fanout);
    w.write_u64(t.params_.min_fill);
    w.write_f64(t.params_.epsilon);
    w.write_u64(t.params_.lsi_rank);
    w.write_u64(t.params_.bloom_bits);
    w.write_u32(t.params_.bloom_hashes);
    w.write_vec_size(t.params_.lsi_dims);

    w.write_u64(t.nodes_.size());
    for (const core::IndexUnit& n : t.nodes_) {
      w.write_u64(n.node_id);
      if (n.node_id == core::kInvalidIndex) continue;  // freed slot
      w.write_i32(n.level);
      w.write_u64(n.parent);
      w.write_vec_size(n.children);
      write_mbr(w, n.box);
      write_bloom(w, n.name_filter);
      w.write_vec_f64(n.attr_sum);
      w.write_u64(n.file_count);
      w.write_u64(n.mapped_unit);
    }
    w.write_vec_size(t.free_list_);
    w.write_u64(t.live_nodes_);
    w.write_u64(t.root_);
    w.write_vec_size(t.groups_);
    w.write_vec_size(t.unit_group_);
    w.write_vec_f64(t.level_epsilons_);
    write_lsi(w, t.unit_lsi_);
    w.write_vec_size(t.root_replicas_);
  }

  static void save_variants_state(const std::vector<core::TreeVariant>& vars,
                                  BinaryWriter& w) {
    w.write_u64(vars.size());
    for (const core::TreeVariant& v : vars) {
      write_attr_subset(w, v.dims);
      save_tree(v.tree, w);
    }
  }

  static void save_variants(const Store& s, BinaryWriter& w) {
    save_variants_state(s.variants_, w);
  }

  static void save_sync_state(
      const std::unordered_map<std::size_t, Store::GroupSync>& sync,
      const std::vector<std::size_t>& group_order, BinaryWriter& w) {
    w.write_u64(sync.size());
    // Deterministic order: follow the given group list, then any stragglers
    // (there should be none, but the format does not depend on map order).
    std::vector<std::size_t> order;
    for (std::size_t g : group_order)
      if (sync.count(g)) order.push_back(g);
    const std::size_t ordered = order.size();
    for (const auto& [g, gs] : sync) {
      (void)gs;
      if (std::find(order.begin(), order.end(), g) == order.end())
        order.push_back(g);
    }
    // Stragglers come out of unordered_map iteration; sort them so the
    // image is byte-deterministic.
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(ordered),
              order.end());
    for (std::size_t g : order) {
      const Store::GroupSync& gs = sync.at(g);
      w.write_u64(g);
      write_replica(w, gs.replica);
      write_version_delta(w, gs.pending);
      w.write_u64(gs.changes_since_full_sync);
    }
  }

  static void save_sync(const Store& s, BinaryWriter& w) {
    save_sync_state(s.sync_, s.tree_.groups(), w);
  }

  // ---- encode from a frozen view (concurrent checkpoint) --------------------
  //
  // Each resolver holds the store's freeze lock while it serializes one
  // piece: the copy made by the first post-freeze write where one exists,
  // the untouched live object otherwise. Marking the piece done releases
  // its copy immediately (bounding COW memory to the not-yet-serialized
  // pieces) and tells later mutations to write through without copying.
  // The serving thread only ever blocks for the duration of one piece.

  static void require_frozen(Store& s) {
    const util::MutexLock lock(s.freeze_.mu);
    if (!s.freeze_.active)
      throw PersistError(
          "save_snapshot_frozen requires an active begin_checkpoint()");
  }

  static void save_config_frozen(Store& s, BinaryWriter& w) {
    const util::MutexLock lock(s.freeze_.mu);
    // cfg_ never changes after construction; the mutable scalars come from
    // the eager capture at freeze time.
    save_config_state(s.cfg_, s.freeze_.core.bloom_bits,
                      s.freeze_.core.total_files, s.freeze_.core.rng_state,
                      s.freeze_.core.unit_active, s.freeze_.core.commit_seq,
                      w);
  }

  static void save_standardizer_frozen(Store& s, BinaryWriter& w) {
    const util::MutexLock lock(s.freeze_.mu);
    save_standardizer_state(s.freeze_.core.standardizer, w);
  }

  static void save_units_frozen(Store& s, BinaryWriter& w) {
    const auto [count, watermark] = [&] {
      const util::MutexLock lock(s.freeze_.mu);
      return std::make_pair(s.freeze_.core.unit_count,
                            s.freeze_.core.gc_watermark);
    }();
    w.write_u64(count);
    for (std::size_t u = 0; u < count; ++u) {
      const util::MutexLock lock(s.freeze_.mu);
      if (s.freeze_.unit_state[u] == Store::PieceState::kFrozen) {
        save_unit(*s.freeze_.frozen_units[u], watermark, w);
        s.freeze_.frozen_units[u].reset();
      } else {
        save_unit(s.units_[u], watermark, w);
      }
      s.freeze_.unit_state[u] = Store::PieceState::kDone;
    }
  }

  static void save_tree_frozen(Store& s, BinaryWriter& w) {
    const util::MutexLock lock(s.freeze_.mu);
    save_tree(s.freeze_.tree_state == Store::PieceState::kFrozen
                  ? *s.freeze_.frozen_tree
                  : s.tree_,
              w);
    s.freeze_.frozen_tree.reset();
    s.freeze_.tree_state = Store::PieceState::kDone;
  }

  static void save_variants_frozen(Store& s, BinaryWriter& w) {
    const util::MutexLock lock(s.freeze_.mu);
    save_variants_state(s.freeze_.variants_state == Store::PieceState::kFrozen
                            ? *s.freeze_.frozen_variants
                            : s.variants_,
                        w);
    s.freeze_.frozen_variants.reset();
    s.freeze_.variants_state = Store::PieceState::kDone;
  }

  static void save_sync_frozen(Store& s, BinaryWriter& w) {
    const util::MutexLock lock(s.freeze_.mu);
    // Order by the group list captured at freeze time: the live tree may
    // be mutating concurrently (its section is already serialized, so
    // writes go through uncopied), and the frozen sync map pairs with the
    // frozen-epoch groups anyway. Entries are keyed by group id on the
    // wire, so ordering is determinism, not correctness.
    save_sync_state(s.freeze_.sync_state == Store::PieceState::kFrozen
                        ? *s.freeze_.frozen_sync
                        : s.sync_,
                    s.freeze_.core.group_order, w);
    s.freeze_.frozen_sync.reset();
    s.freeze_.sync_state = Store::PieceState::kDone;
  }

  // ---- decode ---------------------------------------------------------------

  static core::Config load_config(BinaryReader& r) {
    const std::uint32_t nattrs = r.read_u32();
    if (nattrs != metadata::kNumAttrs) {
      throw PersistError("snapshot schema has " + std::to_string(nattrs) +
                         " attributes, binary expects " +
                         std::to_string(metadata::kNumAttrs));
    }
    core::Config c;
    c.num_units = static_cast<std::size_t>(r.read_u64());
    c.fanout = static_cast<std::size_t>(r.read_u64());
    c.min_fill = static_cast<std::size_t>(r.read_u64());
    c.epsilon = r.read_f64();
    c.lsi_rank = static_cast<std::size_t>(r.read_u64());
    c.bloom_bits = static_cast<std::size_t>(r.read_u64());
    c.bloom_hashes = r.read_u32();
    c.bloom_auto_size = r.read_bool();
    c.placement_iters = static_cast<std::size_t>(r.read_u64());
    const std::uint8_t placement = r.read_u8();
    if (placement > 1) throw PersistError("unknown placement policy");
    c.placement = static_cast<core::PlacementPolicy>(placement);
    c.lazy_update_threshold = r.read_f64();
    c.autoconfig_threshold = r.read_f64();
    c.version_ratio = static_cast<std::size_t>(r.read_u64());
    c.versioning_enabled = r.read_bool();
    c.max_groups_per_query = static_cast<std::size_t>(r.read_u64());
    c.seed = r.read_u64();
    c.cost.hop_latency_s = r.read_f64();
    c.cost.bandwidth_bytes_per_s = r.read_f64();
    c.cost.per_message_cpu_s = r.read_f64();
    c.cost.per_record_scan_s = r.read_f64();
    c.cost.per_node_visit_s = r.read_f64();
    c.cost.per_bloom_check_s = r.read_f64();
    return c;
  }

  static Tree load_tree(BinaryReader& r) {
    Tree t;
    t.params_.fanout = static_cast<std::size_t>(r.read_u64());
    t.params_.min_fill = static_cast<std::size_t>(r.read_u64());
    t.params_.epsilon = r.read_f64();
    t.params_.lsi_rank = static_cast<std::size_t>(r.read_u64());
    t.params_.bloom_bits = static_cast<std::size_t>(r.read_u64());
    t.params_.bloom_hashes = r.read_u32();
    t.params_.lsi_dims = r.read_vec_size();

    const std::size_t num_nodes = static_cast<std::size_t>(
        r.read_u64_max(r.remaining(), "node count"));
    t.nodes_.resize(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) {
      core::IndexUnit& n = t.nodes_[i];
      n.node_id = read_index(r, num_nodes, "node id");
      if (n.node_id == core::kInvalidIndex) continue;  // freed slot
      if (n.node_id != i) throw PersistError("node id does not match slot");
      n.level = r.read_i32();
      n.parent = read_index(r, num_nodes, "parent");
      // Level-1 children are storage units (validated against the unit
      // count during assembly); higher levels reference node slots.
      n.children = n.level == 1
                       ? r.read_vec_size()
                       : read_index_vec(r, num_nodes, "child node");
      n.box = read_mbr(r);
      n.name_filter = read_bloom(r);
      n.attr_sum = r.read_vec_f64();
      n.file_count = static_cast<std::size_t>(r.read_u64());
      n.mapped_unit = static_cast<std::size_t>(r.read_u64());
    }
    t.free_list_ = read_index_vec(r, num_nodes, "free-list entry");
    t.live_nodes_ = static_cast<std::size_t>(
        r.read_u64_max(num_nodes, "live node count"));
    t.root_ = read_index(r, num_nodes, "root");
    t.groups_ = read_index_vec(r, num_nodes, "group node");
    t.unit_group_ = r.read_vec_size();
    for (std::size_t g : t.unit_group_) {
      if (g != core::kInvalidIndex && g >= num_nodes)
        throw PersistError("unit-group mapping out of range");
    }
    t.level_epsilons_ = r.read_vec_f64();
    t.unit_lsi_ = read_lsi(r);
    t.root_replicas_ = r.read_vec_size();
    return t;
  }

  // Builds the store before any other thread can see it, so the guarded
  // members are written lock-free by construction; exempted from analysis
  // rather than given locks the unpublished object does not need.
  static std::unique_ptr<Store> assemble(std::uint32_t version,
                                         BinaryReader& config_r,
                                         BinaryReader& std_r,
                                         BinaryReader& units_r,
                                         BinaryReader& tree_r,
                                         BinaryReader& variants_r,
                                         BinaryReader& sync_r)
      SS_NO_THREAD_SAFETY_ANALYSIS {
    core::Config cfg = load_config(config_r);
    auto store = std::make_unique<Store>(cfg);
    Store& s = *store;

    s.bloom_bits_ = static_cast<std::size_t>(config_r.read_u64());
    s.total_files_ = static_cast<std::size_t>(config_r.read_u64());
    std::array<std::uint64_t, 4> rng_state;
    for (auto& word : rng_state) word = config_r.read_u64();
    s.rng_.set_state(rng_state);
    const std::size_t num_units = static_cast<std::size_t>(
        config_r.read_u64_max(config_r.remaining(), "unit count"));
    s.unit_active_.resize(num_units);
    for (std::size_t u = 0; u < num_units; ++u)
      s.unit_active_[u] = config_r.read_bool();
    if (version >= 2) {
      // MVCC clock resumes where the image cut it; v1 images predate the
      // commit counter and restart it at 0 (all records pre-history).
      s.commit_seq_.store(config_r.read_u64(), std::memory_order_relaxed);
    }

    s.standardizer_.means = std_r.read_vec_f64();
    s.standardizer_.inv_stdevs = std_r.read_vec_f64();
    if (s.standardizer_.means.size() != metadata::kNumAttrs ||
        s.standardizer_.inv_stdevs.size() != metadata::kNumAttrs)
      throw PersistError("standardizer dimension mismatch");

    // Units: records are authoritative; the per-unit name/id indexes,
    // counting Bloom filter, MBR and centroid sums are rebuilt via
    // add_file. The rebuilt MBR can only be tighter than the persisted tree
    // boxes (deletes never shrink boxes), so containment invariants hold.
    const std::size_t unit_count =
        static_cast<std::size_t>(units_r.read_u64_max(
            units_r.remaining(), "unit count"));
    if (unit_count != num_units)
      throw PersistError("UNITS/CONFIG unit count mismatch");
    if (s.bloom_bits_ == 0) throw PersistError("bloom bits must be > 0");
    s.units_.clear();
    s.units_.reserve(unit_count);
    for (std::size_t u = 0; u < unit_count; ++u) {
      const std::uint64_t id = units_r.read_u64();
      if (id != u) throw PersistError("unit ids must be dense and in order");
      s.units_.emplace_back(u, s.bloom_bits_, cfg.bloom_hashes);
      const std::size_t nfiles = static_cast<std::size_t>(
          units_r.read_u64_max(units_r.remaining(), "file count"));
      std::vector<metadata::FileMetadata> files;
      files.reserve(nfiles);
      for (std::size_t i = 0; i < nfiles; ++i)
        files.push_back(read_file_meta(units_r));
      std::vector<std::uint64_t> seqs(nfiles, 0);
      if (version >= 2) {
        for (auto& seq : seqs) seq = units_r.read_u64();
      }
      for (std::size_t i = 0; i < nfiles; ++i) {
        s.units_.back().add_file(
            files[i], s.standardizer_.transform(files[i].full_vector()),
            seqs[i]);
      }
      if (version >= 2) {
        const std::size_t ntombs = static_cast<std::size_t>(
            units_r.read_u64_max(units_r.remaining(), "tombstone count"));
        for (std::size_t i = 0; i < ntombs; ++i) {
          core::TombstoneRecord t;
          t.file = read_file_meta(units_r);
          t.added_seq = units_r.read_u64();
          t.deleted_seq = units_r.read_u64();
          if (t.deleted_seq == 0 || t.deleted_seq <= t.added_seq)
            throw PersistError("tombstone with inverted seq window");
          t.std_coords = s.standardizer_.transform(t.file.full_vector());
          s.units_.back().restore_tombstone(std::move(t));
        }
      }
    }

    s.tree_ = load_tree(tree_r);
    if (s.tree_.unit_group_.size() != unit_count)
      throw PersistError("tree unit-group size does not match unit count");

    const std::size_t nvariants = static_cast<std::size_t>(
        variants_r.read_u64_max(variants_r.remaining(), "variant count"));
    s.variants_.clear();
    s.variants_.reserve(nvariants);
    for (std::size_t i = 0; i < nvariants; ++i) {
      core::TreeVariant v;
      v.dims = read_attr_subset(variants_r);
      v.tree = load_tree(variants_r);
      if (v.tree.unit_group_.size() != unit_count)
        throw PersistError("variant unit-group size does not match unit count");
      s.variants_.push_back(std::move(v));
    }

    const std::size_t nsync = static_cast<std::size_t>(
        sync_r.read_u64_max(sync_r.remaining(), "sync group count"));
    s.sync_.clear();
    for (std::size_t i = 0; i < nsync; ++i) {
      const std::size_t g =
          read_index(sync_r, s.tree_.nodes_.size(), "sync group");
      Store::GroupSync gs;
      gs.replica = read_replica(sync_r);
      gs.pending = read_version_delta(sync_r);
      gs.changes_since_full_sync = static_cast<std::size_t>(sync_r.read_u64());
      s.sync_.emplace(g, std::move(gs));
    }

    s.rebuild_unit_locks();

    // A fresh virtual-time cluster: queue occupancy is runtime state, a
    // restarted deployment begins with idle queues at time zero.
    s.cluster_ = std::make_unique<sim::Cluster>(unit_count, cfg.cost);
    for (std::size_t u = 0; u < unit_count; ++u)
      if (!s.unit_active_[u]) s.cluster_->set_node_alive(u, false);

    if (!s.check_invariants())
      throw PersistError("reassembled deployment fails invariant checks");
    return store;
  }
};

// ---- public entry points ----------------------------------------------------

namespace {

void append_section(BinaryWriter& out, std::uint32_t id,
                    const BinaryWriter& payload) {
  out.write_u32(id);
  out.write_u64(payload.size());
  out.write_bytes(payload.buffer().data(), payload.size());
  out.write_u32(util::crc32(payload.buffer().data(), payload.size()));
}

struct SectionView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  bool present() const { return data != nullptr || size > 0; }
};

/// Decodes a WALFENCE section payload (checksum already verified by the
/// section walk). Shared by load_snapshot and read_snapshot_fence.
WalFence decode_fence_section(const std::uint8_t* data, std::size_t size) {
  WalFence fence;
  BinaryReader fr(data, size);
  fence.generation = fr.read_u64();
  fence.records = fr.read_u64();
  fence.present = true;
  if (!fr.at_end()) {  // sharded frontier (absent in older snapshots)
    const std::size_t nshards = static_cast<std::size_t>(
        fr.read_u64_max(fr.remaining(), "fence shard count"));
    fence.shards.reserve(nshards);
    for (std::size_t i = 0; i < nshards; ++i) {
      ShardFence s;
      s.shard = fr.read_u64();
      s.generation = fr.read_u64();
      s.records = fr.read_u64();
      fence.shards.push_back(s);
    }
  }
  return fence;
}

void append_fence_section(BinaryWriter& out, const WalFence& fence) {
  BinaryWriter sec;
  sec.write_u64(fence.generation);
  sec.write_u64(fence.records);
  // Sharded frontier vector, appended after the legacy pair: decoders
  // that predate sharding stop after the pair; sharded decoders read on.
  sec.write_u64(fence.shards.size());
  for (const ShardFence& s : fence.shards) {
    sec.write_u64(s.shard);
    sec.write_u64(s.generation);
    sec.write_u64(s.records);
  }
  append_section(out, kSecWalFence, sec);
}

/// The one snapshot skeleton both save paths share: section order, crash
/// boundaries, header/fence bytes and the atomic publish are identical by
/// construction; only the per-section serializer differs (live state vs
/// frozen-view resolution). `fill(id, w)` writes section `id`'s payload.
template <typename FillSection>
void save_snapshot_image(FillSection&& fill, const WalFence& fence,
                         const std::string& path) {
  static constexpr struct {
    std::uint32_t id;
    const char* fault;
  } kSections[] = {
      {kSecConfig, "snapshot:section:config"},
      {kSecStandardizer, "snapshot:section:standardizer"},
      {kSecUnits, "snapshot:section:units"},
      {kSecTree, "snapshot:section:tree"},
      {kSecVariants, "snapshot:section:variants"},
      {kSecSync, "snapshot:section:sync"},
  };

  BinaryWriter out;
  out.write_bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  out.write_u32(kSnapshotFormatVersion);
  out.write_u32(fence.present ? 7 : 6);  // section count

  BinaryWriter sec;
  for (const auto& s : kSections) {
    fault_point(s.fault);
    sec.clear();
    fill(s.id, sec);
    append_section(out, s.id, sec);
  }
  if (fence.present) {
    fault_point("snapshot:section:walfence");
    append_fence_section(out, fence);
  }

  write_file_atomic_faulted(path, out.buffer(), "snapshot:write");
}

}  // namespace

void save_snapshot(const core::SmartStore& store, const std::string& path,
                   const WalFence& fence) {
  save_snapshot_image(
      [&store](std::uint32_t id, BinaryWriter& w) {
        switch (id) {
          case kSecConfig: SnapshotAccess::save_config(store, w); break;
          case kSecStandardizer:
            SnapshotAccess::save_standardizer(store, w);
            break;
          case kSecUnits: SnapshotAccess::save_units(store, w); break;
          case kSecTree: SnapshotAccess::save_tree(store.tree(), w); break;
          case kSecVariants: SnapshotAccess::save_variants(store, w); break;
          case kSecSync: SnapshotAccess::save_sync(store, w); break;
        }
      },
      fence, path);
}

void save_snapshot_frozen(core::SmartStore& store, const std::string& path,
                          const WalFence& fence) {
  SnapshotAccess::require_frozen(store);
  // Each piece is resolved (frozen copy vs untouched live object) under
  // the store's freeze lock, one section at a time.
  save_snapshot_image(
      [&store](std::uint32_t id, BinaryWriter& w) {
        switch (id) {
          case kSecConfig: SnapshotAccess::save_config_frozen(store, w); break;
          case kSecStandardizer:
            SnapshotAccess::save_standardizer_frozen(store, w);
            break;
          case kSecUnits: SnapshotAccess::save_units_frozen(store, w); break;
          case kSecTree: SnapshotAccess::save_tree_frozen(store, w); break;
          case kSecVariants:
            SnapshotAccess::save_variants_frozen(store, w);
            break;
          case kSecSync: SnapshotAccess::save_sync_frozen(store, w); break;
        }
      },
      fence, path);
}

std::unique_ptr<core::SmartStore> load_snapshot(const std::string& path,
                                                WalFence* fence_out) {
  // Distinguish "no snapshot" from "unreadable snapshot" up front: the
  // former is a typed kNotFound (a fresh directory, or a deployment that
  // never checkpointed), the corruption paths below stay kCorruption.
  std::error_code exists_ec;
  if (!std::filesystem::exists(path, exists_ec)) {
    throw PersistError("snapshot not found: " + path,
                       PersistError::Code::kNotFound);
  }
  const std::vector<std::uint8_t> bytes = util::read_file_bytes(path);
  BinaryReader r(bytes);

  if (r.remaining() < sizeof(kSnapshotMagic))
    throw PersistError("snapshot too short for magic: " + path);
  char magic[sizeof(kSnapshotMagic)];
  for (char& c : magic) c = static_cast<char>(r.read_u8());
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    throw PersistError("bad snapshot magic: " + path);
  const std::uint32_t version = r.read_u32();
  if (version == 0 || version > kSnapshotFormatVersion) {
    throw PersistError("unsupported snapshot format version " +
                       std::to_string(version));
  }
  const std::uint32_t nsections = r.read_u32();

  SectionView sections[kMaxSection + 1];
  for (std::uint32_t i = 0; i < nsections; ++i) {
    const std::uint32_t id = r.read_u32();
    const std::uint64_t len = r.read_u64();
    if (r.remaining() < 4 || len > r.remaining() - 4)
      throw PersistError("truncated snapshot section " + std::to_string(id));
    const std::uint8_t* payload = bytes.data() + r.position();
    r.skip(static_cast<std::size_t>(len));
    const std::uint32_t stored_crc = r.read_u32();
    if (util::crc32(payload, static_cast<std::size_t>(len)) != stored_crc) {
      throw PersistError("checksum mismatch in snapshot section " +
                         std::to_string(id));
    }
    if (id >= 1 && id <= kMaxSection) {
      sections[id] = {payload, static_cast<std::size_t>(len)};
    }
    // Unknown ids: checksummed and skipped (forward compatibility).
  }
  for (std::uint32_t id = 1; id <= 6; ++id) {  // WALFENCE (7) is optional
    if (!sections[id].present())
      throw PersistError("snapshot missing section " + std::to_string(id));
  }

  if (fence_out) {
    *fence_out = WalFence{};
    if (sections[kSecWalFence].present()) {
      *fence_out = decode_fence_section(sections[kSecWalFence].data,
                                        sections[kSecWalFence].size);
    }
  }

  BinaryReader config_r(sections[kSecConfig].data, sections[kSecConfig].size);
  BinaryReader std_r(sections[kSecStandardizer].data,
                     sections[kSecStandardizer].size);
  BinaryReader units_r(sections[kSecUnits].data, sections[kSecUnits].size);
  BinaryReader tree_r(sections[kSecTree].data, sections[kSecTree].size);
  BinaryReader variants_r(sections[kSecVariants].data,
                          sections[kSecVariants].size);
  BinaryReader sync_r(sections[kSecSync].data, sections[kSecSync].size);
  return SnapshotAccess::assemble(version, config_r, std_r, units_r, tree_r,
                                  variants_r, sync_r);
}

WalFence read_snapshot_fence(const std::string& path) {
  std::error_code exists_ec;
  if (!std::filesystem::exists(path, exists_ec)) {
    throw PersistError("snapshot not found: " + path,
                       PersistError::Code::kNotFound);
  }
  const std::vector<std::uint8_t> bytes = util::read_file_bytes(path);
  BinaryReader r(bytes);
  if (r.remaining() < sizeof(kSnapshotMagic))
    throw PersistError("snapshot too short for magic: " + path);
  char magic[sizeof(kSnapshotMagic)];
  for (char& c : magic) c = static_cast<char>(r.read_u8());
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0)
    throw PersistError("bad snapshot magic: " + path);
  const std::uint32_t version = r.read_u32();
  if (version == 0 || version > kSnapshotFormatVersion) {
    throw PersistError("unsupported snapshot format version " +
                       std::to_string(version));
  }
  const std::uint32_t nsections = r.read_u32();
  for (std::uint32_t i = 0; i < nsections; ++i) {
    const std::uint32_t id = r.read_u32();
    const std::uint64_t len = r.read_u64();
    if (r.remaining() < 4 || len > r.remaining() - 4)
      throw PersistError("truncated snapshot section " + std::to_string(id));
    const std::uint8_t* payload = bytes.data() + r.position();
    r.skip(static_cast<std::size_t>(len));
    const std::uint32_t stored_crc = r.read_u32();
    if (id != kSecWalFence) continue;  // only the fence section matters here
    if (util::crc32(payload, static_cast<std::size_t>(len)) != stored_crc) {
      throw PersistError("checksum mismatch in snapshot section " +
                         std::to_string(id));
    }
    return decode_fence_section(payload, static_cast<std::size_t>(len));
  }
  return WalFence{};  // no fence section: present == false
}

}  // namespace smartstore::persist
