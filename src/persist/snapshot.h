// Binary snapshots of a full SmartStore deployment.
//
// A snapshot is the durable image of everything build() computes — file
// records and their storage-unit membership, the semantic R-tree (MBRs,
// Bloom filters, centroid sums, index-unit mapping), the fitted LSI model,
// auto-configured tree variants, and the per-group replica/version sync
// state — so a process restart resumes serving without re-running
// SVD, balanced k-means or bottom-up tree construction.
//
// On-disk layout (all integers little-endian):
//
//   [8B magic "SSNAPv01"] [u32 format version] [u32 section count]
//   then per section:
//   [u32 section id] [u64 payload length] [payload] [u32 CRC-32 of payload]
//
// Sections: CONFIG (Config + rng state + active flags), STANDARDIZER,
// UNITS (records per storage unit), TREE, VARIANTS, SYNC (group replicas,
// sealed versions, pending deltas), and an optional WALFENCE written by
// checkpoint() — the (generation, record count) of the WAL whose effects
// this snapshot already contains, so recovery never replays them twice.
// Every section is independently checksummed; a flipped bit or truncation
// anywhere fails the load with a PersistError instead of resurrecting a
// corrupt deployment.
//
// What is deliberately NOT persisted: the virtual-time cluster's queue
// occupancy (a restart begins at simulated time zero with idle queues) and
// derived per-unit structures (counting Bloom filters, name/id indexes,
// standardized coordinates), which are rebuilt from the records on load.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "core/smartstore.h"

namespace smartstore::persist {

/// Raised on any malformed snapshot or WAL: bad magic, unsupported version,
/// checksum mismatch, truncation, or cross-section inconsistency. Each
/// error carries a coarse code so exception-free surfaces (the db facade's
/// Status boundary, recover(dir, out)) can type the failure instead of
/// string-matching messages: kCorruption is the default (malformed bytes),
/// kNotFound marks a missing snapshot, kIo an OS-level open/write/stat
/// failure on otherwise well-formed state.
class PersistError : public std::runtime_error {
 public:
  enum class Code { kCorruption, kNotFound, kIo };

  explicit PersistError(const std::string& msg,
                        Code code = Code::kCorruption)
      : std::runtime_error(msg), code_(code) {}

  Code code() const { return code_; }

 private:
  Code code_;
};

inline constexpr char kSnapshotMagic[8] = {'S', 'S', 'N', 'A',
                                           'P', 'v', '0', '1'};
/// Version 2 adds MVCC state: the CONFIG section appends the commit seq,
/// and each UNITS entry appends per-record added_seqs plus the tombstone
/// chain still visible above the GC watermark at save time. The loader
/// accepts version 1 (every record loads as pre-history, seq 0).
inline constexpr std::uint32_t kSnapshotFormatVersion = 2;

/// One shard's slice of a sharded-WAL fence: records [0, records) of
/// wal/<shard>.log under `generation` are reflected in the snapshot.
struct ShardFence {
  std::uint64_t shard = 0;
  std::uint64_t generation = 0;
  std::uint64_t records = 0;
};

/// The WAL prefix a snapshot subsumes. For a single-log deployment,
/// records [0, records) of the log whose header generation is `generation`
/// are already reflected in the snapshotted state. For a sharded
/// deployment `shards` carries one (generation, records) frontier entry
/// per WAL shard instead (and the legacy pair is zero). `present` is
/// false when the snapshot carries no fence (one saved outside the
/// checkpoint protocol). The WALFENCE section encodes the legacy pair
/// first and appends the shard vector, so pre-sharding snapshots decode
/// with `shards` empty and old binaries ignore the extra bytes they never
/// read.
struct WalFence {
  std::uint64_t generation = 0;
  std::uint64_t records = 0;
  bool present = false;
  std::vector<ShardFence> shards;
};

/// Serializes the deployment and writes it atomically (temp file + rename +
/// directory fsync). A present `fence` is recorded in the WALFENCE section.
void save_snapshot(const core::SmartStore& store, const std::string& path,
                   const WalFence& fence = {});

/// Serializes the frozen view of a store whose begin_checkpoint() is
/// active, while a serving thread keeps mutating it. Pieces are resolved
/// one at a time under the store's freeze lock — a copy made by the first
/// post-freeze write where one exists, the untouched live object where
/// not — so the written image is exactly the state at the freeze epoch.
/// Serialized pieces are marked done (their frozen copies are released and
/// later writes stop copying), which is why the store reference is
/// non-const. Publication is the same atomic temp+rename+dir-fsync.
void save_snapshot_frozen(core::SmartStore& store, const std::string& path,
                          const WalFence& fence);

/// Loads and verifies a snapshot, reassembling a ready-to-serve deployment.
/// Throws PersistError (or util::BinaryIoError) on any corruption; the
/// returned store has passed check_invariants(). When `fence_out` is given
/// it receives the snapshot's WAL fence (present = false if none).
std::unique_ptr<core::SmartStore> load_snapshot(const std::string& path,
                                                WalFence* fence_out = nullptr);

/// Reads ONLY the WALFENCE section of a snapshot (checksum-verified),
/// without assembling the store — the incremental-checkpoint engine uses
/// it to adopt an existing full image as a delta chain's base, where the
/// fence says which WAL prefix that base already covers. Returns a fence
/// with `present == false` when the snapshot carries none. Throws
/// PersistError on a missing or malformed file, like load_snapshot.
WalFence read_snapshot_fence(const std::string& path);

}  // namespace smartstore::persist
