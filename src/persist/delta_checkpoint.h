// The incremental-checkpoint engine: WAL-delta cuts and compaction folds
// over the on-disk layout in persist/segment.h.
//
// A *cut* is the cheap, frequent operation. Inside one store mutation
// barrier (exclusive structure lock, NO freeze/COW) it commits every WAL
// shard and records the frontier, the commit seq, and — since mutators
// hold their unit lock across stamp+apply — a state every stamped record
// is part of. It then, fully concurrent with resumed traffic, copies each
// contributing shard's new-records slice into that unit's segment file,
// publishes a manifest whose chain grew by one cut, and rebases the WAL.
// A unit with no records since the previous cut contributes nothing; a
// wholly cold store makes the cut a no-op (no manifest write, no rebase).
//
// A *fold* is the compaction: the classic fuzzy-checkpoint protocol
// (persist/bg_checkpoint.h) writing a fresh FULL image to ckpt/base-<id>,
// published under a manifest with an EMPTY chain — concurrent with live
// traffic via the store's epoch-freeze/COW, honoring the MVCC GC
// watermark the frozen core captures. Superseded bases and segments are
// pruned afterwards. The engine escalates a cut to a fold on its own when
// there is no usable base to chain from: a never-checkpointed store, or a
// leftover pre-sharding wal.bin with live records (whose replay order
// cannot be expressed as a delta chain).
//
// Crash windows (the crash-injection suite sweeps every publish stage):
//   * before the manifest publish: at worst orphan segment bytes past the
//     previous manifest's known end — invisible to recovery, truncated by
//     the next cut;
//   * between publish and rebase: the manifest fence matches the shard
//     generations, so recovery skips exactly the records the new delta
//     carries (and the next cut skips the same prefix) — nothing applies
//     twice;
//   * after the rebase: generations changed, the whole remaining tail
//     replays over base + deltas.
// In every window each acknowledged write is in the base, a delta, or the
// WAL — never nowhere, never twice.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/smartstore.h"
#include "persist/segment.h"
#include "persist/wal_shard.h"
#include "util/annotated_mutex.h"

namespace smartstore::persist {

struct DeltaCutStats {
  bool folded = false;  ///< the operation compacted to a fresh base image
  bool noop = false;    ///< wholly cold store: nothing written at all
  std::uint64_t cut_seq = 0;          ///< commit seq at the barrier
  std::uint64_t delta_records = 0;    ///< records captured this operation
  std::uint64_t delta_bytes = 0;      ///< segment bytes appended this op
  std::uint64_t units_contributing = 0;
  std::uint64_t units_cold = 0;       ///< fenced shards with no new records
  std::uint64_t chain_len = 0;        ///< cuts in the chain afterwards
  std::uint64_t chain_bytes = 0;      ///< delta bytes in the chain afterwards
  std::size_t base_bytes = 0;         ///< fold only: size of the new image
  double seconds = 0;
};

/// One engine per deployment directory; every cut and fold serializes on
/// its internal mutex (rank kCompactor — legal to hold across the store's
/// structure/freeze locks), so a scheduled background fold and a cadence
/// cut can never interleave their publish steps.
class DeltaEngine {
 public:
  /// `store` and `wal` must outlive the engine; `wal` must own
  /// <dir>/wal/ (same pairing rule as the background checkpointer).
  DeltaEngine(core::SmartStore& store, ShardedWal& wal, std::string dir);

  DeltaEngine(const DeltaEngine&) = delete;
  DeltaEngine& operator=(const DeltaEngine&) = delete;

  /// Takes one delta cut (escalating to a fold when no usable base
  /// exists). Runs on the caller's thread; concurrent mutations proceed
  /// except during the O(1) barrier.
  DeltaCutStats cut();

  /// Folds the whole chain into a fresh base image (full compaction).
  DeltaCutStats fold();

  /// Rebuilds the store exactly as of the last cut, OFFLINE, from the
  /// manifest's base + delta chain only — no WAL scan, so it is immune to
  /// concurrent appends. Replication bootstrap uses it to ship a
  /// snapshot-at-cut without freezing the serving store. Throws
  /// PersistError kNotFound when no manifest exists; `seq_out` (optional)
  /// receives the chain's last cut seq.
  std::unique_ptr<core::SmartStore> reconstruct_at_last_cut(
      std::uint64_t* seq_out = nullptr);

  /// Drops the cached manifest so the next cut re-reads disk. The db
  /// facade calls this after a quiesced full checkpoint removed the
  /// incremental state out from under the engine.
  void invalidate();

  // ---- introspection (safe from any thread) -------------------------------

  std::uint64_t cuts() const { return cuts_.load(std::memory_order_relaxed); }
  std::uint64_t folds() const {
    return folds_.load(std::memory_order_relaxed);
  }
  std::uint64_t chain_len() const {
    return chain_len_.load(std::memory_order_relaxed);
  }
  std::uint64_t chain_bytes() const {
    return chain_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_cut_seq() const {
    return last_cut_seq_.load(std::memory_order_relaxed);
  }
  /// Segment bytes appended across every cut (lifetime total) — the
  /// numerator of the "incremental writes ≪ full-image bytes" claim.
  std::uint64_t total_delta_bytes() const {
    return total_delta_bytes_.load(std::memory_order_relaxed);
  }

  const std::string& dir() const { return dir_; }

 private:
  /// Loads (or adopts) the manifest; returns false when the chain cannot
  /// be continued and the caller must fold instead.
  bool ensure_manifest_locked() SS_REQUIRES(mu_);
  DeltaCutStats fold_locked() SS_REQUIRES(mu_);
  void publish_stats_locked(const DeltaManifest& m) SS_REQUIRES(mu_);

  core::SmartStore& store_;
  ShardedWal& wal_;
  std::string dir_;

  /// Serializes cut/fold end to end. kCompactor ranks below every store
  /// lock, so holding it across mutation_barrier/begin_checkpoint is legal.
  mutable util::Mutex mu_{util::LockRank::kCompactor};
  bool loaded_ SS_GUARDED_BY(mu_) = false;
  DeltaManifest manifest_ SS_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> cuts_{0};
  std::atomic<std::uint64_t> folds_{0};
  std::atomic<std::uint64_t> chain_len_{0};
  std::atomic<std::uint64_t> chain_bytes_{0};
  std::atomic<std::uint64_t> last_cut_seq_{0};
  std::atomic<std::uint64_t> total_delta_bytes_{0};
};

}  // namespace smartstore::persist
