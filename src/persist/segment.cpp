#include "persist/segment.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "persist/fault.h"
#include "util/binary_io.h"
#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace smartstore::persist {

namespace fs = std::filesystem;

namespace {

void sync_file(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0)
    throw PersistError("cannot flush segment: " + path,
                       PersistError::Code::kIo);
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(::fileno(f)) != 0)
    throw PersistError("cannot fsync segment: " + path,
                       PersistError::Code::kIo);
#endif
}

void encode_fence(util::BinaryWriter& w, const WalFence& f) {
  w.write_u64(f.generation);
  w.write_u64(f.records);
  w.write_u8(f.present ? 1 : 0);
  w.write_u64(f.shards.size());
  for (const ShardFence& s : f.shards) {
    w.write_u64(s.shard);
    w.write_u64(s.generation);
    w.write_u64(s.records);
  }
}

WalFence decode_fence(util::BinaryReader& r) {
  WalFence f;
  f.generation = r.read_u64();
  f.records = r.read_u64();
  f.present = r.read_u8() != 0;
  const std::uint64_t nshards =
      r.read_u64_max(r.remaining(), "manifest fence shard count");
  for (std::uint64_t i = 0; i < nshards; ++i) {
    ShardFence s;
    s.shard = r.read_u64();
    s.generation = r.read_u64();
    s.records = r.read_u64();
    f.shards.push_back(s);
  }
  return f;
}

/// The chain-CRC input for one cut: the previous link's CRC followed by
/// every field of this cut (sans its own chain CRC).
std::uint32_t chain_link_crc(std::uint32_t prev, const DeltaCut& c) {
  util::BinaryWriter w;
  w.write_u32(prev);
  w.write_u64(c.cut_id);
  w.write_u64(c.cut_seq);
  w.write_u64(c.extents.size());
  for (const DeltaExtent& e : c.extents) {
    w.write_u64(e.unit);
    w.write_u64(e.offset);
    w.write_u64(e.length);
    w.write_u64(e.records);
    w.write_u32(e.crc);
  }
  return util::crc32(w.buffer().data(), w.size());
}

[[noreturn]] void corrupt(const std::string& what) {
  throw PersistError("delta manifest corrupt: " + what,
                     PersistError::Code::kCorruption);
}

}  // namespace

std::uint64_t DeltaManifest::segment_end(std::uint64_t unit) const {
  std::uint64_t end = kSegmentHeaderBytes;
  for (const DeltaCut& c : cuts)
    for (const DeltaExtent& e : c.extents)
      if (e.unit == unit) end = std::max(end, e.offset + e.length);
  return end;
}

std::uint64_t DeltaManifest::fenced_records(std::uint64_t shard,
                                            std::uint64_t generation) const {
  if (!fence.present) return 0;
  for (const ShardFence& s : fence.shards)
    if (s.shard == shard) return s.generation == generation ? s.records : 0;
  return 0;
}

std::string ckpt_dir(const std::string& dir) { return dir + "/ckpt"; }

std::string manifest_path(const std::string& dir) {
  return ckpt_dir(dir) + "/MANIFEST";
}

std::string base_path(const std::string& dir, std::uint64_t base_id) {
  return ckpt_dir(dir) + "/base-" + std::to_string(base_id) + ".bin";
}

std::string segment_dir(const std::string& dir) {
  return ckpt_dir(dir) + "/units";
}

std::string segment_path(const std::string& dir, std::uint64_t unit) {
  return segment_dir(dir) + "/" + std::to_string(unit) + ".seg";
}

bool manifest_exists(const std::string& dir) {
  std::error_code ec;
  return fs::exists(manifest_path(dir), ec);
}

DeltaManifest read_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  if (!manifest_exists(dir))
    throw PersistError("no delta manifest: " + path,
                       PersistError::Code::kNotFound);
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const util::BinaryIoError& e) {
    throw PersistError(e.what(), PersistError::Code::kIo);
  }

  try {
    if (bytes.size() < sizeof(kManifestMagic) + 4) corrupt("truncated header");
    if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0)
      corrupt("bad magic");
    // The trailer CRC covers everything between the magic and itself.
    const std::size_t body = bytes.size() - sizeof(kManifestMagic) - 4;
    util::BinaryReader tr(bytes.data() + sizeof(kManifestMagic) + body, 4);
    if (tr.read_u32() !=
        util::crc32(bytes.data() + sizeof(kManifestMagic), body))
      corrupt("trailer checksum mismatch");

    util::BinaryReader r(bytes.data() + sizeof(kManifestMagic), body);
    if (r.read_u32() != kManifestFormatVersion)
      corrupt("unsupported format version");
    DeltaManifest m;
    m.manifest_id = r.read_u64();
    const std::uint8_t kind = r.read_u8();
    if (kind != static_cast<std::uint8_t>(BaseKind::kLegacySnapshot) &&
        kind != static_cast<std::uint8_t>(BaseKind::kCheckpointBase))
      corrupt("unknown base kind");
    m.base_kind = static_cast<BaseKind>(kind);
    m.base_id = r.read_u64();
    m.last_cut_seq = r.read_u64();
    m.fence = decode_fence(r);
    const std::uint64_t ncuts = r.read_u64_max(r.remaining(), "cut count");
    std::uint32_t prev_crc = 0;
    for (std::uint64_t i = 0; i < ncuts; ++i) {
      DeltaCut c;
      c.cut_id = r.read_u64();
      c.cut_seq = r.read_u64();
      const std::uint64_t next =
          r.read_u64_max(r.remaining(), "extent count");
      for (std::uint64_t j = 0; j < next; ++j) {
        DeltaExtent e;
        e.unit = r.read_u64();
        e.offset = r.read_u64();
        e.length = r.read_u64();
        e.records = r.read_u64();
        e.crc = r.read_u32();
        c.extents.push_back(e);
      }
      c.chain_crc = r.read_u32();
      if (c.chain_crc != chain_link_crc(prev_crc, c))
        corrupt("chain checksum mismatch at cut " + std::to_string(c.cut_id));
      prev_crc = c.chain_crc;
      m.cuts.push_back(std::move(c));
    }
    if (!r.at_end()) corrupt("trailing bytes");
    return m;
  } catch (const util::BinaryIoError& e) {
    corrupt(e.what());
  }
}

void write_manifest(const std::string& dir, const DeltaManifest& m) {
  std::error_code ec;
  fs::create_directories(ckpt_dir(dir), ec);

  util::BinaryWriter body;
  body.write_u32(kManifestFormatVersion);
  body.write_u64(m.manifest_id);
  body.write_u8(static_cast<std::uint8_t>(m.base_kind));
  body.write_u64(m.base_id);
  body.write_u64(m.last_cut_seq);
  encode_fence(body, m.fence);
  body.write_u64(m.cuts.size());
  std::uint32_t prev_crc = 0;
  for (const DeltaCut& c : m.cuts) {
    body.write_u64(c.cut_id);
    body.write_u64(c.cut_seq);
    body.write_u64(c.extents.size());
    for (const DeltaExtent& e : c.extents) {
      body.write_u64(e.unit);
      body.write_u64(e.offset);
      body.write_u64(e.length);
      body.write_u64(e.records);
      body.write_u32(e.crc);
    }
    prev_crc = chain_link_crc(prev_crc, c);
    body.write_u32(prev_crc);
  }

  util::BinaryWriter out;
  out.write_bytes(kManifestMagic, sizeof(kManifestMagic));
  out.write_bytes(body.buffer().data(), body.size());
  out.write_u32(util::crc32(body.buffer().data(), body.size()));
  write_file_atomic_faulted(manifest_path(dir), out.buffer(),
                            "ckpt:manifest");
}

DeltaExtent append_segment_extent(const std::string& dir, std::uint64_t unit,
                                  const std::vector<WalRecord>& records,
                                  std::uint64_t known_end) {
  const std::string path = segment_path(dir, unit);
  std::error_code ec;
  fs::create_directories(segment_dir(dir), ec);

  if (!fs::exists(path, ec)) {
    util::BinaryWriter header;
    header.write_bytes(kSegmentMagic, sizeof(kSegmentMagic));
    header.write_u64(unit);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
      throw PersistError("cannot create segment: " + path,
                         PersistError::Code::kIo);
    const bool ok = std::fwrite(header.buffer().data(), 1, header.size(), f) ==
                    header.size();
    if (ok) sync_file(f, path);
    std::fclose(f);
    if (!ok)
      throw PersistError("short write creating segment: " + path,
                         PersistError::Code::kIo);
    util::fsync_parent_dir(path);
  }

  // Drop orphan bytes a crashed cut may have appended past the last
  // manifest-known end; splicing the new extent behind them would put its
  // manifest offset out of step with the file.
  fault_point("delta:seg:pre-truncate");
  const std::uintmax_t size = fs::file_size(path, ec);
  if (ec)
    throw PersistError("cannot stat segment: " + path,
                       PersistError::Code::kIo);
  if (size < known_end)
    throw PersistError("segment shorter than manifest extent end: " + path,
                       PersistError::Code::kCorruption);
  if (size > known_end) {
    fs::resize_file(path, known_end, ec);
    if (ec)
      throw PersistError("cannot truncate segment: " + path,
                         PersistError::Code::kIo);
  }

  util::BinaryWriter payload;
  for (const WalRecord& rec : records)
    encode_wal_record(payload, rec, /*with_seq=*/true);

  fault_point("delta:seg:pre-append");
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f)
    throw PersistError("cannot open segment for append: " + path,
                       PersistError::Code::kIo);
  bool ok = std::fwrite(payload.buffer().data(), 1, payload.size(), f) ==
            payload.size();
  if (ok) {
    try {
      fault_point("delta:seg:pre-sync");
      sync_file(f, path);
    } catch (...) {
      std::fclose(f);
      throw;
    }
  }
  std::fclose(f);
  if (!ok)
    throw PersistError("short write appending segment extent: " + path,
                       PersistError::Code::kIo);

  DeltaExtent ext;
  ext.unit = unit;
  ext.offset = known_end;
  ext.length = payload.size();
  ext.records = records.size();
  ext.crc = util::crc32(payload.buffer().data(), payload.size());
  return ext;
}

void read_segment_extent(const std::string& dir, const DeltaExtent& ext,
                         std::vector<WalRecord>* out) {
  const std::string path = segment_path(dir, ext.unit);
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const util::BinaryIoError& e) {
    throw PersistError(e.what(), PersistError::Code::kIo);
  }
  if (bytes.size() < kSegmentHeaderBytes ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0)
    throw PersistError("segment header corrupt: " + path,
                       PersistError::Code::kCorruption);
  if (ext.offset + ext.length > bytes.size())
    throw PersistError("segment extent out of bounds: " + path,
                       PersistError::Code::kCorruption);
  if (util::crc32(bytes.data() + ext.offset,
                  static_cast<std::size_t>(ext.length)) != ext.crc)
    throw PersistError("segment extent checksum mismatch: " + path,
                       PersistError::Code::kCorruption);
  util::BinaryReader r(bytes.data() + ext.offset,
                       static_cast<std::size_t>(ext.length));
  try {
    for (std::uint64_t i = 0; i < ext.records; ++i) {
      WalRecord rec;
      if (!decode_wal_record(r, /*with_seq=*/true, &rec))
        throw PersistError("segment extent has unknown record type: " + path,
                           PersistError::Code::kCorruption);
      out->push_back(std::move(rec));
    }
    if (!r.at_end())
      throw PersistError("segment extent has trailing bytes: " + path,
                         PersistError::Code::kCorruption);
  } catch (const util::BinaryIoError& e) {
    throw PersistError("segment extent truncated: " + path + ": " + e.what(),
                       PersistError::Code::kCorruption);
  }
}

void remove_ckpt_state(const std::string& dir) {
  std::error_code ec;
  // Unlink the manifest first: it is the commit point of the incremental
  // layout, and a crash after it is gone but before the bases/segments are
  // must leave only unreferenced garbage, never a manifest pointing at
  // deleted files.
  fs::remove(manifest_path(dir), ec);
  util::fsync_parent_dir(manifest_path(dir));
  fs::remove_all(ckpt_dir(dir), ec);
}

void prune_ckpt_files(const std::string& dir, const DeltaManifest& m) {
  std::error_code ec;
  if (!fs::exists(ckpt_dir(dir), ec)) return;
  // Live set: the referenced base image plus every unit with an extent.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(ckpt_dir(dir), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("base-", 0) != 0) continue;
    if (m.base_kind == BaseKind::kCheckpointBase &&
        entry.path().string() == base_path(dir, m.base_id))
      continue;
    std::error_code rm_ec;
    fs::remove(entry.path(), rm_ec);
  }
  if (!fs::exists(segment_dir(dir), ec)) return;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(segment_dir(dir), ec)) {
    const std::string name = entry.path().filename().string();
    bool live = false;
    for (const DeltaCut& c : m.cuts) {
      for (const DeltaExtent& e : c.extents) {
        if (name == std::to_string(e.unit) + ".seg") {
          live = true;
          break;
        }
      }
      if (live) break;
    }
    if (!live) {
      std::error_code rm_ec;
      fs::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace smartstore::persist
