// Deployment-directory recovery: the checkpoint/recover protocol over a
// snapshot file plus a WAL — single-log or sharded.
//
//   <dir>/snapshot.bin   full deployment image (persist/snapshot.h)
//   <dir>/wal.bin        mutations since that snapshot (persist/wal.h)
//   <dir>/wal/<u>.log    sharded flavour: one v03 log per storage unit
//                        (persist/wal_shard.h)
//
// checkpoint() fences before it switches: the snapshot it writes records
// the WAL frontier — a (generation, record count) pair for the single log,
// or one such entry per shard — in its WALFENCE section, then the rename
// atomically publishes the snapshot, then the log(s) are emptied/rebased
// under new generations. recover() loads the snapshot and replays the
// valid prefix of whatever logs exist through the store's own mutation
// API, skipping each log's fenced prefix when generations match; sharded
// records are merged across shards by their store-wide sequence number
// first, reconstructing one mutation order. A crash anywhere inside
// checkpoint() recovers exactly, per log: before the rename the old
// snapshot+log pair is intact; between rename and reset/rebase the fence
// suppresses the double replay; after it the generation changed and the
// whole tail replays. A torn or truncated tail rolls any log back to its
// last group-commit boundary — in the sharded layout that loses only
// *unacknowledged* records of that shard, never an acknowledged record of
// another shard.
#pragma once

#include <memory>
#include <string>

#include "core/smartstore.h"
#include "persist/segment.h"
#include "persist/wal.h"
#include "persist/wal_shard.h"
#include "smartstore/status.h"

namespace smartstore::persist {

std::string snapshot_path(const std::string& dir);
std::string wal_path(const std::string& dir);

struct RecoveryResult {
  std::unique_ptr<core::SmartStore> store;
  std::size_t wal_blocks = 0;
  std::size_t wal_records = 0;   ///< replayed (fenced prefix excluded)
  std::size_t wal_fenced = 0;    ///< skipped: already in the snapshot
  std::size_t wal_shards = 0;    ///< shard logs scanned (0 = single-log dir)
  bool wal_tail_torn = false;    ///< any log had a torn tail dropped
  bool used_manifest = false;    ///< base came from the delta-chain layout
  std::size_t delta_cuts = 0;    ///< chain links applied under the manifest
  std::size_t delta_records = 0; ///< delta records applied before the tail
};

/// Applies one logged record through the store's mutation API.
void apply_record(core::SmartStore& store, const WalRecord& rec);

/// Replays a scanned log into `store`; returns the number of records applied.
std::size_t replay(core::SmartStore& store, const WalScan& scan);

/// recover()'s replay half, reusable without a snapshot: replays whatever
/// logs exist in `dir` (legacy wal.bin and/or the shard logs, merged by
/// sequence number) into `store`, skipping prefixes `fence` covers, and
/// accumulates counts into `res`. The db facade uses this to recover a
/// deployment that crashed before its first checkpoint — the base image is
/// then the empty store build({}) produces, so the full log replays.
void replay_dir_logs(core::SmartStore& store, const std::string& dir,
                     const WalFence& fence, RecoveryResult& res);

/// Reassembles the state a delta manifest describes at its last cut: the
/// base image (snapshot.bin or ckpt/base-<id>.bin per the manifest) with
/// every cut's extents applied, merged across units by store-wide
/// sequence number. No WAL is read — the caller replays the tail past
/// m.fence separately (recover()), or wants exactly the state at the last
/// cut (the replication bootstrap). `res`, when given, accumulates the
/// delta_* counts. Throws PersistError on a missing/corrupt base,
/// segment, or extent.
std::unique_ptr<core::SmartStore> load_delta_base(const std::string& dir,
                                                  const DeltaManifest& m,
                                                  RecoveryResult* res);

/// Loads the base image and replays <dir>'s logs. When a delta manifest
/// exists it WINS over snapshot.bin: the base is whatever the manifest
/// names, the delta chain applies next (merged by sequence number), and
/// the WAL tail past the manifest's fence replays last. Without one, the
/// legacy layout loads exactly as before. Throws PersistError when the
/// base is missing or corrupt; a torn WAL tail is not an error (reported
/// in the result, recovery keeps the prefix).
RecoveryResult recover(const std::string& dir);

/// Exception-free flavour: the one error path out of recovery, typed.
/// Every failure mode that used to be a mixed bag of bools and throws maps
/// onto one Status code — kNotFound (no snapshot in `dir`), kCorruption
/// (bad magic / checksum / truncated section / malformed record),
/// kIOError (the OS failed an open/stat/write), kUnknown (anything else).
/// A torn WAL tail is still NOT an error: recovery keeps the valid prefix
/// and reports it via out->wal_tail_torn, exactly like the throwing
/// flavour. On failure `*out` is left default-constructed (no store).
db::Status recover(const std::string& dir, RecoveryResult* out) noexcept;

/// Snapshots `store` into `dir` (created if needed) and empties `dir`'s
/// WAL, whose records the snapshot subsumes. Pass the live writer when one
/// has that log open so its handle stays coherent; a writer logging into a
/// different directory is left untouched (its records pair with that
/// directory's snapshot). Without a writer, any wal.bin in `dir` is
/// truncated on disk — and any shard directory is removed, so stale shard
/// records cannot replay over the fresher snapshot.
void checkpoint(const core::SmartStore& store, const std::string& dir,
                WalWriter* wal = nullptr);

/// Sharded-WAL flavour of the quiesced checkpoint: commits every shard,
/// records the per-shard fence in the snapshot, then truncates all shards
/// (and any leftover legacy wal.bin) under new generations.
void checkpoint(const core::SmartStore& store, const std::string& dir,
                ShardedWal& wal);

}  // namespace smartstore::persist
