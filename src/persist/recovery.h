// Deployment-directory recovery: the checkpoint/recover protocol over a
// snapshot file plus a WAL.
//
//   <dir>/snapshot.bin   full deployment image (persist/snapshot.h)
//   <dir>/wal.bin        mutations since that snapshot (persist/wal.h)
//
// checkpoint() fences before it switches: the snapshot it writes records
// the WAL's (generation, record count) in its WALFENCE section, then the
// rename atomically publishes the snapshot, then the WAL is emptied under
// a new generation. recover() loads the snapshot and replays the WAL's
// valid prefix through the store's own insert_file/delete_file — skipping
// any fenced prefix when the generations match — so a crash anywhere
// inside checkpoint() recovers exactly: before the rename the old
// snapshot+log pair is intact; between rename and WAL reset the fence
// suppresses the double replay; after the reset the log is empty. A torn
// or truncated WAL tail rolls back to the last group-commit boundary.
#pragma once

#include <memory>
#include <string>

#include "core/smartstore.h"
#include "persist/wal.h"

namespace smartstore::persist {

std::string snapshot_path(const std::string& dir);
std::string wal_path(const std::string& dir);

struct RecoveryResult {
  std::unique_ptr<core::SmartStore> store;
  std::size_t wal_blocks = 0;
  std::size_t wal_records = 0;   ///< replayed (fenced prefix excluded)
  std::size_t wal_fenced = 0;    ///< skipped: already in the snapshot
  bool wal_tail_torn = false;
};

/// Applies one logged record through the store's mutation API.
void apply_record(core::SmartStore& store, const WalRecord& rec);

/// Replays a scanned log into `store`; returns the number of records applied.
std::size_t replay(core::SmartStore& store, const WalScan& scan);

/// Loads <dir>/snapshot.bin and replays <dir>/wal.bin (when present).
/// Throws PersistError when the snapshot is missing or corrupt; a torn WAL
/// tail is not an error (reported in the result, recovery keeps the prefix).
RecoveryResult recover(const std::string& dir);

/// Snapshots `store` into `dir` (created if needed) and empties `dir`'s
/// WAL, whose records the snapshot subsumes. Pass the live writer when one
/// has that log open so its handle stays coherent; a writer logging into a
/// different directory is left untouched (its records pair with that
/// directory's snapshot). Without a writer, any wal.bin in `dir` is
/// truncated on disk.
void checkpoint(const core::SmartStore& store, const std::string& dir,
                WalWriter* wal = nullptr);

}  // namespace smartstore::persist
