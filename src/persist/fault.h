// Crash injection for the persistence layer.
//
// Every durability-relevant boundary in src/persist/ — each snapshot
// section, each stage of an atomic file publish (partial temp, pre-rename,
// pre-dir-fsync), each WAL commit block (including a torn half-written
// block) and each WAL rebase stage — calls fault_point(). Tests arm a
// countdown; when the armed point is reached a FaultInjected exception
// unwinds the writer mid-operation, leaving the on-disk files in exactly
// the state a power cut at that instant would: the crash-injection suite
// then asserts recover() lands on a consistent prefix from *any* of these
// states.
//
// Disarmed cost is one relaxed atomic increment per fault point, so the
// hooks stay compiled into production binaries (the CLI exposes them via
// --crash-at for reproducing recovery scenarios by hand).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "persist/snapshot.h"

namespace smartstore::persist {

/// Thrown when an armed fault point fires — the in-process stand-in for
/// the process dying at that write boundary.
class FaultInjected : public PersistError {
 public:
  using PersistError::PersistError;
};

/// Arms the injector: the `nth` fault point passed from now on (1-based)
/// throws FaultInjected. Resets the pass counter.
void fault_arm(std::uint64_t nth);

/// Disarms the injector. Resets the pass counter.
void fault_disarm();

/// Fault points passed since the last arm/disarm — run a scenario once
/// disarmed to enumerate its fault points, then sweep 1..N armed.
std::uint64_t fault_points_passed();

/// Name of the fault point that fired most recently (empty when none has).
std::string fault_last_fired();

/// Declares a crash boundary. Counts the pass; throws FaultInjected when
/// this is the armed occurrence.
void fault_point(const char* where);

/// util::write_file_atomic with crash boundaries at each durability stage
/// — "<prefix>:torn-temp" after half the temp file (flushed, so a fresh
/// scan sees the tear), "<prefix>:pre-rename" with the full temp
/// unpublished, "<prefix>:pre-dirsync" after the rename but before the
/// directory entry is durable. Every temp+rename publish in src/persist/
/// (snapshot images, WAL rebase and upgrade) goes through this one
/// implementation, so their crash behavior cannot drift. It deliberately
/// mirrors util::write_file_atomic rather than wrapping it — util/ stays
/// free of persist dependencies, and the fault hooks need to fire inside
/// the write. The one publish NOT routed here is write_empty_wal's
/// in-place truncation (WalWriter::reset), which has no temp/rename
/// stages; its sole crash window (a short header) is covered by
/// scan_wal's torn-creation handling and the "wal:reset:pre-truncate"
/// point.
void write_file_atomic_faulted(const std::string& path,
                               const std::vector<std::uint8_t>& bytes,
                               const std::string& fault_prefix);

}  // namespace smartstore::persist
