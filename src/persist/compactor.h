// Background compaction policy over the delta-checkpoint engine: when a
// delta chain grows past a configured length or byte budget, fold it into
// a fresh base image on a thread-pool worker, concurrent with live
// traffic (the fold reuses the store's epoch-freeze/COW protocol and
// honors the MVCC GC watermark, so readers and writers keep running).
//
// The policy is intentionally thin — all correctness lives in
// DeltaEngine, whose internal mutex already serializes a scheduled fold
// against the next cadence cut. This class only decides WHEN and keeps at
// most one fold in flight (same single-flight discipline as the
// background checkpointer).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>

#include "persist/delta_checkpoint.h"
#include "util/thread_pool.h"

namespace smartstore::persist {

class Compactor {
 public:
  /// A fold is scheduled when the chain exceeds `max_chain_len` cuts OR
  /// `max_chain_bytes` delta bytes (0 disables that trigger; both 0
  /// disables automatic compaction entirely — compact_now() still works).
  Compactor(DeltaEngine& engine, util::ThreadPool& pool,
            std::size_t max_chain_len, std::uint64_t max_chain_bytes)
      : engine_(engine),
        pool_(pool),
        max_chain_len_(max_chain_len),
        max_chain_bytes_(max_chain_bytes) {}

  /// Waits for an in-flight fold (swallowing its error — use wait() to
  /// observe failures before destruction).
  ~Compactor() {
    if (inflight_.valid()) {
      try {
        inflight_.get();
      } catch (...) {
        // The next cut/fold/recover sees a state every crash window of
        // the fold protocol keeps consistent.
      }
    }
  }

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// Checks the policy against the engine's current chain and schedules a
  /// background fold if it is exceeded. Returns true when one was
  /// scheduled (false: under budget, or a fold already in flight).
  bool maybe_schedule();

  /// Synchronous full compaction on the caller's thread (waits out any
  /// in-flight background fold first, rethrowing its failure).
  DeltaCutStats compact_now();

  /// Blocks until the in-flight fold (if any) finishes; rethrows its
  /// failure. Returns true when a fold actually ran.
  bool wait();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint64_t scheduled() const {
    return scheduled_.load(std::memory_order_relaxed);
  }
  std::size_t max_chain_len() const { return max_chain_len_; }
  std::uint64_t max_chain_bytes() const { return max_chain_bytes_; }

 private:
  bool over_budget() const {
    const std::uint64_t len = engine_.chain_len();
    const std::uint64_t bytes = engine_.chain_bytes();
    return (max_chain_len_ > 0 && len > max_chain_len_) ||
           (max_chain_bytes_ > 0 && bytes > max_chain_bytes_);
  }

  DeltaEngine& engine_;
  util::ThreadPool& pool_;
  std::size_t max_chain_len_;
  std::uint64_t max_chain_bytes_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> scheduled_{0};
  std::future<void> inflight_;
};

}  // namespace smartstore::persist
