#include "persist/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <random>

#include "persist/codec.h"
#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace smartstore::persist {

namespace {

void flush_and_sync(std::FILE* f) {
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
}

}  // namespace

// ---- scan -------------------------------------------------------------------

WalScan scan_wal(const std::string& path) {
  WalScan scan;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const util::BinaryIoError&) {
    return scan;  // no log yet: empty scan
  }
  if (bytes.empty()) return scan;
  if (bytes.size() < sizeof(kWalMagic)) {
    scan.torn_tail = true;  // shorter than the header: a torn creation
    return scan;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0)
    throw PersistError("bad WAL magic: " + path);

  util::BinaryReader r(bytes);
  r.skip(sizeof(kWalMagic));
  if (r.remaining() < 8) {
    scan.torn_tail = true;  // creation crashed before the generation landed
    return scan;
  }
  scan.generation = r.read_u64();
  scan.valid_bytes = sizeof(kWalMagic) + 8;

  // Per block: magic(4) + count(4) + len(8) + payload + crc(4). Anything
  // that does not parse cleanly from here on is the crash window — stop at
  // the last good block rather than failing.
  while (!r.at_end()) {
    if (r.remaining() < 16) {
      scan.torn_tail = true;
      break;
    }
    if (r.read_u32() != kWalBlockMagic) {
      scan.torn_tail = true;
      break;
    }
    const std::uint32_t count = r.read_u32();
    const std::uint64_t len = r.read_u64();
    if (r.remaining() < 4 || len > r.remaining() - 4) {
      scan.torn_tail = true;
      break;
    }
    const std::uint8_t* payload = bytes.data() + r.position();
    r.skip(static_cast<std::size_t>(len));
    const std::uint32_t stored_crc = r.read_u32();
    if (util::crc32(payload, static_cast<std::size_t>(len)) != stored_crc) {
      scan.torn_tail = true;
      break;
    }

    util::BinaryReader pr(payload, static_cast<std::size_t>(len));
    std::vector<WalRecord> block_records;
    // Every record occupies >= 1 payload byte, so a count beyond `len` is
    // garbage; clamping keeps a crafted header from forcing a huge reserve.
    block_records.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, len)));
    bool parsed = true;
    try {
      for (std::uint32_t i = 0; i < count; ++i) {
        WalRecord rec;
        const std::uint8_t type = pr.read_u8();
        if (type == static_cast<std::uint8_t>(WalRecordType::kInsert)) {
          rec.type = WalRecordType::kInsert;
          rec.file = read_file_meta(pr);
        } else if (type == static_cast<std::uint8_t>(WalRecordType::kRemove)) {
          rec.type = WalRecordType::kRemove;
          rec.name = pr.read_string();
        } else {
          parsed = false;
          break;
        }
        block_records.push_back(std::move(rec));
      }
      if (!pr.at_end()) parsed = false;
    } catch (const util::BinaryIoError&) {
      parsed = false;
    }
    if (!parsed) {
      // A checksum-valid block that does not parse is real corruption, not
      // a torn tail — but the recovery contract is the same: keep the
      // prefix, drop from here.
      scan.torn_tail = true;
      break;
    }

    for (auto& rec : block_records) scan.records.push_back(std::move(rec));
    ++scan.blocks;
    scan.valid_bytes = r.position();
  }
  return scan;
}

// ---- writer -----------------------------------------------------------------

WalWriter::WalWriter(std::string path, std::size_t group_commit)
    : path_(std::move(path)),
      group_commit_(group_commit == 0 ? 1 : group_commit) {
  open_truncated_to_valid_prefix();
}

WalWriter::~WalWriter() {
  try {
    commit();
  } catch (...) {
    // A destructor cannot surface the failure; the pending batch is simply
    // not durable, the same outcome as crashing just before the commit.
  }
  if (file_) std::fclose(file_);
}

void WalWriter::open_truncated_to_valid_prefix() {
  const WalScan scan = scan_wal(path_);  // throws on non-WAL content
  committed_ = scan.records.size();
  generation_ = scan.generation;

  if (scan.valid_bytes > 0) {
    if (scan.torn_tail) {
      std::error_code ec;
      std::filesystem::resize_file(path_, scan.valid_bytes, ec);
      if (ec) throw PersistError("cannot drop torn WAL tail: " + ec.message());
    }
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_) throw PersistError("cannot open WAL for append: " + path_);
    return;
  }
  // Absent, empty, or torn before the header completed: start fresh.
  generation_ = fresh_wal_generation();
  write_empty_wal(path_, generation_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw PersistError("cannot open WAL for append: " + path_);
  committed_ = 0;
}

void WalWriter::log_insert(const metadata::FileMetadata& f) {
  batch_.write_u8(static_cast<std::uint8_t>(WalRecordType::kInsert));
  write_file_meta(batch_, f);
  if (++pending_ >= group_commit_) commit();
}

void WalWriter::log_remove(const std::string& name) {
  batch_.write_u8(static_cast<std::uint8_t>(WalRecordType::kRemove));
  batch_.write_string(name);
  if (++pending_ >= group_commit_) commit();
}

void WalWriter::commit() {
  if (pending_ == 0 || !file_) return;
  util::BinaryWriter block;
  block.write_u32(kWalBlockMagic);
  block.write_u32(static_cast<std::uint32_t>(pending_));
  block.write_u64(batch_.size());
  block.write_bytes(batch_.buffer().data(), batch_.size());
  block.write_u32(util::crc32(batch_.buffer().data(), batch_.size()));

  // Note the pre-commit boundary so a short write (disk full) can be rolled
  // back: leaving a partial block with the position advanced would strand
  // any retried commit behind garbage that recovery truncates away.
  std::fseek(file_, 0, SEEK_END);
  const long start = std::ftell(file_);
  if (std::fwrite(block.buffer().data(), 1, block.size(), file_) !=
      block.size()) {
    std::fflush(file_);
#if defined(__unix__) || defined(__APPLE__)
    if (start >= 0 && ::ftruncate(::fileno(file_), start) == 0)
      std::fseek(file_, start, SEEK_SET);
#endif
    throw PersistError("short write appending WAL block: " + path_);
  }
  flush_and_sync(file_);
  committed_ += pending_;
  pending_ = 0;
  batch_.clear();
}

void WalWriter::reset() {
  pending_ = 0;
  batch_.clear();
  committed_ = 0;
  if (file_) std::fclose(file_);
  file_ = nullptr;
  ++generation_;  // fences against the old history stop matching
  write_empty_wal(path_, generation_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw PersistError("cannot reopen WAL after reset: " + path_);
}

void write_empty_wal(const std::string& path, std::uint64_t generation) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw PersistError("cannot create WAL: " + path);
  util::BinaryWriter header;
  header.write_bytes(kWalMagic, sizeof(kWalMagic));
  header.write_u64(generation);
  if (std::fwrite(header.buffer().data(), 1, header.size(), f) !=
      header.size()) {
    std::fclose(f);
    throw PersistError("cannot write WAL header: " + path);
  }
  flush_and_sync(f);
  std::fclose(f);
  util::fsync_parent_dir(path);
}

std::uint64_t fresh_wal_generation() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace smartstore::persist
