#include "persist/wal.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <random>

#include "persist/codec.h"
#include "persist/fault.h"
#include "util/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace smartstore::persist {

namespace {

void flush_and_sync(std::FILE* f) {
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
}

/// Serializes `records` as one commit block appended to `out` (nothing
/// when empty). The layout must stay byte-identical to commit()'s.
void append_block(util::BinaryWriter& out,
                  const std::vector<WalRecord>& records, bool with_seq) {
  if (records.empty()) return;
  util::BinaryWriter payload;
  for (const WalRecord& rec : records)
    encode_wal_record(payload, rec, with_seq);
  out.write_u32(kWalBlockMagic);
  out.write_u32(static_cast<std::uint32_t>(records.size()));
  out.write_u64(payload.size());
  out.write_bytes(payload.buffer().data(), payload.size());
  out.write_u32(util::crc32(payload.buffer().data(), payload.size()));
}

/// A complete log image: the requested magic, the given generation, then
/// whatever `fill_blocks` appends. Published atomically through the shared
/// fault-instrumented temp+rename+dir-fsync, so every log publish (rebase,
/// version upgrade) has identical crash behavior.
template <typename FillBlocks>
void publish_log(const std::string& path, std::uint64_t generation,
                 FillBlocks&& fill_blocks, const std::string& fault_prefix,
                 bool with_seq = false) {
  util::BinaryWriter out;
  out.write_bytes(with_seq ? kWalMagicV3 : kWalMagic, sizeof(kWalMagic));
  out.write_u64(generation);
  fill_blocks(out);
  write_file_atomic_faulted(path, out.buffer(), fault_prefix);
}

}  // namespace

// ---- record codec -----------------------------------------------------------

void encode_wal_record(util::BinaryWriter& w, const WalRecord& rec,
                       bool with_seq) {
  if (with_seq) w.write_u64(rec.seq);
  w.write_u8(static_cast<std::uint8_t>(rec.type));
  switch (rec.type) {
    case WalRecordType::kInsert:
      write_file_meta(w, rec.file);
      break;
    case WalRecordType::kRemove:
      w.write_string(rec.name);
      break;
    case WalRecordType::kAddUnit:
      break;  // no payload
    case WalRecordType::kRemoveUnit:
      w.write_u64(rec.unit);
      break;
    case WalRecordType::kAutoconfigure:
      w.write_u64(rec.subsets.size());
      for (const auto& s : rec.subsets) write_attr_subset(w, s);
      break;
  }
}

bool decode_wal_record(util::BinaryReader& r, bool with_seq, WalRecord* out) {
  if (with_seq) out->seq = r.read_u64();
  const std::uint8_t type = r.read_u8();
  switch (type) {
    case static_cast<std::uint8_t>(WalRecordType::kInsert):
      out->type = WalRecordType::kInsert;
      out->file = read_file_meta(r);
      return true;
    case static_cast<std::uint8_t>(WalRecordType::kRemove):
      out->type = WalRecordType::kRemove;
      out->name = r.read_string();
      return true;
    case static_cast<std::uint8_t>(WalRecordType::kAddUnit):
      out->type = WalRecordType::kAddUnit;
      return true;
    case static_cast<std::uint8_t>(WalRecordType::kRemoveUnit):
      out->type = WalRecordType::kRemoveUnit;
      out->unit = r.read_u64();
      return true;
    case static_cast<std::uint8_t>(WalRecordType::kAutoconfigure): {
      out->type = WalRecordType::kAutoconfigure;
      const std::size_t nsub = static_cast<std::size_t>(
          r.read_u64_max(r.remaining(), "autoconfigure subset count"));
      out->subsets.reserve(nsub);
      for (std::size_t s = 0; s < nsub; ++s)
        out->subsets.push_back(read_attr_subset(r));
      return true;
    }
    default:
      return false;
  }
}

// ---- scan -------------------------------------------------------------------

WalScan scan_wal(const std::string& path) {
  WalScan scan;
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::read_file_bytes(path);
  } catch (const util::BinaryIoError&) {
    return scan;  // no log yet: empty scan
  }
  if (bytes.empty()) return scan;
  if (bytes.size() < sizeof(kWalMagic)) {
    scan.torn_tail = true;  // shorter than the header: a torn creation
    return scan;
  }
  // v02 added the reconfiguration record types; v01 logs parse as a strict
  // subset, so both magics are accepted on read. v03 (sharded) adds the
  // per-record sequence prefix.
  scan.v1_magic =
      std::memcmp(bytes.data(), kWalMagicV1, sizeof(kWalMagicV1)) == 0;
  scan.v3_magic =
      std::memcmp(bytes.data(), kWalMagicV3, sizeof(kWalMagicV3)) == 0;
  if (!scan.v1_magic && !scan.v3_magic &&
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0)
    throw PersistError("bad WAL magic: " + path);

  util::BinaryReader r(bytes);
  r.skip(sizeof(kWalMagic));
  if (r.remaining() < 8) {
    scan.torn_tail = true;  // creation crashed before the generation landed
    return scan;
  }
  scan.generation = r.read_u64();
  scan.valid_bytes = sizeof(kWalMagic) + 8;

  // Per block: magic(4) + count(4) + len(8) + payload + crc(4). Anything
  // that does not parse cleanly from here on is the crash window — stop at
  // the last good block rather than failing.
  while (!r.at_end()) {
    if (r.remaining() < 16) {
      scan.torn_tail = true;
      break;
    }
    if (r.read_u32() != kWalBlockMagic) {
      scan.torn_tail = true;
      break;
    }
    const std::uint32_t count = r.read_u32();
    const std::uint64_t len = r.read_u64();
    if (r.remaining() < 4 || len > r.remaining() - 4) {
      scan.torn_tail = true;
      break;
    }
    const std::uint8_t* payload = bytes.data() + r.position();
    r.skip(static_cast<std::size_t>(len));
    const std::uint32_t stored_crc = r.read_u32();
    if (util::crc32(payload, static_cast<std::size_t>(len)) != stored_crc) {
      scan.torn_tail = true;
      break;
    }

    util::BinaryReader pr(payload, static_cast<std::size_t>(len));
    std::vector<WalRecord> block_records;
    // Every record occupies >= 1 payload byte, so a count beyond `len` is
    // garbage; clamping keeps a crafted header from forcing a huge reserve.
    block_records.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, len)));
    bool parsed = true;
    try {
      for (std::uint32_t i = 0; i < count; ++i) {
        WalRecord rec;
        if (!decode_wal_record(pr, scan.v3_magic, &rec)) {
          parsed = false;
          break;
        }
        if (scan.v3_magic) scan.max_seq = std::max(scan.max_seq, rec.seq);
        block_records.push_back(std::move(rec));
      }
      if (!pr.at_end()) parsed = false;
    } catch (const util::BinaryIoError&) {
      parsed = false;
    }
    if (!parsed) {
      // A checksum-valid block that does not parse is real corruption, not
      // a torn tail — but the recovery contract is the same: keep the
      // prefix, drop from here.
      scan.torn_tail = true;
      break;
    }

    for (auto& rec : block_records) scan.records.push_back(std::move(rec));
    ++scan.blocks;
    scan.valid_bytes = r.position();
  }
  return scan;
}

// ---- writer -----------------------------------------------------------------

WalWriter::WalWriter(std::string path, std::size_t group_commit,
                     bool with_seq)
    : path_(std::move(path)),
      group_commit_(group_commit == 0 ? 1 : group_commit),
      with_seq_(with_seq) {
  open_truncated_to_valid_prefix();
}

WalWriter::~WalWriter() {
  try {
    commit();
  } catch (...) {
    // A destructor cannot surface the failure; the pending batch is simply
    // not durable, the same outcome as crashing just before the commit.
  }
  if (file_) std::fclose(file_);
}

void WalWriter::open_truncated_to_valid_prefix() {
  const WalScan scan = scan_wal(path_);  // throws on non-WAL content
  committed_ = scan.records.size();
  generation_ = scan.generation;
  opened_max_seq_ = scan.max_seq;
  committed_bytes_ = scan.valid_bytes;

  if (scan.valid_bytes > 0) {
    if (scan.v3_magic != with_seq_ || scan.v1_magic) {
      // Appending records in one layout behind another layout's header
      // would make readers mis-parse them as a torn tail and truncate
      // acked records away. Upgrade in place: same generation and records,
      // the writer's magic, atomic swap. (A crash inside the swap leaves
      // either the old log or the equivalent re-encoded one — same
      // generation, same records. Records upgraded into v03 keep seq 0,
      // which sorts them before every newly stamped record on merge.)
      publish_log(
          path_, generation_,
          [&](util::BinaryWriter& out) {
            append_block(out, scan.records, with_seq_);
          },
          "wal:upgrade", with_seq_);
      std::error_code size_ec;
      const auto sz = std::filesystem::file_size(path_, size_ec);
      if (size_ec)
        throw PersistError("cannot stat upgraded WAL: " + size_ec.message(),
                         PersistError::Code::kIo);
      committed_bytes_ = static_cast<std::size_t>(sz);
    } else if (scan.torn_tail) {
      std::error_code ec;
      std::filesystem::resize_file(path_, scan.valid_bytes, ec);
      if (ec)
      throw PersistError("cannot drop torn WAL tail: " + ec.message(),
                         PersistError::Code::kIo);
    }
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_) throw PersistError("cannot open WAL for append: " + path_,
                       PersistError::Code::kIo);
    return;
  }
  // Absent, empty, or torn before the header completed: start fresh.
  generation_ = fresh_wal_generation();
  write_empty_wal(path_, generation_, with_seq_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw PersistError("cannot open WAL for append: " + path_,
                       PersistError::Code::kIo);
  committed_ = 0;
  committed_bytes_ = sizeof(kWalMagic) + 8;
}

// Every log_* encodes through encode_wal_record so the live-append layout
// and the rewrite paths (rebase slow path, version upgrade) cannot drift.

void WalWriter::log(const WalRecord& rec) {
  append(rec);
  if (pending_ >= group_commit_) commit();
}

void WalWriter::append(const WalRecord& rec) {
  encode_wal_record(batch_, rec, with_seq_);
  ++pending_;
}

void WalWriter::log_insert(const metadata::FileMetadata& f) {
  WalRecord rec;
  rec.type = WalRecordType::kInsert;
  rec.file = f;
  log(rec);
}

void WalWriter::log_remove(const std::string& name) {
  WalRecord rec;
  rec.type = WalRecordType::kRemove;
  rec.name = name;
  log(rec);
}

void WalWriter::log_add_unit() {
  WalRecord rec;
  rec.type = WalRecordType::kAddUnit;
  log(rec);
}

void WalWriter::log_remove_unit(std::uint64_t unit) {
  WalRecord rec;
  rec.type = WalRecordType::kRemoveUnit;
  rec.unit = unit;
  log(rec);
}

void WalWriter::log_autoconfigure(
    const std::vector<metadata::AttrSubset>& subsets) {
  WalRecord rec;
  rec.type = WalRecordType::kAutoconfigure;
  rec.subsets = subsets;
  log(rec);
}

void WalWriter::commit() {
  if (pending_ == 0 || !file_) return;
  util::BinaryWriter block;
  block.write_u32(kWalBlockMagic);
  block.write_u32(static_cast<std::uint32_t>(pending_));
  block.write_u64(batch_.size());
  block.write_bytes(batch_.buffer().data(), batch_.size());
  block.write_u32(util::crc32(batch_.buffer().data(), batch_.size()));

  // An injected crash abandons the handle: the half-written bytes are
  // flushed so a fresh scan sees the torn tail a power cut would leave,
  // and the dead handle keeps the destructor from appending behind it.
  auto die_with_handle = [&]() {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  };

  // Note the pre-commit boundary so a short write (disk full) can be rolled
  // back: leaving a partial block with the position advanced would strand
  // any retried commit behind garbage that recovery truncates away.
  std::fseek(file_, 0, SEEK_END);
  const long start = std::ftell(file_);
  // The block lands in two halves with a crash boundary between them: a
  // power cut does not respect block boundaries, and the torn tail this
  // leaves is exactly what scan_wal's checksum rollback must absorb.
  const std::size_t half = block.size() / 2;
  bool short_write =
      std::fwrite(block.buffer().data(), 1, half, file_) != half;
  if (!short_write) {
    try {
      fault_point("wal:commit:torn-block");
    } catch (...) {
      die_with_handle();
      throw;
    }
    short_write = std::fwrite(block.buffer().data() + half, 1,
                              block.size() - half,
                              file_) != block.size() - half;
  }
  if (short_write) {
    std::fflush(file_);
#if defined(__unix__) || defined(__APPLE__)
    if (start >= 0 && ::ftruncate(::fileno(file_), start) == 0)
      std::fseek(file_, start, SEEK_SET);
#endif
    throw PersistError("short write appending WAL block: " + path_,
                       PersistError::Code::kIo);
  }
  try {
    fault_point("wal:commit:pre-sync");
  } catch (...) {
    die_with_handle();
    throw;
  }
  flush_and_sync(file_);
  committed_ += pending_;
  pending_ = 0;
  batch_.clear();
  committed_bytes_ = static_cast<std::size_t>(start) + block.size();
}

void WalWriter::reset() {
  pending_ = 0;
  batch_.clear();
  committed_ = 0;
  if (file_) std::fclose(file_);
  file_ = nullptr;
  fault_point("wal:reset:pre-truncate");
  ++generation_;  // fences against the old history stop matching
  write_empty_wal(path_, generation_, with_seq_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw PersistError("cannot reopen WAL after reset: " + path_,
                                PersistError::Code::kIo);
  committed_bytes_ = sizeof(kWalMagic) + 8;
}

void WalWriter::rebase(std::size_t drop, std::size_t drop_bytes) {
  commit();  // the rebased log must carry every acknowledged record
  if (drop == 0) return;  // fence covers nothing: the log already pairs
                          // exactly with the snapshot, leave it be
  fault_point("wal:rebase:begin");

  // Fast path: a checkpoint fence is always taken at a commit frontier of
  // this writer, so when the caller kept the frontier's byte offset the
  // tail splices over as raw block bytes — O(tail), no re-parse. (This
  // runs with the serving thread excluded; re-scanning the whole log here
  // would stall it for the full history since the last checkpoint.)
  const std::size_t header = sizeof(kWalMagic) + 8;
  if (drop_bytes != kNoByteHint && drop_bytes >= header &&
      drop_bytes <= committed_bytes_ && drop <= committed_) {
    std::vector<std::uint8_t> tail(committed_bytes_ - drop_bytes);
    if (!tail.empty()) {
      std::FILE* in = std::fopen(path_.c_str(), "rb");
      if (!in) throw PersistError("cannot reopen WAL for rebase: " + path_);
      if (std::fseek(in, static_cast<long>(drop_bytes), SEEK_SET) != 0 ||
          std::fread(tail.data(), 1, tail.size(), in) != tail.size()) {
        std::fclose(in);
        throw PersistError("cannot read WAL tail for rebase: " + path_);
      }
      std::fclose(in);
    }
    publish_log(
        path_, generation_ + 1,
        [&](util::BinaryWriter& out) {
          if (!tail.empty()) out.write_bytes(tail.data(), tail.size());
        },
        "wal:rebase", with_seq_);
    committed_ -= drop;
  } else {
    // No (usable) byte hint — e.g. a drop inside a commit block, which
    // the checkpoint protocol never produces: re-encode the tail records.
    const WalScan scan = scan_wal(path_);
    const std::size_t keep_from = std::min(drop, scan.records.size());
    const std::vector<WalRecord> tail(
        scan.records.begin() + static_cast<std::ptrdiff_t>(keep_from),
        scan.records.end());
    publish_log(
        path_, generation_ + 1,
        [&](util::BinaryWriter& out) { append_block(out, tail, with_seq_); },
        "wal:rebase", with_seq_);
    committed_ = tail.size();
  }

  // Swap the append handle onto the new inode.
  if (file_) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw PersistError("cannot reopen WAL after rebase: " + path_);
  ++generation_;
  std::error_code ec;
  const auto sz = std::filesystem::file_size(path_, ec);
  if (ec) throw PersistError("cannot stat rebased WAL: " + ec.message());
  committed_bytes_ = static_cast<std::size_t>(sz);
}

void WalWriter::abandon() {
  pending_ = 0;
  batch_.clear();
  if (file_) std::fclose(file_);
  file_ = nullptr;
}

void write_empty_wal(const std::string& path, std::uint64_t generation,
                     bool with_seq) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw PersistError("cannot create WAL: " + path);
  util::BinaryWriter header;
  header.write_bytes(with_seq ? kWalMagicV3 : kWalMagic, sizeof(kWalMagic));
  header.write_u64(generation);
  if (std::fwrite(header.buffer().data(), 1, header.size(), f) !=
      header.size()) {
    std::fclose(f);
    throw PersistError("cannot write WAL header: " + path);
  }
  flush_and_sync(f);
  std::fclose(f);
  util::fsync_parent_dir(path);
}

std::uint64_t fresh_wal_generation() {
  std::random_device rd;
  return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

}  // namespace smartstore::persist
