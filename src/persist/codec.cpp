#include "persist/codec.h"

namespace smartstore::persist {

void write_file_meta(util::BinaryWriter& w, const metadata::FileMetadata& f) {
  w.write_u64(f.id);
  w.write_string(f.name);
  w.write_u32(static_cast<std::uint32_t>(metadata::kNumAttrs));
  for (double a : f.attrs) w.write_f64(a);
}

metadata::FileMetadata read_file_meta(util::BinaryReader& r) {
  metadata::FileMetadata f;
  f.id = r.read_u64();
  f.name = r.read_string();
  const std::uint32_t dims = r.read_u32();
  if (dims != metadata::kNumAttrs) {
    throw util::BinaryIoError("file record has " + std::to_string(dims) +
                              " attributes, schema expects " +
                              std::to_string(metadata::kNumAttrs));
  }
  for (std::size_t d = 0; d < metadata::kNumAttrs; ++d)
    f.attrs[d] = r.read_f64();
  return f;
}

void write_attr_subset(util::BinaryWriter& w, const metadata::AttrSubset& s) {
  w.write_u64(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    w.write_u32(static_cast<std::uint32_t>(s[i]));
}

metadata::AttrSubset read_attr_subset(util::BinaryReader& r) {
  const std::size_t n = static_cast<std::size_t>(
      r.read_u64_max(metadata::kNumAttrs, "attribute-subset size"));
  std::vector<metadata::Attr> attrs(n);
  for (auto& a : attrs) {
    const std::uint32_t v = r.read_u32();
    if (v >= metadata::kNumAttrs)
      throw util::BinaryIoError("attribute id out of schema range");
    a = static_cast<metadata::Attr>(v);
  }
  return metadata::AttrSubset(std::move(attrs));
}

}  // namespace smartstore::persist
