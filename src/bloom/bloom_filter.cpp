#include "bloom/bloom_filter.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "bloom/md5.h"

namespace smartstore::bloom {

std::size_t bloom_probe_index(unsigned i, const std::uint32_t w[4],
                              std::size_t bits) {
  std::uint64_t h;
  switch (i) {
    case 0: h = w[0]; break;
    case 1: h = w[1]; break;
    case 2: h = w[2]; break;
    case 3: h = w[3]; break;
    default: {
      const std::uint64_t ii = i;
      h = static_cast<std::uint64_t>(w[0]) + ii * w[1] + ii * ii * w[2] +
          (ii << 16) * w[3];
      break;
    }
  }
  return static_cast<std::size_t>(h % bits);
}

BloomFilter::BloomFilter(std::size_t bits, unsigned num_hashes)
    : bits_((bits + 63) / 64 * 64), k_(num_hashes), words_(bits_ / 64, 0) {
  assert(bits > 0 && num_hashes > 0);
}

BloomFilter BloomFilter::from_words(std::size_t bits, unsigned num_hashes,
                                    std::vector<std::uint64_t> words) {
  BloomFilter bf(bits, num_hashes);
  assert(words.size() == bf.words_.size());
  bf.words_ = std::move(words);
  return bf;
}

ItemHash hash_item(std::string_view item) { return {md5(item).words()}; }

void BloomFilter::insert(std::string_view item) { insert(hash_item(item)); }

void BloomFilter::insert(const ItemHash& h) {
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t idx = bloom_probe_index(i, h.w.data(), bits_);
    words_[idx / 64] |= (1ULL << (idx % 64));
  }
}

bool BloomFilter::may_contain(std::string_view item) const {
  return may_contain(hash_item(item));
}

bool BloomFilter::may_contain(const ItemHash& h) const {
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t idx = bloom_probe_index(i, h.w.data(), bits_);
    if ((words_[idx / 64] & (1ULL << (idx % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::merge(const BloomFilter& other) {
  assert(bits_ == other.bits_ && k_ == other.k_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BloomFilter::clear() {
  for (auto& w : words_) w = 0;
}

std::size_t BloomFilter::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

double BloomFilter::fill_ratio() const {
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

double BloomFilter::estimated_fpp() const {
  return std::pow(fill_ratio(), static_cast<double>(k_));
}

CountingBloomFilter::CountingBloomFilter(std::size_t bits, unsigned num_hashes)
    : bits_((bits + 63) / 64 * 64), k_(num_hashes),
      counters_((bits_ + 1) / 2, 0) {
  assert(bits > 0 && num_hashes > 0);
}

std::uint8_t CountingBloomFilter::get_counter(std::size_t idx) const {
  const std::uint8_t byte = counters_[idx / 2];
  return (idx % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
}

void CountingBloomFilter::set_counter(std::size_t idx, std::uint8_t v) {
  assert(v <= 0x0f);
  std::uint8_t& byte = counters_[idx / 2];
  if (idx % 2 == 0) {
    byte = static_cast<std::uint8_t>((byte & 0xf0) | v);
  } else {
    byte = static_cast<std::uint8_t>((byte & 0x0f) | (v << 4));
  }
}

void CountingBloomFilter::insert(std::string_view item) {
  insert(hash_item(item));
}

void CountingBloomFilter::insert(const ItemHash& h) {
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t idx = bloom_probe_index(i, h.w.data(), bits_);
    const std::uint8_t c = get_counter(idx);
    if (c < 0x0f) set_counter(idx, static_cast<std::uint8_t>(c + 1));
  }
}

void CountingBloomFilter::remove(std::string_view item) {
  remove(hash_item(item));
}

void CountingBloomFilter::remove(const ItemHash& h) {
  for (unsigned i = 0; i < k_; ++i) {
    const std::size_t idx = bloom_probe_index(i, h.w.data(), bits_);
    const std::uint8_t c = get_counter(idx);
    if (c > 0 && c < 0x0f) set_counter(idx, static_cast<std::uint8_t>(c - 1));
  }
}

bool CountingBloomFilter::may_contain(std::string_view item) const {
  return may_contain(hash_item(item));
}

bool CountingBloomFilter::may_contain(const ItemHash& h) const {
  for (unsigned i = 0; i < k_; ++i) {
    if (get_counter(bloom_probe_index(i, h.w.data(), bits_)) == 0)
      return false;
  }
  return true;
}

BloomFilter CountingBloomFilter::to_bloom_filter() const {
  std::vector<std::uint64_t> words(bits_ / 64, 0);
  for (std::size_t idx = 0; idx < bits_; ++idx) {
    if (get_counter(idx) > 0) words[idx / 64] |= (1ULL << (idx % 64));
  }
  return BloomFilter::from_words(bits_, k_, std::move(words));
}

}  // namespace smartstore::bloom
