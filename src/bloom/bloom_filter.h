// Bloom filters for filename point queries (Sections 3.3.3 and 5.1).
//
// The paper's configuration: 1024 bits and k = 7 hash functions per filter,
// with hash indices derived from the MD5 digest of the item (the 128-bit
// signature is split into four 32-bit values; further indices come from
// double hashing over those words, the standard Kirsch–Mitzenmacher
// construction). Index-unit filters are the bitwise OR of their children's
// filters, so a query can walk down the tree following positive hits.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string_view>
#include <vector>

namespace smartstore::bloom {

/// Derives the i-th Bloom probe index for an item whose MD5 digest words are
/// w, over a filter of `bits` bits. Probes 0..3 use the raw 32-bit digest
/// words (the paper's construction); higher probes extend via double
/// hashing. Shared by BloomFilter and CountingBloomFilter so both address
/// identical bit positions.
std::size_t bloom_probe_index(unsigned i, const std::uint32_t w[4],
                              std::size_t bits);

/// An item's MD5 digest words, computed once and reusable across every
/// filter the item touches. An insert propagating up the semantic R-tree
/// hits one filter per ancestor — and, under multi-writer serving, each of
/// those under a contended stripe lock — so hashing outside the lock and
/// passing the digest in keeps the critical sections to pure bit-sets.
struct ItemHash {
  std::array<std::uint32_t, 4> w{};
};

ItemHash hash_item(std::string_view item);

class BloomFilter {
 public:
  /// Default geometry: the paper's 1024 bits, k = 7.
  BloomFilter() : BloomFilter(1024, 7) {}

  /// `bits` is rounded up to a multiple of 64; `num_hashes` = k.
  explicit BloomFilter(std::size_t bits, unsigned num_hashes = 7);

  /// Rebuilds a filter from raw 64-bit words (used when collapsing a
  /// counting filter for replication). words.size()*64 must equal the
  /// rounded bit count.
  static BloomFilter from_words(std::size_t bits, unsigned num_hashes,
                                std::vector<std::uint64_t> words);

  void insert(std::string_view item);
  void insert(const ItemHash& h);

  /// True if the item may be present; false means definitely absent
  /// (modulo staleness when filters are replicated).
  bool may_contain(std::string_view item) const;
  bool may_contain(const ItemHash& h) const;

  /// Bitwise OR of another filter into this one. Geometry must match.
  void merge(const BloomFilter& other);

  /// All-zero state.
  void clear();

  std::size_t bit_count() const { return bits_; }
  unsigned num_hashes() const { return k_; }
  /// Number of set bits.
  std::size_t popcount() const;
  /// Fraction of set bits (the fill ratio determining false positives).
  double fill_ratio() const;
  /// Expected false-positive probability given the current fill ratio.
  double estimated_fpp() const;
  /// Raw backing words, for serialization; reassemble via from_words so
  /// the geometry stays validated.
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::size_t byte_size() const {
    return sizeof(*this) + words_.capacity() * sizeof(std::uint64_t);
  }

  bool operator==(const BloomFilter&) const = default;

 private:
  std::size_t bits_;
  unsigned k_;
  std::vector<std::uint64_t> words_;
};

/// Counting Bloom filter: supports deletion and exports a plain BloomFilter
/// view for replication up the tree. 4-bit saturating counters packed two
/// per byte, as in the standard summary-cache design. Saturated counters
/// are sticky (never decremented), which preserves the no-false-negative
/// property under deletion.
class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(std::size_t bits = 1024,
                               unsigned num_hashes = 7);

  void insert(std::string_view item);
  void insert(const ItemHash& h);
  void remove(std::string_view item);
  void remove(const ItemHash& h);
  bool may_contain(std::string_view item) const;
  bool may_contain(const ItemHash& h) const;

  /// Collapses counters to a plain bit filter (counter > 0 -> bit set).
  BloomFilter to_bloom_filter() const;

  std::size_t bit_count() const { return bits_; }
  unsigned num_hashes() const { return k_; }
  std::size_t byte_size() const { return sizeof(*this) + counters_.capacity(); }

 private:
  std::uint8_t get_counter(std::size_t idx) const;
  void set_counter(std::size_t idx, std::uint8_t v);

  std::size_t bits_;
  unsigned k_;
  std::vector<std::uint8_t> counters_;  // two 4-bit counters per byte
};

}  // namespace smartstore::bloom
