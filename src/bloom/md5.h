// RFC 1321 MD5, implemented from scratch.
//
// SmartStore (Section 5.1) hashes each attribute value to its 128-bit MD5
// signature and splits the digest into four 32-bit words used as Bloom
// filter indices; this module provides exactly that primitive. MD5 is used
// here purely as a fast mixing function, not for security.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>

namespace smartstore::bloom {

struct Md5Digest {
  std::array<std::uint8_t, 16> bytes{};

  /// The digest reinterpreted as four little-endian 32-bit words — the
  /// construction the paper uses for Bloom filter indexing.
  std::array<std::uint32_t, 4> words() const;

  /// Lowercase hex string (32 chars), for tests against RFC vectors.
  std::string hex() const;

  bool operator==(const Md5Digest&) const = default;
};

/// One-shot digest of a byte buffer.
Md5Digest md5(const void* data, std::size_t len);

/// One-shot digest of a string.
Md5Digest md5(std::string_view s);

/// Incremental hashing (used when an item is hashed from several fields).
class Md5 {
 public:
  Md5();
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }
  Md5Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

}  // namespace smartstore::bloom
