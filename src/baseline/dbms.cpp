#include "baseline/dbms.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/ground_truth.h"

namespace smartstore::baseline {

using metadata::FileId;
using metadata::FileMetadata;
using metadata::kNumAttrs;

DbmsStore::DbmsStore(std::size_t cluster_nodes, sim::CostModel cost)
    : cluster_(std::make_unique<sim::Cluster>(std::max<std::size_t>(1,
                                                                    cluster_nodes),
                                              cost)),
      cost_(cost), rng_(0xDB05) {
  attr_index_.resize(kNumAttrs);
}

void DbmsStore::build(const std::vector<FileMetadata>& files) {
  files_.clear();
  row_of_.clear();
  attr_index_.clear();
  attr_index_.resize(kNumAttrs);  // BPlusTree is move-only
  name_index_ = NameIndex{};
  standardizer_ = core::fit_standardizer(files);
  files_.reserve(files.size());
  for (const auto& f : files) insert_file(f);
}

void DbmsStore::insert_file(const FileMetadata& f) {
  row_of_[f.id] = files_.size();
  files_.push_back(f);
  for (std::size_t d = 0; d < kNumAttrs; ++d)
    attr_index_[d].insert(f.attrs[d], f.id);
  name_index_.insert(f.name, f.id);
}

bool DbmsStore::delete_file(const std::string& name) {
  // Locate via the name index (scan of the exact key's duplicates).
  FileId found = 0;
  bool have = false;
  name_index_.range_scan(name, name, [&](const std::string&, FileId id) {
    found = id;
    have = true;
  });
  if (!have) return false;
  const std::size_t row = row_of_.at(found);
  const FileMetadata f = files_[row];
  for (std::size_t d = 0; d < kNumAttrs; ++d)
    attr_index_[d].erase(f.attrs[d], f.id);
  name_index_.erase(f.name, f.id);
  // Swap-remove the row.
  const std::size_t last = files_.size() - 1;
  if (row != last) {
    files_[row] = files_[last];
    row_of_[files_[row].id] = row;
  }
  files_.pop_back();
  row_of_.erase(found);
  return true;
}

sim::Session DbmsStore::central_session(double arrival) {
  // The request originates at a random client node and is shipped to the
  // central database server (node 0).
  const sim::NodeId home = rng_.uniform_u64(cluster_->size());
  sim::Session s = cluster_->start_session(home, arrival);
  s.send_to(0, 256);
  return s;
}

core::PointResult DbmsStore::point_query(const metadata::PointQuery& q,
                                         double arrival) {
  core::PointResult res;
  sim::Session s = central_session(arrival);

  // Filename B+-tree probe: height * node visits.
  const double probe = static_cast<double>(name_index_.height()) *
                       cost_.per_node_visit_s;
  FileId found = 0;
  bool have = false;
  name_index_.range_scan(q.filename, q.filename,
                         [&](const std::string&, FileId id) {
                           found = id;
                           have = true;
                         });
  // Verification probe against each attribute index (the per-attribute
  // index maintenance the DBMS cannot skip).
  double verify = 0.0;
  if (have) {
    verify = static_cast<double>(kNumAttrs) *
             static_cast<double>(attr_index_[0].height()) *
             cost_.per_node_visit_s;
  }
  s.visit(probe + verify, have ? 1 : 0);

  res.found = have;
  res.id = found;
  res.unit = 0;
  res.first_try = true;
  res.stats.groups_visited = 1;
  res.stats.latency_s = s.clock() - arrival;
  res.stats.messages = s.messages();
  res.stats.hops = s.hops();
  return res;
}

core::RangeResult DbmsStore::range_query(const metadata::RangeQuery& q,
                                         double arrival) {
  core::RangeResult res;
  sim::Session s = central_session(arrival);

  // Scan each constrained attribute's B+-tree and intersect candidate
  // sets. Per the paper's characterization ("DBMS must check each B+-tree
  // index for each attribute, resulting in linear brute-force search
  // costs" — Section 5.2; Section 5.1 notes no optimizer is assumed), the
  // unconstrained attribute indexes are verified with full scans, which is
  // what costs this baseline its Table 4 numbers. The result set itself
  // comes from the constrained dimensions only.
  std::unordered_set<FileId> acc;
  bool first = true;
  std::size_t scanned_total = 0;
  for (std::size_t i = 0; i < q.dims.size(); ++i) {
    const std::size_t d = static_cast<std::size_t>(q.dims[i]);
    std::unordered_set<FileId> cand;
    const std::size_t scanned = attr_index_[d].range_scan(
        q.lo[i], q.hi[i], [&](double, FileId id) { cand.insert(id); });
    scanned_total += scanned;
    if (first) {
      acc = std::move(cand);
      first = false;
    } else {
      std::unordered_set<FileId> merged;
      for (FileId id : acc)
        if (cand.count(id)) merged.insert(id);
      acc = std::move(merged);
    }
  }
  const std::size_t unconstrained = kNumAttrs - q.dims.size();
  scanned_total += unconstrained * files_.size();
  s.visit(static_cast<double>(kNumAttrs) *
              static_cast<double>(attr_index_[0].height()) *
              cost_.per_node_visit_s,
          scanned_total);

  res.ids.assign(acc.begin(), acc.end());
  std::sort(res.ids.begin(), res.ids.end());
  res.stats.records_scanned = scanned_total;
  res.stats.latency_s = s.clock() - arrival;
  res.stats.messages = s.messages();
  res.stats.hops = s.hops();
  res.stats.groups_visited = 1;
  return res;
}

core::TopKResult DbmsStore::topk_query(const metadata::TopKQuery& q,
                                       double arrival) {
  core::TopKResult res;
  sim::Session s = central_session(arrival);

  // Linear scan: B+-trees cannot prune k-NN, so every row is examined.
  res.hits = core::brute_force_topk(files_, standardizer_, q);
  s.visit(cost_.per_node_visit_s, files_.size());

  res.stats.records_scanned = files_.size();
  res.stats.latency_s = s.clock() - arrival;
  res.stats.messages = s.messages();
  res.stats.hops = s.hops();
  res.stats.groups_visited = 1;
  return res;
}

std::size_t DbmsStore::index_bytes() const {
  std::size_t b = name_index_.byte_size() +
                  files_.size() * 48;  // name keys dominate the name index
  for (const auto& t : attr_index_) b += t.byte_size();
  return b;
}

}  // namespace smartstore::baseline
