#include "baseline/central_rtree.h"

#include <algorithm>
#include <cmath>

#include "core/ground_truth.h"

namespace smartstore::baseline {

using metadata::FileId;
using metadata::FileMetadata;
using metadata::kNumAttrs;

CentralRTreeStore::CentralRTreeStore(std::size_t cluster_nodes,
                                     sim::CostModel cost, std::size_t fanout)
    : cluster_(std::make_unique<sim::Cluster>(
          std::max<std::size_t>(1, cluster_nodes), cost)),
      cost_(cost), rng_(0x47EE), tree_(kNumAttrs, fanout) {}

la::Vector CentralRTreeStore::std_coords(const FileMetadata& f) const {
  return standardizer_.transform(f.full_vector());
}

void CentralRTreeStore::build(const std::vector<FileMetadata>& files) {
  files_.clear();
  row_of_.clear();
  name_map_.clear();
  standardizer_ = core::fit_standardizer(files);
  tree_ = rtree::RTree(kNumAttrs, tree_.max_fanout());
  files_.reserve(files.size());
  for (const auto& f : files) insert_file(f);
}

void CentralRTreeStore::insert_file(const FileMetadata& f) {
  row_of_[f.id] = files_.size();
  name_map_[f.name] = f.id;
  files_.push_back(f);
  tree_.insert(std_coords(f), f.id);
}

bool CentralRTreeStore::delete_file(const std::string& name) {
  auto it = name_map_.find(name);
  if (it == name_map_.end()) return false;
  const FileId id = it->second;
  const std::size_t row = row_of_.at(id);
  tree_.erase(std_coords(files_[row]), id);
  name_map_.erase(it);
  const std::size_t last = files_.size() - 1;
  if (row != last) {
    files_[row] = files_[last];
    row_of_[files_[row].id] = row;
  }
  files_.pop_back();
  row_of_.erase(id);
  return true;
}

sim::Session CentralRTreeStore::central_session(double arrival) {
  const sim::NodeId home = rng_.uniform_u64(cluster_->size());
  sim::Session s = cluster_->start_session(home, arrival);
  s.send_to(0, 256);
  return s;
}

core::PointResult CentralRTreeStore::point_query(const metadata::PointQuery& q,
                                                 double arrival) {
  core::PointResult res;
  sim::Session s = central_session(arrival);
  auto it = name_map_.find(q.filename);
  s.visit(cost_.per_node_visit_s, 1);
  if (it != name_map_.end()) {
    res.found = true;
    res.id = it->second;
    res.unit = 0;
  }
  res.first_try = true;
  res.stats.groups_visited = 1;
  res.stats.latency_s = s.clock() - arrival;
  res.stats.messages = s.messages();
  res.stats.hops = s.hops();
  return res;
}

core::RangeResult CentralRTreeStore::range_query(const metadata::RangeQuery& q,
                                                 double arrival) {
  core::RangeResult res;
  sim::Session s = central_session(arrival);

  // Build a full-D standardized box: unconstrained dims span the tree.
  const rtree::Mbr bounds = tree_.bounds();
  la::Vector lo(kNumAttrs), hi(kNumAttrs);
  if (bounds.valid()) {
    lo = bounds.lo();
    hi = bounds.hi();
  }
  for (std::size_t i = 0; i < q.dims.size(); ++i) {
    const std::size_t d = static_cast<std::size_t>(q.dims[i]);
    const double a = (q.lo[i] - standardizer_.means[d]) *
                     standardizer_.inv_stdevs[d];
    const double b = (q.hi[i] - standardizer_.means[d]) *
                     standardizer_.inv_stdevs[d];
    lo[d] = std::min(a, b);
    hi[d] = std::max(a, b);
  }
  res.ids = tree_.range_query(rtree::Mbr(lo, hi));
  std::sort(res.ids.begin(), res.ids.end());

  const auto st = tree_.stats();
  // Cost: every visited node is touched, every visited leaf's entries are
  // compared (record-level work).
  s.visit(static_cast<double>(st.last_nodes_visited) * cost_.per_node_visit_s,
          st.last_leaf_entries);

  res.stats.records_scanned = st.last_leaf_entries;
  res.stats.latency_s = s.clock() - arrival;
  res.stats.messages = s.messages();
  res.stats.hops = s.hops();
  res.stats.groups_visited = 1;
  return res;
}

core::TopKResult CentralRTreeStore::topk_query(const metadata::TopKQuery& q,
                                               double arrival) {
  core::TopKResult res;
  sim::Session s = central_session(arrival);

  // The R-tree indexes full-D points; a subset-dim k-NN cannot use the
  // index directly unless all dims are constrained. With a full-D query it
  // uses best-first search; otherwise it degrades to a filtered scan over
  // leaf entries (still via the tree, visiting everything).
  if (q.dims.size() == kNumAttrs) {
    std::vector<std::size_t> dim_idx(kNumAttrs);
    la::Vector p(kNumAttrs);
    for (std::size_t i = 0; i < kNumAttrs; ++i) {
      dim_idx[i] = i;
      p[i] = (q.point[i] - standardizer_.means[i]) * standardizer_.inv_stdevs[i];
    }
    res.hits = tree_.knn(p, q.k);
    const auto st = tree_.stats();
    s.visit(static_cast<double>(st.last_nodes_visited) * cost_.per_node_visit_s,
            st.last_leaf_entries);
    res.stats.records_scanned = st.last_leaf_entries;
  } else {
    res.hits = core::brute_force_topk(files_, standardizer_, q);
    const auto st = tree_.stats();
    s.visit(static_cast<double>(st.leaf_nodes + st.internal_nodes) *
                cost_.per_node_visit_s,
            files_.size());
    res.stats.records_scanned = files_.size();
  }

  res.stats.latency_s = s.clock() - arrival;
  res.stats.messages = s.messages();
  res.stats.hops = s.hops();
  res.stats.groups_visited = 1;
  return res;
}

std::size_t CentralRTreeStore::index_bytes() const {
  return tree_.stats().bytes + name_map_.size() * 72;
}

}  // namespace smartstore::baseline
