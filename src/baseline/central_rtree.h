// The non-semantic R-tree baseline of Section 5.1: "a simple,
// non-semantic R-tree-based database approach that organizes each file
// based on its multi-dimensional attributes without leveraging metadata
// semantics" — a single centralized Guttman R-tree in insertion order.
//
// Against SmartStore it shows the cost of (a) centralization (every query
// queues at one node) and (b) insertion-order clustering instead of
// semantic grouping (queries touch many more nodes).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/smartstore.h"
#include "la/stats.h"
#include "metadata/file_metadata.h"
#include "metadata/query.h"
#include "rtree/rtree.h"
#include "sim/cluster.h"

namespace smartstore::baseline {

class CentralRTreeStore {
 public:
  CentralRTreeStore(std::size_t cluster_nodes, sim::CostModel cost = {},
                    std::size_t fanout = 16);

  void build(const std::vector<metadata::FileMetadata>& files);

  core::PointResult point_query(const metadata::PointQuery& q, double arrival);
  core::RangeResult range_query(const metadata::RangeQuery& q, double arrival);
  core::TopKResult topk_query(const metadata::TopKQuery& q, double arrival);

  void insert_file(const metadata::FileMetadata& f);
  bool delete_file(const std::string& name);

  std::size_t size() const { return files_.size(); }
  std::size_t index_bytes() const;
  sim::Cluster& cluster() { return *cluster_; }
  const la::RowStandardizer& standardizer() const { return standardizer_; }
  const rtree::RTree& rtree() const { return tree_; }

 private:
  sim::Session central_session(double arrival);
  la::Vector std_coords(const metadata::FileMetadata& f) const;

  std::unique_ptr<sim::Cluster> cluster_;
  sim::CostModel cost_;
  util::Rng rng_;

  std::vector<metadata::FileMetadata> files_;
  std::unordered_map<metadata::FileId, std::size_t> row_of_;
  std::unordered_map<std::string, metadata::FileId> name_map_;
  la::RowStandardizer standardizer_;
  rtree::RTree tree_;
};

}  // namespace smartstore::baseline
