// The DBMS baseline of Section 5.1: "a popular database approach that uses
// a B+ tree to index each metadata attribute" — no semantic awareness, no
// multi-dimensional index, centralized deployment.
//
// Query semantics match SmartStore's exactly (same results); only the cost
// differs:
//   * point query: the filename B+-tree plus one verification probe per
//     attribute index (a DBMS validates the row against each index it
//     maintains on write-optimized paths; this is what makes its point
//     query slower than the R-tree baseline's in Table 4);
//   * range query: every constrained attribute's B+-tree is range-scanned
//     independently and the candidate id sets are intersected — the
//     "linear brute-force search cost" the paper attributes to DBMS;
//   * top-k: a full linear scan (B+-trees cannot prune a k-NN query).
// All queries execute on one central node of the simulated cluster, so an
// intensified arrival stream queues there.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

#include "btree/bplus_tree.h"
#include "core/smartstore.h"
#include "la/stats.h"
#include "metadata/file_metadata.h"
#include "metadata/query.h"
#include "sim/cluster.h"

namespace smartstore::baseline {

class DbmsStore {
 public:
  /// `cluster_nodes` sizes the simulated cluster (for comparability with
  /// SmartStore; the DBMS itself only ever uses node 0).
  DbmsStore(std::size_t cluster_nodes, sim::CostModel cost = {});

  void build(const std::vector<metadata::FileMetadata>& files);

  core::PointResult point_query(const metadata::PointQuery& q, double arrival);
  core::RangeResult range_query(const metadata::RangeQuery& q, double arrival);
  core::TopKResult topk_query(const metadata::TopKQuery& q, double arrival);

  void insert_file(const metadata::FileMetadata& f);
  bool delete_file(const std::string& name);

  std::size_t size() const { return files_.size(); }
  /// Total index bytes on the central node (Figure 7's DBMS bar).
  std::size_t index_bytes() const;
  sim::Cluster& cluster() { return *cluster_; }
  const la::RowStandardizer& standardizer() const { return standardizer_; }

 private:
  sim::Session central_session(double arrival);

  std::unique_ptr<sim::Cluster> cluster_;
  sim::CostModel cost_;
  util::Rng rng_;

  std::vector<metadata::FileMetadata> files_;  // id-dense row store
  std::unordered_map<metadata::FileId, std::size_t> row_of_;
  la::RowStandardizer standardizer_;

  using AttrIndex = btree::BPlusTree<double, metadata::FileId>;
  using NameIndex = btree::BPlusTree<std::string, metadata::FileId>;
  std::vector<AttrIndex> attr_index_;  // one per attribute
  NameIndex name_index_;
};

}  // namespace smartstore::baseline
