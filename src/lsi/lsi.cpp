#include "lsi/lsi.h"

#include <algorithm>
#include <cassert>

namespace smartstore::lsi {

LsiModel LsiModel::fit(const std::vector<la::Vector>& docs, std::size_t rank_p,
                       double energy) {
  LsiModel m;
  if (docs.empty()) return m;
  const std::size_t d = docs[0].size();
  const std::size_t n = docs.size();

  la::Matrix a(d, n);
  for (std::size_t j = 0; j < n; ++j) {
    assert(docs[j].size() == d);
    for (std::size_t i = 0; i < d; ++i) a(i, j) = docs[j][i];
  }
  m.standardizer_ = la::RowStandardizer::fit(a);
  m.standardizer_.apply(a);

  la::SvdResult svd = la::svd_thin(a);
  if (svd.sigma.empty()) return m;

  std::size_t p = rank_p;
  if (p == 0) {
    // Smallest rank capturing `energy` of sigma_i^2 mass.
    double total = 0.0;
    for (double s : svd.sigma) total += s * s;
    double acc = 0.0;
    p = svd.sigma.size();
    for (std::size_t i = 0; i < svd.sigma.size(); ++i) {
      acc += svd.sigma[i] * svd.sigma[i];
      if (acc >= energy * total) {
        p = i + 1;
        break;
      }
    }
  }
  p = std::min(p, svd.sigma.size());
  svd.truncate(p);

  m.rank_ = p;
  m.u_p_ = std::move(svd.u);
  m.sigma_ = std::move(svd.sigma);
  m.doc_coords_.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    la::Vector& c = m.doc_coords_[j];
    c.resize(p);
    for (std::size_t k = 0; k < p; ++k) c[k] = svd.v(j, k) * m.sigma_[k];
  }
  return m;
}

la::Vector LsiModel::project(const la::Vector& raw) const {
  assert(fitted());
  const la::Vector q = standardizer_.transform(raw);
  la::Vector out(rank_, 0.0);
  for (std::size_t k = 0; k < rank_; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i) acc += u_p_(i, k) * q[i];
    out[k] = acc;
  }
  return out;
}

la::Matrix LsiModel::pairwise_doc_similarity() const {
  const std::size_t n = doc_coords_.size();
  la::Matrix sim(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sim(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s = similarity(doc_coords_[i], doc_coords_[j]);
      sim(i, j) = s;
      sim(j, i) = s;
    }
  }
  return sim;
}

std::size_t LsiModel::byte_size() const {
  std::size_t b = sizeof(*this) + u_p_.byte_size() +
                  sigma_.capacity() * sizeof(double);
  for (const auto& c : doc_coords_) b += c.capacity() * sizeof(double);
  b += (standardizer_.means.capacity() + standardizer_.inv_stdevs.capacity()) *
       sizeof(double);
  return b;
}

}  // namespace smartstore::lsi
