// Latent Semantic Indexing (Deerwester et al.; paper Section 3.1.1).
//
// LSI measures semantic correlation by projecting attribute vectors into a
// low-rank subspace of the attribute-document matrix A (rows = attributes,
// columns = documents, where a "document" is a file's or storage unit's
// semantic vector). SVD gives A = U Σ Vᵀ; keeping the p largest singular
// values yields A_p = U_p Σ_p V_pᵀ. The paper allows both query
// projections, q̂ = U_pᵀ q and q̂ = Σ_p⁻¹ U_pᵀ q (Section 3.1.1); we use
// the former, under which a document column a_j projects exactly onto the
// Σ-weighted coordinates Σ_p V_pᵀ e_j (row j of V_p Σ_p). Σ-weighting
// matters for similarity quality: it keeps high-variance semantic
// directions dominant instead of letting near-noise directions contribute
// equally. Query/document similarity is the cosine in this one consistent
// p-dimensional space.
//
// Attribute rows are standardized (z-score) before decomposition: metadata
// attributes mix units (bytes, seconds, counts) and LSI would otherwise be
// dominated by the largest-magnitude attribute.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "la/stats.h"
#include "la/svd.h"

namespace smartstore::lsi {

class LsiModel {
 public:
  LsiModel() = default;

  /// Fits a rank-p model over N documents, each a raw attribute vector of
  /// equal dimension D. p is clamped to the numerical rank; p == 0 selects
  /// the smallest rank capturing >= `energy` of the spectral mass.
  static LsiModel fit(const std::vector<la::Vector>& docs, std::size_t rank_p,
                      double energy = 0.9);

  /// Reassembles a fitted model from its persisted parts (the persistence
  /// layer's deserialization hook; no refitting, no SVD).
  static LsiModel from_parts(la::RowStandardizer standardizer, la::Matrix u_p,
                             la::Vector sigma,
                             std::vector<la::Vector> doc_coords,
                             std::size_t rank) {
    LsiModel m;
    m.standardizer_ = std::move(standardizer);
    m.u_p_ = std::move(u_p);
    m.sigma_ = std::move(sigma);
    m.doc_coords_ = std::move(doc_coords);
    m.rank_ = rank;
    return m;
  }

  bool fitted() const { return rank_ > 0; }
  std::size_t rank() const { return rank_; }
  std::size_t dims() const { return standardizer_.means.size(); }
  std::size_t num_docs() const { return doc_coords_.size(); }

  /// Projects a raw attribute vector into the p-dimensional semantic
  /// subspace: standardize, then U_pᵀ q.
  la::Vector project(const la::Vector& raw) const;

  /// The i-th document's semantic coordinates (row i of V_p Σ_p, which
  /// equals project() applied to the document's own attribute vector).
  const la::Vector& doc_coords(std::size_t i) const { return doc_coords_[i]; }

  /// Cosine similarity of two projected vectors, in [-1, 1].
  static double similarity(const la::Vector& a, const la::Vector& b) {
    return la::cosine_similarity(a, b);
  }

  /// Similarity between a raw vector and document i.
  double similarity_to_doc(const la::Vector& raw, std::size_t i) const {
    return similarity(project(raw), doc_coords_[i]);
  }

  /// Pairwise document similarity matrix (N x N), used by the grouping
  /// component when aggregating units.
  la::Matrix pairwise_doc_similarity() const;

  const la::Vector& singular_values() const { return sigma_; }
  const la::RowStandardizer& standardizer() const { return standardizer_; }
  /// The left singular block U_p (D x p), exposed for serialization.
  const la::Matrix& u_p() const { return u_p_; }

  std::size_t byte_size() const;

 private:
  la::RowStandardizer standardizer_;
  la::Matrix u_p_;                      // D x p
  la::Vector sigma_;                    // p
  std::vector<la::Vector> doc_coords_;  // N rows of V_p
  std::size_t rank_ = 0;
};

}  // namespace smartstore::lsi
