// Capability-annotated, rank-carrying mutex wrappers.
//
// Every lock in the store goes through these types so that both halves of
// the lock-discipline machinery see every acquisition:
//   * Clang TSA (util/thread_annotations.h) — the classes are CAPABILITYs
//     and the RAII guards SCOPED_CAPABILITYs, so `-Wthread-safety` proves
//     GUARDED_BY/REQUIRES contracts at compile time;
//   * the runtime LockOrderValidator (util/lock_rank.h) — each mutex is
//     constructed with its LockRank and reports acquire/release, so debug
//     builds enforce the global acquisition order TSA cannot express.
//
// The wrappers add one int to each mutex and (in release builds) zero code:
// lock()/unlock() inline to the std:: calls plus empty validator hooks.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace smartstore::util {

/// std::mutex with a rank and TSA capability identity.
class SS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf) noexcept : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SS_ACQUIRE() {
    LockOrderValidator::on_acquire(this, rank_);
    mu_.lock();
  }
  void unlock() SS_RELEASE() {
    mu_.unlock();
    LockOrderValidator::on_release(this, rank_);
  }
  bool try_lock() SS_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    LockOrderValidator::on_acquire(this, rank_);
    return true;
  }

  LockRank rank() const noexcept { return rank_; }

  /// Runtime stand-in for a REQUIRES the type system cannot carry (e.g. a
  /// mutex picked by hash). Aborts in validator builds if the calling
  /// thread does not hold this (non-leaf) mutex; no-op otherwise.
  void assert_held() const SS_ASSERT_CAPABILITY(this) {
#ifdef SMARTSTORE_LOCK_RANK_ACTIVE
    if (rank_ != LockRank::kLeaf && !LockOrderValidator::holds(this)) {
      std::fprintf(stderr, "lock-rank violation: assert_held(%s) failed\n",
                   lock_rank_name(rank_));
      std::abort();
    }
#endif
  }

 private:
  std::mutex mu_;
  const LockRank rank_;
};

/// std::shared_mutex with a rank and TSA capability identity. Shared
/// acquisitions participate in rank ordering exactly like exclusive ones
/// (a reader holding the shape lock still takes unit locks below it).
class SS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf) noexcept
      : rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SS_ACQUIRE() {
    LockOrderValidator::on_acquire(this, rank_);
    mu_.lock();
  }
  void unlock() SS_RELEASE() {
    mu_.unlock();
    LockOrderValidator::on_release(this, rank_);
  }
  void lock_shared() SS_ACQUIRE_SHARED() {
    LockOrderValidator::on_acquire(this, rank_);
    mu_.lock_shared();
  }
  void unlock_shared() SS_RELEASE_SHARED() {
    mu_.unlock_shared();
    LockOrderValidator::on_release(this, rank_);
  }

  LockRank rank() const noexcept { return rank_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
};

/// std::lock_guard equivalent, plus an adopt form for the try-lock idiom:
///   if (mu.try_lock()) { MutexLock lock(mu, std::adopt_lock); ... }
class SS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(Mutex& mu, std::adopt_lock_t) SS_REQUIRES(mu) : mu_(mu) {}
  ~MutexLock() SS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent: re-lockable, so it can sit under
/// std::condition_variable_any — the wait path's unlock()/lock() round
/// trips go through the wrapper and keep the validator stack consistent.
class SS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SS_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~UniqueLock() SS_RELEASE() {
    if (owned_) mu_.unlock();
  }

  void lock() SS_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() SS_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }
  bool owns_lock() const noexcept { return owned_; }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  Mutex& mu_;
  bool owned_;
};

/// std::shared_lock equivalent over SharedMutex.
class SS_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) SS_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() SS_RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Exclusive scoped lock over SharedMutex.
class SS_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) SS_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() SS_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace smartstore::util
