// Lightweight leveled logging for the simulator and experiment harnesses.
// Off by default above WARN so benchmark output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace smartstore::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace smartstore::util
