#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/annotated_mutex.h"

namespace smartstore::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
util::Mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  const util::MutexLock lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace smartstore::util
