#include "util/thread_pool.h"

#include <algorithm>

namespace smartstore::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mu_);
      cv_.wait(lock, [this]() SS_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace smartstore::util
