// Deterministic random number generation and the distributions used across
// the SmartStore reproduction (uniform, Gauss, lognormal, Zipf, exponential).
//
// Every stochastic component in this repository takes an explicit 64-bit
// seed and draws from this generator so that experiments regenerate
// identically across runs and platforms. std:: distributions are avoided
// because their output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace smartstore::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed` via SplitMix64 so that nearby
  /// seeds yield uncorrelated streams.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) using Lemire's unbiased method. n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double gauss();

  /// Normal with the given mean and standard deviation.
  double gauss(double mean, double stdev);

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Raw generator state, so a persisted deployment resumes its stream
  /// exactly where it left off (the persistence layer round-trips it).
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks over {0, ..., n-1} with exponent `theta`.
///
/// Uses the classic Gray et al. rejection-free inversion over a precomputed
/// harmonic normalizer; construction is O(n), sampling is O(log n) via
/// binary search on the CDF. Suitable for the file-popularity and
/// query-coordinate skews in the paper (n up to a few million).
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta);

  /// Draws a rank in [0, n); rank 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  std::vector<double> cdf_;
  double theta_;
};

}  // namespace smartstore::util
