// Runtime lock-order validation: the dynamic half of the lock-discipline
// machinery (the static half is Clang Thread Safety Analysis, wired through
// util/thread_annotations.h + util/annotated_mutex.h).
//
// TSA proves "you hold the right lock" but cannot express *ordering* —
// in particular the address-keyed stripe pools (core/striped_locks.h),
// where the lock you take depends on a runtime hash. So every mutex in the
// store carries a LockRank, and a thread-local stack of currently-held
// ranks enforces the one global rule on every acquire:
//
//     a thread may only acquire a lock of STRICTLY GREATER rank than
//     every lock it already holds.
//
// Strict inequality is what encodes the striping discipline: two stripes
// share a rank, so holding one while taking another (even a different
// stripe of the same pool) is rejected — walkers must lock a node, update,
// release, then move to the parent ("child before parent, one at a time").
// It also rejects recursive acquisition of the same mutex outright.
//
// The check runs BEFORE blocking on the underlying mutex, so an ordering
// violation aborts with a diagnostic instead of deadlocking the test run.
//
// kLeaf-ranked mutexes are terminal and exempt: they guard a few scalar
// updates, never call out, and may be taken from anywhere (logging, fault
// points, thread-pool queues); tracking them would only burn cycles.
//
// Enabled when NDEBUG is unset (debug/asan presets) or when
// SMARTSTORE_LOCK_RANK_CHECKS is defined (the tsan preset compiles
// RelWithDebInfo, which defines NDEBUG, so CMake injects the macro there
// explicitly). Release builds compile the validator out entirely: the
// on_acquire/on_release hooks are empty inline functions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace smartstore::util {

/// The global acquisition order, top of the hierarchy first. Gaps between
/// values leave room for the ROADMAP's next lock domains (seqlock/RCU read
/// path, distributed metadata service) without renumbering.
enum class LockRank : int {
  kLifecycle = 0,        ///< db::Store lifecycle shared_mutex
  kDbCheckpoint = 2,     ///< db::Store checkpoint serialization mutex
  kCheckpointCoord = 4,  ///< persist::Checkpointer coordination mutex
  kCompactor = 6,        ///< delta-checkpoint engine / compactor mutex
                         ///< (held across begin_checkpoint: below kShape)
  kShape = 10,           ///< core structure (shape) shared_mutex
  kUnit = 20,            ///< per-storage-unit record mutexes
  kSummaryStripe = 30,   ///< index-unit summary stripe pool
  kSyncStripe = 40,      ///< group replica-sync stripe pool
  kFreeze = 50,          ///< checkpoint freeze/COW interlock
  kWalShardMap = 52,     ///< sharded-WAL shard-map shape mutex
  kWalShard = 54,        ///< per-shard WAL writer mutexes
  kReplBuffer = 56,      ///< replication commit-tap reorder buffer (taken
                         ///< from under a kWalShard mutex by the tap)
  kCluster = 58,         ///< sim::Cluster queue/counter mutex
  // The service tier (src/rpc, src/svc) sits numerically ABOVE every store
  // rank on purpose: a service-tier lock may therefore NEVER be held while
  // calling down into db::Store (whose lifecycle lock is rank 0) — the
  // handler/router protocols release before descending (dedup uses
  // pending-markers, the router copies the shard id out of its map cache),
  // and the validator aborts any accidental hold-across-the-facade.
  kRpcRegistry = 60,     ///< in-process transport endpoint registry
  kSvcCluster = 62,      ///< svc::Cluster shard bookkeeping mutex
  kSvcMap = 63,          ///< MetaService installed-partition-map mutex
  kSvcDedup = 64,        ///< MetaService request-id dedup table + cv
  kSvcLease = 65,        ///< MetaService snapshot-lease table
  kSvcRouter = 66,       ///< Router partition-map cache shared_mutex
  kRpcChannel = 68,      ///< socket channel/server connection mutexes
  kLeaf = 250,           ///< terminal scalar-update locks — untracked
};

inline const char* lock_rank_name(LockRank r) {
  switch (r) {
    case LockRank::kLifecycle: return "lifecycle";
    case LockRank::kDbCheckpoint: return "db-checkpoint";
    case LockRank::kCheckpointCoord: return "checkpoint-coord";
    case LockRank::kCompactor: return "compactor";
    case LockRank::kShape: return "shape";
    case LockRank::kUnit: return "unit";
    case LockRank::kSummaryStripe: return "summary-stripe";
    case LockRank::kSyncStripe: return "sync-stripe";
    case LockRank::kFreeze: return "freeze";
    case LockRank::kWalShardMap: return "wal-shard-map";
    case LockRank::kWalShard: return "wal-shard";
    case LockRank::kReplBuffer: return "repl-buffer";
    case LockRank::kCluster: return "cluster";
    case LockRank::kRpcRegistry: return "rpc-registry";
    case LockRank::kSvcCluster: return "svc-cluster";
    case LockRank::kSvcMap: return "svc-map";
    case LockRank::kSvcDedup: return "svc-dedup";
    case LockRank::kSvcLease: return "svc-lease";
    case LockRank::kSvcRouter: return "svc-router";
    case LockRank::kRpcChannel: return "rpc-channel";
    case LockRank::kLeaf: return "leaf";
  }
  return "?";
}

#if !defined(NDEBUG) || defined(SMARTSTORE_LOCK_RANK_CHECKS)
#define SMARTSTORE_LOCK_RANK_ACTIVE 1
#endif

#ifdef SMARTSTORE_LOCK_RANK_ACTIVE

class LockOrderValidator {
 public:
  /// Call immediately BEFORE blocking on the mutex at `mu`.
  static void on_acquire(const void* mu, LockRank rank) {
    if (rank == LockRank::kLeaf) return;
    Stack& s = tls();
    for (int i = 0; i < s.depth; ++i) {
      if (s.held[i].mu == mu) {
        fail("recursive acquisition", mu, rank, s.held[i].rank);
      }
      if (s.held[i].rank >= rank) {
        fail("rank not above all held locks", mu, rank, s.held[i].rank);
      }
    }
    if (s.depth == kMaxDepth) {
      fail("held-lock stack overflow", mu, rank, rank);
    }
    s.held[s.depth++] = Held{mu, rank};
  }

  /// Call immediately AFTER unlocking the mutex at `mu`.
  static void on_release(const void* mu, LockRank rank) {
    if (rank == LockRank::kLeaf) return;
    Stack& s = tls();
    for (int i = s.depth - 1; i >= 0; --i) {
      if (s.held[i].mu != mu) continue;
      for (int j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
      --s.depth;
      return;
    }
    fail("release of a lock not held", mu, rank, rank);
  }

  /// True iff the calling thread holds the (non-leaf) mutex at `mu`.
  static bool holds(const void* mu) {
    const Stack& s = tls();
    for (int i = 0; i < s.depth; ++i) {
      if (s.held[i].mu == mu) return true;
    }
    return false;
  }

  /// Number of tracked locks the calling thread currently holds.
  static int held_count() { return tls().depth; }

 private:
  static constexpr int kMaxDepth = 16;
  struct Held {
    const void* mu;
    LockRank rank;
  };
  struct Stack {
    Held held[kMaxDepth];
    int depth = 0;
  };

  static Stack& tls() {
    thread_local Stack s;
    return s;
  }

  [[noreturn]] static void fail(const char* what, const void* mu,
                                LockRank acquiring, LockRank held) {
    std::fprintf(stderr,
                 "lock-rank violation: %s (acquiring %s(%d) at %p while "
                 "holding %s(%d))\n",
                 what, lock_rank_name(acquiring), static_cast<int>(acquiring),
                 mu, lock_rank_name(held), static_cast<int>(held));
    std::abort();
  }
};

#else  // !SMARTSTORE_LOCK_RANK_ACTIVE

class LockOrderValidator {
 public:
  static void on_acquire(const void*, LockRank) {}
  static void on_release(const void*, LockRank) {}
  static bool holds(const void*) { return false; }
  static int held_count() { return 0; }
};

#endif  // SMARTSTORE_LOCK_RANK_ACTIVE

}  // namespace smartstore::util
