#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace smartstore::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero words from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  assert(n > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::gauss() {
  // Box–Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::gauss(double mean, double stdev) { return mean + stdev * gauss(); }

double Rng::lognormal(double mu, double sigma) {
  return std::exp(gauss(mu, sigma));
}

double Rng::exponential(double lambda) {
  assert(lambda > 0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

ZipfGenerator::ZipfGenerator(std::size_t n, double theta) : theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against round-off at the tail
}

std::size_t ZipfGenerator::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace smartstore::util
