// Byte-size accounting helpers shared by the space-overhead experiments
// (Figure 7 and Figure 14a report structure sizes per node).
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>

namespace smartstore::util {

/// Formats a byte count as a short human-readable string ("1.5 MiB").
inline std::string format_bytes(std::size_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace smartstore::util
