// Minimal fixed-size thread pool with a parallel_for helper.
//
// Used for embarrassingly parallel work (ground-truth brute-force scans in
// the recall experiments). The pool follows the share-nothing decomposition
// idiom: tasks communicate only through their captured inputs and the
// returned futures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      const MutexLock lock(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool; blocks until all iterations finish.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  /// Queue mutex: a terminal (kLeaf) lock — submit() may be called from
  /// under higher-rank locks, and nothing is acquired while holding it.
  /// condition_variable_any because the wait path re-locks through the
  /// annotated wrapper, not a raw std::unique_lock<std::mutex>.
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ SS_GUARDED_BY(mu_);
  std::condition_variable_any cv_;
  bool stop_ SS_GUARDED_BY(mu_) = false;
};

}  // namespace smartstore::util
