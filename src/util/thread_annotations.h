// Clang Thread Safety Analysis attribute macros.
//
// These expand to the `capability`-family attributes when compiling with a
// Clang that implements them (the analysis itself is enabled by
// -Wthread-safety; the build promotes it with -Werror=thread-safety on
// Clang, see the top-level CMakeLists) and to nothing on every other
// compiler, so GCC builds see plain unannotated code.
//
// The macros carry an SS_ prefix to avoid colliding with other libraries'
// annotation headers (Abseil, gtest internals) that define the bare names.
//
// Cheat sheet (the full semantics live in the Clang docs,
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   SS_CAPABILITY          — class is a lock ("capability")
//   SS_SCOPED_CAPABILITY   — RAII class that acquires/releases a capability
//   SS_GUARDED_BY(mu)      — field may only be touched while holding mu
//   SS_PT_GUARDED_BY(mu)   — pointee may only be touched while holding mu
//   SS_REQUIRES(mu)        — caller must hold mu exclusively
//   SS_REQUIRES_SHARED(mu) — caller must hold mu at least shared
//   SS_ACQUIRE / SS_RELEASE (+_SHARED) — function takes / drops the lock
//   SS_TRY_ACQUIRE(b, mu)  — takes mu iff the function returns b
//   SS_EXCLUDES(mu)        — caller must NOT hold mu (non-reentrancy)
//   SS_ASSERT_CAPABILITY   — runtime check that mu is held (fatal if not)
//   SS_RETURN_CAPABILITY   — function returns a reference to the named lock
//   SS_NO_THREAD_SAFETY_ANALYSIS — opt a function out (document why!)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SS_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef SS_THREAD_ANNOTATION__
#define SS_THREAD_ANNOTATION__(x)  // no-op on GCC/MSVC and pre-TSA Clang
#endif

#define SS_CAPABILITY(x) SS_THREAD_ANNOTATION__(capability(x))
#define SS_SCOPED_CAPABILITY SS_THREAD_ANNOTATION__(scoped_lockable)
#define SS_GUARDED_BY(x) SS_THREAD_ANNOTATION__(guarded_by(x))
#define SS_PT_GUARDED_BY(x) SS_THREAD_ANNOTATION__(pt_guarded_by(x))
#define SS_ACQUIRED_BEFORE(...) \
  SS_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SS_ACQUIRED_AFTER(...) \
  SS_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define SS_REQUIRES(...) \
  SS_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SS_REQUIRES_SHARED(...) \
  SS_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define SS_ACQUIRE(...) \
  SS_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SS_ACQUIRE_SHARED(...) \
  SS_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SS_RELEASE(...) \
  SS_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SS_RELEASE_SHARED(...) \
  SS_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define SS_RELEASE_GENERIC(...) \
  SS_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define SS_TRY_ACQUIRE(...) \
  SS_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define SS_TRY_ACQUIRE_SHARED(...) \
  SS_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#define SS_EXCLUDES(...) SS_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define SS_ASSERT_CAPABILITY(x) SS_THREAD_ANNOTATION__(assert_capability(x))
#define SS_ASSERT_SHARED_CAPABILITY(x) \
  SS_THREAD_ANNOTATION__(assert_shared_capability(x))
#define SS_RETURN_CAPABILITY(x) SS_THREAD_ANNOTATION__(lock_returned(x))
#define SS_NO_THREAD_SAFETY_ANALYSIS \
  SS_THREAD_ANNOTATION__(no_thread_safety_analysis)
