// Binary serialization substrate for the persistence layer.
//
// BinaryWriter appends little-endian primitives to a growable byte buffer;
// BinaryReader decodes from a read-only view with bounds checking on every
// access — a truncated or corrupted input surfaces as a BinaryIoError, never
// as an out-of-bounds read or a multi-gigabyte allocation from a garbage
// length prefix. Doubles travel as IEEE-754 bit patterns so values (incl.
// infinities from empty MBRs) round-trip exactly.
//
// The encoding is deliberately dumb: fixed-width integers, u64 length
// prefixes, no varints, no alignment. Snapshot/WAL framing, versioning and
// checksumming live one layer up in src/persist/.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace smartstore::util {

/// Raised on any malformed read: out-of-bounds access, implausible length
/// prefix, or a value that fails a caller-declared sanity bound.
class BinaryIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinaryWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  /// u64 length prefix + raw bytes.
  void write_string(const std::string& s);
  void write_bytes(const void* data, std::size_t len);
  /// u64 element count + elements.
  void write_vec_f64(const std::vector<double>& v);
  void write_vec_u64(const std::vector<std::uint64_t>& v);
  /// std::size_t vectors are widened to u64 on the wire.
  void write_vec_size(const std::vector<std::size_t>& v);

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  BinaryReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::vector<std::uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  double read_f64();
  bool read_bool();
  std::string read_string();
  std::vector<double> read_vec_f64();
  std::vector<std::uint64_t> read_vec_u64();
  std::vector<std::size_t> read_vec_size();

  /// read_u64 checked against an inclusive upper bound (e.g. element counts
  /// that index into an existing container).
  std::uint64_t read_u64_max(std::uint64_t max, const char* what);

  /// Advances past `n` bytes (bounds-checked).
  void skip(std::size_t n);

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }

 private:
  /// Validates that `n` more bytes exist and returns a pointer to them,
  /// advancing the cursor.
  const std::uint8_t* take(std::size_t n);
  /// A length prefix for `elem_size`-byte elements must fit in what is left
  /// of the buffer; rejects garbage lengths before any allocation.
  std::size_t take_count(std::size_t elem_size);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- whole-file helpers -----------------------------------------------------

/// Reads an entire file; throws BinaryIoError when absent or unreadable.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// Writes atomically: a sibling temp file is written, flushed and renamed
/// over `path`, so a crash mid-write never leaves a half snapshot behind.
/// The containing directory is fsynced after the rename so the swap itself
/// is durable, not just the bytes.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Best-effort fsync of the directory containing `path` (POSIX; no-op on
/// other platforms): makes a just-created or just-renamed directory entry
/// survive power loss.
void fsync_parent_dir(const std::string& path);

}  // namespace smartstore::util
