// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
// guarding every snapshot section and WAL commit block in the persistence
// layer. Table-driven, incremental: feed chunks via the running `state`
// form, or use the one-shot helper.
#pragma once

#include <cstddef>
#include <cstdint>

namespace smartstore::util {

/// Continues a CRC-32 computation. Start with `crc32_init()`, feed chunks,
/// finish with `crc32_final()`.
std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t len);

inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }
inline std::uint32_t crc32_final(std::uint32_t state) { return ~state; }

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace smartstore::util
