#include "util/binary_io.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace smartstore::util {

// ---- BinaryWriter -----------------------------------------------------------

void BinaryWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFFu);
}

void BinaryWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFFu);
}

void BinaryWriter::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_bytes(s.data(), s.size());
}

void BinaryWriter::write_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

void BinaryWriter::write_vec_f64(const std::vector<double>& v) {
  write_u64(v.size());
  for (double x : v) write_f64(x);
}

void BinaryWriter::write_vec_u64(const std::vector<std::uint64_t>& v) {
  write_u64(v.size());
  for (std::uint64_t x : v) write_u64(x);
}

void BinaryWriter::write_vec_size(const std::vector<std::size_t>& v) {
  write_u64(v.size());
  for (std::size_t x : v) write_u64(x);
}

// ---- BinaryReader -----------------------------------------------------------

const std::uint8_t* BinaryReader::take(std::size_t n) {
  if (n > size_ - pos_) {
    throw BinaryIoError("binary read past end of buffer (" +
                        std::to_string(n) + " bytes wanted, " +
                        std::to_string(size_ - pos_) + " left)");
  }
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::size_t BinaryReader::take_count(std::size_t elem_size) {
  const std::uint64_t n = read_u64();
  if (elem_size != 0 && n > remaining() / elem_size) {
    throw BinaryIoError("implausible length prefix " + std::to_string(n) +
                        " (only " + std::to_string(remaining()) +
                        " bytes left)");
  }
  return static_cast<std::size_t>(n);
}

std::uint8_t BinaryReader::read_u8() { return *take(1); }

std::uint32_t BinaryReader::read_u32() {
  const std::uint8_t* p = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  const std::uint8_t* p = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double BinaryReader::read_f64() {
  return std::bit_cast<double>(read_u64());
}

bool BinaryReader::read_bool() {
  const std::uint8_t v = read_u8();
  if (v > 1) throw BinaryIoError("malformed bool value");
  return v != 0;
}

std::string BinaryReader::read_string() {
  const std::size_t n = take_count(1);
  const std::uint8_t* p = take(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<double> BinaryReader::read_vec_f64() {
  const std::size_t n = take_count(8);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = read_f64();
  return v;
}

std::vector<std::uint64_t> BinaryReader::read_vec_u64() {
  const std::size_t n = take_count(8);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = read_u64();
  return v;
}

std::vector<std::size_t> BinaryReader::read_vec_size() {
  const std::size_t n = take_count(8);
  std::vector<std::size_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::size_t>(read_u64());
  return v;
}

void BinaryReader::skip(std::size_t n) { take(n); }

std::uint64_t BinaryReader::read_u64_max(std::uint64_t max, const char* what) {
  const std::uint64_t v = read_u64();
  if (v > max) {
    throw BinaryIoError(std::string(what) + " out of range: " +
                        std::to_string(v) + " > " + std::to_string(max));
  }
  return v;
}

// ---- whole-file helpers -----------------------------------------------------

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw BinaryIoError("cannot open for reading: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(size > 0 ? static_cast<std::size_t>(size)
                                           : 0);
  if (!bytes.empty() && std::fread(bytes.data(), 1, bytes.size(), f) !=
                            bytes.size()) {
    std::fclose(f);
    throw BinaryIoError("short read: " + path);
  }
  std::fclose(f);
  return bytes;
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw BinaryIoError("cannot open for writing: " + tmp);
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    throw BinaryIoError("short write: " + tmp);
  }
  std::fflush(f);
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(f));
#endif
  std::fclose(f);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw BinaryIoError("rename " + tmp + " -> " + path + ": " +
                              ec.message());
  fsync_parent_dir(path);
}

void fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace smartstore::util
