// Semantic-aware caching/prefetching (Sections 1.1 and 5.3).
//
// "When a file is visited, we can execute a top-k query to find its k most
// correlated files to be prefetched." This wrapper drives a SmartStore
// top-k query on every demand miss (and optionally on hits) and prefetches
// the answers into an LRU-managed cache. The bench compares its hit rate
// against plain LRU on the same trace-op stream.
#pragma once

#include <cstddef>

#include "cache/lru.h"
#include "core/smartstore.h"
#include "metadata/file_metadata.h"

namespace smartstore::cache {

class SemanticPrefetchCache {
 public:
  /// `k` = number of correlated files prefetched per trigger;
  /// `prefetch_on_hit` also triggers on cache hits (more aggressive).
  SemanticPrefetchCache(core::SmartStore& store, std::size_t capacity,
                        std::size_t k, bool prefetch_on_hit = false);

  /// Processes one access to `f` at virtual time `now`. Returns true on a
  /// cache hit.
  bool access(const metadata::FileMetadata& f, double now);

  const CacheStats& stats() const { return cache_.stats(); }
  void reset_stats() { cache_.reset_stats(); }

  /// Aggregate SmartStore query cost incurred by prefetching.
  double prefetch_latency_total() const { return prefetch_latency_total_; }
  std::uint64_t prefetch_messages_total() const {
    return prefetch_messages_total_;
  }

 private:
  void trigger_prefetch(const metadata::FileMetadata& f, double now);

  core::SmartStore& store_;
  LruCache cache_;
  std::size_t k_;
  bool prefetch_on_hit_;
  double prefetch_latency_total_ = 0;
  std::uint64_t prefetch_messages_total_ = 0;
};

}  // namespace smartstore::cache
