#include "cache/semantic_cache.h"

namespace smartstore::cache {

SemanticPrefetchCache::SemanticPrefetchCache(core::SmartStore& store,
                                             std::size_t capacity,
                                             std::size_t k,
                                             bool prefetch_on_hit)
    : store_(store), cache_(capacity), k_(k),
      prefetch_on_hit_(prefetch_on_hit) {}

bool SemanticPrefetchCache::access(const metadata::FileMetadata& f,
                                   double now) {
  const bool hit = cache_.access(f.id);
  if (!hit || prefetch_on_hit_) trigger_prefetch(f, now);
  return hit;
}

void SemanticPrefetchCache::trigger_prefetch(const metadata::FileMetadata& f,
                                             double now) {
  metadata::TopKQuery q;
  q.dims = metadata::AttrSubset::all();
  q.point = f.full_vector();
  q.k = k_ + 1;  // the file itself is its own nearest neighbor
  core::TopKResult res =
      store_.topk_query(q, core::Routing::kOffline, now);
  prefetch_latency_total_ += res.stats.latency_s;
  prefetch_messages_total_ += res.stats.messages;
  for (const auto& [dist, id] : res.hits) {
    (void)dist;
    if (id == f.id) continue;
    cache_.prefetch(id);
  }
}

}  // namespace smartstore::cache
