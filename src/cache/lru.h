// LRU cache: the conventional locality-only baseline for the
// semantic-caching application (Sections 1.1 and 5.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace smartstore::cache {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t prefetches = 0;

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Fixed-capacity LRU over uint64 keys (file ids).
class LruCache {
 public:
  explicit LruCache(std::size_t capacity);

  /// Looks the key up, recording hit/miss and refreshing recency. On miss
  /// the key is admitted (demand fill). Returns true on hit.
  bool access(std::uint64_t key);

  /// Admits a key without counting a hit or miss (prefetch fill). Returns
  /// false if it was already cached.
  bool prefetch(std::uint64_t key);

  bool contains(std::uint64_t key) const { return map_.count(key) > 0; }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void touch(std::uint64_t key);
  void admit(std::uint64_t key);
  void evict_if_needed();

  std::size_t capacity_;
  std::list<std::uint64_t> order_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  CacheStats stats_;
};

}  // namespace smartstore::cache
