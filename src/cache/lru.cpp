#include "cache/lru.h"

#include <cassert>

namespace smartstore::cache {

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {
  assert(capacity > 0);
}

bool LruCache::access(std::uint64_t key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++stats_.hits;
    touch(key);
    return true;
  }
  ++stats_.misses;
  admit(key);
  return false;
}

bool LruCache::prefetch(std::uint64_t key) {
  if (map_.count(key)) return false;
  ++stats_.prefetches;
  admit(key);
  return true;
}

void LruCache::touch(std::uint64_t key) {
  auto it = map_.find(key);
  order_.erase(it->second);
  order_.push_front(key);
  it->second = order_.begin();
}

void LruCache::admit(std::uint64_t key) {
  order_.push_front(key);
  map_[key] = order_.begin();
  evict_if_needed();
}

void LruCache::evict_if_needed() {
  while (map_.size() > capacity_) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace smartstore::cache
