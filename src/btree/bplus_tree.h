// In-memory B+-tree, the index substrate for the DBMS baseline (Section
// 5.1: "a popular database approach that uses a B+ tree to index each
// metadata attribute").
//
// Entries are (Key, Value) pairs ordered lexicographically, which makes
// duplicate attribute values (many files share a size or timestamp) unique
// composites and keeps insert/erase logic canonical. Leaves are linked for
// range scans. Deletion rebalances (borrow from siblings, merge on
// underflow) so the tree stays within the classical occupancy invariants:
// every node except the root holds at least Order/2 entries/children.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace smartstore::btree {

template <typename Key, typename Value, std::size_t Order = 64>
class BPlusTree {
  static_assert(Order >= 4, "Order must be at least 4");

 public:
  using Entry = std::pair<Key, Value>;

  BPlusTree() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts the pair; duplicates of the exact (key, value) composite are
  /// ignored. Returns true if inserted.
  bool insert(const Key& key, const Value& value) {
    const Entry e{key, value};
    if (!root_) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
      root_->entries.push_back(e);
      ++size_;
      ++leaf_count_;
      return true;
    }
    Entry promoted;
    std::unique_ptr<Node> sibling;
    const InsertResult r = insert_recursive(*root_, e, promoted, sibling);
    if (r == InsertResult::kDuplicate) return false;
    if (r == InsertResult::kSplit) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(promoted);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
      ++internal_count_;
    }
    ++size_;
    return true;
  }

  /// Removes the exact (key, value) pair. Returns true if it was present.
  bool erase(const Key& key, const Value& value) {
    if (!root_) return false;
    const Entry e{key, value};
    if (!erase_recursive(*root_, e)) return false;
    --size_;
    // Collapse the root: an internal root with a single child is replaced
    // by that child; an empty leaf root is dropped.
    if (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children.front());
      --internal_count_;
    } else if (root_->leaf && root_->entries.empty()) {
      root_.reset();
      --leaf_count_;
    }
    return true;
  }

  /// True if the exact (key, value) pair is present.
  bool contains(const Key& key, const Value& value) const {
    const Node* n = root_.get();
    if (!n) return false;
    const Entry e{key, value};
    while (!n->leaf) {
      const std::size_t i = static_cast<std::size_t>(
          std::upper_bound(n->keys.begin(), n->keys.end(), e) -
          n->keys.begin());
      n = n->children[i].get();
    }
    return std::binary_search(n->entries.begin(), n->entries.end(), e);
  }

  /// Calls fn(key, value) for every entry with lo <= key <= hi, in key
  /// order. Returns the number of entries visited.
  std::size_t range_scan(
      const Key& lo, const Key& hi,
      const std::function<void(const Key&, const Value&)>& fn) const {
    if (!root_ || hi < lo) return 0;
    // Descend toward the leftmost leaf that could hold `lo`.
    const Node* n = root_.get();
    const Entry probe_lo{lo, numeric_limits_min()};
    while (!n->leaf) {
      const std::size_t i = static_cast<std::size_t>(
          std::lower_bound(n->keys.begin(), n->keys.end(), probe_lo) -
          n->keys.begin());
      n = n->children[i].get();
    }
    std::size_t visited = 0;
    auto it = std::lower_bound(n->entries.begin(), n->entries.end(), probe_lo);
    while (n) {
      for (; it != n->entries.end(); ++it) {
        if (hi < it->first) return visited;
        fn(it->first, it->second);
        ++visited;
      }
      n = n->next;
      if (n) it = n->entries.begin();
    }
    return visited;
  }

  /// Calls fn for every entry, in key order.
  void for_each(const std::function<void(const Key&, const Value&)>& fn) const {
    const Node* n = leftmost_leaf();
    while (n) {
      for (const auto& e : n->entries) fn(e.first, e.second);
      n = n->next;
    }
  }

  /// Height of the tree (0 for empty, 1 for a lone leaf).
  std::size_t height() const {
    std::size_t h = 0;
    const Node* n = root_.get();
    while (n) {
      ++h;
      n = n->leaf ? nullptr : n->children.front().get();
    }
    return h;
  }

  std::size_t leaf_count() const { return leaf_count_; }
  std::size_t internal_count() const { return internal_count_; }

  /// Approximate heap footprint, for the space-overhead experiments.
  std::size_t byte_size() const {
    const std::size_t per_leaf = sizeof(Node) + Order * sizeof(Entry);
    const std::size_t per_internal =
        sizeof(Node) + Order * (sizeof(Entry) + sizeof(void*));
    return sizeof(*this) + leaf_count_ * per_leaf +
           internal_count_ * per_internal;
  }

  /// Verifies structural invariants (ordering, occupancy, linked-leaf
  /// chain); used by property tests. Returns false on any violation.
  bool check_invariants() const {
    if (!root_) return size_ == 0;
    std::size_t counted = 0;
    const Node* prev_leaf = nullptr;
    bool ok = check_node(*root_, nullptr, nullptr, /*is_root=*/true, counted,
                         prev_leaf);
    return ok && counted == size_;
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    // Leaves use `entries`; internal nodes use `keys` + `children` with
    // children.size() == keys.size() + 1.
    std::vector<Entry> entries;
    std::vector<Entry> keys;
    std::vector<std::unique_ptr<Node>> children;
    Node* next = nullptr;  // leaf chain
  };

  enum class InsertResult { kOk, kSplit, kDuplicate };

  static constexpr std::size_t kMin = Order / 2;

  // Helper for building the minimal probe entry: Value must be default +
  // less-than comparable; the default-constructed Value is assumed minimal
  // for numeric/id types used in this repo. For safety with signed types we
  // use the numeric minimum when available.
  static Value numeric_limits_min() {
    if constexpr (std::numeric_limits<Value>::is_specialized) {
      return std::numeric_limits<Value>::lowest();
    } else {
      return Value{};
    }
  }

  const Node* leftmost_leaf() const {
    const Node* n = root_.get();
    while (n && !n->leaf) n = n->children.front().get();
    return n;
  }

  InsertResult insert_recursive(Node& node, const Entry& e, Entry& promoted,
                                std::unique_ptr<Node>& sibling) {
    if (node.leaf) {
      auto it = std::lower_bound(node.entries.begin(), node.entries.end(), e);
      if (it != node.entries.end() && *it == e) return InsertResult::kDuplicate;
      node.entries.insert(it, e);
      if (node.entries.size() <= Order) return InsertResult::kOk;
      // Split leaf: right half moves to a new sibling.
      auto right = std::make_unique<Node>(/*leaf=*/true);
      const std::size_t half = node.entries.size() / 2;
      right->entries.assign(node.entries.begin() + half, node.entries.end());
      node.entries.resize(half);
      right->next = node.next;
      node.next = right.get();
      promoted = right->entries.front();
      sibling = std::move(right);
      ++leaf_count_;
      return InsertResult::kSplit;
    }

    const std::size_t i = static_cast<std::size_t>(
        std::upper_bound(node.keys.begin(), node.keys.end(), e) -
        node.keys.begin());
    Entry child_promoted;
    std::unique_ptr<Node> child_sibling;
    const InsertResult r =
        insert_recursive(*node.children[i], e, child_promoted, child_sibling);
    if (r != InsertResult::kSplit) return r;

    node.keys.insert(node.keys.begin() + i, child_promoted);
    node.children.insert(node.children.begin() + i + 1,
                         std::move(child_sibling));
    if (node.children.size() <= Order) return InsertResult::kOk;

    // Split internal node: middle key is promoted, not copied.
    auto right = std::make_unique<Node>(/*leaf=*/false);
    const std::size_t mid = node.keys.size() / 2;
    promoted = node.keys[mid];
    right->keys.assign(node.keys.begin() + mid + 1, node.keys.end());
    right->children.reserve(node.children.size() - (mid + 1));
    for (std::size_t c = mid + 1; c < node.children.size(); ++c)
      right->children.push_back(std::move(node.children[c]));
    node.keys.resize(mid);
    node.children.resize(mid + 1);
    sibling = std::move(right);
    ++internal_count_;
    return InsertResult::kSplit;
  }

  bool erase_recursive(Node& node, const Entry& e) {
    if (node.leaf) {
      auto it = std::lower_bound(node.entries.begin(), node.entries.end(), e);
      if (it == node.entries.end() || !(*it == e)) return false;
      node.entries.erase(it);
      return true;
    }
    const std::size_t i = static_cast<std::size_t>(
        std::upper_bound(node.keys.begin(), node.keys.end(), e) -
        node.keys.begin());
    if (!erase_recursive(*node.children[i], e)) return false;
    fix_underflow(node, i);
    return true;
  }

  std::size_t occupancy(const Node& n) const {
    return n.leaf ? n.entries.size() : n.children.size();
  }

  void fix_underflow(Node& parent, std::size_t i) {
    Node& child = *parent.children[i];
    if (occupancy(child) >= kMin) return;

    // Try to borrow from the left sibling.
    if (i > 0 && occupancy(*parent.children[i - 1]) > kMin) {
      Node& left = *parent.children[i - 1];
      if (child.leaf) {
        child.entries.insert(child.entries.begin(), left.entries.back());
        left.entries.pop_back();
        parent.keys[i - 1] = child.entries.front();
      } else {
        child.keys.insert(child.keys.begin(), parent.keys[i - 1]);
        parent.keys[i - 1] = left.keys.back();
        left.keys.pop_back();
        child.children.insert(child.children.begin(),
                              std::move(left.children.back()));
        left.children.pop_back();
      }
      return;
    }
    // Try to borrow from the right sibling.
    if (i + 1 < parent.children.size() &&
        occupancy(*parent.children[i + 1]) > kMin) {
      Node& right = *parent.children[i + 1];
      if (child.leaf) {
        child.entries.push_back(right.entries.front());
        right.entries.erase(right.entries.begin());
        parent.keys[i] = right.entries.front();
      } else {
        child.keys.push_back(parent.keys[i]);
        parent.keys[i] = right.keys.front();
        right.keys.erase(right.keys.begin());
        child.children.push_back(std::move(right.children.front()));
        right.children.erase(right.children.begin());
      }
      return;
    }
    // Merge with a sibling (prefer left).
    if (i > 0) {
      merge_children(parent, i - 1);
    } else if (i + 1 < parent.children.size()) {
      merge_children(parent, i);
    }
  }

  /// Merges parent.children[i+1] into parent.children[i] and removes the
  /// separator keys[i].
  void merge_children(Node& parent, std::size_t i) {
    Node& left = *parent.children[i];
    Node& right = *parent.children[i + 1];
    if (left.leaf) {
      left.entries.insert(left.entries.end(), right.entries.begin(),
                          right.entries.end());
      left.next = right.next;
      --leaf_count_;
    } else {
      left.keys.push_back(parent.keys[i]);
      left.keys.insert(left.keys.end(), right.keys.begin(), right.keys.end());
      for (auto& c : right.children) left.children.push_back(std::move(c));
      --internal_count_;
    }
    parent.keys.erase(parent.keys.begin() + i);
    parent.children.erase(parent.children.begin() + i + 1);
  }

  bool check_node(const Node& n, const Entry* lo, const Entry* hi,
                  bool is_root, std::size_t& counted,
                  const Node*& prev_leaf) const {
    if (n.leaf) {
      if (!is_root && n.entries.size() < kMin) return false;
      if (n.entries.size() > Order) return false;
      if (!std::is_sorted(n.entries.begin(), n.entries.end())) return false;
      for (const auto& e : n.entries) {
        if (lo && e < *lo) return false;
        if (hi && !(e < *hi)) return false;
      }
      if (prev_leaf && prev_leaf->next != &n) return false;
      prev_leaf = &n;
      counted += n.entries.size();
      return true;
    }
    if (n.children.size() != n.keys.size() + 1) return false;
    if (!is_root && n.children.size() < kMin) return false;
    if (n.children.size() > Order) return false;
    if (!std::is_sorted(n.keys.begin(), n.keys.end())) return false;
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      const Entry* clo = i == 0 ? lo : &n.keys[i - 1];
      const Entry* chi = i == n.keys.size() ? hi : &n.keys[i];
      if (!check_node(*n.children[i], clo, chi, /*is_root=*/false, counted,
                      prev_leaf))
        return false;
    }
    return true;
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::size_t leaf_count_ = 0;
  std::size_t internal_count_ = 0;
};

}  // namespace smartstore::btree
