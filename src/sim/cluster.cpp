#include "sim/cluster.h"

#include <algorithm>
#include <cassert>

namespace smartstore::sim {

Cluster::Cluster(std::size_t num_nodes, CostModel cost)
    : cost_(cost), free_at_(num_nodes, 0.0), busy_time_(num_nodes, 0.0),
      alive_(num_nodes, true) {
  assert(num_nodes > 0);
}

Session Cluster::start_session(NodeId home, double arrival) {
  assert(home < size());
  return Session(this, home, arrival);
}

void Cluster::set_node_alive(NodeId n, bool alive) {
  assert(n < size());
  const util::MutexLock lock(mu_);
  alive_[n] = alive;
}

NodeId Cluster::add_node() {
  const util::MutexLock lock(mu_);
  free_at_.push_back(0.0);
  busy_time_.push_back(0.0);
  alive_.push_back(true);
  return free_at_.size() - 1;
}

void Cluster::reset_queues() {
  const util::MutexLock lock(mu_);
  std::fill(free_at_.begin(), free_at_.end(), 0.0);
  std::fill(busy_time_.begin(), busy_time_.end(), 0.0);
}

void Session::visit(double cpu_s, std::size_t records) {
  assert(cluster_);
  const util::MutexLock lock(cluster_->mu_);
  if (!cluster_->alive_[at_]) {
    failed_ = true;
    return;
  }
  const double work =
      cpu_s + static_cast<double>(records) * cluster_->cost_.per_record_scan_s;
  double& free_at = cluster_->free_at_[at_];
  const double start = std::max(clock_, free_at);
  const double end = start + work;
  free_at = end;
  cluster_->busy_time_[at_] += work;
  clock_ = end;
  ++cluster_->counters_.node_visits;
  cluster_->counters_.records_scanned += records;
}

void Session::send_to(NodeId to, std::size_t bytes) {
  assert(cluster_ && to < cluster_->size());
  if (to == at_) return;  // local handoff
  const util::MutexLock lock(cluster_->mu_);
  if (!cluster_->alive_[to]) {
    failed_ = true;
    at_ = to;
    return;
  }
  clock_ += cluster_->cost_.transfer_time(bytes);
  clock_ += cluster_->cost_.per_message_cpu_s;
  at_ = to;
  ++hops_;
  ++messages_;
  ++cluster_->counters_.messages;
  ++cluster_->counters_.hops;
}

void Session::join(const std::vector<Session>& branches) {
  for (const Session& b : branches) {
    clock_ = std::max(clock_, b.clock_);
    hops_ += b.hops_;
    messages_ += b.messages_;
    failed_ = failed_ || b.failed_;
  }
}

}  // namespace smartstore::sim
