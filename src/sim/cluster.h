// Virtual-time simulation of a decentralized metadata-server cluster.
//
// Model: every server ("storage unit") is a FIFO resource with a
// next-free-at timestamp. A query is a Session whose clock advances through
// visits (CPU work on a node, waiting while the node is busy) and sends
// (network hops). Sessions can fork parallel branches — used for multicast
// fan-out, where the overall latency is the max over branches — and join.
//
// IMPORTANT: nodes are scalar FIFO resources (a next-free-at timestamp),
// so sessions touching a node must be *started in non-decreasing arrival
// order*; a session processed later but with an earlier arrival would
// queue behind work that logically hadn't arrived yet. Experiment drivers
// interleave background load and queries chronologically. Under the
// multi-writer serving contract, sessions from concurrent threads are
// data-race-free (one internal mutex per queue/counter update), but the
// FIFO model sees them in lock-acquisition order — virtual-time latency
// numbers from concurrent runs are approximate; throughput benchmarks use
// wall-clock time instead.
//
// This captures the two effects the paper's evaluation hinges on:
//   * centralization: baselines funnel every query through one node, so
//     under an intensified (TIF-scaled) arrival stream queries queue up and
//     latency explodes (Table 4's thousands of seconds);
//   * decentralization: SmartStore scatters home units uniformly and
//     bounds most queries inside one semantic group (Figure 8), so queue
//     depth stays near zero.
//
// Failure injection (node crash) is supported so tests can exercise the
// root multi-mapping recovery path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/cost_model.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::sim {

using NodeId = std::size_t;

struct ClusterCounters {
  std::uint64_t messages = 0;      ///< network messages sent
  std::uint64_t hops = 0;          ///< inter-node hops (excludes self-sends)
  std::uint64_t node_visits = 0;   ///< CPU service episodes
  std::uint64_t records_scanned = 0;
};

class Cluster;

/// One query/operation flowing through the cluster. Cheap to copy: forked
/// copies share the cluster and diverge only in clock and location.
class Session {
 public:
  double clock() const { return clock_; }
  NodeId location() const { return at_; }
  std::uint64_t hops() const { return hops_; }
  std::uint64_t messages() const { return messages_; }
  bool failed() const { return failed_; }

  /// Performs `cpu_s` of work on the current node, waiting for the node to
  /// free up first, then scans `records` metadata records.
  void visit(double cpu_s, std::size_t records = 0);

  /// Sends a `bytes`-sized message to `to` and moves the session there.
  /// A send to the current node is local (no hop, no message).
  void send_to(NodeId to, std::size_t bytes = 256);

  /// Forks a branch that starts at the current clock and location. The
  /// branch's message/hop counters start at zero so that join() adds pure
  /// deltas (a branch inheriting the parent's counts would double-count,
  /// exponentially so under nested fork/join).
  Session fork() const {
    Session b = *this;
    b.hops_ = 0;
    b.messages_ = 0;
    return b;
  }

  /// Joins parallel branches: clock becomes the max of this session's and
  /// all branches' clocks (multicast completes when the slowest reply is
  /// in); message/hop counts accumulate; failure is sticky.
  void join(const std::vector<Session>& branches);

 private:
  friend class Cluster;
  Session(Cluster* c, NodeId at, double start)
      : cluster_(c), at_(at), clock_(start) {}

  Cluster* cluster_;
  NodeId at_;
  double clock_;
  std::uint64_t hops_ = 0;
  std::uint64_t messages_ = 0;
  bool failed_ = false;
};

class Cluster {
 public:
  Cluster(std::size_t num_nodes, CostModel cost = {});

  std::size_t size() const {
    const util::MutexLock lock(mu_);
    return free_at_.size();
  }
  const CostModel& cost() const { return cost_; }
  /// Snapshot of the counters (by value: returning a reference would let
  /// the caller read the struct while a concurrent session mutates it).
  ClusterCounters counters() const {
    const util::MutexLock lock(mu_);
    return counters_;
  }
  void reset_counters() {
    const util::MutexLock lock(mu_);
    counters_ = {};
  }

  /// Starts a session at `home` arriving at absolute time `arrival`.
  Session start_session(NodeId home, double arrival);

  /// Crashes / revives a node. Visits and sends touching a dead node mark
  /// the session failed.
  void set_node_alive(NodeId n, bool alive);
  bool node_alive(NodeId n) const {
    const util::MutexLock lock(mu_);
    return alive_[n];
  }

  /// Adds a node to the cluster (used when a storage unit is admitted at
  /// runtime, Section 3.2.1). Returns its id.
  NodeId add_node();

  /// Resets all node queues to idle at time zero (counters untouched).
  void reset_queues();

  /// Busy time accumulated per node (load-balance diagnostics). By value
  /// for the same reason as counters().
  std::vector<double> busy_time() const {
    const util::MutexLock lock(mu_);
    return busy_time_;
  }

 private:
  friend class Session;

  CostModel cost_;
  /// Sessions on concurrent serving threads race on the node queues and
  /// counters; the critical sections are a handful of scalar updates, so
  /// one mutex (taken per visit/send, not per session) is cheap relative
  /// to the routing and indexing work around it. kCluster ranks above
  /// every store lock: visits/sends fire from under unit locks and
  /// stripes, and never call back out while holding this.
  mutable util::Mutex mu_{util::LockRank::kCluster};
  std::vector<double> free_at_ SS_GUARDED_BY(mu_);
  std::vector<double> busy_time_ SS_GUARDED_BY(mu_);
  std::vector<bool> alive_ SS_GUARDED_BY(mu_);
  ClusterCounters counters_ SS_GUARDED_BY(mu_);
};

}  // namespace smartstore::sim
