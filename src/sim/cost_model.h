// Cost model for the simulated metadata-server cluster.
//
// The paper's testbed is 60 storage units (Core 2 Duo, 2 GB RAM,
// "high-speed network"). This reproduction replaces the physical cluster
// with a virtual-time simulation; the constants below are calibrated to
// commodity 2009-era hardware: ~0.2 ms one-way LAN latency, ~100 MB/s
// effective bandwidth, sub-microsecond per-record in-memory scans. Absolute
// values only set the scale of reported latencies — the comparisons in
// Table 4 / Figure 13 are driven by *counts* (messages, hops, records
// scanned, queue depth), which the simulation measures exactly.
#pragma once

#include <cstddef>

namespace smartstore::sim {

struct CostModel {
  double hop_latency_s = 2e-4;          ///< one-way network hop
  double bandwidth_bytes_per_s = 1e8;   ///< effective link bandwidth
  double per_message_cpu_s = 2e-5;      ///< handler dispatch per message
  double per_record_scan_s = 4e-7;      ///< examining one metadata record
  double per_node_visit_s = 1e-5;       ///< touching one index node
  double per_bloom_check_s = 3e-7;      ///< one Bloom filter membership test

  double transfer_time(std::size_t bytes) const {
    return hop_latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }
};

}  // namespace smartstore::sim
