#include "db/lock_file.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#if defined(_WIN32)
// No flock(2); the lock degrades to a no-op (documented in the header).
#else
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace smartstore::db {

std::string DirLock::lock_path(const std::string& dir) {
  return (std::filesystem::path(dir) / "LOCK").string();
}

#if defined(_WIN32)

Status DirLock::Acquire(const std::string&) { return Status::OK(); }
void DirLock::Release() {}

#else

Status DirLock::Acquire(const std::string& dir) {
  Release();
  const std::string path = lock_path(dir);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == EWOULDBLOCK || err == EAGAIN) {
      return Status::Busy("data directory is locked by another handle: " +
                          path);
    }
    return Status::IOError("cannot flock " + path + ": " +
                           std::strerror(err));
  }
  fd_ = fd;
  return Status::OK();
}

void DirLock::Release() {
  if (fd_ < 0) return;
  ::flock(fd_, LOCK_UN);
  ::close(fd_);
  fd_ = -1;
}

#endif

}  // namespace smartstore::db
