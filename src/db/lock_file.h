// Exclusive data-directory lock: <dir>/LOCK held via flock(2) for the
// lifetime of an open Store, so two processes (or two handles in one
// process — flock contends per open file description) cannot interleave
// WAL shards or race checkpoints against the same deployment.
//
// The lock is advisory and self-releasing: the kernel drops it when the
// descriptor closes, so a crashed process never leaves a stale lock — the
// next Open succeeds without any cleanup protocol.
#pragma once

#include <string>

#include "smartstore/status.h"

namespace smartstore::db {

class DirLock {
 public:
  DirLock() = default;
  ~DirLock() { Release(); }

  DirLock(DirLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  DirLock& operator=(DirLock&& other) noexcept {
    if (this != &other) {
      Release();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Creates (if needed) and exclusively flocks <dir>/LOCK. kBusy when
  /// another holder has it, kIOError when the file cannot be opened. On
  /// platforms without flock this degrades to a documented no-op.
  Status Acquire(const std::string& dir);

  /// Drops the lock (idempotent; also run by the destructor).
  void Release();

  bool held() const { return fd_ >= 0; }

  static std::string lock_path(const std::string& dir);

 private:
  int fd_ = -1;
};

}  // namespace smartstore::db
