// smartstore::db::Store implementation: the one place that knows how to
// compose core::SmartStore, persist::ShardedWal, persist::recover and
// persist::BackgroundCheckpointer into a correctly-wired deployment — and
// how to take it apart again in the right order.
//
// Lock architecture (outer to inner):
//   lifecycle_mu (shared_mutex) — every operation holds it shared, so the
//     store cannot close under a running Put/Query; Close/Abandon/Bulkload
//     and the quiesced introspection reads hold it exclusively. This lock
//     is ABOVE every core-store lock: an operation takes it before calling
//     into the core and releases it after, so exclusive acquisition doubles
//     as "no facade operation is in flight".
//   ckpt_mu (mutex) — serializes every interaction with the background
//     checkpointer's trigger/wait pair (two threads get()ing the same
//     std::future is a data race). The auto-cadence path only
//     try_locks it: if someone else is talking to the checkpointer, a
//     cadence trigger is already redundant. Invariant: every bg/wal
//     dereference happens under lifecycle_mu (shared suffices), so
//     Close/Abandon — which hold it exclusively — may drain and reset
//     them without ckpt_mu: no shared holder can exist concurrently.
//
// Crash discipline (kFaultInjected): the first operation that sees
// persist::FaultInjected runs crash() exactly once — drain the in-flight
// checkpoint (a checkpoint that already passed its own fault boundaries is
// allowed to land, matching "the power dies an instant later"), then
// abandon every WAL handle so no destructor commits records the caller was
// never told were durable. The handle is poisoned; the data directory is
// left exactly as the simulated power cut would leave it.
#include "smartstore/store.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/smartstore.h"
#include "db/lock_file.h"
#include "persist/bg_checkpoint.h"
#include "persist/compactor.h"
#include "persist/delta_checkpoint.h"
#include "persist/fault.h"
#include "persist/recovery.h"
#include "persist/segment.h"
#include "persist/snapshot.h"
#include "persist/wal_shard.h"
#include "util/annotated_mutex.h"
#include "util/binary_io.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace smartstore::db {

namespace {

core::Routing to_core(Routing r) {
  return r == Routing::kOnline ? core::Routing::kOnline
                               : core::Routing::kOffline;
}

QueryStats to_public(const core::QueryStats& s) {
  QueryStats out;
  out.latency_s = s.latency_s;
  out.messages = s.messages;
  out.hops = s.hops;
  out.routing_hops = s.routing_hops;
  out.groups_visited = s.groups_visited;
  out.records_scanned = s.records_scanned;
  out.version_check_s = s.version_check_s;
  out.failed = s.failed;
  return out;
}

Status map_persist_error(const persist::PersistError& e) {
  switch (e.code()) {
    case persist::PersistError::Code::kNotFound:
      return Status::NotFound(e.what());
    case persist::PersistError::Code::kIo:
      return Status::IOError(e.what());
    case persist::PersistError::Code::kCorruption:
      break;
  }
  return Status::Corruption(e.what());
}

}  // namespace

struct Store::Impl {
  Options opts;
  std::string dir;  ///< empty in in-memory mode
  DirLock lock;
  RecoveryInfo recovery;

  // Teardown order matters and is encoded in Close(): the checkpointer
  // references the store, WAL and pool; the compactor runs folds through
  // the delta engine on the pool; the engine references store and WAL;
  // the WAL holds open shard files.
  std::unique_ptr<core::SmartStore> core;
  std::unique_ptr<persist::ShardedWal> wal;
  std::unique_ptr<util::ThreadPool> pool;
  std::unique_ptr<persist::BackgroundCheckpointer> bg;
  std::unique_ptr<persist::DeltaEngine> delta;
  std::unique_ptr<persist::Compactor> compactor;

  mutable util::SharedMutex lifecycle_mu{util::LockRank::kLifecycle};
  bool closed SS_GUARDED_BY(lifecycle_mu) = false;
  std::atomic<bool> crashed{false};
  std::once_flag crash_once;

  util::Mutex ckpt_mu{util::LockRank::kDbCheckpoint};
  std::atomic<std::uint64_t> mutations_since_ckpt{0};
  /// A non-crash checkpoint failure drained by an introspection read
  /// (whose return type cannot carry it) parks here until the next
  /// Checkpoint() or Close() surfaces it.
  Status deferred_ckpt_error SS_GUARDED_BY(ckpt_mu);

  // Op/recall counters (the "smartstore.counters.*" properties).
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> deletes{0};
  std::atomic<std::uint64_t> point_queries{0};
  std::atomic<std::uint64_t> point_hits{0};
  std::atomic<std::uint64_t> range_queries{0};
  std::atomic<std::uint64_t> range_hits{0};
  std::atomic<std::uint64_t> topk_queries{0};
  std::atomic<std::uint64_t> topk_hits{0};

  /// Freeze the on-disk state the way a power cut would. Runs at most
  /// once; never called with ckpt_mu held (the catch blocks that reach it
  /// run after their lock guards unwound).
  void crash() {
    std::call_once(crash_once, [this] {
      crashed.store(true, std::memory_order_release);
      {
        const util::MutexLock ck(ckpt_mu);
        if (bg) {
          try {
            bg->wait();  // an in-flight checkpoint may land — "the power
          } catch (...) {  // dies an instant later"
            // The worker's own injected fault; the directory already
            // holds whatever prefix its crash point left.
          }
        }
        if (compactor) {
          try {
            compactor->wait();  // a scheduled fold must not race the WAL
          } catch (...) {       // abandon below
          }
        }
      }
      if (wal) wal->abandon();  // pending batches were never acknowledged
    });
  }

  /// Creates the delta engine + compactor pair next to an existing
  /// checkpointer (caller holds ckpt_mu; requires a sharded WAL).
  void ensure_delta() SS_REQUIRES(ckpt_mu) {
    if (delta || !opts.incremental_checkpoints) return;
    delta = std::make_unique<persist::DeltaEngine>(*core, *wal, dir);
    compactor = std::make_unique<persist::Compactor>(
        *delta, *pool, opts.compaction_trigger, opts.compaction_byte_budget);
    bg->set_delta(delta.get(), compactor.get());
  }

  /// Creates the background checkpointer on first need — an embedder that
  /// only ever Puts/Queries/Flushes should not pay for an idle thread
  /// pool. Caller holds ckpt_mu; requires a durable store with a WAL.
  /// Throws PersistError through (callers map at the boundary).
  void ensure_checkpointer() SS_REQUIRES(ckpt_mu) {
    if (bg) return;
    pool = std::make_unique<util::ThreadPool>(opts.background_threads);
    bg = std::make_unique<persist::BackgroundCheckpointer>(*core, dir, *wal,
                                                           *pool);
    ensure_delta();  // incremental mode rides the same lazy creation
  }

  /// Caller holds lifecycle_mu (shared suffices — this never changes the
  /// pointers, and Close/Abandon reset them only under exclusive). A
  /// checkpoint failure observed here must not vanish: bg->wait()'s
  /// rethrow is one-shot (the future is consumed), so an injected crash
  /// poisons the handle via crash() and any other failure is deferred to
  /// the next Checkpoint()/Close() through deferred_ckpt_error.
  CheckpointInfo checkpoint_info_locked() SS_REQUIRES_SHARED(lifecycle_mu) {
    CheckpointInfo info;
    bool fault = false;
    {
      const util::MutexLock ck(ckpt_mu);
      if (!bg) return info;
      try {
        bg->wait();  // drain: the stats fields are plain (non-atomic)
      } catch (const persist::FaultInjected&) {  // state from the worker
        fault = true;
      } catch (const persist::PersistError& e) {
        if (deferred_ckpt_error.ok()) deferred_ckpt_error = map_persist_error(e);
      } catch (const std::exception& e) {
        if (deferred_ckpt_error.ok())
          deferred_ckpt_error = Status::Unknown(e.what());
      }
      const persist::CheckpointStats& st = bg->last_stats();
      info.completed = bg->completed();
      info.total_mutations_during = bg->total_mutations_during();
      info.total_cow_copies = bg->total_cow_copies();
      info.last_freeze_s = st.freeze_s;
      info.last_write_s = st.write_s;
      info.last_truncate_s = st.truncate_s;
      info.last_snapshot_bytes = st.snapshot_bytes;
      info.last_was_delta = st.delta;
      info.last_delta_records = st.delta_records;
      info.last_delta_units = st.delta_units;
      info.last_delta_units_cold = st.delta_units_cold;
      if (delta) {
        info.delta_cuts = delta->cuts();
        info.delta_folds = delta->folds();
        info.delta_chain_len = delta->chain_len();
        info.delta_chain_bytes = delta->chain_bytes();
      }
    }
    if (fault) crash();  // outside ckpt_mu (crash() re-acquires it)
    return info;
  }

  /// Gate run by every operation after taking lifecycle_mu (shared or
  /// exclusive).
  Status check_serving() const SS_REQUIRES_SHARED(lifecycle_mu) {
    if (closed) return Status::FailedPrecondition("store is closed");
    if (crashed.load(std::memory_order_acquire)) {
      return Status::FaultInjected(
          "store crashed at an injected fault point; reopen the directory "
          "to recover");
    }
    return Status::OK();
  }

  bool durable() const { return !opts.in_memory; }

  /// One Put through the core with the WAL shard hooks attached: the
  /// append fires under the routed unit's lock (shard log order == that
  /// unit's apply order), the group-commit fsync from the flush hook after
  /// the lock is released.
  void insert_one(const metadata::FileMetadata& f) {
    if (wal) {
      core->insert_file(
          f, 0.0,
          [&](core::UnitId target) { return wal->append_insert(target, f); },
          [&](core::UnitId target) { wal->maybe_commit(target); });
    } else {
      core->insert_file(f, 0.0);
    }
  }

  bool erase_one(const std::string& name) {
    if (wal) {
      return core->erase_file(
          name,
          [&](core::UnitId located) {
            return wal->append_remove(located, name);
          },
          [&](core::UnitId located) { wal->maybe_commit(located); });
    }
    return core->erase_file(name);
  }

  /// Applies ops[b, e) — a run of consecutive Puts — through insert_batch,
  /// fanned across Options::ingest_threads when the run is large enough to
  /// amortize thread startup. Throws through (callers map at the boundary);
  /// with multiple workers the first failure wins and the rest drain.
  void apply_put_run(const std::vector<WriteBatch::Op>& ops, std::size_t b,
                     std::size_t e) {
    const std::size_t n = e - b;
    const std::size_t kChunk = 64;
    const std::size_t nthreads =
        std::min({opts.ingest_threads, n / kChunk, std::size_t{16}});

    auto apply_chunk = [&](std::size_t cb, std::size_t ce) {
      std::vector<metadata::FileMetadata> chunk;
      chunk.reserve(ce - cb);
      for (std::size_t i = cb; i < ce; ++i) chunk.push_back(ops[i].file);
      if (wal) {
        // The append hook fires once per file, in chunk order, on this
        // thread, under the routed unit's lock — the cursor pairs each
        // callback with its file.
        std::size_t cursor = 0;
        core->insert_batch(
            chunk, 0.0,
            [&](core::UnitId target) {
              return wal->append_insert(target, chunk[cursor++]);
            },
            [&](core::UnitId target) { wal->maybe_commit(target); });
      } else {
        core->insert_batch(chunk, 0.0);
      }
      // Cadence per chunk, not per batch: one huge Write must still take
      // its background checkpoints mid-stream.
      note_mutations(ce - cb);
    };

    if (nthreads <= 1) {
      for (std::size_t cb = b; cb < e; cb += kChunk)
        apply_chunk(cb, std::min(cb + kChunk, e));
      return;
    }

    std::atomic<std::size_t> next{b};
    std::atomic<bool> stop{false};
    util::Mutex err_mu;
    std::exception_ptr first_error;
    auto worker = [&] {
      try {
        while (!stop.load(std::memory_order_relaxed)) {
          const std::size_t cb =
              next.fetch_add(kChunk, std::memory_order_relaxed);
          if (cb >= e) break;
          apply_chunk(cb, std::min(cb + kChunk, e));
        }
      } catch (...) {
        const util::MutexLock lk(err_mu);
        if (!first_error) first_error = std::current_exception();
        stop.store(true, std::memory_order_relaxed);
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Cadence accounting: every acknowledged mutation counts toward the
  /// next automatic background checkpoint. Only try_locks ckpt_mu — if
  /// another thread is already talking to the checkpointer, this trigger
  /// is redundant. May throw (trigger() surfaces a previously failed
  /// checkpoint); callers' boundary catch maps it.
  void note_mutations(std::uint64_t n) {
    if (n == 0 || opts.checkpoint_every == 0 || !bg) return;
    const std::uint64_t total =
        mutations_since_ckpt.fetch_add(n, std::memory_order_relaxed) + n;
    if (total < opts.checkpoint_every) return;
    if (!ckpt_mu.try_lock()) return;
    const util::MutexLock ck(ckpt_mu, std::adopt_lock);
    if (mutations_since_ckpt.load(std::memory_order_relaxed) <
        opts.checkpoint_every)
      return;  // someone else already reset the counter
    // Coalescing guard: reset the counter whether or not the trigger
    // landed. A false return means a checkpoint is already in flight,
    // and its fence will cover (at least) the window that tripped this
    // cadence — without the reset, EVERY subsequent mutation would find
    // the counter still over threshold and re-enter this path until the
    // running checkpoint finished (the note_mutations thundering herd).
    // The mutations folded away here count toward the in-flight run, not
    // the next window; at worst the next checkpoint is one period late.
    bg->trigger();
    mutations_since_ckpt.store(0, std::memory_order_relaxed);
  }
};

Store::Store() : impl_(std::make_unique<Impl>()) {}

Store::~Store() {
  Close();  // best effort; failures already surfaced or never will be
}

// ---- Open -------------------------------------------------------------------

StatusOr<std::unique_ptr<Store>> Store::Open(const Options& options,
                                             const std::string& path) {
  if (options.num_units == 0)
    return Status::InvalidArgument("num_units must be > 0");
  if (options.fanout < 2)
    return Status::InvalidArgument("fanout must be >= 2");
  if (options.background_threads == 0)
    return Status::InvalidArgument("background_threads must be > 0");
  if (options.ingest_threads == 0)
    return Status::InvalidArgument("ingest_threads must be > 0");
  if (!options.in_memory && path.empty())
    return Status::InvalidArgument("path must be non-empty (or set in_memory)");
  if (options.checkpoint_every > 0 && (!options.enable_wal || options.in_memory))
    return Status::InvalidArgument(
        "checkpoint_every requires enable_wal on a durable store (the "
        "background protocol fences against the WAL shards)");

  // The fault injector is process-global; make sure a handle that never
  // reaches its armed boundary (failed Open, early Close) cannot leave
  // the countdown live to poison an unrelated later Store.
  struct FaultGuard {
    bool active = false;
    ~FaultGuard() {
      if (active) persist::fault_disarm();
    }
  } fault_guard;
  if (options.crash_at > 0) {
    persist::fault_arm(options.crash_at);
    fault_guard.active = true;
  }

  std::unique_ptr<Store> store(new Store());
  Impl& im = *store->impl_;
  im.opts = options;

  core::Config cfg;
  cfg.num_units = options.num_units;
  cfg.fanout = options.fanout;
  cfg.seed = options.seed;

  if (options.in_memory) {
    try {
      im.core = std::make_unique<core::SmartStore>(cfg);
      im.core->build({});
    } catch (const std::exception& e) {
      return Status::Unknown(e.what());
    }
    fault_guard.active = false;  // the live handle owns the countdown now
    return store;
  }

  im.dir = path;
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec)
    return Status::IOError("cannot create " + path + ": " + ec.message());

  // The LOCK file: two handles on one data directory would interleave WAL
  // shards and race checkpoints silently. flock is per open file
  // description, so this also catches a double-open within one process.
  Status ls = im.lock.Acquire(path);
  if (!ls.ok()) return ls;

  // A delta manifest counts as "a deployment exists": after a fold the
  // legacy snapshot.bin is pruned and the manifest's base + chain IS the
  // checkpoint (recover() prefers it whenever present).
  const std::string snap = persist::snapshot_path(path);
  const bool have_snapshot = std::filesystem::exists(snap, ec) ||
                             persist::manifest_exists(path);

  if (have_snapshot && options.error_if_exists) {
    return Status::InvalidArgument("deployment already exists: " + path);
  }

  if (have_snapshot) {
    persist::RecoveryResult rec;
    Status rs = persist::recover(path, &rec);
    if (!rs.ok()) return rs;
    im.core = std::move(rec.store);
    im.recovery.recovered = true;
    im.recovery.wal_records = rec.wal_records;
    im.recovery.wal_blocks = rec.wal_blocks;
    im.recovery.wal_fenced = rec.wal_fenced;
    im.recovery.wal_shards = rec.wal_shards;
    im.recovery.wal_tail_torn = rec.wal_tail_torn;
    im.recovery.used_manifest = rec.used_manifest;
    im.recovery.delta_cuts = rec.delta_cuts;
    im.recovery.delta_records = rec.delta_records;
  } else {
    if (!options.create_if_missing)
      return Status::NotFound("no snapshot in " + path);
    try {
      im.core = std::make_unique<core::SmartStore>(cfg);
      im.core->build({});
      // A deployment that crashed before its first checkpoint has WAL
      // records but no snapshot; their base image is exactly the empty
      // build above (assuming the same Options), so the full log replays.
      const bool logs_exist =
          std::filesystem::exists(persist::wal_path(path), ec) ||
          std::filesystem::is_directory(
              persist::ShardedWal::shard_dir(path), ec);
      if (logs_exist) {
        persist::RecoveryResult rec;
        persist::replay_dir_logs(*im.core, path, persist::WalFence{}, rec);
        im.recovery.recovered = rec.wal_records > 0;
        im.recovery.wal_records = rec.wal_records;
        im.recovery.wal_blocks = rec.wal_blocks;
        im.recovery.wal_shards = rec.wal_shards;
        im.recovery.wal_tail_torn = rec.wal_tail_torn;
      }
    } catch (const persist::FaultInjected& e) {
      // FaultInjected IS-A PersistError (default code kCorruption): catch
      // it first or a simulated power cut masquerades as corruption.
      return Status::FaultInjected(e.what());
    } catch (const persist::PersistError& e) {
      return map_persist_error(e);
    } catch (const util::BinaryIoError& e) {
      return Status::Corruption(e.what());
    } catch (const std::exception& e) {
      return Status::Unknown(e.what());
    }
  }

  if (options.enable_wal) {
    try {
      // group_commit == 0 means adaptive sizing: each shard converges on
      // its own batch from fsync-latency and arrival-rate EWMAs, seeded
      // from the paper's aggregation factor until the estimates warm up.
      im.wal = std::make_unique<persist::ShardedWal>(
          path, im.core->units().size(),
          options.group_commit > 0 ? options.group_commit
                                   : im.core->config().version_ratio,
          /*adaptive=*/options.group_commit == 0);
      // A rebased/reset shard dir restarts its on-disk seq counter; the
      // snapshot remembers the commit frontier, so fresh stamps must start
      // strictly past everything already applied or time-travel reads
      // would see two mutations share a timestamp.
      im.wal->ensure_seq_at_least(im.core->last_commit_seq() + 1);
      // The checkpointer (and its thread pool) is eager only when the
      // cadence needs it from the first mutation; an explicit
      // Checkpoint() call creates it lazily instead.
      if (options.checkpoint_every > 0) {
        const util::MutexLock ck(im.ckpt_mu);
        im.ensure_checkpointer();
      }
    } catch (const persist::FaultInjected& e) {
      return Status::FaultInjected(e.what());  // before the PersistError
    } catch (const persist::PersistError& e) {  // catch: IS-A relationship
      return map_persist_error(e);
    } catch (const std::exception& e) {
      return Status::IOError(e.what());
    }
  }
  fault_guard.active = false;  // the live handle owns the countdown now
  return store;
}

// ---- bulk load --------------------------------------------------------------

Status Store::Bulkload(const std::vector<metadata::FileMetadata>& files) {
  util::WriterLock ex(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  if (impl_->core->total_files() != 0) {
    return Status::FailedPrecondition(
        "Bulkload requires an empty store (build() is a whole-deployment "
        "operation); open a fresh directory or use Put/Write");
  }
  try {
    impl_->core->build(files);
    // Checkpoint before returning (durable stores): Bulkload is not
    // WAL-logged, and the no-snapshot recovery path assumes a log's base
    // image is the EMPTY build — if the population were not snapshotted
    // here, a crash before the first explicit Checkpoint would silently
    // replay later Puts onto an empty store and drop the bulkload.
    // build() already dwarfs this snapshot's cost. We hold the exclusive
    // lifecycle lock, so the quiesced flavour applies.
    if (impl_->durable() && !files.empty()) {
      if (impl_->wal) {
        persist::checkpoint(*impl_->core, impl_->dir, *impl_->wal);
      } else {
        persist::checkpoint(*impl_->core, impl_->dir);
      }
      // The quiesced checkpoint removed the incremental state (its full
      // image subsumes every delta); a live engine must not keep chaining
      // onto a manifest that no longer exists.
      if (impl_->delta) impl_->delta->invalidate();
    }
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    impl_->crash();  // safe under the exclusive lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

// ---- mutations --------------------------------------------------------------

Status Store::Put(const metadata::FileMetadata& file) {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  try {
    impl_->insert_one(file);
    impl_->puts.fetch_add(1, std::memory_order_relaxed);
    impl_->note_mutations(1);
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    impl_->crash();  // safe under the shared lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

Status Store::Delete(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty filename");
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  try {
    const bool existed = impl_->erase_one(name);
    if (!existed) return Status::NotFound("no file named '" + name + "'");
    impl_->deletes.fetch_add(1, std::memory_order_relaxed);
    impl_->note_mutations(1);
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    impl_->crash();  // safe under the shared lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

Status Store::Write(WriteBatch&& batch) {
  const std::vector<WriteBatch::Op> ops = std::move(batch).release();
  if (ops.empty()) return Status::OK();

  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  try {
    std::uint64_t applied_puts = 0;
    std::uint64_t applied_deletes = 0;
    std::size_t i = 0;
    while (i < ops.size()) {
      if (ops[i].type == WriteBatch::OpType::kPut) {
        std::size_t j = i;
        while (j < ops.size() && ops[j].type == WriteBatch::OpType::kPut) ++j;
        impl_->apply_put_run(ops, i, j);
        applied_puts += j - i;
        i = j;
      } else {
        // A Delete of an absent name inside a batch is not an error — the
        // batch's contract is "apply what exists", mirroring erase
        // replay's idempotence.
        if (impl_->erase_one(ops[i].name)) {
          ++applied_deletes;
          impl_->note_mutations(1);
        }
        ++i;
      }
    }
    impl_->puts.fetch_add(applied_puts, std::memory_order_relaxed);
    impl_->deletes.fetch_add(applied_deletes, std::memory_order_relaxed);
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    impl_->crash();  // safe under the shared lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

// ---- queries ----------------------------------------------------------------

StatusOr<QueryResult> Store::Query(const QueryRequest& request) {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;

  const core::Routing routing =
      to_core(request.routing.value_or(impl_->opts.routing));
  try {
    QueryResult out;
    if (const auto* p = std::get_if<metadata::PointQuery>(&request.op)) {
      if (p->filename.empty())
        return Status::InvalidArgument("point query needs a filename");
      const core::PointResult r =
          impl_->core->point_query(*p, routing, 0.0);
      out.kind = QueryKind::kPoint;
      out.found = r.found;
      out.id = r.id;
      out.unit = r.unit;
      out.first_try = r.first_try;
      out.stats = to_public(r.stats);
      impl_->point_queries.fetch_add(1, std::memory_order_relaxed);
      if (r.found) impl_->point_hits.fetch_add(1, std::memory_order_relaxed);
    } else if (const auto* rq =
                   std::get_if<metadata::RangeQuery>(&request.op)) {
      if (rq->dims.empty())
        return Status::InvalidArgument("range query needs >= 1 dimension");
      if (rq->lo.size() != rq->dims.size() ||
          rq->hi.size() != rq->dims.size()) {
        return Status::InvalidArgument(
            "range query lo/hi must match the dimension subset");
      }
      const core::RangeResult r = impl_->core->range_query(*rq, routing, 0.0);
      out.kind = QueryKind::kRange;
      out.ids = r.ids;
      out.stats = to_public(r.stats);
      impl_->range_queries.fetch_add(1, std::memory_order_relaxed);
      if (!r.ids.empty())
        impl_->range_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      const auto& tq = std::get<metadata::TopKQuery>(request.op);
      if (tq.k == 0) return Status::InvalidArgument("top-k query needs k > 0");
      if (tq.dims.empty())
        return Status::InvalidArgument("top-k query needs >= 1 dimension");
      if (tq.point.size() != tq.dims.size()) {
        return Status::InvalidArgument(
            "top-k query point must match the dimension subset");
      }
      const core::TopKResult r = impl_->core->topk_query(tq, routing, 0.0);
      out.kind = QueryKind::kTopK;
      out.hits = r.hits;
      out.ids = r.ids();
      out.stats = to_public(r.stats);
      impl_->topk_queries.fetch_add(1, std::memory_order_relaxed);
      if (!r.hits.empty())
        impl_->topk_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

// ---- snapshot reads / time travel -------------------------------------------

StatusOr<Snapshot> Store::GetSnapshot() {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  std::uint64_t seq = 0;
  std::shared_ptr<void> pin = impl_->core->pin_snapshot(&seq);
  return Snapshot(seq, std::move(pin));
}

std::uint64_t Store::LatestSequence() const {
  util::ReaderLock lk(impl_->lifecycle_mu);
  return impl_->core->last_commit_seq();
}

StatusOr<QueryResult> Store::Query(const QueryRequest& request,
                                   const ReadOptions& options) {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;

  // Resolve the seq first: a kReadLatest read pins for the duration of
  // this one scan so GC cannot reclaim a version out from under it.
  std::uint64_t seq = options.snapshot_seq;
  std::shared_ptr<void> pin;
  if (seq == ReadOptions::kReadLatest)
    pin = impl_->core->pin_snapshot(&seq);

  try {
    QueryResult out;
    if (const auto* p = std::get_if<metadata::PointQuery>(&request.op)) {
      if (p->filename.empty())
        return Status::InvalidArgument("point query needs a filename");
      const core::PointResult r = impl_->core->snapshot_point_query(*p, seq);
      out.kind = QueryKind::kPoint;
      out.found = r.found;
      out.id = r.id;
      out.unit = r.unit;
      out.first_try = r.first_try;
      out.stats = to_public(r.stats);
    } else if (const auto* rq =
                   std::get_if<metadata::RangeQuery>(&request.op)) {
      if (rq->dims.empty())
        return Status::InvalidArgument("range query needs >= 1 dimension");
      if (rq->lo.size() != rq->dims.size() ||
          rq->hi.size() != rq->dims.size()) {
        return Status::InvalidArgument(
            "range query lo/hi must match the dimension subset");
      }
      const core::RangeResult r = impl_->core->snapshot_range_query(*rq, seq);
      out.kind = QueryKind::kRange;
      out.ids = r.ids;
      out.stats = to_public(r.stats);
    } else {
      const auto& tq = std::get<metadata::TopKQuery>(request.op);
      if (tq.k == 0) return Status::InvalidArgument("top-k query needs k > 0");
      if (tq.dims.empty())
        return Status::InvalidArgument("top-k query needs >= 1 dimension");
      if (tq.point.size() != tq.dims.size()) {
        return Status::InvalidArgument(
            "top-k query point must match the dimension subset");
      }
      const core::TopKResult r = impl_->core->snapshot_topk_query(tq, seq);
      out.kind = QueryKind::kTopK;
      out.hits = r.hits;
      out.ids = r.ids();
      out.stats = to_public(r.stats);
    }
    return out;
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

// ---- durability control -----------------------------------------------------

Status Store::Flush() {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  if (!impl_->durable())
    return Status::FailedPrecondition("ephemeral store has no WAL");
  if (!impl_->wal) return Status::OK();  // durable but unlogged: no-op
  try {
    impl_->wal->commit_all();
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    impl_->crash();  // safe under the shared lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

Status Store::Checkpoint() {
  // Background path: serving threads keep running; all checkpointer
  // interaction serialized under ckpt_mu (released by unwinding before
  // the catch blocks run, so crash() never sees it held).
  {
    util::ReaderLock lk(impl_->lifecycle_mu);
    Status gate = impl_->check_serving();
    if (!gate.ok()) return gate;
    if (!impl_->durable())
      return Status::FailedPrecondition("ephemeral store cannot checkpoint");
    if (impl_->wal) {
      try {
        const util::MutexLock ck(impl_->ckpt_mu);
        if (!impl_->deferred_ckpt_error.ok()) {
          // A failure an introspection drain parked earlier: surface it
          // once instead of silently checkpointing over it.
          Status s = impl_->deferred_ckpt_error;
          impl_->deferred_ckpt_error = Status::OK();
          return s;
        }
        impl_->ensure_checkpointer();
        impl_->bg->wait();     // drain (and surface) any in-flight run
        impl_->bg->trigger();  // cannot race: all triggers hold ckpt_mu
        impl_->bg->wait();
        impl_->mutations_since_ckpt.store(0, std::memory_order_relaxed);
        return Status::OK();
      } catch (const persist::FaultInjected& e) {
        impl_->crash();  // ckpt_mu was released by the unwind above
        return Status::FaultInjected(e.what());
      } catch (const persist::PersistError& e) {
        return map_persist_error(e);
      } catch (const std::exception& e) {
        return Status::Unknown(e.what());
      }
    }
  }

  // No WAL: the stop-the-world flavour, quiesced by excluding every facade
  // operation for the duration.
  util::WriterLock ex(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  try {
    persist::checkpoint(*impl_->core, impl_->dir);
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    impl_->crash();  // safe under the exclusive lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

Status Store::Compact() {
  {
    util::ReaderLock lk(impl_->lifecycle_mu);
    Status gate = impl_->check_serving();
    if (!gate.ok()) return gate;
    if (!impl_->durable())
      return Status::FailedPrecondition("ephemeral store cannot compact");
    if (impl_->wal && impl_->opts.incremental_checkpoints) {
      try {
        const util::MutexLock ck(impl_->ckpt_mu);
        if (!impl_->deferred_ckpt_error.ok()) {
          Status s = impl_->deferred_ckpt_error;
          impl_->deferred_ckpt_error = Status::OK();
          return s;
        }
        impl_->ensure_checkpointer();
        impl_->bg->wait();  // drain (and surface) any in-flight cut
        // compact_now waits out a scheduled background fold, then folds
        // the whole chain into a fresh base on this thread — concurrent
        // with serving (the engine reuses the epoch-freeze/COW protocol).
        impl_->compactor->compact_now();
        impl_->mutations_since_ckpt.store(0, std::memory_order_relaxed);
        return Status::OK();
      } catch (const persist::FaultInjected& e) {
        impl_->crash();  // ckpt_mu was released by the unwind above
        return Status::FaultInjected(e.what());
      } catch (const persist::PersistError& e) {
        return map_persist_error(e);
      } catch (const std::exception& e) {
        return Status::Unknown(e.what());
      }
    }
  }
  // No delta chain to fold (incremental mode off, or no WAL): a full
  // checkpoint is the compacted state by definition.
  return Checkpoint();
}

// ---- replication ------------------------------------------------------------

Status Store::SetCommitTap(CommitTap tap) {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  if (!impl_->wal) {
    return Status::FailedPrecondition(
        "the commit tap observes WAL durability; this store has no WAL");
  }
  if (!tap) {
    impl_->wal->set_commit_tap(nullptr);
    return Status::OK();
  }
  impl_->wal->set_commit_tap(
      [t = std::move(tap)](const persist::WalRecord& rec) {
        ReplicatedOp op;
        switch (rec.type) {
          case persist::WalRecordType::kInsert:
            op.is_insert = true;
            op.file = rec.file;
            break;
          case persist::WalRecordType::kRemove:
            op.is_insert = false;
            op.name = rec.name;
            break;
          default:
            // Structural records (unit split/merge) are replica-private —
            // each replica grows its own topology — but they consume a
            // stamp, so the stream ships the seq as an explicit hole
            // marker or a seq-ordered consumer would wait on it forever.
            op.is_noop = true;
            break;
        }
        op.seq = rec.seq;
        t(op);
      });
  return Status::OK();
}

Status Store::ApplyReplicated(const std::vector<ReplicatedOp>& ops,
                              std::uint64_t* frontier_out) {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  Impl& im = *impl_;
  if (!im.wal) {
    return Status::FailedPrecondition(
        "replicated applies must be WAL-logged (a promoted follower has to "
        "survive its own crash); this store has no WAL");
  }
  try {
    std::uint64_t applied = 0;
    for (const ReplicatedOp& op : ops) {
      // The frontier gate: applies run strictly in seq order, so anything
      // at or below the last commit seq already landed here — duplicate
      // batches from a retrying sender and bootstrap overlap re-sends are
      // no-ops, not double-applies.
      if (op.seq <= im.core->last_commit_seq()) continue;
      if (op.is_noop) {
        // A seq the primary consumed on a replica-private structural
        // record. Log it as an empty-name remove (replay tolerates
        // absence) so this seq survives a local restart too — otherwise a
        // promoted follower could re-stamp it for a different mutation.
        im.wal->append_remove_at(0, std::string(), op.seq);
        im.core->note_commit_seq(op.seq);
        ++applied;
        continue;
      }
      if (op.is_insert) {
        im.core->insert_file(
            op.file, 0.0,
            [&](core::UnitId target) {
              im.wal->append_insert_at(target, op.file, op.seq);
              return op.seq;
            },
            [&](core::UnitId target) { im.wal->maybe_commit(target); });
      } else {
        // Absent-name removes are fine: mirrors recovery replay's
        // idempotence (the delete was acked somewhere; re-applying onto a
        // state that never saw the insert must not fail the stream).
        const bool existed = im.core->erase_file(
            op.name,
            [&](core::UnitId located) {
              im.wal->append_remove_at(located, op.name, op.seq);
              return op.seq;
            },
            [&](core::UnitId located) { im.wal->maybe_commit(located); });
        if (!existed) {
          // Identical histories mean the name always exists here; still,
          // the stream must neither stall the frontier nor let a restart
          // reuse op.seq for a different mutation — log the no-op remove
          // anyway (replay of a kRemove tolerates absence) and advance.
          im.wal->append_remove_at(0, op.name, op.seq);
          im.core->note_commit_seq(op.seq);
        }
      }
      ++applied;
    }
    // Ack barrier: the caller reports the returned frontier as durable,
    // so every record applied above must hit disk before we return.
    im.wal->commit_all();
    if (frontier_out) *frontier_out = im.core->last_commit_seq();
    im.note_mutations(applied);
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    im.crash();  // safe under the shared lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

StatusOr<std::vector<metadata::FileMetadata>> Store::DumpSnapshot(
    std::uint64_t* seq_out) {
  util::ReaderLock lk(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  Impl& im = *impl_;

  // Incremental stores bootstrap followers from the checkpoint artifacts
  // instead of a forced full scan of the live structure: take a delta cut
  // (cheap — only units dirtied since the last cut write anything), then
  // rebuild the state at that cut OFFLINE from base + chain. The
  // reconstruction never touches the serving store or its WAL, so live
  // traffic proceeds untouched while the dump serializes.
  if (im.wal && im.opts.incremental_checkpoints) {
    try {
      std::unique_ptr<core::SmartStore> at_cut;
      std::uint64_t cut_seq = 0;
      {
        const util::MutexLock ck(im.ckpt_mu);
        im.ensure_checkpointer();
        im.bg->wait();    // drain: the cut below must own the protocol
        im.delta->cut();  // everything acked is now in base + chain
        at_cut = im.delta->reconstruct_at_last_cut(&cut_seq);
      }
      if (seq_out) *seq_out = cut_seq;
      return at_cut->snapshot_dump(cut_seq);
    } catch (const persist::FaultInjected& e) {
      im.crash();  // ckpt_mu was released by the unwind above
      return Status::FaultInjected(e.what());
    } catch (const std::exception&) {
      // Any non-crash failure falls back to the live pinned dump below,
      // which is always a self-consistent bootstrap payload (the delta
      // path is an optimization that ships exactly the base+chain state).
    }
  }

  std::uint64_t seq = 0;
  const std::shared_ptr<void> pin = im.core->pin_snapshot(&seq);
  if (seq_out) *seq_out = seq;
  try {
    return im.core->snapshot_dump(seq);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

Status Store::LoadBootstrap(std::uint64_t seq,
                            const std::vector<metadata::FileMetadata>& files) {
  util::WriterLock ex(impl_->lifecycle_mu);
  Status gate = impl_->check_serving();
  if (!gate.ok()) return gate;
  Impl& im = *impl_;
  if (im.core->total_files() != 0 || im.core->last_commit_seq() != 0) {
    return Status::FailedPrecondition(
        "LoadBootstrap requires a never-mutated store (a stale replica "
        "must be wiped and reopened, not overwritten in place)");
  }
  try {
    // Each record takes a fresh local stamp (the dump does not carry the
    // original per-record seqs); there are at most `seq` of them, so all
    // stamps land at or below `seq` — then the frontier jumps TO `seq`,
    // and the resumed stream (> seq) passes the ApplyReplicated gate.
    for (const metadata::FileMetadata& f : files) im.insert_one(f);
    if (im.wal) {
      im.wal->commit_all();  // durable before the follower acks `seq`
      im.wal->ensure_seq_at_least(seq + 1);
    }
    im.core->note_commit_seq(seq);
    im.note_mutations(files.size());
    return Status::OK();
  } catch (const persist::FaultInjected& e) {
    im.crash();  // safe under the exclusive lock: needs only ckpt_mu
    return Status::FaultInjected(e.what());
  } catch (const persist::PersistError& e) {
    return map_persist_error(e);
  } catch (const std::exception& e) {
    return Status::Unknown(e.what());
  }
}

// ---- introspection ----------------------------------------------------------

const RecoveryInfo& Store::recovery_info() const { return impl_->recovery; }
const Options& Store::options() const { return impl_->opts; }
const std::string& Store::path() const { return impl_->dir; }

CheckpointInfo Store::GetCheckpointInfo() const {
  // Lifecycle shared FIRST: Close/Abandon reset bg/wal under the
  // exclusive lock, so every introspection path that dereferences them
  // must hold it shared — otherwise this races a concurrent Close into a
  // use-after-free. ckpt_mu nests inside (same order as Checkpoint()).
  util::ReaderLock lk(impl_->lifecycle_mu);
  return impl_->checkpoint_info_locked();
}

bool Store::GetProperty(const std::string& name, std::string* value) {
  if (!value) return false;
  Impl& im = *impl_;

  auto u64 = [&](std::uint64_t v) {
    *value = std::to_string(v);
    return true;
  };

  // Counter / WAL / snapshot / checkpoint properties: cheap reads, but
  // still under the shared lifecycle lock — Close() frees the WAL and
  // checkpointer under the exclusive lock, and these dereference them.
  {
    util::ReaderLock lk(im.lifecycle_mu);

    if (name == "smartstore.counters.puts") return u64(im.puts.load());
    if (name == "smartstore.counters.deletes") return u64(im.deletes.load());
    if (name == "smartstore.counters.point-queries")
      return u64(im.point_queries.load());
    if (name == "smartstore.counters.point-hits")
      return u64(im.point_hits.load());
    if (name == "smartstore.counters.range-queries")
      return u64(im.range_queries.load());
    if (name == "smartstore.counters.range-hits")
      return u64(im.range_hits.load());
    if (name == "smartstore.counters.topk-queries")
      return u64(im.topk_queries.load());
    if (name == "smartstore.counters.topk-hits")
      return u64(im.topk_hits.load());

    // WAL frontier properties: the sharded writer is internally locked.
    if (name == "smartstore.wal.shards")
      return u64(im.wal ? im.wal->num_shards() : 0);
    if (name == "smartstore.wal.next-seq")
      return u64(im.wal ? im.wal->next_seq() : 0);
    if (name == "smartstore.wal.committed-records") {
      std::uint64_t total = 0;
      if (im.wal) {
        for (std::size_t s = 0; s < im.wal->num_shards(); ++s)
          total += im.wal->committed_records(s);
      }
      return u64(total);
    }
    if (name == "smartstore.wal.group-commit.effective") {
      // Adaptive mode: mean of the per-shard EWMA-derived batch targets;
      // static mode: the configured size. 0 on a store without a WAL.
      return u64(im.wal ? im.wal->effective_group_commit() : 0);
    }
    if (name == "smartstore.wal.frontier") {
      if (!im.wal) {
        *value = "";
        return true;
      }
      // One "shard:generation:committed+pending" triple per shard that
      // has taken a record (display format — machine consumers should use
      // the numeric wal.* properties above).
      std::string out;
      for (std::size_t s = 0; s < im.wal->num_shards(); ++s) {
        const std::uint64_t committed = im.wal->committed_records(s);
        const std::uint64_t pending = im.wal->pending_records(s);
        if (committed == 0 && pending == 0) continue;
        if (!out.empty()) out += ' ';
        out += std::to_string(s) + ':' +
               std::to_string(im.wal->generation(s)) + ':' +
               std::to_string(committed) + '+' + std::to_string(pending);
      }
      *value = out;
      return true;
    }

    // MVCC properties: atomics and leaf-locked registries, never blocked
    // behind a mutation.
    if (name == "smartstore.mvcc.commit-seq")
      return u64(im.core->last_commit_seq());
    if (name == "smartstore.mvcc.pinned-snapshots")
      return u64(im.core->pinned_snapshots());
    if (name == "smartstore.mvcc.tombstones")
      return u64(im.core->tombstone_count());
    if (name == "smartstore.mvcc.gc-watermark") {
      const std::uint64_t w = im.core->gc_watermark();
      if (w == core::kNoWatermark) {
        *value = "none";  // nothing pinned: every tombstone reclaimable
        return true;
      }
      return u64(w);
    }

    if (name == "smartstore.snapshot.path") {
      if (im.dir.empty()) return false;
      *value = persist::snapshot_path(im.dir);
      return true;
    }
    if (name == "smartstore.snapshot.bytes") {
      if (im.dir.empty()) return false;
      std::error_code ec;
      const auto sz =
          std::filesystem::file_size(persist::snapshot_path(im.dir), ec);
      return !ec && u64(static_cast<std::uint64_t>(sz));
    }

    // Checkpoint properties route through the drain in
    // checkpoint_info_locked (we already hold the shared lock it needs).
    if (name.rfind("smartstore.checkpoints.", 0) == 0) {
      // Cadence accounting, NOT routed through the drain: tests observe
      // the coalescing guard without perturbing an in-flight checkpoint.
      if (name == "smartstore.checkpoints.cadence-pending")
        return u64(im.mutations_since_ckpt.load(std::memory_order_relaxed));
      const CheckpointInfo info = im.checkpoint_info_locked();
      if (name == "smartstore.checkpoints.completed")
        return u64(info.completed);
      if (name == "smartstore.checkpoints.mutations-during")
        return u64(info.total_mutations_during);
      if (name == "smartstore.checkpoints.cow-copies")
        return u64(info.total_cow_copies);
      if (name == "smartstore.checkpoints.last-snapshot-bytes")
        return u64(info.last_snapshot_bytes);
      return false;
    }

    // Incremental-checkpoint properties: engine atomics, read under
    // ckpt_mu only to order against the engine's lazy creation.
    if (name.rfind("smartstore.ckpt.", 0) == 0) {
      const util::MutexLock ck(im.ckpt_mu);
      const persist::DeltaEngine* eng = im.delta.get();
      if (name == "smartstore.ckpt.delta-enabled")
        return u64(im.wal && im.opts.incremental_checkpoints ? 1 : 0);
      if (name == "smartstore.ckpt.delta-cuts")
        return u64(eng ? eng->cuts() : 0);
      if (name == "smartstore.ckpt.delta-folds")
        return u64(eng ? eng->folds() : 0);
      if (name == "smartstore.ckpt.delta-chain-len")
        return u64(eng ? eng->chain_len() : 0);
      if (name == "smartstore.ckpt.delta-chain-bytes")
        return u64(eng ? eng->chain_bytes() : 0);
      if (name == "smartstore.ckpt.delta-last-cut-seq")
        return u64(eng ? eng->last_cut_seq() : 0);
      if (name == "smartstore.ckpt.delta-total-bytes")
        return u64(eng ? eng->total_delta_bytes() : 0);
      return false;
    }
  }

  // Invariant validation genuinely needs stillness (it cross-checks
  // unlocked state across every layer): the one property that still
  // quiesces. Gate on the name FIRST — an unknown or mistyped property
  // must return false without ever escalating to the stop-the-world lock.
  if (name == "smartstore.invariants-ok") {
    util::WriterLock ex(im.lifecycle_mu);
    *value = im.core->check_invariants() ? "1" : "0";
    return true;
  }

  // Structural / space properties: one introspect() pass at a pinned
  // snapshot, concurrent with mutators (shared structure lock + per-unit
  // locks + sync stripes inside the core — no facade-level exclusion).
  const bool structural =
      name == "smartstore.total-files" || name == "smartstore.num-units" ||
      name == "smartstore.tree-height" || name == "smartstore.tree-groups" ||
      name == "smartstore.index-units";
  const bool space_prop = name == "smartstore.space.metadata-bytes" ||
                          name == "smartstore.space.index-bytes" ||
                          name == "smartstore.space.replica-bytes" ||
                          name == "smartstore.space.version-bytes" ||
                          name == "smartstore.space.total-bytes";
  if (!structural && !space_prop) return false;

  util::ReaderLock lk(im.lifecycle_mu);
  std::uint64_t seq = 0;
  const std::shared_ptr<void> pin = im.core->pin_snapshot(&seq);
  const core::SmartStore::Introspection view = im.core->introspect(seq);
  if (name == "smartstore.total-files") return u64(view.files);
  if (name == "smartstore.num-units") return u64(view.num_units);
  if (name == "smartstore.tree-height") return u64(view.tree_height);
  if (name == "smartstore.tree-groups") return u64(view.tree_groups);
  if (name == "smartstore.index-units") return u64(view.index_units);
  const core::SmartStore::SpaceBreakdown& space = view.avg_space;
  if (name == "smartstore.space.metadata-bytes")
    return u64(space.metadata_bytes);
  if (name == "smartstore.space.index-bytes") return u64(space.index_bytes);
  if (name == "smartstore.space.replica-bytes") return u64(space.replica_bytes);
  if (name == "smartstore.space.version-bytes") return u64(space.version_bytes);
  return u64(space.total());
}

SpaceInfo Store::GetSpaceInfo() {
  // One snapshot-pinned introspect() pass — the typed alternative to five
  // separate smartstore.space.* property round-trips, concurrent with
  // mutators.
  util::ReaderLock lk(impl_->lifecycle_mu);
  std::uint64_t seq = 0;
  const std::shared_ptr<void> pin = impl_->core->pin_snapshot(&seq);
  const core::SmartStore::SpaceBreakdown space =
      impl_->core->introspect(seq).avg_space;
  SpaceInfo info;
  info.metadata_bytes = space.metadata_bytes;
  info.index_bytes = space.index_bytes;
  info.replica_bytes = space.replica_bytes;
  info.version_bytes = space.version_bytes;
  info.total_bytes = space.total();
  return info;
}

// ---- lifecycle --------------------------------------------------------------

Status Store::Close() {
  util::WriterLock ex(impl_->lifecycle_mu);
  Impl& im = *impl_;
  if (im.closed) return Status::OK();
  im.closed = true;

  Status result = Status::OK();
  const bool crashed = im.crashed.load(std::memory_order_acquire);
  // The exclusive lifecycle lock already excludes every writer of the
  // deferred slot, but taking ckpt_mu keeps the GUARDED_BY contract
  // uniform (it is uncontended here and nests correctly inside).
  {
    const util::MutexLock ck(im.ckpt_mu);
    if (!im.deferred_ckpt_error.ok()) {
      result = im.deferred_ckpt_error;
      im.deferred_ckpt_error = Status::OK();
    }
  }
  if (im.bg) {
    try {
      im.bg->wait();  // drain the in-flight checkpoint before anything
    } catch (const persist::FaultInjected& e) {  // it references goes away
      im.crashed.store(true, std::memory_order_release);
      if (im.wal) im.wal->abandon();
      result = Status::FaultInjected(e.what());
    } catch (const persist::PersistError& e) {
      if (result.ok()) result = map_persist_error(e);
    } catch (const std::exception& e) {
      if (result.ok()) result = Status::Unknown(e.what());
    }
  }
  if (im.compactor) {
    try {
      im.compactor->wait();  // a scheduled fold drains the same way
    } catch (const persist::FaultInjected& e) {
      im.crashed.store(true, std::memory_order_release);
      if (im.wal) im.wal->abandon();
      result = Status::FaultInjected(e.what());
    } catch (const persist::PersistError& e) {
      if (result.ok()) result = map_persist_error(e);
    } catch (const std::exception& e) {
      if (result.ok()) result = Status::Unknown(e.what());
    }
  }
  if (im.wal && !crashed && !im.crashed.load(std::memory_order_acquire)) {
    try {
      im.wal->commit_all();  // acknowledged-but-unflushed tail -> durable
    } catch (const persist::FaultInjected& e) {
      im.crashed.store(true, std::memory_order_release);
      im.wal->abandon();
      result = Status::FaultInjected(e.what());
    } catch (const persist::PersistError& e) {
      if (result.ok()) result = map_persist_error(e);
    } catch (const std::exception& e) {
      if (result.ok()) result = Status::Unknown(e.what());
    }
  }

  // Teardown order: the checkpointer references store+wal+pool, the
  // compactor's queued folds run on the pool against the engine, the pool
  // must drain before the objects its queued work touches die, the engine
  // references the WAL, the WAL holds the shard files, and the LOCK
  // releases last — nothing of this handle touches the directory
  // afterwards.
  im.bg.reset();
  im.compactor.reset();
  im.pool.reset();
  im.delta.reset();
  im.wal.reset();
  im.lock.Release();
  // A countdown this handle armed but never reached must not fire inside
  // an unrelated later Store (the injector is process-global).
  if (im.opts.crash_at > 0) persist::fault_disarm();
  return result;
}

void Store::Abandon() {
  util::WriterLock ex(impl_->lifecycle_mu);
  Impl& im = *impl_;
  if (im.closed && !im.crashed.load(std::memory_order_acquire)) {
    // Already cleanly closed: nothing left to abandon.
    return;
  }
  im.closed = true;
  im.crashed.store(true, std::memory_order_release);
  if (im.bg) {
    try {
      im.bg->wait();  // a checkpoint that already passed its boundaries
    } catch (...) {   // lands — "the power dies an instant later"
    }
  }
  if (im.compactor) {
    try {
      im.compactor->wait();
    } catch (...) {
    }
  }
  if (im.wal) im.wal->abandon();
  im.bg.reset();
  im.compactor.reset();
  im.pool.reset();
  im.delta.reset();
  im.wal.reset();
  im.lock.Release();
  if (im.opts.crash_at > 0) persist::fault_disarm();
}

}  // namespace smartstore::db
