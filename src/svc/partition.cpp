#include "svc/partition.h"

#include "util/binary_io.h"

namespace smartstore::svc {

std::string_view partition_key(std::string_view filename) {
  const std::size_t slash = filename.rfind('/');
  if (slash == std::string_view::npos) return filename;
  return filename.substr(0, slash + 1);
}

PartitionMap PartitionMap::RoundRobin(std::uint32_t num_shards,
                                      std::uint64_t version) {
  PartitionMap map;
  map.version = version;
  map.num_shards = num_shards == 0 ? 1 : num_shards;
  map.bucket_owner.resize(kNumBuckets);
  for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
    map.bucket_owner[b] = b % map.num_shards;
  }
  return map;
}

PartitionMap PartitionMap::Replicated(std::uint32_t num_shards,
                                      std::uint32_t replication_factor,
                                      std::uint64_t version) {
  PartitionMap map = RoundRobin(num_shards, version);
  const std::uint32_t rf = replication_factor == 0 ? 1 : replication_factor;
  map.epoch = 1;
  map.num_nodes = map.num_shards * rf;
  map.shard_primary.resize(map.num_shards);
  map.shard_replicas.resize(map.num_shards);
  for (std::uint32_t s = 0; s < map.num_shards; ++s) {
    map.shard_primary[s] = s * rf;  // replica 0 starts as primary
    map.shard_replicas[s].resize(rf);
    for (std::uint32_t r = 0; r < rf; ++r) {
      map.shard_replicas[s][r] = s * rf + r;
    }
  }
  return map;
}

std::uint32_t PartitionMap::bucket_of(std::string_view filename) {
  const std::string_view key = partition_key(filename);
  // FNV-1a, 64-bit: cheap, deterministic across platforms, and good
  // enough dispersion for directory strings.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % kNumBuckets);
}

bool PartitionMap::valid() const {
  if (version == 0 || num_shards == 0) return false;
  if (bucket_owner.size() != kNumBuckets) return false;
  for (const std::uint32_t owner : bucket_owner) {
    if (owner >= num_shards) return false;
  }
  // Legacy (unreplicated) maps carry no replica-set fields at all.
  if (num_nodes == 0) {
    return shard_primary.empty() && shard_replicas.empty();
  }
  if (num_nodes < num_shards) return false;
  if (shard_primary.size() != num_shards) return false;
  if (shard_replicas.size() != num_shards) return false;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (shard_primary[s] >= num_nodes) return false;
    if (shard_replicas[s].empty()) return false;
    bool primary_listed = false;
    for (const std::uint32_t node : shard_replicas[s]) {
      if (node >= num_nodes) return false;
      if (node == shard_primary[s]) primary_listed = true;
    }
    if (!primary_listed) return false;
  }
  return true;
}

void encode_partition_map(const PartitionMap& map,
                          std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(map.version);
  w.write_u32(map.num_shards);
  w.write_u64(map.bucket_owner.size());
  for (const std::uint32_t owner : map.bucket_owner) w.write_u32(owner);
  // v3 replica-set tail — appended so a legacy decoder (which stops at the
  // owners) and a legacy encoder (whose output simply ends here) both
  // interop; the decoder gates on remaining().
  w.write_u64(map.epoch);
  w.write_u32(map.num_nodes);
  w.write_u64(map.shard_primary.size());
  for (const std::uint32_t node : map.shard_primary) w.write_u32(node);
  w.write_u64(map.shard_replicas.size());
  for (const auto& replicas : map.shard_replicas) {
    w.write_u64(replicas.size());
    for (const std::uint32_t node : replicas) w.write_u32(node);
  }
  out->insert(out->end(), w.buffer().begin(), w.buffer().end());
}

db::Status decode_partition_map(const std::vector<std::uint8_t>& in,
                                PartitionMap* out) {
  try {
    util::BinaryReader r(in.data(), in.size());
    PartitionMap map;
    map.version = r.read_u64();
    map.num_shards = r.read_u32();
    const std::uint64_t n = r.read_u64_max(kNumBuckets, "bucket count");
    map.bucket_owner.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) map.bucket_owner[i] = r.read_u32();
    if (r.remaining() > 0) {  // v3 replica-set tail
      map.epoch = r.read_u64();
      map.num_nodes = r.read_u32();
      const std::uint64_t np =
          r.read_u64_max(map.num_shards, "primary count");
      map.shard_primary.resize(np);
      for (std::uint64_t i = 0; i < np; ++i) {
        map.shard_primary[i] = r.read_u32();
      }
      const std::uint64_t ns =
          r.read_u64_max(map.num_shards, "replica-set count");
      map.shard_replicas.resize(ns);
      for (std::uint64_t i = 0; i < ns; ++i) {
        const std::uint64_t nr =
            r.read_u64_max(map.num_nodes, "replica count");
        map.shard_replicas[i].resize(nr);
        for (std::uint64_t j = 0; j < nr; ++j) {
          map.shard_replicas[i][j] = r.read_u32();
        }
      }
    }
    if (!map.valid()) {
      return db::Status::Corruption("partition map fails validation");
    }
    *out = std::move(map);
    return db::Status();
  } catch (const util::BinaryIoError& e) {
    return db::Status::Corruption(std::string("partition map: ") + e.what());
  }
}

}  // namespace smartstore::svc
