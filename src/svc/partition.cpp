#include "svc/partition.h"

#include "util/binary_io.h"

namespace smartstore::svc {

std::string_view partition_key(std::string_view filename) {
  const std::size_t slash = filename.rfind('/');
  if (slash == std::string_view::npos) return filename;
  return filename.substr(0, slash + 1);
}

PartitionMap PartitionMap::RoundRobin(std::uint32_t num_shards,
                                      std::uint64_t version) {
  PartitionMap map;
  map.version = version;
  map.num_shards = num_shards == 0 ? 1 : num_shards;
  map.bucket_owner.resize(kNumBuckets);
  for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
    map.bucket_owner[b] = b % map.num_shards;
  }
  return map;
}

std::uint32_t PartitionMap::bucket_of(std::string_view filename) {
  const std::string_view key = partition_key(filename);
  // FNV-1a, 64-bit: cheap, deterministic across platforms, and good
  // enough dispersion for directory strings.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % kNumBuckets);
}

bool PartitionMap::valid() const {
  if (version == 0 || num_shards == 0) return false;
  if (bucket_owner.size() != kNumBuckets) return false;
  for (const std::uint32_t owner : bucket_owner) {
    if (owner >= num_shards) return false;
  }
  return true;
}

void encode_partition_map(const PartitionMap& map,
                          std::vector<std::uint8_t>* out) {
  util::BinaryWriter w;
  w.write_u64(map.version);
  w.write_u32(map.num_shards);
  w.write_u64(map.bucket_owner.size());
  for (const std::uint32_t owner : map.bucket_owner) w.write_u32(owner);
  out->insert(out->end(), w.buffer().begin(), w.buffer().end());
}

db::Status decode_partition_map(const std::vector<std::uint8_t>& in,
                                PartitionMap* out) {
  try {
    util::BinaryReader r(in.data(), in.size());
    PartitionMap map;
    map.version = r.read_u64();
    map.num_shards = r.read_u32();
    const std::uint64_t n = r.read_u64_max(kNumBuckets, "bucket count");
    map.bucket_owner.resize(n);
    for (std::uint64_t i = 0; i < n; ++i) map.bucket_owner[i] = r.read_u32();
    if (!map.valid()) {
      return db::Status::Corruption("partition map fails validation");
    }
    *out = std::move(map);
    return db::Status();
  } catch (const util::BinaryIoError& e) {
    return db::Status::Corruption(std::string("partition map: ") + e.what());
  }
}

}  // namespace smartstore::svc
