// ReplicationSender: the primary-side half of per-shard WAL replication.
//
// The db::Store commit tap hands this object every mutation the moment it
// becomes durable on the primary (under a kWalShard mutex, any operation
// thread, per-shard order only). The sender reorders the records into one
// seq-contiguous stream, ships them to the follower in kReplAppend batches
// over an rpc::Channel, and tracks the follower's durable frontier from
// the acks. MetaService's ack barrier (WaitDurable) blocks each client
// response on that frontier, which is what turns "acked" into "durable on
// BOTH replicas" — the invariant promotion relies on.
//
// Sync / degraded state machine:
//
//   SYNC      sync_engaged_ == true. Every ack waits for the follower
//             frontier. Batches ship with the sync flag set; the follower
//             latches the flag into its promotion-eligibility `ready` bit.
//   DEGRADED  no follower, or the follower is still catching up after a
//             bootstrap. WaitDurable returns immediately (primary-only
//             durability) but records the acked seq in degraded_acked_.
//             The follower may only become ready once its frontier covers
//             degraded_acked_ — otherwise promoting it would lose a write
//             some client was told is durable.
//   DEPOSED   the follower answered kFailedPrecondition: a higher map
//             epoch exists, so a promotion already happened and THIS node
//             is the stale primary. WaitDurable fails from then on —
//             acking from the losing side of a split brain is the one
//             unforgivable move. The epoch is cluster-wide, so a
//             promotion on a DIFFERENT shard also bumps it; cluster
//             orchestration re-certifies every surviving primary via
//             AdoptEpoch before followers learn the new map, and a
//             rejection of a frame stamped before that re-certification
//             is treated as transient (re-shipped at the adopted epoch),
//             not as deposition.
//
// The degraded->sync flip happens under mu_ on ack receipt (never
// predictively at batch-build time): degraded acks are recorded under the
// same mutex, so a concurrent WaitDurable can never slip an acked seq past
// a flag the follower already latched.
//
// Lock discipline: mu_ has rank kReplBuffer (56) — ABOVE kWalShard, so the
// commit tap may take it, and never held across a channel Call (the
// in-process transport runs the follower's handler, which descends to
// store rank 0, on the calling thread).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "rpc/transport.h"
#include "rpc/wire.h"
#include "smartstore/store.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::svc {

struct ReplicationOptions {
  /// Records per kReplAppend frame (bounds frame size and the ack delay a
  /// burst can add).
  std::size_t max_batch = 256;
  /// Consecutive send failures before the sender declares the follower
  /// dead and detaches (degraded solo) instead of stalling acks forever.
  int max_consecutive_failures = 5;
  /// Pause between retries of a failing send (woken early by new commits).
  std::uint64_t retry_delay_ms = 10;
};

class ReplicationSender {
 public:
  explicit ReplicationSender(ReplicationOptions options = {});
  ~ReplicationSender();  ///< calls Stop()

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  /// The db::Store commit-tap entry point. Called under a kWalShard mutex
  /// from arbitrary operation threads; buffers the record (when a follower
  /// is attached or retention is armed) and wakes the sender.
  void OnCommit(const db::ReplicatedOp& op);

  /// Bootstraps `follower` (which must be an EMPTY store — cluster
  /// orchestration wipes stale replicas before rejoin) and attaches the
  /// append stream to it:
  ///   1. arms retain-everything buffering,
  ///   2. dumps the primary at snapshot seq S (no quiescing — anything
  ///      committing after the pin lands in the buffer),
  ///   3. pushes the dump via kReplBootstrap and verifies frontier == S,
  ///   4. resumes the stream at S+1 from the buffer.
  /// `epoch` rides every frame's map_version so a deposed sender is
  /// rejected. `store` is the primary (dump source); it must outlive the
  /// call. On error the sender is left detached (degraded).
  db::Status AttachFollower(db::Store* store,
                            std::shared_ptr<rpc::Channel> follower,
                            std::uint64_t epoch);

  /// Drops the follower (crash of the follower node, topology change).
  /// Pending buffered records are discarded; waiters re-check and take the
  /// degraded-ack path.
  void DetachFollower();

  /// Raises the epoch this sender stamps on its frames. Called by cluster
  /// orchestration when a promotion on ANOTHER shard bumps the cluster
  /// epoch while this node remains its own shard's legitimate primary —
  /// without it, this sender's next append would be rejected as stale and
  /// it would wrongly self-depose. No-op if `epoch` is not higher (or the
  /// sender is already deposed).
  void AdoptEpoch(std::uint64_t epoch);

  /// The ack barrier: blocks until `seq` is durable on the follower (sync
  /// mode), or records it as a degraded ack and returns OK (no follower /
  /// catching up), or fails kFailedPrecondition (deposed) / kTimeout
  /// (follower unresponsive but not yet detached — the client must retry,
  /// the write is NOT acked).
  db::Status WaitDurable(std::uint64_t seq, std::uint64_t timeout_ms);

  /// Stops the sender thread. Idempotent; waiters are failed kUnavailable.
  void Stop();

  // ---- introspection (tests / bench) -------------------------------------
  std::uint64_t ack_frontier() const;
  bool sync_engaged() const;
  bool deposed() const;
  bool have_follower() const;

 private:
  void SenderLoop();
  /// One send round: builds the contiguous batch, ships it, folds the ack
  /// back in. Returns false when there was nothing to do (caller waits).
  /// Enters and leaves with `lock` held on mu_, but releases it across the
  /// channel Call — beyond what TSA can express, hence the opt-out.
  bool ShipOnce(util::UniqueLock& lock) SS_NO_THREAD_SAFETY_ANALYSIS;
  void DetachLocked() SS_REQUIRES(mu_);

  const ReplicationOptions options_;

  mutable util::Mutex mu_{util::LockRank::kReplBuffer};
  std::condition_variable_any cv_;

  /// Seq-ordered reorder buffer: per-shard tap order is not global seq
  /// order, so records park here until the next contiguous run is ready.
  std::map<std::uint64_t, db::ReplicatedOp> pending_ SS_GUARDED_BY(mu_);
  std::uint64_t next_to_ship_ SS_GUARDED_BY(mu_) = 1;
  std::uint64_t ack_frontier_ SS_GUARDED_BY(mu_) = 0;
  /// Highest seq acked while NOT sync-engaged; the follower cannot be
  /// declared ready until its frontier covers this.
  std::uint64_t degraded_acked_ SS_GUARDED_BY(mu_) = 0;
  bool sync_engaged_ SS_GUARDED_BY(mu_) = false;
  /// Whether the current sync_engaged_ == true state has been shipped to
  /// the follower (a flip ships an empty flag batch if no data is queued).
  bool flag_shipped_ SS_GUARDED_BY(mu_) = false;
  /// Retain-everything mode during bootstrap: buffer commits even though
  /// no follower is attached yet.
  bool retaining_ SS_GUARDED_BY(mu_) = false;
  bool have_follower_ SS_GUARDED_BY(mu_) = false;
  bool deposed_ SS_GUARDED_BY(mu_) = false;
  bool stop_ SS_GUARDED_BY(mu_) = false;
  std::shared_ptr<rpc::Channel> follower_ SS_GUARDED_BY(mu_);
  std::uint64_t epoch_ SS_GUARDED_BY(mu_) = 0;
  int consecutive_failures_ SS_GUARDED_BY(mu_) = 0;
  std::uint64_t repl_seq_ SS_GUARDED_BY(mu_) = 0;  ///< frame seq counter

  std::thread sender_;
};

}  // namespace smartstore::svc
