// The versioned partition map: which shard owns which slice of the
// namespace.
//
// Partitioning must be derivable from the one thing every keyed request
// carries — the filename — and it should keep semantically correlated
// records together, because the whole point of a SmartStore shard is that
// its local semantic R-tree answers range/top-k over files that cluster in
// attribute space. The trace generator (and the real traces it models)
// encodes that clustering in the directory tree: every file lives in an
// application directory like /sub0/u003/app012/, and files in one app
// directory share access patterns. So the partition key is the DIRECTORY
// PREFIX of the filename — one hash decides a whole app-cluster's home,
// and correlated records land on the same shard instead of being sprayed
// uniformly.
//
// The key hashes (FNV-1a) into a fixed ring of buckets; the map assigns
// each bucket an owning shard. Ownership changes ship a NEW map with a
// HIGHER version — maps are immutable values, compared and cached by
// version. Servers ownership-check keyed requests against their current
// map and answer kWrongShard (carrying that map) when a stale-mapped
// client routes wrong; see router.h for the client half of the contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "smartstore/status.h"

namespace smartstore::svc {

/// Bucket count: fixed for wire-format simplicity, comfortably above any
/// shard count this tier targets (1-64), so rebalancing granularity stays
/// fine-grained.
inline constexpr std::uint32_t kNumBuckets = 64;

/// The partition key: the filename's directory prefix (through the last
/// '/'), or the whole name when it has no directory part.
std::string_view partition_key(std::string_view filename);

struct PartitionMap {
  std::uint64_t version = 0;  ///< 0 = "no map"; real maps start at 1
  std::uint32_t num_shards = 0;
  std::vector<std::uint32_t> bucket_owner;  ///< size kNumBuckets

  // ---- replica sets (v3 wire extension; absent on legacy maps) ----------
  //
  // A LOGICAL SHARD (what bucket_owner names) is served by a replica set
  // of NODES (transport endpoints). `shard_primary[s]` is the node
  // currently serving shard s's writes; `shard_replicas[s]` lists every
  // node holding a copy (primary included). The EPOCH is the failover
  // generation: promotion bumps it (along with version), and replication
  // frames from a lower epoch are from a deposed primary — rejected.
  // Legacy maps leave these empty: node i == shard i, epoch 0.

  std::uint64_t epoch = 0;    ///< failover generation; 0 = unreplicated
  std::uint32_t num_nodes = 0;  ///< 0 = legacy (== num_shards)
  std::vector<std::uint32_t> shard_primary;  ///< size num_shards when set
  std::vector<std::vector<std::uint32_t>> shard_replicas;  ///< ditto

  /// Buckets dealt round-robin across `num_shards` — the bootstrap layout.
  static PartitionMap RoundRobin(std::uint32_t num_shards,
                                 std::uint64_t version = 1);

  /// The replicated bootstrap layout: `replication_factor` nodes per
  /// logical shard (node id = shard * rf + replica; replica 0 primary),
  /// epoch 1.
  static PartitionMap Replicated(std::uint32_t num_shards,
                                 std::uint32_t replication_factor,
                                 std::uint64_t version = 1);

  /// FNV-1a of the partition key, folded onto the bucket ring.
  static std::uint32_t bucket_of(std::string_view filename);

  /// The LOGICAL shard owning `filename` under this map.
  std::uint32_t shard_of(std::string_view filename) const {
    return bucket_owner[bucket_of(filename)];
  }

  /// Transport endpoints in this topology (== num_shards on legacy maps).
  std::uint32_t node_count() const {
    return num_nodes != 0 ? num_nodes : num_shards;
  }

  /// The node serving shard `s`'s writes (node s itself on legacy maps).
  std::uint32_t primary_node_of(std::uint32_t s) const {
    return s < shard_primary.size() ? shard_primary[s] : s;
  }

  /// Replica nodes of shard `s` (just the primary on legacy maps).
  std::vector<std::uint32_t> replicas_of(std::uint32_t s) const {
    if (s < shard_replicas.size()) return shard_replicas[s];
    return {primary_node_of(s)};
  }

  /// A map is usable when every bucket names a shard below num_shards and
  /// the replica-set fields (when present) are internally consistent.
  bool valid() const;
};

void encode_partition_map(const PartitionMap& map,
                          std::vector<std::uint8_t>* out);
db::Status decode_partition_map(const std::vector<std::uint8_t>& in,
                                PartitionMap* out);

}  // namespace smartstore::svc
