#include "svc/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

namespace smartstore::svc {

namespace {

/// Lifts a response frame's in-band status into a db::Status (error
/// messages ride in the payload).
db::Status frame_status(const rpc::Frame& f) {
  if (f.status == db::StatusCode::kOk) return db::Status();
  std::string msg;
  (void)rpc::decode_message(f.payload, &msg);  // best-effort
  return db::Status::FromCode(f.status, std::move(msg));
}

bool retryable(db::StatusCode c) {
  return c == db::StatusCode::kUnavailable || c == db::StatusCode::kTimeout;
}

}  // namespace

Router::Router(std::vector<std::shared_ptr<rpc::Channel>> channels,
               PartitionMap initial_map, RouterOptions options)
    : channels_(std::move(channels)),
      options_(options),
      map_(std::move(initial_map)) {}

void Router::Backoff(int attempt) const {
  const int shift = std::min(attempt, 16);
  std::uint64_t us = static_cast<std::uint64_t>(options_.backoff_init_us)
                     << shift;
  us = std::min<std::uint64_t>(us, options_.backoff_max_us);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

std::uint32_t Router::ShardOf(const std::string& key) const {
  const util::ReaderLock lock(map_mu_);
  return map_.shard_of(key);
}

PartitionMap Router::map() const {
  const util::ReaderLock lock(map_mu_);
  return map_;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.sends = sends_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.redirects = redirects_.load(std::memory_order_relaxed);
  s.map_installs = map_installs_.load(std::memory_order_relaxed);
  s.snapshot_pins = snapshot_pins_.load(std::memory_order_relaxed);
  s.unpinned_scatters = unpinned_scatters_.load(std::memory_order_relaxed);
  return s;
}

void Router::MaybeInstallMap(const std::vector<std::uint8_t>& encoded) {
  PartitionMap incoming;
  if (!decode_partition_map(encoded, &incoming).ok()) return;
  const util::WriterLock lock(map_mu_);
  if (incoming.version > map_.version) {
    map_ = std::move(incoming);
    map_installs_.fetch_add(1, std::memory_order_relaxed);
  }
}

db::Status Router::CallKeyed(rpc::Method method, const std::string& key,
                             std::vector<std::uint8_t> payload,
                             rpc::Frame* resp) {
  const std::uint64_t seq = NextSeq();
  db::Status last = db::Status::Unavailable("no attempt made");
  // Redirects are re-routes, not failures: they get their own (generous)
  // bound instead of consuming retry attempts.
  const int max_redirects = static_cast<int>(channels_.size()) * 2 + 4;
  int redirects = 0;
  for (int attempt = 0; attempt < options_.max_attempts;) {
    std::uint32_t shard;
    std::uint64_t map_version;
    {
      // Copy the routing decision out — no router lock across a Call.
      const util::ReaderLock lock(map_mu_);
      shard = map_.shard_of(key);
      map_version = map_.version;
    }
    if (shard >= channels_.size()) {
      return db::Status::InvalidArgument(
          "partition map names shard " + std::to_string(shard) +
          " but the router has " + std::to_string(channels_.size()) +
          " channels");
    }
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = method;
    req.shard = shard;
    req.client_id = options_.client_id;
    req.seq = seq;  // SAME id on every retry: the dedup contract
    req.map_version = map_version;
    req.payload = payload;

    sends_.fetch_add(1, std::memory_order_relaxed);
    rpc::Frame r;
    const db::Status sent = channels_[shard]->Call(req, &r);
    if (!sent.ok()) {
      last = sent;
      retries_.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt);
      ++attempt;
      continue;
    }
    if (r.status == db::StatusCode::kWrongShard) {
      redirects_.fetch_add(1, std::memory_order_relaxed);
      MaybeInstallMap(r.payload);
      if (++redirects > max_redirects) {
        return db::Status::Unavailable(
            "redirect loop: shards disagree with every map version the "
            "router can obtain");
      }
      continue;  // immediate re-route under the refreshed map
    }
    if (retryable(r.status)) {
      last = frame_status(r);
      retries_.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt);
      ++attempt;
      continue;
    }
    *resp = std::move(r);
    return db::Status();
  }
  return last;
}

db::Status Router::CallShard(std::uint32_t shard, rpc::Method method,
                             std::vector<std::uint8_t> payload,
                             rpc::Frame* resp) {
  if (shard >= channels_.size()) {
    return db::Status::InvalidArgument("no channel for shard " +
                                       std::to_string(shard));
  }
  const std::uint64_t seq = NextSeq();
  db::Status last = db::Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = method;
    req.shard = shard;
    req.client_id = options_.client_id;
    req.seq = seq;
    {
      const util::ReaderLock lock(map_mu_);
      req.map_version = map_.version;
    }
    req.payload = payload;

    sends_.fetch_add(1, std::memory_order_relaxed);
    rpc::Frame r;
    const db::Status sent = channels_[shard]->Call(req, &r);
    if (!sent.ok()) {
      last = sent;
      retries_.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt);
      continue;
    }
    if (retryable(r.status)) {
      last = frame_status(r);
      retries_.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt);
      continue;
    }
    *resp = std::move(r);
    return db::Status();
  }
  return last;
}

// ---- keyed ops --------------------------------------------------------------

db::Status Router::Put(const metadata::FileMetadata& file) {
  std::vector<std::uint8_t> payload;
  rpc::encode_file(file, &payload);
  rpc::Frame resp;
  const db::Status s =
      CallKeyed(rpc::Method::kPut, file.name, std::move(payload), &resp);
  if (!s.ok()) return s;
  return frame_status(resp);
}

db::Status Router::Delete(const std::string& name) {
  std::vector<std::uint8_t> payload;
  rpc::encode_name(name, &payload);
  rpc::Frame resp;
  const db::Status s =
      CallKeyed(rpc::Method::kDelete, name, std::move(payload), &resp);
  if (!s.ok()) return s;
  return frame_status(resp);
}

db::StatusOr<db::QueryResult> Router::Point(const std::string& filename) {
  metadata::PointQuery q;
  q.filename = filename;
  std::vector<std::uint8_t> payload;
  rpc::encode_point_query(q, &payload);
  rpc::Frame resp;
  db::Status s =
      CallKeyed(rpc::Method::kPointQuery, filename, std::move(payload), &resp);
  if (!s.ok()) return s;
  s = frame_status(resp);
  if (!s.ok()) return s;
  db::QueryResult result;
  s = rpc::decode_query_result(resp.payload, &result);
  if (!s.ok()) return s;
  return result;
}

db::Status Router::Write(const std::vector<rpc::BatchOp>& ops) {
  std::vector<rpc::BatchOp> pending = ops;
  // Each round splits the remaining ops by shard under the current map; a
  // kWrongShard answer refreshes the map and sends that slice around
  // again. Bounded: a round either applies slices or installs a newer map.
  for (int round = 0; round < 8 && !pending.empty(); ++round) {
    PartitionMap snapshot;
    {
      const util::ReaderLock lock(map_mu_);
      snapshot = map_;
    }
    std::unordered_map<std::uint32_t, std::vector<rpc::BatchOp>> by_shard;
    for (const rpc::BatchOp& op : pending) {
      const std::string& name = op.is_put ? op.file.name : op.name;
      by_shard[snapshot.shard_of(name)].push_back(op);
    }
    std::vector<rpc::BatchOp> leftover;
    for (auto& [shard, slice] : by_shard) {
      std::vector<std::uint8_t> payload;
      rpc::encode_batch(slice, &payload);
      rpc::Frame resp;
      const db::Status s =
          CallShard(shard, rpc::Method::kBatchWrite, std::move(payload),
                    &resp);
      if (!s.ok()) return s;
      if (resp.status == db::StatusCode::kWrongShard) {
        // Nothing applied (ownership precedes dedup and apply): safe to
        // re-split this slice under the refreshed map with fresh ids.
        redirects_.fetch_add(1, std::memory_order_relaxed);
        MaybeInstallMap(resp.payload);
        leftover.insert(leftover.end(), slice.begin(), slice.end());
        continue;
      }
      const db::Status app = frame_status(resp);
      if (!app.ok()) return app;
    }
    pending = std::move(leftover);
  }
  if (!pending.empty()) {
    return db::Status::Unavailable(
        "batch re-split did not converge: shards disagree about ownership");
  }
  return db::Status();
}

// ---- scatter-gather ---------------------------------------------------------

db::StatusOr<db::QueryResult> Router::Scatter(
    rpc::Method method, db::QueryKind kind, std::size_t k,
    const std::function<void(std::uint32_t, std::vector<std::uint8_t>*)>&
        encode) {
  db::QueryResult merged;
  merged.kind = kind;
  for (std::uint32_t shard = 0; shard < channels_.size(); ++shard) {
    std::vector<std::uint8_t> payload;
    encode(shard, &payload);
    rpc::Frame resp;
    db::Status s = CallShard(shard, method, std::move(payload), &resp);
    if (!s.ok()) return s;
    s = frame_status(resp);
    if (!s.ok()) return s;
    db::QueryResult part;
    s = rpc::decode_query_result(resp.payload, &part);
    if (!s.ok()) return s;
    merged.ids.insert(merged.ids.end(), part.ids.begin(), part.ids.end());
    merged.hits.insert(merged.hits.end(), part.hits.begin(), part.hits.end());
    merged.stats.messages += part.stats.messages;
    merged.stats.hops += part.stats.hops;
    merged.stats.groups_visited += part.stats.groups_visited;
    merged.stats.records_scanned += part.stats.records_scanned;
    // The scatter completes when the slowest shard answers.
    merged.stats.latency_s =
        std::max(merged.stats.latency_s, part.stats.latency_s);
    merged.stats.failed = merged.stats.failed || part.stats.failed;
  }
  if (kind == db::QueryKind::kTopK) {
    // Global re-sort by (distance, id) BEFORE truncating to k: per-shard
    // answers are each sorted, but their concatenation is not, and the id
    // tie-break keeps equidistant cross-shard hits deterministic.
    std::sort(merged.hits.begin(), merged.hits.end());
    if (merged.hits.size() > k) merged.hits.resize(k);
    merged.ids.clear();
    merged.ids.reserve(merged.hits.size());
    for (const auto& [dist, id] : merged.hits) merged.ids.push_back(id);
  } else {
    // Canonical range answer: shard arrival order is an accident of the
    // scatter, so re-sort by id — two scatters over the same cut must be
    // bit-identical.
    std::sort(merged.ids.begin(), merged.ids.end());
  }
  return merged;
}

db::StatusOr<db::QueryResult> Router::Range(const metadata::RangeQuery& query) {
  db::StatusOr<ClusterSnapshot> pinned = PinSnapshot();
  if (pinned.ok()) {
    db::StatusOr<db::QueryResult> r = Range(query, *pinned);
    (void)ReleaseSnapshot(*pinned);  // best-effort; TTL sweeps stragglers
    return r;
  }
  unpinned_scatters_.fetch_add(1, std::memory_order_relaxed);
  return Scatter(rpc::Method::kRangeQuery, db::QueryKind::kRange, 0,
                 [&](std::uint32_t, std::vector<std::uint8_t>* out) {
                   rpc::encode_range_query(query, out, rpc::kAsOfLatest);
                 });
}

db::StatusOr<db::QueryResult> Router::TopK(const metadata::TopKQuery& query) {
  db::StatusOr<ClusterSnapshot> pinned = PinSnapshot();
  if (pinned.ok()) {
    db::StatusOr<db::QueryResult> r = TopK(query, *pinned);
    (void)ReleaseSnapshot(*pinned);
    return r;
  }
  unpinned_scatters_.fetch_add(1, std::memory_order_relaxed);
  return Scatter(rpc::Method::kTopKQuery, db::QueryKind::kTopK, query.k,
                 [&](std::uint32_t, std::vector<std::uint8_t>* out) {
                   rpc::encode_topk_query(query, out, rpc::kAsOfLatest);
                 });
}

db::StatusOr<db::QueryResult> Router::Range(const metadata::RangeQuery& query,
                                            const ClusterSnapshot& snapshot) {
  return Scatter(rpc::Method::kRangeQuery, db::QueryKind::kRange, 0,
                 [&](std::uint32_t shard, std::vector<std::uint8_t>* out) {
                   rpc::encode_range_query(
                       query, out, rpc::as_of_token(snapshot.seq_of(shard)));
                 });
}

db::StatusOr<db::QueryResult> Router::TopK(const metadata::TopKQuery& query,
                                           const ClusterSnapshot& snapshot) {
  return Scatter(rpc::Method::kTopKQuery, db::QueryKind::kTopK, query.k,
                 [&](std::uint32_t shard, std::vector<std::uint8_t>* out) {
                   rpc::encode_topk_query(
                       query, out, rpc::as_of_token(snapshot.seq_of(shard)));
                 });
}

db::StatusOr<ClusterSnapshot> Router::PinSnapshot() {
  ClusterSnapshot snap;
  snap.leases.resize(channels_.size());
  for (std::uint32_t shard = 0; shard < channels_.size(); ++shard) {
    rpc::Frame resp;
    db::Status s = CallShard(shard, rpc::Method::kSnapPin, {}, &resp);
    if (s.ok()) s = frame_status(resp);
    if (s.ok()) s = rpc::decode_snapshot_lease(resp.payload,
                                               &snap.leases[shard]);
    if (!s.ok()) {
      // A torn pin is worthless: release the prefix and surface the error
      // (callers fall back to unpinned reads).
      (void)ReleaseSnapshot(snap);
      return s;
    }
  }
  snapshot_pins_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

db::Status Router::ReleaseSnapshot(const ClusterSnapshot& snapshot) {
  db::Status first_error;
  const std::uint32_t n = static_cast<std::uint32_t>(
      std::min<std::size_t>(snapshot.leases.size(), channels_.size()));
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    if (snapshot.leases[shard].lease_id == 0) continue;  // never pinned
    std::vector<std::uint8_t> payload;
    rpc::encode_snapshot_lease(snapshot.leases[shard], &payload);
    rpc::Frame resp;
    db::Status s =
        CallShard(shard, rpc::Method::kSnapRelease, std::move(payload), &resp);
    if (s.ok()) s = frame_status(resp);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

// ---- control ----------------------------------------------------------------

db::Status Router::Flush() {
  for (std::uint32_t shard = 0; shard < channels_.size(); ++shard) {
    rpc::Frame resp;
    db::Status s = CallShard(shard, rpc::Method::kFlush, {}, &resp);
    if (!s.ok()) return s;
    s = frame_status(resp);
    if (!s.ok()) return s;
  }
  return db::Status();
}

db::Status Router::FetchMap() {
  db::Status last = db::Status::Unavailable("no shards");
  for (std::uint32_t shard = 0; shard < channels_.size(); ++shard) {
    rpc::Frame resp;
    db::Status s = CallShard(shard, rpc::Method::kGetMap, {}, &resp);
    if (!s.ok()) {
      last = s;
      continue;
    }
    s = frame_status(resp);
    if (!s.ok()) {
      last = s;
      continue;
    }
    MaybeInstallMap(resp.payload);
    return db::Status();
  }
  return last;
}

db::StatusOr<rpc::ShardStats> Router::Stats(std::uint32_t shard) {
  rpc::Frame resp;
  db::Status s = CallShard(shard, rpc::Method::kStats, {}, &resp);
  if (!s.ok()) return s;
  s = frame_status(resp);
  if (!s.ok()) return s;
  rpc::ShardStats stats;
  s = rpc::decode_shard_stats(resp.payload, &stats);
  if (!s.ok()) return s;
  return stats;
}

db::Status Router::Ping(std::uint32_t shard) {
  rpc::Frame resp;
  const db::Status s = CallShard(shard, rpc::Method::kPing, {}, &resp);
  if (!s.ok()) return s;
  return frame_status(resp);
}

}  // namespace smartstore::svc
