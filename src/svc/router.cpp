#include "svc/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

namespace smartstore::svc {

namespace {

/// Lifts a response frame's in-band status into a db::Status (error
/// messages ride in the payload).
db::Status frame_status(const rpc::Frame& f) {
  if (f.status == db::StatusCode::kOk) return db::Status();
  std::string msg;
  (void)rpc::decode_message(f.payload, &msg);  // best-effort
  return db::Status::FromCode(f.status, std::move(msg));
}

bool retryable(db::StatusCode c) {
  return c == db::StatusCode::kUnavailable || c == db::StatusCode::kTimeout;
}

}  // namespace

Router::Router(std::vector<std::shared_ptr<rpc::Channel>> channels,
               PartitionMap initial_map, RouterOptions options)
    : channels_(std::move(channels)),
      options_(options),
      map_(std::move(initial_map)) {}

void Router::Backoff(int attempt) const {
  const int shift = std::min(attempt, 16);
  std::uint64_t us = static_cast<std::uint64_t>(options_.backoff_init_us)
                     << shift;
  us = std::min<std::uint64_t>(us, options_.backoff_max_us);
  if (us == 0) return;
  // Jitter the sleep into [us/2, us]: clients that failed together (one
  // node died under all of them) must not retry in lockstep, or every
  // backoff round re-delivers the same synchronized burst. Splitmix64
  // over an atomic counter — deterministic per process, lock-free.
  std::uint64_t z = jitter_state_.fetch_add(0x9e3779b97f4a7c15ull,
                                            std::memory_order_relaxed);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  const std::uint64_t floor_us = us / 2;
  if (us > floor_us) us = floor_us + z % (us - floor_us + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool Router::SpendRetry() {
  if (options_.retry_budget != 0) {
    const std::uint64_t used =
        retries_spent_.fetch_add(1, std::memory_order_relaxed);
    if (used >= options_.retry_budget) return false;
  }
  retries_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Router::TryRefreshMap() {
  // One direct probe per node, no retry loop (this runs INSIDE retry
  // loops): during a failover the dead primary cannot teach us the new
  // map, but any survivor can — the manager installs it everywhere.
  for (std::uint32_t node = 0; node < channels_.size(); ++node) {
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = rpc::Method::kGetMap;
    req.shard = node;
    rpc::Frame resp;
    if (!channels_[node]->Call(req, &resp).ok()) continue;
    if (resp.status != db::StatusCode::kOk) continue;
    MaybeInstallMap(resp.payload);
  }
}

std::uint32_t Router::ShardOf(const std::string& key) const {
  const util::ReaderLock lock(map_mu_);
  return map_.shard_of(key);
}

PartitionMap Router::map() const {
  const util::ReaderLock lock(map_mu_);
  return map_;
}

RouterStats Router::stats() const {
  RouterStats s;
  s.sends = sends_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.redirects = redirects_.load(std::memory_order_relaxed);
  s.gave_up = gave_up_.load(std::memory_order_relaxed);
  s.map_installs = map_installs_.load(std::memory_order_relaxed);
  s.snapshot_pins = snapshot_pins_.load(std::memory_order_relaxed);
  s.unpinned_scatters = unpinned_scatters_.load(std::memory_order_relaxed);
  return s;
}

std::uint32_t Router::num_shards() const {
  const util::ReaderLock lock(map_mu_);
  return map_.num_shards;
}

void Router::MaybeInstallMap(const std::vector<std::uint8_t>& encoded) {
  PartitionMap incoming;
  if (!decode_partition_map(encoded, &incoming).ok()) return;
  const util::WriterLock lock(map_mu_);
  if (incoming.version > map_.version) {
    map_ = std::move(incoming);
    map_installs_.fetch_add(1, std::memory_order_relaxed);
  }
}

db::Status Router::CallKeyed(rpc::Method method, const std::string& key,
                             std::vector<std::uint8_t> payload,
                             rpc::Frame* resp) {
  const std::uint64_t seq = NextSeq();
  db::Status last = db::Status::Unavailable("no attempt made");
  // Redirects are re-routes, not failures: they get their own (generous)
  // bound instead of consuming retry attempts.
  const int max_redirects = static_cast<int>(channels_.size()) * 2 + 4;
  int redirects = 0;
  for (int attempt = 0; attempt < options_.max_attempts;) {
    std::uint32_t shard;
    std::uint32_t node;
    std::uint64_t map_version;
    {
      // Copy the routing decision out — no router lock across a Call.
      const util::ReaderLock lock(map_mu_);
      shard = map_.shard_of(key);
      node = map_.primary_node_of(shard);
      map_version = map_.version;
    }
    if (node >= channels_.size()) {
      return db::Status::InvalidArgument(
          "partition map routes shard " + std::to_string(shard) +
          " to node " + std::to_string(node) + " but the router has " +
          std::to_string(channels_.size()) + " channels");
    }
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = method;
    req.shard = shard;
    req.client_id = options_.client_id;
    req.seq = seq;  // SAME id on every retry: the dedup contract
    req.map_version = map_version;
    req.payload = payload;

    sends_.fetch_add(1, std::memory_order_relaxed);
    rpc::Frame r;
    const db::Status sent = channels_[node]->Call(req, &r);
    if (!sent.ok()) {
      last = sent;
      if (!SpendRetry()) break;
      Backoff(attempt);
      // The node we were told to use is not answering — maybe a failover
      // already re-homed the shard. Ask the survivors before re-sending.
      TryRefreshMap();
      ++attempt;
      continue;
    }
    if (r.status == db::StatusCode::kWrongShard) {
      redirects_.fetch_add(1, std::memory_order_relaxed);
      MaybeInstallMap(r.payload);
      if (++redirects > max_redirects) {
        gave_up_.fetch_add(1, std::memory_order_relaxed);
        return db::Status::Unavailable(
            "redirect loop: shards disagree with every map version the "
            "router can obtain");
      }
      {
        // Re-route immediately only when the bounce changed the routing
        // decision; otherwise (the bouncer's map is older than ours — a
        // node that has not yet learned of a promotion) spinning on the
        // same target is pointless: back off and probe for a newer map.
        const util::ReaderLock lock(map_mu_);
        if (map_.primary_node_of(map_.shard_of(key)) != node) continue;
      }
      last = frame_status(r);
      if (!SpendRetry()) break;
      Backoff(attempt);
      TryRefreshMap();
      ++attempt;
      continue;
    }
    if (retryable(r.status)) {
      last = frame_status(r);
      if (!SpendRetry()) break;
      Backoff(attempt);
      TryRefreshMap();
      ++attempt;
      continue;
    }
    *resp = std::move(r);
    return db::Status();
  }
  gave_up_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

db::Status Router::CallNode(std::uint32_t node, rpc::Method method,
                            std::vector<std::uint8_t> payload,
                            rpc::Frame* resp) {
  if (node >= channels_.size()) {
    return db::Status::InvalidArgument("no channel for node " +
                                       std::to_string(node));
  }
  const std::uint64_t seq = NextSeq();
  db::Status last = db::Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = method;
    req.shard = node;
    req.client_id = options_.client_id;
    req.seq = seq;
    {
      const util::ReaderLock lock(map_mu_);
      req.map_version = map_.version;
    }
    req.payload = payload;

    sends_.fetch_add(1, std::memory_order_relaxed);
    rpc::Frame r;
    const db::Status sent = channels_[node]->Call(req, &r);
    if (!sent.ok()) {
      last = sent;
      if (!SpendRetry()) break;
      Backoff(attempt);
      continue;
    }
    if (retryable(r.status)) {
      last = frame_status(r);
      if (!SpendRetry()) break;
      Backoff(attempt);
      continue;
    }
    *resp = std::move(r);
    return db::Status();
  }
  gave_up_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

db::Status Router::CallShard(std::uint32_t shard, rpc::Method method,
                             std::vector<std::uint8_t> payload,
                             rpc::Frame* resp) {
  const std::uint64_t seq = NextSeq();
  db::Status last = db::Status::Unavailable("no attempt made");
  const int max_redirects = static_cast<int>(channels_.size()) * 2 + 4;
  int redirects = 0;
  for (int attempt = 0; attempt < options_.max_attempts;) {
    std::uint32_t node;
    std::uint64_t map_version;
    {
      const util::ReaderLock lock(map_mu_);
      node = map_.primary_node_of(shard);
      map_version = map_.version;
    }
    if (node >= channels_.size()) {
      return db::Status::InvalidArgument(
          "partition map routes shard " + std::to_string(shard) +
          " to node " + std::to_string(node) + " but the router has " +
          std::to_string(channels_.size()) + " channels");
    }
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = method;
    req.shard = shard;
    req.client_id = options_.client_id;
    req.seq = seq;
    req.map_version = map_version;
    req.payload = payload;

    sends_.fetch_add(1, std::memory_order_relaxed);
    rpc::Frame r;
    const db::Status sent = channels_[node]->Call(req, &r);
    if (!sent.ok()) {
      last = sent;
      if (!SpendRetry()) break;
      Backoff(attempt);
      TryRefreshMap();  // a survivor may know the shard's new primary
      ++attempt;
      continue;
    }
    if (r.status == db::StatusCode::kWrongShard) {
      // A follower (or a node mid-handover) bounced us: adopt its map and
      // re-resolve the primary. When that changes the target node, retry
      // here; when it does not, the disagreement is about bucket
      // OWNERSHIP, not node role — hand the frame to the caller (Write
      // re-splits its slice by key under the refreshed map, which a
      // fixed-shard loop cannot do).
      redirects_.fetch_add(1, std::memory_order_relaxed);
      MaybeInstallMap(r.payload);
      if (++redirects > max_redirects) {
        gave_up_.fetch_add(1, std::memory_order_relaxed);
        return db::Status::Unavailable(
            "redirect loop: shard " + std::to_string(shard) +
            " has no agreed primary under any obtainable map");
      }
      {
        const util::ReaderLock lock(map_mu_);
        if (map_.primary_node_of(shard) != node) continue;
      }
      *resp = std::move(r);
      return db::Status();
    }
    if (retryable(r.status)) {
      last = frame_status(r);
      if (!SpendRetry()) break;
      Backoff(attempt);
      TryRefreshMap();
      ++attempt;
      continue;
    }
    *resp = std::move(r);
    return db::Status();
  }
  gave_up_.fetch_add(1, std::memory_order_relaxed);
  return last;
}

// ---- keyed ops --------------------------------------------------------------

db::Status Router::Put(const metadata::FileMetadata& file) {
  std::vector<std::uint8_t> payload;
  rpc::encode_file(file, &payload);
  rpc::Frame resp;
  const db::Status s =
      CallKeyed(rpc::Method::kPut, file.name, std::move(payload), &resp);
  if (!s.ok()) return s;
  return frame_status(resp);
}

db::Status Router::Delete(const std::string& name) {
  std::vector<std::uint8_t> payload;
  rpc::encode_name(name, &payload);
  rpc::Frame resp;
  const db::Status s =
      CallKeyed(rpc::Method::kDelete, name, std::move(payload), &resp);
  if (!s.ok()) return s;
  return frame_status(resp);
}

db::StatusOr<db::QueryResult> Router::Point(const std::string& filename) {
  metadata::PointQuery q;
  q.filename = filename;
  std::vector<std::uint8_t> payload;
  rpc::encode_point_query(q, &payload);
  rpc::Frame resp;
  db::Status s =
      CallKeyed(rpc::Method::kPointQuery, filename, std::move(payload), &resp);
  if (!s.ok()) return s;
  s = frame_status(resp);
  if (!s.ok()) return s;
  db::QueryResult result;
  s = rpc::decode_query_result(resp.payload, &result);
  if (!s.ok()) return s;
  return result;
}

db::Status Router::Write(const std::vector<rpc::BatchOp>& ops) {
  std::vector<rpc::BatchOp> pending = ops;
  // Each round splits the remaining ops by shard under the current map; a
  // kWrongShard answer refreshes the map and sends that slice around
  // again. Bounded: a round either applies slices or installs a newer map.
  for (int round = 0; round < 8 && !pending.empty(); ++round) {
    PartitionMap snapshot;
    {
      const util::ReaderLock lock(map_mu_);
      snapshot = map_;
    }
    std::unordered_map<std::uint32_t, std::vector<rpc::BatchOp>> by_shard;
    for (const rpc::BatchOp& op : pending) {
      const std::string& name = op.is_put ? op.file.name : op.name;
      by_shard[snapshot.shard_of(name)].push_back(op);
    }
    std::vector<rpc::BatchOp> leftover;
    for (auto& [shard, slice] : by_shard) {
      std::vector<std::uint8_t> payload;
      rpc::encode_batch(slice, &payload);
      rpc::Frame resp;
      const db::Status s =
          CallShard(shard, rpc::Method::kBatchWrite, std::move(payload),
                    &resp);
      if (!s.ok()) return s;
      if (resp.status == db::StatusCode::kWrongShard) {
        // Nothing applied (ownership precedes dedup and apply): safe to
        // re-split this slice under the refreshed map with fresh ids.
        redirects_.fetch_add(1, std::memory_order_relaxed);
        MaybeInstallMap(resp.payload);
        leftover.insert(leftover.end(), slice.begin(), slice.end());
        continue;
      }
      const db::Status app = frame_status(resp);
      if (!app.ok()) return app;
    }
    pending = std::move(leftover);
  }
  if (!pending.empty()) {
    return db::Status::Unavailable(
        "batch re-split did not converge: shards disagree about ownership");
  }
  return db::Status();
}

// ---- scatter-gather ---------------------------------------------------------

db::StatusOr<db::QueryResult> Router::Scatter(
    rpc::Method method, db::QueryKind kind, std::size_t k,
    const std::function<void(std::uint32_t, std::vector<std::uint8_t>*)>&
        encode) {
  db::QueryResult merged;
  merged.kind = kind;
  // Scatter covers every LOGICAL shard (each slice lands on the shard's
  // current primary) — not every channel: followers hold lagging copies.
  const std::uint32_t n = num_shards();
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    std::vector<std::uint8_t> payload;
    encode(shard, &payload);
    rpc::Frame resp;
    db::Status s = CallShard(shard, method, std::move(payload), &resp);
    if (!s.ok()) return s;
    s = frame_status(resp);
    if (!s.ok()) return s;
    db::QueryResult part;
    s = rpc::decode_query_result(resp.payload, &part);
    if (!s.ok()) return s;
    merged.ids.insert(merged.ids.end(), part.ids.begin(), part.ids.end());
    merged.hits.insert(merged.hits.end(), part.hits.begin(), part.hits.end());
    merged.stats.messages += part.stats.messages;
    merged.stats.hops += part.stats.hops;
    merged.stats.groups_visited += part.stats.groups_visited;
    merged.stats.records_scanned += part.stats.records_scanned;
    // The scatter completes when the slowest shard answers.
    merged.stats.latency_s =
        std::max(merged.stats.latency_s, part.stats.latency_s);
    merged.stats.failed = merged.stats.failed || part.stats.failed;
  }
  if (kind == db::QueryKind::kTopK) {
    // Global re-sort by (distance, id) BEFORE truncating to k: per-shard
    // answers are each sorted, but their concatenation is not, and the id
    // tie-break keeps equidistant cross-shard hits deterministic.
    std::sort(merged.hits.begin(), merged.hits.end());
    if (merged.hits.size() > k) merged.hits.resize(k);
    merged.ids.clear();
    merged.ids.reserve(merged.hits.size());
    for (const auto& [dist, id] : merged.hits) merged.ids.push_back(id);
  } else {
    // Canonical range answer: shard arrival order is an accident of the
    // scatter, so re-sort by id — two scatters over the same cut must be
    // bit-identical.
    std::sort(merged.ids.begin(), merged.ids.end());
  }
  return merged;
}

db::StatusOr<db::QueryResult> Router::Range(const metadata::RangeQuery& query) {
  db::StatusOr<ClusterSnapshot> pinned = PinSnapshot();
  if (pinned.ok()) {
    db::StatusOr<db::QueryResult> r = Range(query, *pinned);
    (void)ReleaseSnapshot(*pinned);  // best-effort; TTL sweeps stragglers
    return r;
  }
  unpinned_scatters_.fetch_add(1, std::memory_order_relaxed);
  return Scatter(rpc::Method::kRangeQuery, db::QueryKind::kRange, 0,
                 [&](std::uint32_t, std::vector<std::uint8_t>* out) {
                   rpc::encode_range_query(query, out, rpc::kAsOfLatest);
                 });
}

db::StatusOr<db::QueryResult> Router::TopK(const metadata::TopKQuery& query) {
  db::StatusOr<ClusterSnapshot> pinned = PinSnapshot();
  if (pinned.ok()) {
    db::StatusOr<db::QueryResult> r = TopK(query, *pinned);
    (void)ReleaseSnapshot(*pinned);
    return r;
  }
  unpinned_scatters_.fetch_add(1, std::memory_order_relaxed);
  return Scatter(rpc::Method::kTopKQuery, db::QueryKind::kTopK, query.k,
                 [&](std::uint32_t, std::vector<std::uint8_t>* out) {
                   rpc::encode_topk_query(query, out, rpc::kAsOfLatest);
                 });
}

db::StatusOr<db::QueryResult> Router::Range(const metadata::RangeQuery& query,
                                            const ClusterSnapshot& snapshot) {
  return Scatter(rpc::Method::kRangeQuery, db::QueryKind::kRange, 0,
                 [&](std::uint32_t shard, std::vector<std::uint8_t>* out) {
                   rpc::encode_range_query(
                       query, out, rpc::as_of_token(snapshot.seq_of(shard)));
                 });
}

db::StatusOr<db::QueryResult> Router::TopK(const metadata::TopKQuery& query,
                                           const ClusterSnapshot& snapshot) {
  return Scatter(rpc::Method::kTopKQuery, db::QueryKind::kTopK, query.k,
                 [&](std::uint32_t shard, std::vector<std::uint8_t>* out) {
                   rpc::encode_topk_query(
                       query, out, rpc::as_of_token(snapshot.seq_of(shard)));
                 });
}

db::StatusOr<ClusterSnapshot> Router::PinSnapshot() {
  ClusterSnapshot snap;
  const std::uint32_t n = num_shards();
  snap.leases.resize(n);
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    rpc::Frame resp;
    db::Status s = CallShard(shard, rpc::Method::kSnapPin, {}, &resp);
    if (s.ok()) s = frame_status(resp);
    if (s.ok()) s = rpc::decode_snapshot_lease(resp.payload,
                                               &snap.leases[shard]);
    if (!s.ok()) {
      // A torn pin is worthless: release the prefix and surface the error
      // (callers fall back to unpinned reads).
      (void)ReleaseSnapshot(snap);
      return s;
    }
  }
  snapshot_pins_.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

db::Status Router::ReleaseSnapshot(const ClusterSnapshot& snapshot) {
  db::Status first_error;
  const std::uint32_t n = static_cast<std::uint32_t>(
      std::min<std::size_t>(snapshot.leases.size(), num_shards()));
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    if (snapshot.leases[shard].lease_id == 0) continue;  // never pinned
    std::vector<std::uint8_t> payload;
    rpc::encode_snapshot_lease(snapshot.leases[shard], &payload);
    rpc::Frame resp;
    db::Status s =
        CallShard(shard, rpc::Method::kSnapRelease, std::move(payload), &resp);
    if (s.ok()) s = frame_status(resp);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

// ---- control ----------------------------------------------------------------

db::Status Router::Flush() {
  const std::uint32_t n = num_shards();
  for (std::uint32_t shard = 0; shard < n; ++shard) {
    rpc::Frame resp;
    db::Status s = CallShard(shard, rpc::Method::kFlush, {}, &resp);
    if (!s.ok()) return s;
    s = frame_status(resp);
    if (!s.ok()) return s;
  }
  return db::Status();
}

db::Status Router::FetchMap() {
  // Every NODE serves kGetMap (followers included) — ask each in turn.
  db::Status last = db::Status::Unavailable("no nodes");
  for (std::uint32_t node = 0; node < channels_.size(); ++node) {
    rpc::Frame resp;
    db::Status s = CallNode(node, rpc::Method::kGetMap, {}, &resp);
    if (!s.ok()) {
      last = s;
      continue;
    }
    s = frame_status(resp);
    if (!s.ok()) {
      last = s;
      continue;
    }
    MaybeInstallMap(resp.payload);
    return db::Status();
  }
  return last;
}

db::StatusOr<rpc::ShardStats> Router::Stats(std::uint32_t shard) {
  rpc::Frame resp;
  db::Status s = CallShard(shard, rpc::Method::kStats, {}, &resp);
  if (!s.ok()) return s;
  s = frame_status(resp);
  if (!s.ok()) return s;
  rpc::ShardStats stats;
  s = rpc::decode_shard_stats(resp.payload, &stats);
  if (!s.ok()) return s;
  return stats;
}

db::Status Router::Ping(std::uint32_t shard) {
  rpc::Frame resp;
  const db::Status s = CallShard(shard, rpc::Method::kPing, {}, &resp);
  if (!s.ok()) return s;
  return frame_status(resp);
}

}  // namespace smartstore::svc
