#include "svc/cluster.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <utility>

namespace smartstore::svc {

namespace {

/// splitmix64 finalizer: decorrelates per-node placement rngs. The old
/// `seed + shard` gave adjacent CLUSTER seeds (seed 1 shard 1 vs seed 2
/// shard 0) identical store seeds — two "independent" test clusters then
/// shared placement decisions.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t node) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (node + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

db::Status frame_error(const rpc::Frame& f) {
  std::string msg;
  (void)rpc::decode_message(f.payload, &msg);  // best-effort
  return db::Status::FromCode(f.status, std::move(msg));
}

}  // namespace

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      map_(options.replication_factor > 1
               ? PartitionMap::Replicated(options.num_shards,
                                          options.replication_factor,
                                          options.map_version)
               : PartitionMap::RoundRobin(options.num_shards,
                                          options.map_version)) {}

std::string Cluster::NodePath(std::uint32_t node) const {
  // rf == 1 keeps the legacy `shard-<k>` layout so existing durable test
  // directories keep recovering; replicated clusters name endpoints.
  if (options_.replication_factor == 1) {
    return options_.dir + "/shard-" + std::to_string(node);
  }
  return options_.dir + "/node-" + std::to_string(node);
}

db::Options Cluster::NodeStoreOptions(std::uint32_t node) const {
  db::Options o = options_.store_options;
  o.in_memory = options_.in_memory;
  o.create_if_missing = true;
  o.seed = mix_seed(o.seed, node);  // distinct placement rngs per node
  if (options_.in_memory) {
    // In-memory stores reject durability knobs (nothing to checkpoint).
    o.checkpoint_every = 0;
  } else {
    // Acked => durable: every mutation's WAL append fsyncs before the
    // response leaves the shard, so Abandon cannot lose an acked write.
    o.enable_wal = true;
    o.group_commit = std::max<std::size_t>(1, o.group_commit);
    if (options_.replication_factor > 1) {
      // The ack barrier waits for the follower to cover THIS mutation's
      // seq; cross-request commit batching would couple one client's ack
      // latency to another's arrival. Each mutation commits itself.
      o.group_commit = 1;
    }
  }
  return o;
}

db::StatusOr<std::shared_ptr<Cluster::Node>> Cluster::OpenNode(
    std::uint32_t node) const {
  auto opened = db::Store::Open(
      NodeStoreOptions(node),
      options_.in_memory ? std::string() : NodePath(node));
  if (!opened.ok()) return opened.status();
  auto n = std::make_shared<Node>();
  n->store = std::move(opened).value();
  MetaServiceOptions service_options;
  service_options.shard_id = shard_of_node(node);
  if (options_.replication_factor > 1) service_options.node_id = node;
  service_options.dedup_capacity = options_.dedup_capacity;
  service_options.repl_ack_timeout_ms = options_.repl_ack_timeout_ms;
  service_options.snapshot_lease_capacity = options_.snapshot_lease_capacity;
  service_options.snapshot_lease_ttl_ms = options_.snapshot_lease_ttl_ms;
  PartitionMap map_snapshot;
  {
    const util::MutexLock lock(mu_);
    map_snapshot = map_;
  }
  n->service = std::make_unique<MetaService>(
      n->store.get(), std::move(map_snapshot), service_options);
  return n;
}

void Cluster::BindNode(std::uint32_t node, const std::shared_ptr<Node>& n) {
  // The handler holds the node: a delivery racing Crash() completes
  // against the old store (which answers kUnavailable once abandoned)
  // rather than a dangling pointer.
  network_.Bind(node, [n](const rpc::Frame& req) {
    return n->service->Handle(req);
  });
}

db::Status Cluster::ArmPrimary(const std::shared_ptr<Node>& node) {
  node->sender = std::make_unique<ReplicationSender>();
  ReplicationSender* sender = node->sender.get();
  // Tap BEFORE any follower attach: AttachFollower's retention window
  // must already be fed by the time it pins the bootstrap snapshot.
  const db::Status s = node->store->SetCommitTap(
      [sender](const db::ReplicatedOp& op) { sender->OnCommit(op); });
  if (!s.ok()) {
    node->sender.reset();
    return s;
  }
  node->service->set_replication(sender);
  return db::Status();
}

db::Status Cluster::DirectCall(std::uint32_t node, rpc::Method method,
                               rpc::Frame* resp) {
  rpc::Frame req;
  req.type = rpc::MsgType::kRequest;
  req.method = method;
  req.shard = node;
  const db::Status s = network_.Connect(node)->Call(req, resp);
  if (!s.ok()) return s;
  if (resp->status != db::StatusCode::kOk) return frame_error(*resp);
  return db::Status();
}

db::StatusOr<std::unique_ptr<Cluster>> Cluster::Start(
    const ClusterOptions& options) {
  if (options.num_shards == 0) {
    return db::Status::InvalidArgument("num_shards must be > 0");
  }
  if (options.replication_factor != 1 && options.replication_factor != 2) {
    return db::Status::InvalidArgument(
        "replication_factor must be 1 or 2 (one warm standby per shard)");
  }
  if (options.replication_factor > 1 && options.in_memory) {
    return db::Status::InvalidArgument(
        "replicated cluster must be durable: followers re-log the "
        "replication stream into their WAL");
  }
  if (!options.in_memory && options.dir.empty()) {
    return db::Status::InvalidArgument(
        "durable cluster needs a root directory");
  }
  std::unique_ptr<Cluster> cluster(new Cluster(options));
  const std::uint32_t num_nodes = cluster->num_nodes();
  {
    const util::MutexLock lock(cluster->mu_);
    cluster->nodes_.resize(num_nodes);
    cluster->up_.assign(num_nodes, 0);
  }
  for (std::uint32_t node = 0; node < num_nodes; ++node) {
    auto opened = cluster->OpenNode(node);
    if (!opened.ok()) {
      (void)cluster->Stop();  // tear down the nodes that did start
      return opened.status();
    }
    {
      const util::MutexLock lock(cluster->mu_);
      cluster->nodes_[node] = opened.value();
      cluster->up_[node] = 1;
    }
    cluster->BindNode(node, opened.value());
  }
  if (options.replication_factor > 1) {
    const std::uint64_t epoch = cluster->map().epoch;
    for (std::uint32_t shard = 0; shard < options.num_shards; ++shard) {
      const std::uint32_t p = shard * options.replication_factor;
      const std::uint32_t f = p + 1;
      std::shared_ptr<Node> primary;
      {
        const util::MutexLock lock(cluster->mu_);
        primary = cluster->nodes_[p];
      }
      db::Status s = cluster->ArmPrimary(primary);
      if (s.ok()) {
        s = primary->sender->AttachFollower(
            primary->store.get(), cluster->network_.Connect(f), epoch);
      }
      if (!s.ok()) {
        (void)cluster->Stop();
        return s;
      }
    }
    if (options.auto_failover) {
      cluster->misses_.assign(options.num_shards, 0);
      cluster->manager_ = std::thread([c = cluster.get()] {
        c->ManagerLoop();
      });
    }
  }
  return cluster;
}

Cluster::~Cluster() { (void)Stop(); }

db::Status Cluster::Crash(std::uint32_t node) {
  const std::lock_guard<std::mutex> topo(topo_mu_);
  std::shared_ptr<Node> victim;
  PartitionMap cur;
  {
    const util::MutexLock lock(mu_);
    if (node >= nodes_.size()) {
      return db::Status::InvalidArgument("no such node");
    }
    if (!up_[node]) {
      return db::Status::FailedPrecondition("node already down");
    }
    up_[node] = 0;
    victim = nodes_[node];
    cur = map_;
  }
  // Unbind first: new calls fail kUnavailable instead of racing the
  // abandon. Then stop the sender (in-flight ack barriers fail, clients
  // retry) and Abandon with no cluster lock held (rank 0 descent).
  network_.Unbind(node);
  if (victim->sender) {
    victim->sender->Stop();
    (void)victim->store->SetCommitTap(nullptr);
  }
  victim->store->Abandon();
  if (options_.replication_factor > 1) {
    const std::uint32_t shard = shard_of_node(node);
    const std::uint32_t p = cur.primary_node_of(shard);
    if (p != node) {
      // A FOLLOWER died. Detach the primary's stream proactively so the
      // next ack degrades immediately instead of timing out through the
      // sender's own failure counter.
      std::shared_ptr<Node> primary;
      {
        const util::MutexLock lock(mu_);
        if (p < up_.size() && up_[p]) primary = nodes_[p];
      }
      if (primary && primary->sender) primary->sender->DetachFollower();
    }
  }
  return db::Status();
}

db::Status Cluster::Restart(std::uint32_t node) {
  const std::lock_guard<std::mutex> topo(topo_mu_);
  PartitionMap cur;
  {
    const util::MutexLock lock(mu_);
    if (node >= nodes_.size()) {
      return db::Status::InvalidArgument("no such node");
    }
    if (up_[node]) {
      return db::Status::FailedPrecondition("node is up; Crash it first");
    }
    cur = map_;
  }
  const std::uint32_t shard = shard_of_node(node);
  if (options_.replication_factor > 1 &&
      cur.primary_node_of(shard) != node) {
    // Deposed (a promotion happened while this node was down) or plain
    // follower: the local timeline may diverge from the promoted one by
    // an unacked suffix. Every ACKED write lives on the current primary,
    // so wiping loses nothing a client was promised.
    {
      const util::MutexLock lock(mu_);
      const std::uint32_t p = cur.primary_node_of(shard);
      if (!(p < up_.size() && up_[p])) {
        return db::Status::FailedPrecondition(
            "shard " + std::to_string(shard) +
            "'s primary is down; restart it first (it holds every acked "
            "write)");
      }
    }
    return WipeAndRejoinLocked(node, shard);
  }

  // Still the primary (rf == 1 always lands here): recover the directory
  // — snapshot load + WAL replay — and resume.
  auto opened = OpenNode(node);
  if (!opened.ok()) return opened.status();
  if (options_.replication_factor > 1) {
    const db::Status s = ArmPrimary(opened.value());
    if (!s.ok()) return s;
  }
  std::shared_ptr<Node> retired;
  {
    const util::MutexLock lock(mu_);
    retired = std::move(nodes_[node]);
    nodes_[node] = opened.value();
    up_[node] = 1;
  }
  // `retired` (the crashed node) drops its last reference HERE, outside
  // the cluster lock: ~Store descends to the rank-0 lifecycle lock, and
  // holding rank kSvcCluster across that is a validator abort.
  retired.reset();
  BindNode(node, opened.value());
  if (options_.replication_factor > 1) {
    // A live follower's `ready` latch predates the crash: acks taken
    // since recovery (degraded) are not covered by it, so trusting it
    // could promote a stale replica later. Re-sync from scratch.
    for (const std::uint32_t f : cur.replicas_of(shard)) {
      if (f == node) continue;
      bool follower_up;
      {
        const util::MutexLock lock(mu_);
        follower_up = f < up_.size() && up_[f] != 0;
      }
      if (!follower_up) continue;
      const db::Status s = WipeAndRejoinLocked(f, shard);
      if (!s.ok()) return s;  // primary is up; follower stays degraded
    }
  }
  return db::Status();
}

db::Status Cluster::WipeAndRejoinLocked(std::uint32_t f,
                                        std::uint32_t shard) {
  std::shared_ptr<Node> old;
  bool was_up;
  {
    const util::MutexLock lock(mu_);
    old = nodes_[f];
    was_up = up_[f] != 0;
    up_[f] = 0;
  }
  if (was_up && old) {
    network_.Unbind(f);
    if (old->sender) {
      old->sender->Stop();
      (void)old->store->SetCommitTap(nullptr);
    }
    old->store->Abandon();  // releases the LOCK file before the wipe
  }
  {
    const util::MutexLock lock(mu_);
    nodes_[f].reset();
  }
  old.reset();  // last owner (barring in-flight handlers) dies lock-free
  std::error_code ec;
  std::filesystem::remove_all(NodePath(f), ec);
  if (ec) {
    return db::Status::IOError("wipe of " + NodePath(f) +
                               " failed: " + ec.message());
  }
  auto opened = OpenNode(f);  // fresh empty store, ready_ == false
  if (!opened.ok()) return opened.status();
  {
    const util::MutexLock lock(mu_);
    nodes_[f] = opened.value();
    up_[f] = 1;
  }
  BindNode(f, opened.value());

  std::shared_ptr<Node> primary;
  std::uint64_t epoch;
  {
    const util::MutexLock lock(mu_);
    const std::uint32_t p = map_.primary_node_of(shard);
    if (p < up_.size() && up_[p]) primary = nodes_[p];
    epoch = map_.epoch;
  }
  if (!primary || !primary->sender) {
    return db::Status::FailedPrecondition(
        "no armed primary to bootstrap the rejoined follower from");
  }
  return primary->sender->AttachFollower(primary->store.get(),
                                         network_.Connect(f), epoch);
}

db::Status Cluster::Promote(std::uint32_t shard) {
  if (options_.replication_factor == 1) {
    return db::Status::FailedPrecondition("cluster is not replicated");
  }
  if (shard >= options_.num_shards) {
    return db::Status::InvalidArgument("no such shard");
  }
  const std::lock_guard<std::mutex> topo(topo_mu_);
  return PromoteLocked(shard);
}

db::Status Cluster::PromoteLocked(std::uint32_t shard) {
  PartitionMap cur;
  {
    const util::MutexLock lock(mu_);
    cur = map_;
    const std::uint32_t p = cur.primary_node_of(shard);
    if (p < up_.size() && up_[p]) {
      return db::Status::FailedPrecondition("primary is up");
    }
  }
  const std::uint32_t dead = cur.primary_node_of(shard);
  // The most-caught-up READY follower wins. Ready is the dead primary's
  // certification that the follower's frontier covered every acked
  // write; a non-ready follower may be missing degraded acks and MUST
  // NOT be promoted — better unavailable than wrong.
  std::uint32_t winner = static_cast<std::uint32_t>(-1);
  std::uint64_t winner_frontier = 0;
  for (const std::uint32_t r : cur.replicas_of(shard)) {
    if (r == dead) continue;
    {
      const util::MutexLock lock(mu_);
      if (!(r < up_.size() && up_[r])) continue;
    }
    rpc::Frame resp;
    if (!DirectCall(r, rpc::Method::kReplFrontier, &resp).ok()) continue;
    rpc::ReplStatus st;
    if (!rpc::decode_repl_status(resp.payload, &st).ok()) continue;
    if (!st.ready) continue;
    if (winner == static_cast<std::uint32_t>(-1) ||
        st.frontier > winner_frontier) {
      winner = r;
      winner_frontier = st.frontier;
    }
  }
  if (winner == static_cast<std::uint32_t>(-1)) {
    return db::Status::Unavailable(
        "shard " + std::to_string(shard) +
        " has no ready follower to promote");
  }

  PartitionMap next = cur;
  next.version = cur.version + 1;
  next.epoch = cur.epoch + 1;  // fences the deposed primary's stream
  next.shard_primary[shard] = winner;

  std::shared_ptr<Node> w;
  std::vector<std::shared_ptr<Node>> others;
  {
    const util::MutexLock lock(mu_);
    w = nodes_[winner];
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (n != winner && up_[n]) others.push_back(nodes_[n]);
    }
  }
  // Arm the winner BEFORE it can accept a write: from its first keyed
  // mutation every ack must flow through the (degraded, solo) barrier so
  // degraded_acked_ tracking starts at seq one-past-the-promoted-state.
  const db::Status s = ArmPrimary(w);
  if (!s.ok()) return s;
  // Re-certify every OTHER shard's surviving primary at the new epoch
  // BEFORE any follower learns the new map. The epoch is cluster-wide:
  // without this, shard k's follower would start rejecting its own
  // legitimate primary's old-epoch frames and that primary would wrongly
  // self-depose. Ordering makes the remaining race benign — a frame
  // stamped with the old epoch that loses to the install is re-shipped
  // at the adopted epoch (see ReplicationSender::ShipOnce).
  for (const std::shared_ptr<Node>& n : others) {
    if (n->sender) n->sender->AdoptEpoch(next.epoch);
  }
  if (w->sender) w->sender->AdoptEpoch(next.epoch);
  w->service->InstallMap(next);
  // The winner knows first; stragglers learn next. A client that beats
  // an install sees kWrongShard from the straggler and bounces to the
  // winner, whose map is already current.
  for (const std::shared_ptr<Node>& n : others) n->service->InstallMap(next);
  {
    const util::MutexLock lock(mu_);
    map_ = next;
  }
  return db::Status();
}

void Cluster::ManagerLoop() {
  using clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::milliseconds(options_.heartbeat_interval_ms);
  while (!manager_stop_.load(std::memory_order_acquire)) {
    // Sleep in small slices so Stop() never waits a full interval.
    const auto wake = clock::now() + interval;
    while (clock::now() < wake) {
      if (manager_stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    PartitionMap m;
    std::vector<char> up;
    {
      const util::MutexLock lock(mu_);
      m = map_;
      up = up_;
    }
    for (std::uint32_t shard = 0; shard < options_.num_shards; ++shard) {
      const std::uint32_t p = m.primary_node_of(shard);
      bool alive = false;
      if (p < up.size() && up[p]) {
        rpc::Frame resp;
        alive = DirectCall(p, rpc::Method::kPing, &resp).ok();
      }
      if (alive) {
        misses_[shard] = 0;
        continue;
      }
      if (++misses_[shard] < options_.heartbeat_misses) continue;
      misses_[shard] = 0;
      const std::lock_guard<std::mutex> topo(topo_mu_);
      // Re-verified under topo_mu_: a concurrent Restart may have
      // brought the primary back, or a manual Promote may have won.
      (void)PromoteLocked(shard);
    }
  }
}

db::Status Cluster::Stop() {
  manager_stop_.store(true, std::memory_order_release);
  if (manager_.joinable()) manager_.join();
  const std::lock_guard<std::mutex> topo(topo_mu_);
  std::vector<std::shared_ptr<Node>> live;
  std::size_t node_count;
  {
    const util::MutexLock lock(mu_);
    node_count = nodes_.size();
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
      if (!up_[node]) continue;
      up_[node] = 0;
      live.push_back(nodes_[node]);
    }
  }
  for (std::uint32_t node = 0; node < node_count; ++node) {
    network_.Unbind(node);
  }
  // Senders first: an in-flight ack barrier must fail before its store
  // closes under it.
  for (const std::shared_ptr<Node>& n : live) {
    if (n->sender) {
      n->sender->Stop();
      (void)n->store->SetCommitTap(nullptr);
    }
  }
  db::Status first_error;
  for (const std::shared_ptr<Node>& n : live) {
    const db::Status s = n->store->Close();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

PartitionMap Cluster::map() const {
  const util::MutexLock lock(mu_);
  return map_;
}

bool Cluster::IsUp(std::uint32_t node) const {
  const util::MutexLock lock(mu_);
  return node < up_.size() && up_[node] != 0;
}

std::vector<std::shared_ptr<rpc::Channel>> Cluster::ConnectAll() {
  const std::uint32_t n = num_nodes();
  std::vector<std::shared_ptr<rpc::Channel>> channels;
  channels.reserve(n);
  for (std::uint32_t node = 0; node < n; ++node) {
    channels.push_back(network_.Connect(node));
  }
  return channels;
}

}  // namespace smartstore::svc
