#include "svc/cluster.h"

#include <algorithm>
#include <utility>

namespace smartstore::svc {

namespace {

/// splitmix64 finalizer: decorrelates per-shard placement rngs. The old
/// `seed + shard` gave adjacent CLUSTER seeds (seed 1 shard 1 vs seed 2
/// shard 0) identical store seeds — two "independent" test clusters then
/// shared placement decisions.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t shard) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Cluster::Cluster(const ClusterOptions& options)
    : options_(options),
      map_(PartitionMap::RoundRobin(options.num_shards, options.map_version)) {
}

std::string Cluster::ShardPath(std::uint32_t shard) const {
  return options_.dir + "/shard-" + std::to_string(shard);
}

db::Options Cluster::ShardStoreOptions(std::uint32_t shard) const {
  db::Options o = options_.store_options;
  o.in_memory = options_.in_memory;
  o.create_if_missing = true;
  o.seed = mix_seed(o.seed, shard);  // distinct placement rngs per shard
  if (options_.in_memory) {
    // In-memory stores reject durability knobs (nothing to checkpoint).
    o.checkpoint_every = 0;
  } else {
    // Acked => durable: every mutation's WAL append fsyncs before the
    // response leaves the shard, so Abandon cannot lose an acked write.
    o.enable_wal = true;
    o.group_commit = std::max<std::size_t>(1, o.group_commit);
  }
  return o;
}

db::StatusOr<std::shared_ptr<Cluster::Node>> Cluster::OpenShard(
    std::uint32_t shard) const {
  auto opened = db::Store::Open(
      ShardStoreOptions(shard),
      options_.in_memory ? std::string() : ShardPath(shard));
  if (!opened.ok()) return opened.status();
  auto node = std::make_shared<Node>();
  node->store = std::move(opened).value();
  MetaServiceOptions service_options;
  service_options.shard_id = shard;
  service_options.dedup_capacity = options_.dedup_capacity;
  node->service =
      std::make_unique<MetaService>(node->store.get(), map_, service_options);
  return node;
}

void Cluster::BindShard(std::uint32_t shard,
                        const std::shared_ptr<Node>& node) {
  // The handler holds the node: a delivery racing Crash() completes
  // against the old store (which answers kUnavailable once abandoned)
  // rather than a dangling pointer.
  network_.Bind(shard, [node](const rpc::Frame& req) {
    return node->service->Handle(req);
  });
}

db::StatusOr<std::unique_ptr<Cluster>> Cluster::Start(
    const ClusterOptions& options) {
  if (options.num_shards == 0) {
    return db::Status::InvalidArgument("num_shards must be > 0");
  }
  if (!options.in_memory && options.dir.empty()) {
    return db::Status::InvalidArgument(
        "durable cluster needs a root directory");
  }
  std::unique_ptr<Cluster> cluster(new Cluster(options));
  {
    const util::MutexLock lock(cluster->mu_);
    cluster->nodes_.resize(options.num_shards);
    cluster->up_.assign(options.num_shards, 0);
  }
  for (std::uint32_t shard = 0; shard < options.num_shards; ++shard) {
    auto node = cluster->OpenShard(shard);
    if (!node.ok()) {
      (void)cluster->Stop();  // tear down the shards that did start
      return node.status();
    }
    {
      const util::MutexLock lock(cluster->mu_);
      cluster->nodes_[shard] = node.value();
      cluster->up_[shard] = 1;
    }
    cluster->BindShard(shard, node.value());
  }
  return cluster;
}

Cluster::~Cluster() { (void)Stop(); }

db::Status Cluster::Crash(std::uint32_t shard) {
  std::shared_ptr<Node> node;
  {
    const util::MutexLock lock(mu_);
    if (shard >= nodes_.size()) {
      return db::Status::InvalidArgument("no such shard");
    }
    if (!up_[shard]) {
      return db::Status::FailedPrecondition("shard already down");
    }
    up_[shard] = 0;
    node = nodes_[shard];
  }
  // Unbind first: new calls fail kUnavailable instead of racing the
  // abandon. Then Abandon with no cluster lock held (rank 0 descent).
  network_.Unbind(shard);
  node->store->Abandon();
  return db::Status();
}

db::Status Cluster::Restart(std::uint32_t shard) {
  {
    const util::MutexLock lock(mu_);
    if (shard >= nodes_.size()) {
      return db::Status::InvalidArgument("no such shard");
    }
    if (up_[shard]) {
      return db::Status::FailedPrecondition("shard is up; Crash it first");
    }
  }
  auto node = OpenShard(shard);  // recovery: snapshot load + WAL replay
  if (!node.ok()) return node.status();
  std::shared_ptr<Node> retired;
  {
    const util::MutexLock lock(mu_);
    retired = std::move(nodes_[shard]);
    nodes_[shard] = node.value();
    up_[shard] = 1;
  }
  // `retired` (the crashed node) drops its last reference HERE, outside
  // the cluster lock: ~Store descends to the rank-0 lifecycle lock, and
  // holding rank 62 across that is a validator abort.
  retired.reset();
  BindShard(shard, node.value());
  return db::Status();
}

db::Status Cluster::Stop() {
  std::vector<std::shared_ptr<Node>> live;
  {
    const util::MutexLock lock(mu_);
    for (std::size_t shard = 0; shard < nodes_.size(); ++shard) {
      if (!up_[shard]) continue;
      up_[shard] = 0;
      live.push_back(nodes_[shard]);
    }
  }
  db::Status first_error;
  for (std::uint32_t shard = 0; shard < options_.num_shards; ++shard) {
    network_.Unbind(shard);
  }
  for (const std::shared_ptr<Node>& node : live) {
    const db::Status s = node->store->Close();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

bool Cluster::IsUp(std::uint32_t shard) const {
  const util::MutexLock lock(mu_);
  return shard < up_.size() && up_[shard] != 0;
}

std::vector<std::shared_ptr<rpc::Channel>> Cluster::ConnectAll() {
  std::vector<std::shared_ptr<rpc::Channel>> channels;
  channels.reserve(options_.num_shards);
  for (std::uint32_t shard = 0; shard < options_.num_shards; ++shard) {
    channels.push_back(network_.Connect(shard));
  }
  return channels;
}

}  // namespace smartstore::svc
