#include "svc/replication.h"

#include <chrono>
#include <utility>

namespace smartstore::svc {

namespace {

db::Status frame_status(const rpc::Frame& f) {
  if (f.status == db::StatusCode::kOk) return db::Status();
  std::string msg;
  (void)rpc::decode_message(f.payload, &msg);  // best-effort
  return db::Status::FromCode(f.status, std::move(msg));
}

}  // namespace

ReplicationSender::ReplicationSender(ReplicationOptions options)
    : options_(options), sender_([this] { SenderLoop(); }) {}

ReplicationSender::~ReplicationSender() { Stop(); }

void ReplicationSender::Stop() {
  {
    const util::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

void ReplicationSender::OnCommit(const db::ReplicatedOp& op) {
  bool wake = false;
  {
    const util::MutexLock lock(mu_);
    // No consumer and no bootstrap in progress: nothing retains the
    // record (re-arming always goes through a fresh bootstrap).
    if (!retaining_ && !have_follower_) return;
    pending_.emplace(op.seq, op);
    wake = have_follower_;
  }
  // Caller still holds a kWalShard mutex: notify takes no locks.
  if (wake) cv_.notify_all();
}

void ReplicationSender::DetachLocked() {
  have_follower_ = false;
  sync_engaged_ = false;
  flag_shipped_ = false;
  follower_.reset();
  pending_.clear();
  consecutive_failures_ = 0;
}

void ReplicationSender::DetachFollower() {
  {
    const util::MutexLock lock(mu_);
    DetachLocked();
  }
  // Waiters re-check: no follower -> degraded ack path, they return OK.
  cv_.notify_all();
}

void ReplicationSender::AdoptEpoch(std::uint64_t epoch) {
  const util::MutexLock lock(mu_);
  if (!deposed_ && epoch > epoch_) epoch_ = epoch;
}

db::Status ReplicationSender::AttachFollower(
    db::Store* store, std::shared_ptr<rpc::Channel> follower,
    std::uint64_t epoch) {
  {
    const util::MutexLock lock(mu_);
    if (deposed_) {
      return db::Status::FailedPrecondition(
          "deposed primary cannot attach a follower");
    }
    // Retention armed BEFORE the snapshot pin: every record committing
    // after the pinned seq S lands in the buffer, so the dump (<= S) plus
    // the buffered stream (> S) covers the history with no gap and no
    // quiescing of writers.
    DetachLocked();
    retaining_ = true;
    epoch_ = epoch;
  }
  std::uint64_t snap_seq = 0;
  auto dump = store->DumpSnapshot(&snap_seq);
  db::Status s = dump.status();
  rpc::ReplStatus st;
  if (s.ok()) {
    rpc::ReplBootstrap boot;
    boot.seq = snap_seq;
    boot.files = std::move(dump).value();
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = rpc::Method::kReplBootstrap;
    req.map_version = epoch;
    rpc::encode_repl_bootstrap(boot, &req.payload);
    rpc::Frame resp;
    s = follower->Call(req, &resp);
    if (s.ok()) s = frame_status(resp);
    if (s.ok()) s = rpc::decode_repl_status(resp.payload, &st);
    if (s.ok() && st.frontier != snap_seq) {
      s = db::Status::FailedPrecondition(
          "bootstrap frontier mismatch: follower reports " +
          std::to_string(st.frontier) + ", dump was at " +
          std::to_string(snap_seq));
    }
  }
  bool wake = false;
  bool sync_now = false;
  std::uint64_t flag_seq = 0;
  std::shared_ptr<rpc::Channel> attached;
  {
    const util::MutexLock lock(mu_);
    retaining_ = false;
    if (!s.ok() || deposed_) {
      pending_.clear();
      return s.ok() ? db::Status::FailedPrecondition("deposed during attach")
                    : s;
    }
    // Records the dump already covers were buffered too — drop them; the
    // stream resumes at S+1.
    pending_.erase(pending_.begin(), pending_.upper_bound(snap_seq));
    next_to_ship_ = snap_seq + 1;
    ack_frontier_ = snap_seq;
    follower_ = std::move(follower);
    attached = follower_;
    have_follower_ = true;
    // Sync engages right away iff the dump already covers every degraded
    // ack; otherwise the flip waits for the ack that proves coverage. The
    // sender ships the flag (an empty batch if it must) so the follower
    // latches `ready` even on an idle shard.
    sync_engaged_ = degraded_acked_ <= snap_seq;
    flag_shipped_ = false;
    sync_now = sync_engaged_;
    if (sync_now) flag_seq = ++repl_seq_;
    wake = true;
  }
  if (wake) cv_.notify_all();
  if (sync_now) {
    // Deliver the sync flag on THIS thread before returning: once attach
    // completes, the follower must already be promotion-eligible. Racing
    // the sender loop here would leave a window where the primary dies
    // right after Start()/rejoin with a fully-caught-up follower that was
    // never certified `ready` — the shard would be unpromotable forever.
    rpc::ReplBatch batch;
    batch.sync_engaged = true;
    rpc::Frame req;
    req.type = rpc::MsgType::kRequest;
    req.method = rpc::Method::kReplAppend;
    req.client_id = 0;
    req.seq = flag_seq;
    req.map_version = epoch;
    rpc::encode_repl_batch(batch, &req.payload);
    rpc::Frame resp;
    db::Status shipped = attached->Call(req, &resp);
    if (shipped.ok()) shipped = frame_status(resp);
    rpc::ReplStatus st;
    if (shipped.ok()) shipped = rpc::decode_repl_status(resp.payload, &st);
    if (shipped.ok()) {
      const util::MutexLock lock(mu_);
      if (have_follower_ && follower_ == attached) {
        flag_shipped_ = true;
        if (st.frontier > ack_frontier_) ack_frontier_ = st.frontier;
      }
    }
    // On failure the sender loop re-ships the flag with its normal retry
    // and failure accounting — attach itself still succeeded.
  }
  return db::Status();
}

db::Status ReplicationSender::WaitDurable(std::uint64_t seq,
                                          std::uint64_t timeout_ms) {
  util::UniqueLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  bool timed_out = false;
  for (;;) {
    if (stop_) return db::Status::Unavailable("replication sender stopped");
    if (deposed_) {
      // Acking from the losing side of a split brain loses the write when
      // this replica is wiped on rejoin — fail instead; the client
      // retries against the promoted primary.
      return db::Status::FailedPrecondition(
          "deposed primary: a newer map epoch exists");
    }
    if (!have_follower_ || !sync_engaged_) {
      // Degraded (solo, or follower catching up): primary durability is
      // the ack. Record the seq so no follower can be declared ready
      // until its frontier covers it.
      if (seq > degraded_acked_) degraded_acked_ = seq;
      return db::Status();
    }
    if (ack_frontier_ >= seq) return db::Status();
    if (timed_out) {
      return db::Status::Timeout(
          "replicated ack for seq " + std::to_string(seq) +
          " did not arrive in " + std::to_string(timeout_ms) + "ms");
    }
    timed_out = cv_.wait_until(lock, deadline) == std::cv_status::timeout;
  }
}

void ReplicationSender::SenderLoop() {
  util::UniqueLock lock(mu_);
  while (!stop_) {
    // ShipOnce can discover stop_ only after re-acquiring mu_: Stop() may
    // run entirely inside the unlocked Call window, notifying while no one
    // waits. Re-check before parking or that notify is lost and Stop()'s
    // join hangs forever.
    if (!ShipOnce(lock) && !stop_) cv_.wait(lock);
  }
}

bool ReplicationSender::ShipOnce(util::UniqueLock& lock) {
  if (!have_follower_) return false;
  rpc::ReplBatch batch;
  batch.sync_engaged = sync_engaged_;
  auto it = pending_.begin();
  while (it != pending_.end() && it->first < next_to_ship_) {
    it = pending_.erase(it);  // covered by the bootstrap dump or an ack
  }
  std::uint64_t expect = next_to_ship_;
  while (it != pending_.end() && it->first == expect &&
         batch.ops.size() < options_.max_batch) {
    const db::ReplicatedOp& r = it->second;
    rpc::ReplOp op;
    op.is_insert = r.is_insert;
    op.is_noop = r.is_noop;
    op.seq = r.seq;
    op.file = r.file;
    op.name = r.name;
    batch.ops.push_back(std::move(op));
    ++expect;
    ++it;
  }
  // Nothing contiguous (a lower seq is still committing on another WAL
  // shard — a transient gap) and no sync flag to deliver: wait for a
  // commit or an ack to change the picture.
  if (batch.ops.empty() && !(sync_engaged_ && !flag_shipped_)) return false;

  const bool flag = batch.sync_engaged;
  const std::shared_ptr<rpc::Channel> ch = follower_;
  const std::uint64_t frame_epoch = epoch_;
  rpc::Frame req;
  req.type = rpc::MsgType::kRequest;
  req.method = rpc::Method::kReplAppend;
  req.client_id = 0;
  req.seq = ++repl_seq_;
  req.map_version = frame_epoch;  // the epoch check rides map_version
  rpc::encode_repl_batch(batch, &req.payload);

  // Never hold mu_ across the Call: the in-process transport runs the
  // follower's handler — which descends to store rank 0 — on this thread.
  lock.unlock();
  rpc::Frame resp;
  db::Status sent = ch->Call(req, &resp);
  bool stale_epoch = false;
  rpc::ReplStatus st;
  if (sent.ok()) {
    if (resp.status == db::StatusCode::kFailedPrecondition) {
      stale_epoch = true;
      sent = frame_status(resp);
    } else if (resp.status != db::StatusCode::kOk) {
      sent = frame_status(resp);
    } else {
      sent = rpc::decode_repl_status(resp.payload, &st);
    }
  }
  lock.lock();

  if (stop_) return false;
  if (!have_follower_ || follower_ != ch) return true;  // detached meanwhile
  if (sent.ok()) {
    consecutive_failures_ = 0;
    if (flag) flag_shipped_ = true;
    if (st.frontier > ack_frontier_) ack_frontier_ = st.frontier;
    pending_.erase(pending_.begin(), pending_.upper_bound(ack_frontier_));
    if (ack_frontier_ + 1 > next_to_ship_) next_to_ship_ = ack_frontier_ + 1;
    if (!sync_engaged_ && ack_frontier_ >= degraded_acked_) {
      // The flip: every degraded ack is now durable on the follower. From
      // here acks wait on the frontier, so shipping the flag (latching
      // the follower's `ready`) cannot race a concurrent degraded ack —
      // both paths serialize on mu_.
      sync_engaged_ = true;
      flag_shipped_ = false;
    }
    cv_.notify_all();
    return true;
  }
  if (stale_epoch) {
    if (epoch_ > frame_epoch) {
      // A promotion on ANOTHER shard bumped the cluster epoch while this
      // frame was in flight, and orchestration already re-certified this
      // node (AdoptEpoch) as its own shard's primary. The rejection is
      // about the stamp, not the role: re-ship at the adopted epoch.
      consecutive_failures_ = 0;
      return true;
    }
    // A higher epoch exists and nobody re-certified us: a promotion
    // happened and this node lost. Every future ack must fail — detaching
    // alone would silently fall back to degraded acks, which is exactly
    // the split-brain loss.
    deposed_ = true;
    DetachLocked();
    cv_.notify_all();
    return true;
  }
  if (++consecutive_failures_ >= options_.max_consecutive_failures) {
    DetachLocked();  // follower is gone: degraded solo until re-attach
    cv_.notify_all();
    return true;
  }
  // Transient failure: re-ship the same run after a pause (new commits or
  // a detach wake us early).
  cv_.wait_for(lock, std::chrono::milliseconds(options_.retry_delay_ms));
  return true;
}

std::uint64_t ReplicationSender::ack_frontier() const {
  const util::MutexLock lock(mu_);
  return ack_frontier_;
}

bool ReplicationSender::sync_engaged() const {
  const util::MutexLock lock(mu_);
  return sync_engaged_;
}

bool ReplicationSender::deposed() const {
  const util::MutexLock lock(mu_);
  return deposed_;
}

bool ReplicationSender::have_follower() const {
  const util::MutexLock lock(mu_);
  return have_follower_;
}

}  // namespace smartstore::svc
