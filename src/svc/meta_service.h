// MetaService: the stateless server-side operator that turns one shard's
// db::Store into a metadata service endpoint.
//
// "Stateless" in the serving sense: everything a request needs is in the
// frame, and everything durable is in the Store — the service object
// itself holds only the shard's partition map (an immutable value) and an
// in-memory request-id dedup table that exists purely to absorb transport
// retries. Losing the service object (crash) loses nothing a retry cannot
// reconstruct.
//
// Request-id dedup / exactly-once contract:
//   - every KEYED MUTATION (Put / Delete / BatchWrite) carries
//     (client_id, seq); a retry resends the SAME pair.
//   - the first arrival installs a Pending entry, applies the mutation
//     with NO service lock held (Store calls start at lock rank 0 — the
//     validator aborts a hold-across-the-facade), then publishes the
//     response as Done.
//   - concurrent duplicates WAIT on the Pending entry; later duplicates
//     replay the Done response. Either way the store applies once.
//   - across a crash/restart the table is empty, so mutations must ALSO be
//     idempotent at the store level: Put is an upsert (replace-on-exists)
//     and Delete treats already-absent as success. A replayed mutation
//     therefore converges to the same state instead of failing.
//   - queries are read-only and skip the table entirely.
//
// Ownership: keyed requests are checked against the shard's current map
// BEFORE dedup registration; a kWrongShard response carries the current
// map in its payload so a stale client refreshes in one round trip.
//
// Store error mapping: kFaultInjected / kFailedPrecondition from the store
// mean the shard is mid-crash or already torn down — the client-visible
// truth is "this shard is unavailable, retry elsewhere/later", so both map
// to kUnavailable in the response frame.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <utility>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rpc/transport.h"
#include "rpc/wire.h"
#include "smartstore/store.h"
#include "svc/partition.h"
#include "util/annotated_mutex.h"
#include "util/thread_annotations.h"

namespace smartstore::svc {

struct MetaServiceOptions {
  std::uint32_t shard_id = 0;
  /// This endpoint's NODE id in a replicated topology (a logical shard is
  /// served by several nodes; only the map's primary node accepts keyed
  /// requests). kNodeIsShard keeps the legacy one-node-per-shard identity.
  static constexpr std::uint32_t kNodeIsShard =
      static_cast<std::uint32_t>(-1);
  std::uint32_t node_id = kNodeIsShard;
  /// Ack-barrier bound: how long a keyed mutation may wait for the
  /// follower's durable ack before answering kTimeout (the client retries
  /// with the same id; the write is NOT acked).
  std::uint64_t repl_ack_timeout_ms = 2'000;
  /// Dedup entries retained (FIFO eviction of completed entries). Sized to
  /// cover every in-flight-or-recently-acked request across all clients;
  /// an evicted entry degrades to the store-level idempotence path.
  std::size_t dedup_capacity = 4096;
  /// Concurrent snapshot leases this shard will hold open. A full table
  /// rejects kSnapPin with kUnavailable — clients fall back to unpinned
  /// (latest) reads rather than silently breaking someone else's pin.
  std::size_t snapshot_lease_capacity = 64;
  /// A lease not released within the TTL is swept; the GC watermark can
  /// then advance past a crashed client's pin.
  std::uint64_t snapshot_lease_ttl_ms = 10'000;
};

class ReplicationSender;

class MetaService {
 public:
  /// `store` must outlive the service and every in-flight Handle call.
  MetaService(db::Store* store, PartitionMap map, MetaServiceOptions options);

  /// Serves one request frame; always returns a response frame (decode
  /// errors and store failures travel in the response's status byte).
  /// Thread-safe.
  rpc::Frame Handle(const rpc::Frame& req);

  /// Adapter for transport Bind.
  rpc::Handler handler() {
    return [this](const rpc::Frame& req) { return Handle(req); };
  }

  /// Attaches (or, with nullptr, detaches) the primary-role replication
  /// sender: every keyed mutation then blocks on WaitDurable before its
  /// response leaves — "acked" means durable on both replicas in sync
  /// mode. The sender must outlive the service or be detached first.
  void set_replication(ReplicationSender* sender) {
    sender_.store(sender, std::memory_order_release);
  }

  /// Adopts `map` if its version is newer than the installed one (the
  /// failover manager pushes post-promotion maps through this).
  void InstallMap(PartitionMap map);

  PartitionMap map() const;  ///< copy of the installed map
  std::uint32_t shard_id() const { return options_.shard_id; }
  std::uint32_t node_id() const { return options_.node_id; }

  /// Promotion eligibility (followers): latched true when a kReplAppend
  /// batch arrives with the sync flag — the primary's statement that this
  /// replica's frontier covers every acked write.
  bool ready() const { return ready_.load(std::memory_order_acquire); }

 private:
  /// A published (or pending) response for one request id.
  struct DedupEntry {
    bool done = false;
    db::StatusCode status = db::StatusCode::kOk;
    std::vector<std::uint8_t> payload;
  };
  using DedupKey = std::pair<std::uint64_t, std::uint64_t>;
  struct DedupKeyHash {
    std::size_t operator()(const DedupKey& k) const {
      // Splitmix-style combine; both halves are already well-distributed.
      std::uint64_t h = k.first * 0x9e3779b97f4a7c15ull ^ k.second;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };

  /// Claims the request id. Returns true when the caller is the FIRST
  /// arrival and must apply + Publish; false when the response was served
  /// from the table (after waiting out a pending twin if necessary) —
  /// `status`/`payload` are then filled with the cached response.
  bool Claim(const DedupKey& key, db::StatusCode* status,
             std::vector<std::uint8_t>* payload);

  /// Publishes the first arrival's outcome and wakes waiting duplicates.
  void Publish(const DedupKey& key, db::StatusCode status,
               const std::vector<std::uint8_t>& payload);

  // Per-method handlers: fill the response's status + payload.
  void HandlePut(const rpc::Frame& req, rpc::Frame* resp);
  void HandleDelete(const rpc::Frame& req, rpc::Frame* resp);
  void HandleBatch(const rpc::Frame& req, rpc::Frame* resp);
  void HandlePointQuery(const rpc::Frame& req, rpc::Frame* resp);
  void HandleRangeQuery(const rpc::Frame& req, rpc::Frame* resp);
  void HandleTopKQuery(const rpc::Frame& req, rpc::Frame* resp);
  void HandleFlush(rpc::Frame* resp);
  void HandleGetMap(rpc::Frame* resp);
  void HandleStats(rpc::Frame* resp);
  void HandleSnapPin(rpc::Frame* resp);
  void HandleSnapRelease(const rpc::Frame& req, rpc::Frame* resp);
  void HandleReplAppend(const rpc::Frame& req, rpc::Frame* resp);
  void HandleReplFrontier(rpc::Frame* resp);
  void HandleReplBootstrap(const rpc::Frame& req, rpc::Frame* resp);

  /// Upsert: replace-on-exists so a replayed Put converges.
  db::Status ApplyPut(const metadata::FileMetadata& file);
  /// Idempotent delete: already-absent is success.
  db::Status ApplyDelete(const std::string& name);

  /// The ack barrier: with a replication sender attached, blocks until the
  /// store's latest seq is durable on the follower (or degraded-acks).
  /// Without one, returns OK immediately.
  db::Status AckDurable();

  /// True (and fills the kWrongShard response) when this NODE must not
  /// serve `name` under the current map: the owning shard is different, or
  /// this node is not that shard's primary (a follower redirects writers
  /// to the promoted/current primary the same way a stale shard does).
  bool RejectWrongShard(const std::string& name, rpc::Frame* resp);

  /// True (and fills a kFailedPrecondition response) when a replication
  /// frame carries an epoch older than the installed map's — the sender is
  /// a deposed primary and must never be applied or acked.
  bool RejectStaleEpoch(const rpc::Frame& req, rpc::Frame* resp);

  /// True (and fills the kWrongShard response) when this node is not its
  /// shard's primary under the installed map — scatter reads and snapshot
  /// pins on a follower would serve a lagging view.
  bool RejectNotPrimary(rpc::Frame* resp);

  db::Store* const store_;
  const MetaServiceOptions options_;

  /// The installed partition map. Mutable since failover: promotion ships
  /// a higher-version/higher-epoch map that every surviving node adopts.
  mutable util::SharedMutex map_mu_{util::LockRank::kSvcMap};
  PartitionMap map_ SS_GUARDED_BY(map_mu_);

  /// Primary-role replication sender (null when unreplicated/follower).
  std::atomic<ReplicationSender*> sender_{nullptr};
  /// Follower-role promotion eligibility (see ready()).
  std::atomic<bool> ready_{false};

  /// One held shard snapshot per outstanding lease. The db::Snapshot is
  /// the pin: while it lives, tombstone GC cannot advance past its seq.
  struct LeaseEntry {
    db::Snapshot snapshot;
    std::chrono::steady_clock::time_point expires;
  };

  util::Mutex dedup_mu_{util::LockRank::kSvcDedup};
  std::condition_variable_any dedup_cv_;
  std::unordered_map<DedupKey, std::shared_ptr<DedupEntry>, DedupKeyHash>
      dedup_ SS_GUARDED_BY(dedup_mu_);
  std::deque<DedupKey> dedup_fifo_ SS_GUARDED_BY(dedup_mu_);

  util::Mutex lease_mu_{util::LockRank::kSvcLease};
  std::unordered_map<std::uint64_t, LeaseEntry> leases_
      SS_GUARDED_BY(lease_mu_);
  std::uint64_t next_lease_id_ SS_GUARDED_BY(lease_mu_) = 1;

  // Counters for Method::kStats (atomics: no rank interaction).
  std::atomic<std::uint64_t> applied_puts_{0};
  std::atomic<std::uint64_t> applied_deletes_{0};
  std::atomic<std::uint64_t> dup_hits_{0};
  std::atomic<std::uint64_t> wrong_shard_{0};
};

}  // namespace smartstore::svc
